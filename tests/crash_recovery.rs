//! Crash-consistency suite for the `VGVS` store: truncation fuzzing,
//! deferred writer I/O errors, a seeded kill-point chaos matrix against
//! the fault-injectable I/O layer, `fsck --repair` round trips over the
//! four canonical corruption fixtures, and rotation/retention.
//!
//! The invariant under test (DESIGN §17): for every seed × fault script
//! × kill point, `open_salvage` recovers exactly the fully-flushed
//! chunks, reports the torn tail (never silently absorbing it), and
//! `repair` produces a file that plain `open` accepts whose queries
//! match the salvaged view byte-for-byte.

use std::io::Write as _;
use std::sync::Mutex;

use dynprof::analysis::store::{
    fsck, repair, write_store_from_trace, EventSource, FaultScript, FaultyFile, FooterState,
    RetentionPolicy, RotatingWriter, RotationPolicy, SegmentSet, StoreOptions, StoreReader,
    StoreWriter,
};
use dynprof::analysis::{top_report, ProfileOptions};
use dynprof::obs;
use dynprof::sim::rng::SimRng;
use dynprof::sim::SimTime;
use dynprof::vt::{Event, Trace, VtFuncId};

/// The obs registry is process-global; tests that flip the recording
/// flag must not overlap each other.
static OBS_GATE: Mutex<()> = Mutex::new(());

/// v2 on-disk chunk header size (rank, count, enc_len, crc, min_t,
/// max_t, max_end) — the bound `offset + CHUNK_HDR + enc_len` is a
/// chunk's end-of-payload position.
const CHUNK_HDR: u64 = 40;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dynprof-crash-it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.vgvs", std::process::id()))
}

/// Small seeded trace: alternating function spans and MPI calls across
/// `ranks`, rank-major (the order per-rank buffers reach a writer).
fn synth_trace(seed: u64, ranks: u32, steps: u64) -> Trace {
    let mut events = Vec::new();
    for rank in 0..ranks {
        let mut rng = SimRng::new(seed, rank as u64);
        let mut t = rng.gen_range_u64(0..=3_000);
        for _ in 0..steps {
            t += 500 + rng.gen_range_u64(0..=1_500);
            let t0 = SimTime::from_nanos(t);
            if rng.gen_index(2) == 0 {
                let dur = 200 + rng.gen_range_u64(0..=900);
                let func = VtFuncId(rng.gen_index(3) as u32);
                events.push(Event::FuncEnter {
                    t: t0,
                    rank,
                    thread: 0,
                    func,
                });
                t += dur;
                events.push(Event::FuncExit {
                    t: SimTime::from_nanos(t),
                    rank,
                    thread: 0,
                    func,
                });
            } else {
                let dur = rng.gen_range_u64(100..=2_000);
                events.push(Event::MpiCall {
                    t: t0,
                    t_end: SimTime::from_nanos(t + dur),
                    rank,
                    op: 2,
                    peer: ((rank + 1) % ranks.max(2)) as i32,
                    bytes: rng.gen_range_u64(8..=1_024),
                });
                t += dur;
            }
        }
    }
    Trace {
        program: "crash-synth".into(),
        functions: vec!["alpha".into(), "beta".into(), "gamma".into()],
        events,
    }
}

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![11, 23, 37, 41],
    }
}

/// Write `trace` through a [`FaultyFile`] with `script`. Returns the
/// path, whether `finish()` succeeded, and the bytes that reached disk.
fn faulty_capture(
    trace: &Trace,
    path: &std::path::Path,
    opts: StoreOptions,
    script: FaultScript,
) -> (bool, u64) {
    let file = std::fs::File::create(path).unwrap();
    let mut w = StoreWriter::new(FaultyFile::new(file, script), &trace.program, opts).unwrap();
    w.set_functions(trace.functions.clone());
    for ev in &trace.events {
        w.append(ev);
    }
    match w.finish() {
        Ok(_) => (true, std::fs::metadata(path).unwrap().len()),
        Err(_) => (false, std::fs::metadata(path).unwrap().len()),
    }
}

/// Ground truth for a kill point: with the reference (fault-free) store
/// bytes and its chunk index, which chunks fit entirely inside a
/// `file_len`-byte prefix, and how many events they hold.
fn expected_recovery(reference: &mut StoreReader, file_len: u64) -> (usize, u64, u64) {
    let mut chunks = 0usize;
    let mut events = 0u64;
    let mut data_end = 0u64;
    for m in reference.chunks() {
        let end = m.offset + CHUNK_HDR + m.enc_len as u64;
        if end <= file_len {
            chunks += 1;
            events += m.count as u64;
            data_end = data_end.max(end);
        }
    }
    (chunks, events, data_end)
}

// ---- satellite 1: truncation fuzzing --------------------------------

/// Every byte-length prefix of a valid store either opens cleanly (full
/// length only) or fails with a *typed* error — no panic, no garbage
/// data. And salvage, on every prefix, returns only events that the
/// fully-flushed chunks actually contain.
#[test]
fn every_prefix_fails_typed_and_salvage_never_fabricates() {
    let trace = synth_trace(7, 2, 30);
    let path = tmp("prefix-ref");
    write_store_from_trace(&trace, &path, StoreOptions { chunk_events: 8 }).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let mut reference = StoreReader::open(&path).unwrap();

    // Per-chunk reference contents, for exact-recovery comparison.
    let chunk_events: Vec<Vec<Event>> = (0..reference.chunks().len())
        .map(|i| reference.read_chunk(i).unwrap())
        .collect();

    let prefix = tmp("prefix-cut");
    for len in 0..=bytes.len() {
        std::fs::write(&prefix, &bytes[..len]).unwrap();
        match StoreReader::open(&prefix) {
            Ok(_) => assert_eq!(len, bytes.len(), "short prefix must not open"),
            Err(e) => {
                assert_ne!(len, bytes.len(), "full file must open: {e}");
                // Typed, displayable, and cheap to match on.
                let _ = format!("{e}");
            }
        }
        // Salvage must never invent data: whatever it recovers is
        // exactly the set of chunks whose bytes are all present.
        let (exp_chunks, exp_events, _) = expected_recovery(&mut reference, len as u64);
        match StoreReader::open_salvage(&prefix) {
            Ok(mut r) => {
                let s = r.salvage().expect("salvage summary");
                assert_eq!(s.chunks_recovered, exp_chunks, "prefix {len}");
                assert_eq!(s.events_recovered, exp_events, "prefix {len}");
                let mut expect: Vec<Event> = reference
                    .chunks()
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.offset + CHUNK_HDR + m.enc_len as u64 <= len as u64)
                    .flat_map(|(i, _)| chunk_events[i].iter().cloned())
                    .collect();
                expect.sort_by_key(|e| (e.time(), e.rank()));
                assert_eq!(r.read_all().unwrap().events, expect, "prefix {len}");
            }
            Err(e) => {
                // Only header-less prefixes are beyond salvage.
                assert_eq!(exp_chunks, 0, "prefix {len} salvageable but errored: {e}");
            }
        }
    }
    for p in [path, prefix] {
        std::fs::remove_file(&p).ok();
    }
}

// ---- satellite 2: deferred writer I/O errors ------------------------

/// A sink that starts failing mid-run must surface through `finish()`
/// (appends are infallible by design), must not leave a valid footer
/// behind, and the partial file must salvage.
#[test]
fn writer_surfaces_deferred_io_error_and_partial_file_salvages() {
    let trace = synth_trace(13, 2, 60);
    let path = tmp("deferred-io");
    let (finished, _) = faulty_capture(
        &trace,
        &path,
        StoreOptions { chunk_events: 16 },
        FaultScript::fail_after(4),
    );
    assert!(!finished, "finish() must report the sink failure");
    assert!(
        StoreReader::open(&path).is_err(),
        "no footer may be committed after a write failure"
    );
    let r = StoreReader::open_salvage(&path).unwrap();
    let s = r.salvage().unwrap();
    assert!(s.chunks_recovered > 0, "flushed chunks must survive");
    assert!(
        (s.events_recovered as usize) < trace.events.len(),
        "the un-flushed tail was lost and must be reported as such"
    );
    std::fs::remove_file(&path).ok();
}

/// A short write (interrupted syscall) loses nothing: the writer's
/// `write_all` retries, `finish()` succeeds, and the store is complete.
#[test]
fn short_writes_are_retried_losslessly() {
    let trace = synth_trace(17, 2, 40);
    let path = tmp("short-write");
    let (finished, _) = faulty_capture(
        &trace,
        &path,
        StoreOptions { chunk_events: 16 },
        FaultScript::short_once(),
    );
    assert!(finished);
    let mut r = StoreReader::open(&path).unwrap();
    assert_eq!(r.read_all().unwrap().events.len(), trace.events.len());
    std::fs::remove_file(&path).ok();
}

// ---- tentpole (d): seeded kill-point chaos matrix -------------------

/// For every seed × fault script × kill point: salvage recovers exactly
/// the fully-flushed chunks (no more, no fewer), accounts every missing
/// byte as dropped tail, and `repair` produces a store that plain
/// `open` accepts whose queries match the salvaged view byte-for-byte.
#[test]
fn chaos_matrix_salvage_recovers_every_flushed_chunk() {
    for seed in seeds() {
        let trace = synth_trace(seed, 3, 50);
        let opts = StoreOptions { chunk_events: 16 };

        // Fault-free reference run: the faulty file's bytes are always
        // an exact prefix of these (torn writes deliver a prefix, then
        // the sink is dead).
        let ref_path = tmp(&format!("chaos-ref-{seed}"));
        write_store_from_trace(&trace, &ref_path, opts).unwrap();
        let ref_len = std::fs::metadata(&ref_path).unwrap().len();
        let mut reference = StoreReader::open(&ref_path).unwrap();

        // Kill points: structural boundaries (±1 around chunk ends) plus
        // seeded draws from the fault-script RNG stream.
        let mut scripts: Vec<FaultScript> = Vec::new();
        for m in reference.chunks() {
            let end = m.offset + CHUNK_HDR + m.enc_len as u64;
            scripts.push(FaultScript::torn_at(end - 1));
            scripts.push(FaultScript::torn_at(end));
            scripts.push(FaultScript::torn_at(end + 1));
        }
        let mut rng = SimRng::new(seed, 99);
        for _ in 0..6 {
            scripts.push(FaultScript::from_rng(&mut rng, ref_len));
        }

        for (k, script) in scripts.into_iter().enumerate() {
            let path = tmp(&format!("chaos-{seed}-{k}"));
            let lossy = script.is_lossy();
            let (finished, file_len) = faulty_capture(&trace, &path, opts, script);
            let ctx = format!("seed {seed} cell {k}");

            if finished {
                // The script never tripped (or was lossless): the store
                // must be complete and bit-exact with the reference.
                assert!(!lossy || file_len == ref_len, "{ctx}");
                assert_eq!(
                    std::fs::read(&path).unwrap(),
                    std::fs::read(&ref_path).unwrap(),
                    "{ctx}: clean runs are byte-identical"
                );
                std::fs::remove_file(&path).ok();
                continue;
            }

            let (exp_chunks, exp_events, data_end) = expected_recovery(&mut reference, file_len);
            let mut r = StoreReader::open_salvage(&path).unwrap();
            let s = r.salvage().expect("salvage summary");
            assert_eq!(s.chunks_recovered, exp_chunks, "{ctx}");
            assert_eq!(s.events_recovered, exp_events, "{ctx}");
            if exp_chunks > 0 {
                // Every byte past the last provable chunk is accounted
                // for as dropped tail — nothing vanishes silently.
                assert_eq!(s.tail_bytes_dropped, file_len - data_end, "{ctx}");
            }
            assert_eq!(r.read_all().unwrap().events.len(), exp_events as usize);

            // fsck agrees, and repair round-trips: the repaired file
            // opens plainly and reports exactly what salvage saw.
            let report = fsck(&path).unwrap();
            assert!(!report.is_clean(), "{ctx}");
            assert_eq!(report.events_ok, exp_events, "{ctx}");
            if exp_chunks > 0 {
                let fixed = tmp(&format!("chaos-fix-{seed}-{k}"));
                repair(&path, &fixed).unwrap();
                let mut rep = StoreReader::open(&fixed).unwrap();
                assert_eq!(
                    rep.read_all().unwrap(),
                    r.read_all().unwrap(),
                    "{ctx}: repaired contents"
                );
                let opts = ProfileOptions::default();
                assert_eq!(
                    top_report(&mut rep, 10, opts).unwrap(),
                    top_report(&mut r, 10, opts).unwrap(),
                    "{ctx}: repaired queries must match the salvaged view"
                );
                std::fs::remove_file(&fixed).ok();
            }
            std::fs::remove_file(&path).ok();
        }
        std::fs::remove_file(&ref_path).ok();
    }
}

// ---- tentpole (b): fsck fixtures ------------------------------------

/// The four canonical corruptions — footer gone, torn mid-chunk, bad
/// chunk CRC, truncated trailer — are each detected by `fsck`, repaired,
/// and the repaired store re-opens and re-queries.
#[test]
fn fsck_repairs_all_four_corruption_fixtures() {
    let trace = synth_trace(29, 3, 40);
    let src = tmp("fsck-src");
    write_store_from_trace(&trace, &src, StoreOptions { chunk_events: 16 }).unwrap();
    let bytes = std::fs::read(&src).unwrap();
    let reference = StoreReader::open(&src).unwrap();
    let last_end = reference
        .chunks()
        .iter()
        .map(|m| m.offset + CHUNK_HDR + m.enc_len as u64)
        .max()
        .unwrap() as usize;
    let chunk0 = reference.chunks()[0];

    // (name, corrupted bytes, expected footer verdict)
    let no_footer = bytes[..last_end].to_vec();
    let torn_mid_chunk = bytes[..last_end - chunk0.enc_len as usize / 2].to_vec();
    let mut bad_crc = bytes.clone();
    bad_crc[chunk0.offset as usize + CHUNK_HDR as usize] ^= 0xff;
    let truncated_trailer = bytes[..bytes.len() - 10].to_vec();
    let fixtures: [(&str, Vec<u8>, FooterState); 4] = [
        ("no-footer", no_footer, FooterState::Missing),
        ("torn-mid-chunk", torn_mid_chunk, FooterState::Missing),
        ("bad-crc", bad_crc, FooterState::Valid),
        ("truncated-trailer", truncated_trailer, FooterState::Missing),
    ];

    for (name, data, footer) in fixtures {
        let path = tmp(&format!("fsck-{name}"));
        std::fs::write(&path, &data).unwrap();
        let report = fsck(&path).unwrap();
        assert!(!report.is_clean(), "{name} must not pass fsck");
        assert!(report.is_salvageable(), "{name} keeps its good chunks");
        assert_eq!(report.footer, footer, "{name}");
        let rendered = report.render();
        assert!(rendered.contains("fsck"), "{name}: {rendered}");

        let fixed = tmp(&format!("fsck-{name}-fixed"));
        let rep_report = repair(&path, &fixed).unwrap();
        assert_eq!(rep_report.chunks_ok, report.chunks_ok, "{name}");
        let mut rep = StoreReader::open(&fixed).unwrap();
        assert_eq!(
            rep.read_all().unwrap().events.len() as u64,
            report.events_ok,
            "{name}: repaired store holds exactly the verified events"
        );
        // And the repaired file itself is now clean.
        assert!(fsck(&fixed).unwrap().is_clean(), "{name}");
        for p in [path, fixed] {
            std::fs::remove_file(&p).ok();
        }
    }

    // The bad-CRC repair view equals the degraded read of the original.
    let bad = tmp("fsck-bad-degraded");
    let mut data = bytes.clone();
    data[chunk0.offset as usize + CHUNK_HDR as usize] ^= 0xff;
    std::fs::write(&bad, &data).unwrap();
    let fixed = tmp("fsck-bad-degraded-fixed");
    repair(&bad, &fixed).unwrap();
    let mut degraded = StoreReader::open(&bad).unwrap();
    degraded.set_degraded(true);
    let mut rep = StoreReader::open(&fixed).unwrap();
    assert_eq!(rep.read_all().unwrap(), degraded.read_all().unwrap());
    for p in [src, bad, fixed] {
        std::fs::remove_file(&p).ok();
    }
}

// ---- tentpole (c): rotation and retention ---------------------------

/// Rotation by event count produces the `name.NNNN.vgvs` family, each
/// segment independently valid, and a [`SegmentSet`] over the family
/// returns exactly what one monolithic store would.
#[test]
fn rotation_produces_segments_that_query_as_one_store() {
    let trace = synth_trace(31, 3, 60);
    let base = tmp("rot");
    let mut w = RotatingWriter::create(
        &base,
        &trace.program,
        StoreOptions { chunk_events: 16 },
        RotationPolicy::by_events(64),
        RetentionPolicy::default(),
    )
    .unwrap();
    w.set_functions(trace.functions.clone());
    for ev in &trace.events {
        w.append(ev).unwrap();
    }
    let stats = w.finish().unwrap();
    assert!(stats.segments.len() > 1, "rotation must have happened");
    assert_eq!(stats.rotated + 1, stats.segments.len());
    assert_eq!(stats.events as usize, trace.events.len());
    for (i, p) in stats.segments.iter().enumerate() {
        let name = p.file_name().unwrap().to_str().unwrap();
        assert!(name.contains(&format!(".{i:04}.")), "segment name {name}");
        StoreReader::open(p).unwrap_or_else(|e| panic!("segment {name}: {e}"));
    }

    // Monolithic reference with the same inputs.
    let mono = tmp("rot-mono");
    write_store_from_trace(&trace, &mono, StoreOptions { chunk_events: 16 }).unwrap();
    let mut mono_r = StoreReader::open(&mono).unwrap();
    let mut set = SegmentSet::open(&base).unwrap();
    assert_eq!(set.len(), stats.segments.len());
    let opts = ProfileOptions::default();
    assert_eq!(
        top_report(&mut set, 10, opts).unwrap(),
        top_report(&mut mono_r, 10, opts).unwrap(),
        "segment family must be query-equivalent to one store"
    );
    for p in stats.segments.iter() {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&mono).ok();
}

/// Keep-last-N retention deletes the oldest segments as rotation
/// proceeds, and discovery tolerates the resulting leading gap.
#[test]
fn retention_prunes_oldest_segments() {
    let trace = synth_trace(33, 2, 80);
    let base = tmp("keep");
    let mut w = RotatingWriter::create(
        &base,
        &trace.program,
        StoreOptions { chunk_events: 8 },
        RotationPolicy::by_events(40),
        RetentionPolicy::keep_last(2),
    )
    .unwrap();
    w.set_functions(trace.functions.clone());
    for ev in &trace.events {
        w.append(ev).unwrap();
    }
    let stats = w.finish().unwrap();
    assert!(stats.deleted > 0, "retention must have retired segments");
    assert!(stats.segments.len() <= 2, "keep-last-2 on disk");
    let discovered = SegmentSet::discover(&base);
    assert_eq!(discovered, stats.segments);
    let mut set = SegmentSet::open(&base).unwrap();
    // Only the retained tail of the run is queryable; every retained
    // event exists in the source trace.
    let mut kept = 0usize;
    set.query(None, None, &mut |ev| {
        assert!(trace.events.contains(ev));
        kept += 1;
    })
    .unwrap();
    assert!(kept > 0 && kept < trace.events.len());
    for p in stats.segments.iter() {
        std::fs::remove_file(p).ok();
    }
}

/// A crash risks only the newest segment: sealed segments carry full
/// footers, so tearing the open one loses nothing that was rotated out.
#[test]
fn crash_loses_only_the_newest_segments_tail() {
    let trace = synth_trace(35, 2, 80);
    let base = tmp("crash-seg");
    let mut w = RotatingWriter::create(
        &base,
        &trace.program,
        StoreOptions { chunk_events: 8 },
        RotationPolicy::by_events(50),
        RetentionPolicy::default(),
    )
    .unwrap();
    w.set_functions(trace.functions.clone());
    for ev in &trace.events {
        w.append(ev).unwrap();
    }
    let stats = w.finish().unwrap();
    assert!(stats.segments.len() >= 2);

    // Tear the newest segment inside its last chunk's payload (as if
    // the process died mid-flush): that chunk and the footer are lost.
    let newest = stats.segments.last().unwrap();
    let last_chunk_end = {
        let r = StoreReader::open(newest).unwrap();
        r.chunks()
            .iter()
            .map(|m| m.offset + CHUNK_HDR + m.enc_len as u64)
            .max()
            .unwrap()
    };
    let mut f = std::fs::OpenOptions::new()
        .write(true)
        .open(newest)
        .unwrap();
    f.set_len(last_chunk_end - 5).unwrap();
    f.flush().unwrap();
    drop(f);

    // Sealed segments open plainly; the family salvages as a whole.
    for p in &stats.segments[..stats.segments.len() - 1] {
        StoreReader::open(p).unwrap();
    }
    assert!(StoreReader::open(newest).is_err());
    let mut newest_r = StoreReader::open_salvage(newest).unwrap();
    let newest_events = newest_r.read_all().unwrap().events.len();

    let mut set = SegmentSet::open_salvage(&base).unwrap();
    let mut total = 0usize;
    set.query(None, None, &mut |_| total += 1).unwrap();
    let sealed_events: usize = stats.segments[..stats.segments.len() - 1]
        .iter()
        .map(|p| StoreReader::open(p).unwrap().info().events as usize)
        .sum();
    assert_eq!(total, sealed_events + newest_events);
    assert!(total < trace.events.len(), "the torn tail was dropped");
    assert!(
        set.salvage().is_some(),
        "the family reports the newest member's salvage"
    );
    for p in stats.segments.iter() {
        std::fs::remove_file(p).ok();
    }
}

// ---- satellite 5 groundwork: obs counters ---------------------------

/// The new observability counters fire: `chunks_salvaged` on salvage,
/// `chunks_bad_crc` + `events_lost` on degraded reads, and
/// `segments_rotated` on rotation.
#[test]
fn obs_counters_cover_salvage_corruption_and_rotation() {
    let _gate = OBS_GATE.lock().unwrap();
    obs::reset();
    obs::set_enabled(true);

    let trace = synth_trace(39, 2, 40);
    let path = tmp("obs-salvage");
    write_store_from_trace(&trace, &path, StoreOptions { chunk_events: 8 }).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let reference = StoreReader::open(&path).unwrap();
    let last_end = reference
        .chunks()
        .iter()
        .map(|m| m.offset + CHUNK_HDR + m.enc_len as u64)
        .max()
        .unwrap() as usize;
    let chunk0 = reference.chunks()[0];
    drop(reference);

    // Salvage a footer-less copy.
    std::fs::write(&path, &bytes[..last_end]).unwrap();
    let r = StoreReader::open_salvage(&path).unwrap();
    assert!(obs::counter("analysis.chunks_salvaged").get() > 0);
    drop(r);

    // Degraded read over a corrupt chunk.
    let mut bad = bytes.clone();
    bad[chunk0.offset as usize + CHUNK_HDR as usize] ^= 0xff;
    std::fs::write(&path, &bad).unwrap();
    let mut r = StoreReader::open(&path).unwrap();
    r.set_degraded(true);
    r.read_all().unwrap();
    assert_eq!(obs::counter("analysis.chunks_bad_crc").get(), 1);
    assert_eq!(
        obs::counter("analysis.events_lost").get(),
        chunk0.count as u64
    );
    drop(r);
    std::fs::remove_file(&path).ok();

    // Rotation.
    let base = tmp("obs-rot");
    let mut w = RotatingWriter::create(
        &base,
        "obs",
        StoreOptions { chunk_events: 8 },
        RotationPolicy::by_events(30),
        RetentionPolicy::default(),
    )
    .unwrap();
    w.set_functions(trace.functions.clone());
    for ev in &trace.events {
        w.append(ev).unwrap();
    }
    let stats = w.finish().unwrap();
    assert_eq!(
        obs::counter("analysis.segments_rotated").get(),
        stats.rotated as u64
    );
    for p in stats.segments.iter() {
        std::fs::remove_file(p).ok();
    }

    obs::set_enabled(false);
    obs::reset();
}
