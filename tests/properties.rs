//! Property-based tests over the core data structures and invariants.
//!
//! Each property is exercised over a few hundred randomized cases driven
//! by the simulator's own deterministic [`SimRng`] (no external
//! property-testing framework is available in this build environment), so
//! failures reproduce exactly from the fixed seeds below.

use std::sync::Arc;

use dynprof::dpcl::{BackoffSchedule, DpclClient, DpclSystem};
use dynprof::image::{FunctionInfo, ImageBuilder, ProbePoint, Snippet};
use dynprof::mpi::{launch, JobSpec};
use dynprof::omp::Schedule;
use dynprof::sim::rng::SimRng;
use dynprof::sim::SimTime;
use dynprof::sim::{Machine, Sim};
use dynprof::vt::{ConfigDelta, Event, Trace, VtConfig, VtFuncId};

fn rng(stream: u64) -> SimRng {
    SimRng::new(0xD15C_0B5E, stream)
}

/// A random identifier `[a-z][a-z0-9_]*` of length in `min..=max`.
fn ident(r: &mut SimRng, min: usize, max: usize) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let len = min + r.gen_index(max - min + 1);
    let mut s = String::with_capacity(len.max(1));
    s.push(FIRST[r.gen_index(FIRST.len())] as char);
    while s.len() < len.max(1) {
        s.push(REST[r.gen_index(REST.len())] as char);
    }
    s
}

fn arb_time(r: &mut SimRng) -> SimTime {
    SimTime::from_nanos(r.gen_range_u64(0..=u64::MAX / 4))
}

fn arb_event(r: &mut SimRng) -> Event {
    let t = arb_time(r);
    let rank = r.next_u64() as u32;
    let thread = r.next_u64() as u16;
    let func = VtFuncId(r.next_u64() as u32);
    match r.gen_index(8) {
        0 => Event::FuncEnter {
            t,
            rank,
            thread,
            func,
        },
        1 => Event::FuncExit {
            t,
            rank,
            thread,
            func,
        },
        2 => Event::FuncBatch {
            t,
            rank,
            thread,
            func,
            count: r.gen_range_u64(1..=1 << 40),
            span: SimTime::from_nanos(r.gen_range_u64(0..=(1 << 40) - 1)),
        },
        3 => Event::MpiCall {
            t,
            t_end: t + SimTime::from_nanos(r.gen_range_u64(0..=(1 << 40) - 1)),
            rank,
            op: r.gen_index(11) as u8,
            peer: r.next_u64() as i32,
            bytes: r.next_u64(),
        },
        4 => Event::OmpFork {
            t,
            rank,
            region: r.next_u64() as u32,
            team: thread,
        },
        5 => Event::OmpThread {
            t,
            t_end: t + SimTime::from_nanos(r.gen_range_u64(0..=(1 << 40) - 1)),
            rank,
            thread,
            region: r.next_u64() as u32,
        },
        6 => Event::FuncSuppressed {
            t,
            rank,
            thread,
            func,
            count: r.gen_range_u64(1..=1 << 40),
            span: SimTime::from_nanos(r.gen_range_u64(0..=(1 << 40) - 1)),
        },
        _ => Event::ConfSync {
            t,
            rank,
            epoch: r.next_u64() as u32,
        },
    }
}

/// Binary trace encoding round-trips for arbitrary event sequences.
#[test]
fn trace_encode_decode_round_trip() {
    let mut r = rng(1);
    for _ in 0..200 {
        let trace = Trace {
            program: if r.gen_index(4) == 0 {
                String::new()
            } else {
                ident(&mut r, 1, 24)
            },
            functions: (0..r.gen_index(20)).map(|_| ident(&mut r, 1, 40)).collect(),
            events: (0..r.gen_index(200)).map(|_| arb_event(&mut r)).collect(),
        };
        let decoded = Trace::decode(trace.encode()).expect("decode");
        assert_eq!(decoded, trace);
    }
}

/// Configuration render/parse round-trips semantically: every queried
/// name resolves identically before and after.
#[test]
fn config_render_parse_round_trip() {
    let mut r = rng(2);
    for _ in 0..200 {
        let mut cfg = if r.gen_index(2) == 0 {
            VtConfig::all_on()
        } else {
            VtConfig::all_off()
        };
        for _ in 0..r.gen_index(12) {
            let name = ident(&mut r, 1, 13);
            let on = r.gen_index(2) == 0;
            cfg.exact.insert(name, on);
        }
        for _ in 0..r.gen_index(6) {
            let p = ident(&mut r, 1, 7);
            let on = r.gen_index(2) == 0;
            // Deduplicate: the render order of duplicate prefixes is not
            // defined, so keep last-write-wins semantics explicit.
            cfg.prefixes.retain(|(q, _)| q != &p);
            cfg.prefixes.push((p, on));
        }
        let queries: Vec<String> = (0..r.gen_index(24)).map(|_| ident(&mut r, 1, 15)).collect();
        let reparsed = VtConfig::parse(&cfg.render()).expect("parse");
        for q in &queries {
            assert_eq!(reparsed.resolve(q), cfg.resolve(q), "query {q}");
        }
        for n in cfg.exact.keys() {
            assert_eq!(reparsed.resolve(n), cfg.resolve(n));
        }
    }
}

/// Applying a Set delta makes exactly the named symbols resolve to the
/// requested state (for non-prefix, non-default names).
#[test]
fn config_delta_set_is_effective() {
    let mut r = rng(3);
    for _ in 0..200 {
        let names: std::collections::BTreeSet<String> = (0..1 + r.gen_index(7))
            .map(|_| ident(&mut r, 3, 11))
            .collect();
        let on = r.gen_index(2) == 0;
        let mut cfg = if on {
            VtConfig::all_off()
        } else {
            VtConfig::all_on()
        };
        let delta = ConfigDelta::Set(names.iter().map(|n| (n.clone(), on)).collect());
        cfg.apply(&delta);
        for n in &names {
            assert_eq!(cfg.resolve(n), on);
        }
    }
}

/// Static schedules partition any iteration space exactly: every index
/// executed once, regardless of thread count or chunking.
#[test]
fn static_schedules_partition_exactly() {
    let mut r = rng(4);
    for _ in 0..300 {
        let start = r.gen_index(1000);
        let len = r.gen_index(500);
        let nthreads = 1 + r.gen_index(16);
        let chunk = r.gen_index(9);
        let sched = Schedule::Static { chunk };
        let range = start..start + len;
        let mut seen = vec![0u32; len];
        for tid in 0..nthreads {
            for c in sched.static_chunks(range.clone(), tid, nthreads) {
                for i in c {
                    assert!(i >= start && i < start + len, "index {i} out of range");
                    seen[i - start] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "not a partition: {seen:?}");
    }
}

/// 3-D decompositions multiply out exactly and order their factors.
#[test]
fn decomp3_is_exact() {
    for p in 1usize..512 {
        let d = dynprof::apps::workload::Decomp3::new(p);
        assert_eq!(d.px * d.py * d.pz, p);
        assert!(d.px >= d.py && d.py >= d.pz);
        // Coordinates round-trip for every rank.
        for rk in 0..p {
            let (x, y, z) = d.coords(rk);
            assert_eq!(d.rank_at(x as isize, y as isize, z as isize), Some(rk));
        }
    }
}

/// Online statistics match the naive definitions.
#[test]
fn online_stats_match_naive() {
    let mut r = rng(5);
    for _ in 0..200 {
        let xs: Vec<f64> = (0..1 + r.gen_index(59))
            .map(|_| (r.gen_f64() - 0.5) * 2e6)
            .collect();
        let mut s = dynprof::sim::OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), min);
        assert_eq!(s.max(), max);
        if xs.len() > 1 {
            let var =
                xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
            assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        }
    }
}

/// MPI collectives agree with sequential oracles for arbitrary inputs
/// and rank counts (exercised end-to-end through the simulator).
#[test]
fn mpi_collectives_match_oracle() {
    let mut r = rng(6);
    for case in 0..24 {
        let n = 1 + r.gen_index(8);
        let root = r.gen_index(n);
        let values: Vec<u64> = (0..n).map(|_| r.gen_range_u64(0..=(1 << 30) - 1)).collect();
        let seed = r.gen_range_u64(0..=999);
        let values = Arc::new(values);
        let results = Arc::new(std::sync::Mutex::new(std::collections::BTreeMap::<
            usize,
            (u64, u64, Vec<u64>, u64),
        >::new()));
        let sim = Sim::virtual_time(Machine::test_machine(), seed);
        let (v2, r2) = (Arc::clone(&values), Arc::clone(&results));
        launch(&sim, JobSpec::new("prop", n), vec![], move |p, c| {
            c.init(p);
            let mine = v2[c.rank()];
            let sum = c.allreduce(p, mine, |a, b| a.wrapping_add(b));
            let maxv = c.bcast(
                p,
                root,
                (c.rank() == root).then(|| *v2.iter().max().unwrap()),
            );
            let gathered = c.allgather(p, mine);
            let prefix = c.scan(p, mine, |a, b| a.wrapping_add(b));
            r2.lock()
                .unwrap()
                .insert(c.rank(), (sum, maxv, gathered, prefix));
            c.finalize(p);
        });
        sim.run();
        let results = results.lock().unwrap();
        let oracle_sum: u64 = values.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        let oracle_max = *values.iter().max().unwrap();
        for (rank, (sum, maxv, gathered, prefix)) in results.iter() {
            assert_eq!(*sum, oracle_sum, "allreduce on rank {rank} (case {case})");
            assert_eq!(*maxv, oracle_max, "bcast on rank {rank} (case {case})");
            assert_eq!(gathered.as_slice(), &values[..], "allgather on rank {rank}");
            let oracle_prefix: u64 = values[..=*rank]
                .iter()
                .fold(0u64, |a, &b| a.wrapping_add(b));
            assert_eq!(*prefix, oracle_prefix, "scan on rank {rank} (case {case})");
        }
    }
}

/// Alltoall is a transpose for arbitrary square payload matrices.
#[test]
fn mpi_alltoall_transposes() {
    let mut r = rng(7);
    for _ in 0..12 {
        let n = 1 + r.gen_index(6);
        let seed = r.gen_range_u64(0..=99);
        let results = Arc::new(std::sync::Mutex::new(vec![Vec::new(); n]));
        let sim = Sim::virtual_time(Machine::test_machine(), seed);
        let r2 = Arc::clone(&results);
        launch(&sim, JobSpec::new("a2a", n), vec![], move |p, c| {
            c.init(p);
            let me = c.rank() as u64;
            let send: Vec<u64> = (0..c.size() as u64).map(|i| me * 1000 + i).collect();
            let recv = c.alltoall(p, send);
            r2.lock().unwrap()[c.rank()] = recv;
            c.finalize(p);
        });
        sim.run();
        let results = results.lock().unwrap();
        for (rk, row) in results.iter().enumerate() {
            for (s, v) in row.iter().enumerate() {
                assert_eq!(*v, s as u64 * 1000 + rk as u64);
            }
        }
    }
}

/// The retry backoff schedule is monotone non-decreasing, bounded by
/// `cap + cap/4` (cap plus maximum jitter), starts at `base` or above,
/// and is a pure function of its seed.
#[test]
fn backoff_schedule_is_monotone_bounded_deterministic() {
    let mut r = rng(9);
    let mut seeds_diverged = 0usize;
    for _ in 0..200 {
        let base = SimTime::from_nanos(1 + r.gen_range_u64(0..=100_000_000));
        let cap = SimTime::from_nanos(base.as_nanos() + r.gen_range_u64(0..=3_000_000_000));
        let seed = r.next_u64();
        let mut a = BackoffSchedule::new(base, cap, seed);
        let mut b = BackoffSchedule::new(base, cap, seed);
        let mut c = BackoffSchedule::new(base, cap, seed ^ 0x5eed);
        let mut prev = SimTime::ZERO;
        let mut c_differs = false;
        for i in 0..12 {
            let d = a.next_delay();
            assert_eq!(d, b.next_delay(), "same seed must replay identically");
            c_differs |= d != c.next_delay();
            assert!(d >= base, "delay {i} below base: {d:?} < {base:?}");
            assert!(d >= prev, "delay {i} not monotone: {d:?} < {prev:?}");
            assert!(
                d.as_nanos() <= cap.as_nanos() + cap.as_nanos() / 4,
                "delay {i} above cap+jitter: {d:?} (cap {cap:?})"
            );
            prev = d;
        }
        seeds_diverged += c_differs as usize;
    }
    // Jitter must actually depend on the seed (a handful of ties among
    // 200 cases is fine; zero divergence means the seed is ignored).
    assert!(seeds_diverged > 150, "only {seeds_diverged}/200 diverged");
}

/// Resending an already-acked request is a no-op: the client refuses
/// (the pending entry is gone) and the target image state is unchanged.
#[test]
fn resend_after_ack_is_noop() {
    let mut r = rng(10);
    for _ in 0..20 {
        let seed = r.gen_range_u64(0..=9999);
        let sim = Sim::virtual_time(Machine::test_machine(), seed);
        let system = DpclSystem::new(["u"]);
        let mut b = ImageBuilder::new("t");
        let f = b.add(FunctionInfo::new("hot"));
        let image = Arc::new(b.build());
        let img2 = Arc::clone(&image);
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "u");
            let h = client.attach(p, 1, Arc::clone(&img2), "t").unwrap();
            let req = client.install_probe(p, &h, ProbePoint::entry(f), Snippet::noop("n"));
            assert!(client.wait_ack(p, req).is_ok());
            let patches = img2.patch_count();
            assert!(img2.occupied(ProbePoint::entry(f)));
            // Acked: the pending entry is gone, so a resend is refused...
            assert!(!client.resend_pending(p, req));
            p.sleep(SimTime::from_secs(1));
            // ...and nothing was re-applied.
            assert_eq!(img2.patch_count(), patches);
            client.shutdown(p);
        });
        sim.run();
    }
}

/// Duplicate delivery of an in-flight request applies exactly once: the
/// daemon's dedup table re-acks the stored result instead of re-running
/// the install, for any number of duplicates.
#[test]
fn duplicate_in_flight_request_applies_once() {
    let mut r = rng(11);
    for _ in 0..20 {
        let seed = r.gen_range_u64(0..=9999);
        let dups = 1 + r.gen_index(4);
        let sim = Sim::virtual_time(Machine::test_machine(), seed);
        let system = DpclSystem::new(["u"]);
        let mut b = ImageBuilder::new("t");
        let f = b.add(FunctionInfo::new("hot"));
        let image = Arc::new(b.build());
        let img2 = Arc::clone(&image);
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "u");
            let h = client.attach(p, 1, Arc::clone(&img2), "t").unwrap();
            let req = client.install_probe(p, &h, ProbePoint::entry(f), Snippet::noop("n"));
            // Still in flight: duplicates are accepted for (re)send.
            for _ in 0..dups {
                assert!(client.resend_pending(p, req));
            }
            assert!(client.wait_ack(p, req).is_ok());
            // Let the duplicate acks drain, then check single application:
            // one base-jump patch plus one mini-trampoline store, and
            // exactly one snippet chained at the point.
            p.sleep(SimTime::from_secs(1));
            assert_eq!(img2.patch_count(), 2, "install applied more than once");
            assert!(img2.occupied(ProbePoint::entry(f)));
            assert_eq!(img2.remove_function_instr(f), 1);
            client.shutdown(p);
        });
        sim.run();
    }
}

/// SimTime display/convert invariants.
#[test]
fn simtime_conversions() {
    let mut r = rng(8);
    for _ in 0..500 {
        let ns = r.gen_range_u64(0..=u64::MAX / 2 - 1);
        let t = SimTime::from_nanos(ns);
        assert_eq!(t.as_nanos(), ns);
        assert_eq!(t.as_micros(), ns / 1_000);
        assert!(t.max(SimTime::ZERO) == t);
        assert!(t.saturating_sub(t) == SimTime::ZERO);
        let secs = t.as_secs_f64();
        assert!(
            (SimTime::from_secs_f64(secs).as_nanos() as i128 - ns as i128).abs()
                <= (1 + ns / 1_000_000_000) as i128 * 200
        );
    }
}

/// A deterministic mixed workload exercising every scheduler path the
/// engine has: cross-process channel wakes (jittered latencies), barrier
/// release storms, a gate broadcast, deadline receives (some of which
/// time out, arming and cancelling timers), and self-wakes via `sleep`.
/// Returns the exact dispatch sequence `(pid, resumed-clock-ns)` plus the
/// run's event count and horizon. Runs on `backend` so the recorded
/// oracle pins both the threaded and the coroutine scheduler.
fn scheduler_trace(seed: u64, backend: dynprof::sim::ProcBackend) -> (Vec<(usize, u64)>, u64, u64) {
    use dynprof::sim::sync::{SimBarrier, SimChannel, SimGate};
    const N: usize = 8;
    const ROUNDS: usize = 12;
    let sim = Sim::virtual_time_with_backend(Machine::test_machine(), seed, backend);
    let log = sim.record_dispatches();
    let stats = sim.stats();
    let chans: Vec<Arc<SimChannel<u32>>> = (0..N).map(|_| Arc::new(SimChannel::new())).collect();
    let bar = Arc::new(SimBarrier::new(N, SimTime::from_nanos(300)));
    let gate = Arc::new(SimGate::new());
    for i in 0..N {
        let chans = chans.clone();
        let bar = Arc::clone(&bar);
        let gate = Arc::clone(&gate);
        sim.spawn(format!("mix{i}"), i % 4, move |p| {
            if i == 0 {
                p.advance(SimTime::from_micros(3));
                gate.open(p, SimTime::from_nanos(500));
            } else {
                gate.wait_open(p);
            }
            for r in 0..ROUNDS {
                p.advance(p.jitter(SimTime::from_micros(1)) + SimTime::from_nanos(10));
                let lat = SimTime::from_nanos(200 + p.jitter(SimTime::from_micros(2)).as_nanos());
                chans[(i + 1) % N].send(p, (i * ROUNDS + r) as u32, lat);
                if r % 3 == 2 {
                    bar.wait(p);
                }
                if r % 4 == 1 {
                    // A deadline receive: depending on the jitter draw the
                    // message beats the deadline or the timer fires, so both
                    // timer outcomes appear across seeds and rounds.
                    let deadline = p.now() + p.jitter(SimTime::from_micros(3));
                    let _ = chans[i].recv_match_deadline(p, |_| true, deadline);
                } else {
                    let _ = chans[i].recv(p);
                }
                if r % 5 == 0 {
                    p.sleep(p.jitter(SimTime::from_micros(2)) + SimTime::from_nanos(1));
                }
            }
        });
    }
    let horizon = sim.run();
    let entries = log
        .entries()
        .iter()
        .map(|&(pid, t)| (pid, t.as_nanos()))
        .collect();
    (entries, stats.events_dispatched(), horizon.as_nanos())
}

/// Render a scheduler trace in the golden-file format: header lines with
/// the event count and horizon, then one `pid time_ns` line per dispatch.
fn render_trace(entries: &[(usize, u64)], events: u64, horizon: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "events {events}");
    let _ = writeln!(out, "horizon_ns {horizon}");
    for (pid, t) in entries {
        let _ = writeln!(out, "{pid} {t}");
    }
    out
}

/// The dispatch order of the mixed workload must match the recorded
/// oracle in `tests/golden/` exactly — same `(pid, time)` sequence, same
/// event count, same horizon. The goldens were recorded under the
/// hub-and-spoke scheduler (every dispatch routed through the `run()`
/// thread), so this test is the acceptance oracle for the direct-handoff
/// rewrite: any reordering, lost wake, or tie-break change shows up as a
/// first-divergence diff. Regenerate (only with cause) via
/// `UPDATE_GOLDENS=1 cargo test --test properties dispatch_order`.
#[test]
fn dispatch_order_matches_recorded_oracle() {
    use dynprof::sim::ProcBackend;
    for seed in [1u64, 7, 42] {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join(format!("tests/golden/dispatch_seed{seed}.txt"));
        if std::env::var("UPDATE_GOLDENS").is_ok() {
            // Regenerate from the oracle backend (threads — the scheduler
            // the goldens were first recorded under).
            let (entries, events, horizon) = scheduler_trace(seed, ProcBackend::Threads);
            let actual = render_trace(&entries, events, horizon);
            std::fs::write(&path, &actual).expect("write golden dispatch log");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with UPDATE_GOLDENS=1 to record",
                path.display()
            )
        });
        for backend in [ProcBackend::Threads, ProcBackend::Coroutine] {
            let (entries, events, horizon) = scheduler_trace(seed, backend);
            assert_eq!(
                entries.len() as u64,
                events,
                "dispatch log length vs events_dispatched (seed {seed}, {backend:?})"
            );
            let actual = render_trace(&entries, events, horizon);
            if actual != expected {
                let a: Vec<&str> = actual.lines().collect();
                let b: Vec<&str> = expected.lines().collect();
                let first = a
                    .iter()
                    .zip(&b)
                    .position(|(x, y)| x != y)
                    .unwrap_or(a.len().min(b.len()));
                panic!(
                    "dispatch order diverged from recorded oracle (seed {seed}, {backend:?}) \
                     at line {}: actual {:?} vs expected {:?} ({} vs {} lines)",
                    first + 1,
                    a.get(first),
                    b.get(first),
                    a.len(),
                    b.len()
                );
            }
        }
    }
}

/// Scheduler determinism: two in-process runs of the same seeded workload
/// produce identical dispatch sequences (on either backend — and the
/// backends agree with each other), and a different seed diverges.
#[test]
fn dispatch_order_is_deterministic_across_runs() {
    use dynprof::sim::ProcBackend;
    for backend in [ProcBackend::Threads, ProcBackend::Coroutine] {
        assert_eq!(scheduler_trace(1, backend), scheduler_trace(1, backend));
        assert_ne!(scheduler_trace(1, backend), scheduler_trace(2, backend));
    }
    assert_eq!(
        scheduler_trace(3, ProcBackend::Threads),
        scheduler_trace(3, ProcBackend::Coroutine)
    );
}

/// One adaptive sweep3d session for the overhead-controller properties:
/// a probe-dense scaling of the workload (the regime where the controller
/// has real work to do), 4 ranks, one confsync epoch per iteration.
fn controller_session(
    settings: dynprof::core::AdaptiveSettings,
    seed: u64,
    iterations: usize,
) -> Arc<dynprof::vt::OverheadController> {
    use dynprof::apps::{sweep3d, Sweep3dParams};
    use dynprof::core::{run_session, SessionConfig};
    let params = Sweep3dParams {
        global_n: 16,
        k_block: 1,
        angle_groups: 4,
        iterations,
        omp_threads: 1,
        scale: 0.001,
        outputs: dynprof::apps::workload::Outputs::new(),
    };
    let cfg = SessionConfig::new(Machine::test_machine(), dynprof::vt::Policy::Full)
        .with_seed(seed)
        .with_adaptive(settings);
    run_session(&sweep3d(4, params), cfg)
        .controller
        .expect("controller attached")
}

/// For any seed and any achievable budget, measured overhead converges to
/// at most the budget within 4 confsync epochs and (with re-probing off)
/// stays there for the rest of the run.
#[test]
fn controller_converges_for_any_seed_and_budget() {
    for seed in [1u64, 5, 9] {
        for budget in [4.0f64, 6.0, 12.0] {
            let settings = dynprof::core::AdaptiveSettings {
                budget_pct: budget,
                reprobe_every: 0,
            };
            let ctrl = controller_session(settings, seed, 6);
            let measured = ctrl.measured_series();
            // Sustained convergence: from some epoch on, every measurement
            // is within budget (a single early under-budget epoch before
            // the workload's steady state kicks in does not count).
            let converged_at = measured
                .iter()
                .rposition(|&pct| pct > budget)
                .map_or(0, |last_over| last_over + 1);
            assert!(
                converged_at < 4 && converged_at < measured.len(),
                "seed {seed} budget {budget}%: no sustained convergence within 4 epochs: \
                 {measured:?}"
            );
        }
    }
}

/// The deactivation order is a pure function of observed statistics: two
/// runs with the same seed produce byte-identical decision logs, and a
/// longer run's decisions are an exact prefix-extension of a shorter
/// run's (the extra epochs cannot rewrite history).
#[test]
fn controller_deactivation_order_is_deterministic() {
    let settings = dynprof::core::AdaptiveSettings {
        budget_pct: 5.0,
        reprobe_every: 4,
    };
    let log_a = controller_session(settings, 3, 6).decision_log();
    let log_b = controller_session(settings, 3, 6).decision_log();
    assert_eq!(log_a, log_b, "same seed must replay identically");
    let log_long = controller_session(settings, 3, 8).decision_log();
    assert!(
        log_long.starts_with(&log_a),
        "longer run must extend, not rewrite, the decision sequence:\n\
         short:\n{log_a}\nlong:\n{log_long}"
    );
}

// ---------------------------------------------------------------------------
// Snippet IR: derived cost bounds and compile/fire round trips
// ---------------------------------------------------------------------------

use dynprof::image::{
    BinOp, CtxField, Expr, FuncId, IntrinsicTable, ProbeCtx, ProbePointKind, SnippetProgram, Stmt,
};
use dynprof::sim::Proc;

/// A random expression whose `Load`s stay inside `slots` (so generated
/// programs always verify).
fn arb_expr(r: &mut SimRng, slots: usize, depth: usize) -> Expr {
    match if depth == 0 {
        r.gen_index(3)
    } else {
        r.gen_index(4)
    } {
        0 => Expr::Const(r.gen_range_u64(0..=1000) as i64),
        1 => Expr::Ctx(
            [
                CtxField::Rank,
                CtxField::Thread,
                CtxField::FuncIndex,
                CtxField::Reps,
                CtxField::IsEntry,
            ][r.gen_index(5)],
        ),
        2 => Expr::load(r.gen_index(slots) as i64),
        _ => Expr::bin(
            [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max][r.gen_index(5)],
            arb_expr(r, slots, depth - 1),
            arb_expr(r, slots, depth - 1),
        ),
    }
}

/// A random timer-free block: stores and emits stay in bounds, loops are
/// statically bounded, branches are balanced by construction. Timer
/// pairs are added only at the top level (see [`arb_program`]) so every
/// path is trivially balanced and no emit can follow a stop.
fn arb_block(r: &mut SimRng, slots: usize, depth: usize) -> Vec<Stmt> {
    let n = 1 + r.gen_index(3);
    let mut body = Vec::with_capacity(n);
    for _ in 0..n {
        body.push(
            match if depth == 0 {
                r.gen_index(2)
            } else {
                r.gen_index(4)
            } {
                0 => Stmt::Store {
                    slot: Expr::Const(r.gen_index(slots) as i64),
                    value: arb_expr(r, slots, 2),
                },
                1 => Stmt::Emit {
                    tag: r.next_u64() as u32,
                    value: arb_expr(r, slots, 1),
                },
                2 => Stmt::Loop {
                    trips: Expr::Const(r.gen_index(9) as i64),
                    body: arb_block(r, slots, depth - 1),
                },
                _ => Stmt::If {
                    cond: arb_expr(r, slots, 1),
                    then_body: arb_block(r, slots, depth - 1),
                    else_body: arb_block(r, slots, depth - 1),
                },
            },
        );
    }
    body
}

/// A random well-formed snippet program, optionally wrapped in one
/// top-level timer pair.
fn arb_program(r: &mut SimRng, case: usize) -> Arc<SnippetProgram> {
    let slots = 1 + r.gen_index(4);
    let mut body = arb_block(r, slots, 2);
    if r.gen_index(2) == 0 {
        body.insert(0, Stmt::StartTimer);
        body.push(Stmt::StopTimer);
    }
    SnippetProgram::new(format!("arb_{case}"), slots, body, IntrinsicTable::empty())
}

fn probe_ctx<'a>(p: &'a Proc, reps: u64) -> ProbeCtx<'a> {
    ProbeCtx {
        proc: p,
        rank: 0,
        thread: 0,
        func: FuncId(0),
        name: "f",
        point: ProbePointKind::Entry,
        reps,
    }
}

/// The verifier's derived worst-case cost dominates the interpreter's
/// actual virtual-time charge on every generated program, for any reps.
#[test]
fn derived_cost_bounds_observed_cost() {
    let mut r = rng(23);
    let programs: Vec<_> = (0..150).map(|case| arb_program(&mut r, case)).collect();
    let reps_seed = r.next_u64();
    let sim = Sim::virtual_time(Machine::test_machine(), 11);
    sim.spawn("p", 0, move |p| {
        let mut r = SimRng::new(0xD15C_0B5E, reps_seed);
        for prog in &programs {
            let report = prog.verify();
            assert!(
                report.ok(),
                "{}: generated program must verify: {report}",
                prog.name
            );
            let snippet = prog.compile().expect("verified program compiles");
            assert_eq!(snippet.derived_cost, Some(report.derived_cost));
            let reps = 1 + r.gen_range_u64(0..=3);
            let t0 = p.now();
            (snippet.code)(&probe_ctx(p, reps));
            let observed = p.now().saturating_sub(t0);
            assert!(
                observed <= report.derived_cost * reps,
                "{}: observed {observed} exceeds derived bound {} x reps {reps}",
                prog.name,
                report.derived_cost
            );
        }
    });
    sim.run();
}

/// Two independent compiles of the same program, fired with the same
/// context sequence, land in identical runtime states — and the counting
/// idiom's fused fast path agrees with a hand-written closure oracle.
#[test]
fn compile_fire_round_trip_is_deterministic() {
    let mut r = rng(29);
    let programs: Vec<_> = (0..60).map(|case| arb_program(&mut r, case)).collect();
    let fire_seed = r.next_u64();
    let sim = Sim::virtual_time(Machine::test_machine(), 13);
    sim.spawn("p", 0, move |p| {
        let mut r = SimRng::new(0xD15C_0B5E, fire_seed);
        for prog in &programs {
            let (s1, st1) = prog.compile_with_state().expect("verifies");
            let (s2, st2) = prog.compile_with_state().expect("verifies");
            let fires: Vec<u64> = (0..3).map(|_| 1 + r.gen_range_u64(0..=4)).collect();
            // Interleave so both instances see the same clock readings
            // (StartTimer records `p.now()`; advancing between the two
            // copies would skew timer totals, not state equality).
            for &reps in &fires {
                let t0 = p.now();
                (s1.code)(&probe_ctx(p, reps));
                let after = p.now();
                // Replay the second copy from the same virtual instant.
                assert!(after >= t0);
                (s2.code)(&probe_ctx(p, reps));
            }
            let slots = (0..prog.region_slots)
                .map(|i| st1.slot(i))
                .collect::<Vec<_>>();
            let slots2 = (0..prog.region_slots)
                .map(|i| st2.slot(i))
                .collect::<Vec<_>>();
            assert_eq!(slots, slots2, "{}: slot state diverged", prog.name);
            assert_eq!(
                st1.emitted(),
                st2.emitted(),
                "{}: emits diverged",
                prog.name
            );
        }

        // Counting idiom vs hand-written closure oracle.
        let counter = SnippetProgram::new(
            "counter",
            1,
            vec![Stmt::Store {
                slot: Expr::Const(0),
                value: Expr::bin(BinOp::Add, Expr::load(0), Expr::Ctx(CtxField::Reps)),
            }],
            IntrinsicTable::empty(),
        );
        let (snippet, state) = counter.compile_with_state().expect("verifies");
        let mut oracle = 0i64;
        let mut r = SimRng::new(0xD15C_0B5E, 31);
        for _ in 0..200 {
            let reps = 1 + r.gen_range_u64(0..=100);
            (snippet.code)(&probe_ctx(p, reps));
            oracle = oracle.saturating_add(reps as i64);
        }
        assert_eq!(
            state.slot(0),
            oracle,
            "fused counter must match the closure oracle"
        );
    });
    sim.run();
}
