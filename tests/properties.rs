//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use std::sync::Arc;

use dynprof::mpi::{launch, JobSpec};
use dynprof::omp::Schedule;
use dynprof::sim::{Machine, Sim};
use dynprof::sim::SimTime;
use dynprof::vt::{ConfigDelta, Event, Trace, VtConfig, VtFuncId};

fn arb_event() -> impl Strategy<Value = Event> {
    let t = (0u64..u64::MAX / 4).prop_map(SimTime::from_nanos);
    prop_oneof![
        (t.clone(), any::<u32>(), any::<u16>(), any::<u32>()).prop_map(|(t, rank, thread, f)| {
            Event::FuncEnter {
                t,
                rank,
                thread,
                func: VtFuncId(f),
            }
        }),
        (t.clone(), any::<u32>(), any::<u16>(), any::<u32>()).prop_map(|(t, rank, thread, f)| {
            Event::FuncExit {
                t,
                rank,
                thread,
                func: VtFuncId(f),
            }
        }),
        (
            t.clone(),
            any::<u32>(),
            any::<u16>(),
            any::<u32>(),
            1u64..1 << 40,
            (0u64..1 << 40).prop_map(SimTime::from_nanos),
        )
            .prop_map(|(t, rank, thread, f, count, span)| Event::FuncBatch {
                t,
                rank,
                thread,
                func: VtFuncId(f),
                count,
                span,
            }),
        (
            t.clone(),
            (0u64..1 << 40).prop_map(SimTime::from_nanos),
            any::<u32>(),
            0u8..11,
            any::<i32>(),
            any::<u64>(),
        )
            .prop_map(|(t, dt, rank, op, peer, bytes)| Event::MpiCall {
                t,
                t_end: t + dt,
                rank,
                op,
                peer,
                bytes,
            }),
        (t.clone(), any::<u32>(), any::<u32>(), any::<u16>()).prop_map(|(t, rank, region, team)| {
            Event::OmpFork {
                t,
                rank,
                region,
                team,
            }
        }),
        (
            t.clone(),
            (0u64..1 << 40).prop_map(SimTime::from_nanos),
            any::<u32>(),
            any::<u16>(),
            any::<u32>(),
        )
            .prop_map(|(t, dt, rank, thread, region)| Event::OmpThread {
                t,
                t_end: t + dt,
                rank,
                thread,
                region,
            }),
        (t, any::<u32>(), any::<u32>()).prop_map(|(t, rank, epoch)| Event::ConfSync {
            t,
            rank,
            epoch
        }),
    ]
}

proptest! {
    /// Binary trace encoding round-trips for arbitrary event sequences.
    #[test]
    fn trace_encode_decode_round_trip(
        program in "[a-z0-9_]{0,24}",
        functions in prop::collection::vec("[a-zA-Z_][a-zA-Z0-9_]{0,40}", 0..20),
        events in prop::collection::vec(arb_event(), 0..200),
    ) {
        let trace = Trace { program, functions, events };
        let decoded = Trace::decode(trace.encode()).expect("decode");
        prop_assert_eq!(decoded, trace);
    }

    /// Configuration render/parse round-trips semantically: every queried
    /// name resolves identically before and after.
    #[test]
    fn config_render_parse_round_trip(
        default_on in any::<bool>(),
        exact in prop::collection::vec(("[a-z][a-z0-9_]{0,12}", any::<bool>()), 0..12),
        prefixes in prop::collection::vec(("[a-z][a-z0-9_]{0,6}", any::<bool>()), 0..6),
        queries in prop::collection::vec("[a-z][a-z0-9_]{0,14}", 0..24),
    ) {
        let mut cfg = if default_on { VtConfig::all_on() } else { VtConfig::all_off() };
        for (n, on) in &exact {
            cfg.exact.insert(n.clone(), *on);
        }
        for (p, on) in &prefixes {
            // Deduplicate: the render order of duplicate prefixes is not
            // defined, so keep last-write-wins semantics explicit.
            cfg.prefixes.retain(|(q, _)| q != p);
            cfg.prefixes.push((p.clone(), *on));
        }
        let reparsed = VtConfig::parse(&cfg.render()).expect("parse");
        for q in &queries {
            prop_assert_eq!(reparsed.resolve(q), cfg.resolve(q), "query {}", q);
        }
        for (n, _) in &exact {
            prop_assert_eq!(reparsed.resolve(n), cfg.resolve(n));
        }
    }

    /// Applying a Set delta makes exactly the named symbols resolve to the
    /// requested state (for non-prefix, non-default names).
    #[test]
    fn config_delta_set_is_effective(
        names in prop::collection::btree_set("[a-z][a-z0-9]{2,10}", 1..8),
        on in any::<bool>(),
    ) {
        let mut cfg = if on { VtConfig::all_off() } else { VtConfig::all_on() };
        let delta = ConfigDelta::Set(names.iter().map(|n| (n.clone(), on)).collect());
        cfg.apply(&delta);
        for n in &names {
            prop_assert_eq!(cfg.resolve(n), on);
        }
    }

    /// Static schedules partition any iteration space exactly: every index
    /// executed once, regardless of thread count or chunking.
    #[test]
    fn static_schedules_partition_exactly(
        start in 0usize..1000,
        len in 0usize..500,
        nthreads in 1usize..17,
        chunk in 0usize..9,
    ) {
        let sched = Schedule::Static { chunk };
        let range = start..start + len;
        let mut seen = vec![0u32; len];
        for tid in 0..nthreads {
            for c in sched.static_chunks(range.clone(), tid, nthreads) {
                for i in c {
                    prop_assert!(i >= start && i < start + len, "index {} out of range", i);
                    seen[i - start] += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "not a partition: {:?}", seen);
    }

    /// 3-D decompositions multiply out exactly and order their factors.
    #[test]
    fn decomp3_is_exact(p in 1usize..512) {
        let d = dynprof::apps::workload::Decomp3::new(p);
        prop_assert_eq!(d.px * d.py * d.pz, p);
        prop_assert!(d.px >= d.py && d.py >= d.pz);
        // Coordinates round-trip for every rank.
        for r in 0..p {
            let (x, y, z) = d.coords(r);
            prop_assert_eq!(d.rank_at(x as isize, y as isize, z as isize), Some(r));
        }
    }

    /// Online statistics match the naive definitions.
    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..60)) {
        let mut s = dynprof::sim::OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / (xs.len() - 1) as f64;
            prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        }
    }

    /// MPI collectives agree with sequential oracles for arbitrary inputs
    /// and rank counts (exercised end-to-end through the simulator).
    #[test]
    fn mpi_collectives_match_oracle(
        values in prop::collection::vec(0u64..1 << 30, 1..9),
        root in 0usize..8,
        seed in 0u64..1000,
    ) {
        let n = values.len();
        let root = root % n;
        let values = Arc::new(values);
        let results = Arc::new(std::sync::Mutex::new(
            std::collections::BTreeMap::<usize, (u64, u64, Vec<u64>, u64)>::new(),
        ));
        let sim = Sim::virtual_time(Machine::test_machine(), seed);
        let (v2, r2) = (Arc::clone(&values), Arc::clone(&results));
        launch(&sim, JobSpec::new("prop", n), vec![], move |p, c| {
            c.init(p);
            let mine = v2[c.rank()];
            let sum = c.allreduce(p, mine, |a, b| a.wrapping_add(b));
            let maxv = c.bcast(
                p,
                root,
                (c.rank() == root).then(|| *v2.iter().max().unwrap()),
            );
            let gathered = c.allgather(p, mine);
            let prefix = c.scan(p, mine, |a, b| a.wrapping_add(b));
            r2.lock().unwrap().insert(c.rank(), (sum, maxv, gathered, prefix));
            c.finalize(p);
        });
        sim.run();
        let results = results.lock().unwrap();
        let oracle_sum: u64 = values.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        let oracle_max = *values.iter().max().unwrap();
        for (rank, (sum, maxv, gathered, prefix)) in results.iter() {
            prop_assert_eq!(*sum, oracle_sum, "allreduce on rank {}", rank);
            prop_assert_eq!(*maxv, oracle_max, "bcast on rank {}", rank);
            prop_assert_eq!(gathered.as_slice(), &values[..], "allgather on rank {}", rank);
            let oracle_prefix: u64 = values[..=*rank]
                .iter()
                .fold(0u64, |a, &b| a.wrapping_add(b));
            prop_assert_eq!(*prefix, oracle_prefix, "scan on rank {}", rank);
        }
    }

    /// Alltoall is a transpose for arbitrary square payload matrices.
    #[test]
    fn mpi_alltoall_transposes(n in 1usize..7, seed in 0u64..100) {
        let results = Arc::new(std::sync::Mutex::new(vec![Vec::new(); n]));
        let sim = Sim::virtual_time(Machine::test_machine(), seed);
        let r2 = Arc::clone(&results);
        launch(&sim, JobSpec::new("a2a", n), vec![], move |p, c| {
            c.init(p);
            let me = c.rank() as u64;
            let send: Vec<u64> = (0..c.size() as u64).map(|i| me * 1000 + i).collect();
            let recv = c.alltoall(p, send);
            r2.lock().unwrap()[c.rank()] = recv;
            c.finalize(p);
        });
        sim.run();
        let results = results.lock().unwrap();
        for (r, row) in results.iter().enumerate() {
            for (s, v) in row.iter().enumerate() {
                prop_assert_eq!(*v, s as u64 * 1000 + r as u64);
            }
        }
    }

    /// SimTime display/convert invariants.
    #[test]
    fn simtime_conversions(ns in 0u64..u64::MAX / 2) {
        let t = SimTime::from_nanos(ns);
        prop_assert_eq!(t.as_nanos(), ns);
        prop_assert_eq!(t.as_micros(), ns / 1_000);
        prop_assert!(t.max(SimTime::ZERO) == t);
        prop_assert!(t.saturating_sub(t) == SimTime::ZERO);
        let secs = t.as_secs_f64();
        prop_assert!((SimTime::from_secs_f64(secs).as_nanos() as i128 - ns as i128).abs()
            <= (1 + ns / 1_000_000_000) as i128 * 200);
    }
}
