//! End-to-end dynprof sessions across all four kernels.

use dynprof::apps::test_app;
use dynprof::core::{run_session, Command, SessionConfig};
use dynprof::sim::{Machine, SimTime};
use dynprof::vt::{Event, Policy};

fn dynamic_session(app_name: &str, cpus: usize) -> dynprof::core::SessionReport {
    let app = test_app(app_name, cpus).expect("known app");
    run_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic).with_seed(3),
    )
}

#[test]
fn dynamic_sessions_run_on_every_kernel() {
    for (name, cpus, procs, subset) in [
        ("smg98", 4, 4, 62),
        ("sppm", 4, 4, 7),
        ("sweep3d", 4, 4, 21),
        ("umt98", 4, 1, 6),
    ] {
        let report = dynamic_session(name, cpus);
        assert_eq!(
            report.probe_pairs_installed,
            subset * procs,
            "{name}: subset x processes"
        );
        assert!(report.create_time > SimTime::ZERO, "{name} create");
        assert!(report.instrument_time > SimTime::ZERO, "{name} instrument");
        assert!(report.app_time > SimTime::ZERO, "{name} app time");
        assert!(report.warnings.is_empty(), "{name}: {:?}", report.warnings);
        // The instrumented subset produced trace events.
        let trace = report.vt.build_trace();
        let func_events = trace
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::FuncEnter { .. } | Event::FuncExit { .. } | Event::FuncBatch { .. }
                )
            })
            .count();
        assert!(func_events > 0, "{name}: no function events");
    }
}

#[test]
fn insert_queued_before_start_is_deferred_until_init() {
    // The Fig-6 protocol: instrumentation requested before `start` must
    // not touch VT before VT_init; success == no panic, and the probes
    // fire after init.
    let app = test_app("sppm", 2).unwrap();
    let script = vec![
        Command::Insert(vec!["sppm1d".into(), "riemann".into()]),
        Command::Start,
        Command::Quit,
    ];
    let report = run_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic)
            .with_script(script)
            .with_seed(8),
    );
    assert_eq!(report.probe_pairs_installed, 2 * 2);
    let vt = &report.vt;
    for f in ["sppm1d", "riemann"] {
        let id = vt.func_id(f).expect("registered by dynprof");
        assert!(vt.stat_of(0, id).count > 0, "{f} never fired");
    }
    // Functions never inserted are absent from the registry.
    assert!(vt.func_id("difuze").is_none());
}

#[test]
fn unknown_functions_produce_warnings_not_failures() {
    let app = test_app("sweep3d", 2).unwrap();
    let script = vec![
        Command::Insert(vec!["sweep".into(), "no_such_function".into()]),
        Command::Start,
        Command::Quit,
    ];
    let report = run_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic)
            .with_script(script)
            .with_seed(8),
    );
    assert_eq!(report.probe_pairs_installed, 2, "only the real function");
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.contains("no_such_function")),
        "{:?}",
        report.warnings
    );
}

#[test]
fn script_without_start_still_releases_target() {
    // A script that forgets `start` must not deadlock the held target.
    let app = test_app("sweep3d", 2).unwrap();
    let script = vec![Command::InsertFile(vec!["subset".into()])];
    let report = run_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic)
            .with_script(script)
            .with_seed(8),
    );
    assert!(report.app_time > SimTime::ZERO);
    assert!(report.warnings.iter().any(|w| w.contains("no `start`")));
}

#[test]
fn mid_run_removal_is_tolerated() {
    // Ephemeral instrumentation: remove probes mid-run; stray VT_end
    // calls (entry removed before exit fired) must be absorbed.
    let mut params = dynprof::apps::SppmParams::test();
    params.scale = 0.25;
    params.base_steps = 6;
    let app = dynprof::apps::sppm(2, params);
    let script = vec![
        Command::InsertFile(vec!["subset".into()]),
        Command::Start,
        Command::Wait(SimTime::from_millis(40)),
        Command::RemoveFile(vec!["subset".into()]),
        Command::Quit,
    ];
    let report = run_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic)
            .with_script(script)
            .with_seed(8),
    );
    assert!(report.app_time > SimTime::ZERO);
    // The trace assembles without panicking even if frames were orphaned.
    let trace = report.vt.build_trace();
    assert!(!trace.events.is_empty());
    // The timefile shows the removal.
    assert!(report.timefile.total("remove") > SimTime::ZERO);
    // §5.1: the suspension used for the removal is in the trace as an
    // inactivity period on every rank, and the analysis can discount it.
    let windows = dynprof::analysis::suspension_windows(&trace);
    assert_eq!(windows.len(), 2, "one suspension window per rank");
    for (rank, ws) in &windows {
        assert!(!ws.is_empty(), "rank {rank} has no window");
        for (a, b) in ws {
            assert!(b > a, "empty window on rank {rank}");
        }
    }
    let plain = dynprof::analysis::Profile::from_trace(&trace);
    let fair = dynprof::analysis::Profile::from_trace_opts(
        &trace,
        dynprof::analysis::ProfileOptions {
            exclude_suspensions: true,
        },
    );
    let sum = |p: &dynprof::analysis::Profile| -> u64 {
        p.per_rank.values().map(|f| f.incl.as_nanos()).sum()
    };
    assert!(
        sum(&fair) <= sum(&plain),
        "excluding suspensions cannot increase time"
    );
}

#[test]
fn static_policies_need_no_dpcl() {
    // Static runs report zero create/instrument time (no dynprof at all).
    for policy in [Policy::Full, Policy::FullOff, Policy::Subset, Policy::None] {
        let app = test_app("smg98", 2).unwrap();
        let report = run_session(
            &app,
            SessionConfig::new(Machine::ibm_power3_colony(), policy).with_seed(4),
        );
        assert_eq!(report.create_time, SimTime::ZERO, "{policy}");
        assert_eq!(report.instrument_time, SimTime::ZERO, "{policy}");
        assert_eq!(report.probe_pairs_installed, 0, "{policy}");
    }
}

#[test]
fn trace_volume_ranks_policies() {
    // Full records every call; Subset a fraction; None only MPI events.
    let volume = |policy| {
        let app = test_app("smg98", 2).unwrap();
        run_session(
            &app,
            SessionConfig::new(Machine::ibm_power3_colony(), policy).with_seed(4),
        )
        .trace_bytes
    };
    let full = volume(Policy::Full);
    let subset = volume(Policy::Subset);
    let none = volume(Policy::None);
    let dynamic = volume(Policy::Dynamic);
    assert!(full > subset, "Full {full} > Subset {subset}");
    assert!(subset > none, "Subset {subset} > None {none}");
    // Dynamic records the same subset of functions as Subset.
    let rel = (dynamic as f64 - subset as f64).abs() / subset as f64;
    assert!(rel < 0.2, "Dynamic {dynamic} vs Subset {subset}");
}

#[test]
fn attach_to_running_application() {
    // Paper §3.3's future-work extension: attach mid-run, observe a
    // window, remove, detach.
    let mut params = dynprof::apps::SppmParams::test();
    params.scale = 1.0;
    params.base_steps = 10;
    let app = dynprof::apps::sppm(2, params);
    let report = dynprof::core::run_attach_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic).with_seed(17),
        // Attach while the run is in flight; per-process DPCL attach costs
        // ~130 ms each, so the probes land mid-run.
        SimTime::from_millis(100),
        SimTime::from_millis(400), // observe window
    );
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    assert_eq!(report.probe_pairs_installed, 7 * 2, "subset x ranks");
    assert!(report.create_time > SimTime::ZERO, "attach time recorded");
    assert!(report.instrument_time > SimTime::ZERO);
    // Function events exist and are confined to the observation window.
    let trace = report.vt.build_trace();
    let func_times: Vec<_> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            Event::FuncEnter { t, .. } | Event::FuncBatch { t, .. } => Some(*t),
            _ => None,
        })
        .collect();
    assert!(!func_times.is_empty(), "window captured nothing");
    let min = func_times.iter().min().unwrap();
    assert!(
        *min >= SimTime::from_millis(100),
        "events before the attach: {min}"
    );
    // Two suspension windows per rank (install + removal).
    let ws = dynprof::analysis::suspension_windows(&trace);
    for (rank, windows) in &ws {
        assert_eq!(windows.len(), 2, "rank {rank}: {windows:?}");
    }
}
