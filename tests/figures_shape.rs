//! Shape assertions for every figure in the paper's evaluation.
//!
//! These tests run the same harnesses as the `fig7`/`fig8`/`fig9`
//! binaries at reduced sweep sizes and assert the *qualitative* results
//! the paper reports: who wins, by roughly what factor, and where the
//! lines bend. Absolute seconds are our machine model's, not the 2003
//! Power3's (see EXPERIMENTS.md).
//!
//! The `golden_*` tests additionally pin the figure JSON and the
//! deterministic `--metrics` JSON byte-for-byte against the files in
//! `tests/golden/`. To regenerate after an intentional model change:
//! `UPDATE_GOLDENS=1 cargo test --test figures_shape golden_`.

use std::sync::RwLock;

use dynprof::apps::paper_app;
use dynprof::core::{run_session, SessionConfig};
use dynprof::obs;
use dynprof::sim::Machine;
use dynprof::vt::Policy;
use dynprof_bench::{fig7_policies, fig7_run, fig8c, fig9, Figure, Series};

/// The obs registry is process-global and recording is gated on a global
/// flag, so the metrics-golden test (which enables observation) must not
/// overlap any other test in this binary. Ordinary tests take `read()`,
/// obs-flipping tests take `write()`.
static OBS_GATE: RwLock<()> = RwLock::new(());

/// Compare `actual` byte-for-byte against `tests/golden/<name>`, or
/// rewrite the file when `UPDATE_GOLDENS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {path}: {e} (regenerate with UPDATE_GOLDENS=1)")
    });
    assert_eq!(
        actual, expected,
        "golden {name} drifted; regenerate with UPDATE_GOLDENS=1 if intended"
    );
}

/// The reduced Fig 7 reference workload: smg98 at 8 CPUs under every
/// policy (the full sweep is a release-binary job, not a debug test).
fn fig7_reduced() -> Figure {
    let series = fig7_policies("smg98")
        .into_iter()
        .map(|p| Series {
            label: p.label().to_string(),
            points: vec![(8, fig7_run("smg98", 8, p))],
        })
        .collect();
    Figure {
        title: "Fig 7(a) smg98 at 8 CPUs (golden reference)".into(),
        unit: "seconds",
        xaxis: "CPUs",
        series,
    }
}

fn app_time(app_name: &str, cpus: usize, policy: Policy) -> f64 {
    let (app, _) = paper_app(app_name, cpus).expect("known app");
    let cfg = SessionConfig::new(Machine::ibm_power3_colony(), policy).with_seed(9);
    run_session(&app, cfg).app_time.as_secs_f64()
}

/// Fig 7(a): Smg98's policy hierarchy at 8 CPUs.
#[test]
fn fig7a_smg98_policy_hierarchy() {
    let _g = OBS_GATE.read().unwrap();
    let full = app_time("smg98", 8, Policy::Full);
    let off = app_time("smg98", 8, Policy::FullOff);
    let subset = app_time("smg98", 8, Policy::Subset);
    let none = app_time("smg98", 8, Policy::None);
    let dynamic = app_time("smg98", 8, Policy::Dynamic);

    // "statically inserting instrumentation in all functions leads to
    // significant run-time overhead" — several-fold, approaching the
    // paper's 7x at 64 CPUs.
    assert!(full / none > 4.0, "Full/None = {:.2}", full / none);
    // "the overhead did decrease, but it was still large"
    assert!(off / none > 1.3, "Full-Off/None = {:.2}", off / none);
    assert!(full / off > 2.0);
    // "the overhead was approximately equal to the Full-Off version"
    assert!(
        (subset - off).abs() / off < 0.05,
        "Subset {subset} vs Full-Off {off}"
    );
    // "an execution time that is very close to None"
    assert!(
        (dynamic - none) / none < 0.05,
        "Dynamic {dynamic} vs None {none}"
    );
}

/// Fig 7(a): the weak-scaled problem grows with the processor count, and
/// the Full/None gap is worst at scale.
#[test]
fn fig7a_smg98_weak_scaling_and_worst_case() {
    let _g = OBS_GATE.read().unwrap();
    let none_2 = app_time("smg98", 2, Policy::None);
    let none_32 = app_time("smg98", 32, Policy::None);
    assert!(
        none_32 > 1.5 * none_2,
        "weak scaling: {none_2} -> {none_32}"
    );

    let full_32 = app_time("smg98", 32, Policy::Full);
    assert!(
        full_32 / none_32 > 5.0,
        "Full/None at 32 CPUs = {:.2} (paper: ~7x at 64)",
        full_32 / none_32
    );
}

/// Fig 7(b): Sppm shows the same ordering with a smaller gap.
#[test]
fn fig7b_sppm_same_ordering_smaller_gap() {
    let _g = OBS_GATE.read().unwrap();
    let full = app_time("sppm", 8, Policy::Full);
    let off = app_time("sppm", 8, Policy::FullOff);
    let subset = app_time("sppm", 8, Policy::Subset);
    let none = app_time("sppm", 8, Policy::None);
    let dynamic = app_time("sppm", 8, Policy::Dynamic);

    assert!(full > off && off > none, "{full} > {off} > {none}");
    // "the difference is not as extreme" as Smg98's.
    let ratio = full / none;
    assert!(
        (1.2..4.0).contains(&ratio),
        "Sppm Full/None = {ratio:.2}, expected mild"
    );
    assert!((subset - off).abs() / off < 0.05);
    assert!((dynamic - none) / none < 0.05);
}

/// Fig 7(c): Sweep3d shows no benefit — all policies comparable — and
/// scales strongly.
#[test]
fn fig7c_sweep3d_policies_negligible() {
    let _g = OBS_GATE.read().unwrap();
    let full = app_time("sweep3d", 8, Policy::Full);
    let none = app_time("sweep3d", 8, Policy::None);
    let dynamic = app_time("sweep3d", 8, Policy::Dynamic);
    assert!(
        (full - none).abs() / none < 0.02,
        "Full {full} vs None {none} should be negligible"
    );
    assert!((dynamic - none).abs() / none < 0.02);

    let none_2 = app_time("sweep3d", 2, Policy::None);
    let none_16 = app_time("sweep3d", 16, Policy::None);
    assert!(
        none_16 < none_2 / 3.0,
        "strong scaling: {none_2} at 2 -> {none_16} at 16"
    );
}

/// Fig 7(d): Umt98 keeps the ordering with modest but noticeable gaps,
/// and time decreases with threads.
#[test]
fn fig7d_umt98_ordering_and_strong_scaling() {
    let _g = OBS_GATE.read().unwrap();
    let full = app_time("umt98", 4, Policy::Full);
    let off = app_time("umt98", 4, Policy::FullOff);
    let none = app_time("umt98", 4, Policy::None);
    let dynamic = app_time("umt98", 4, Policy::Dynamic);

    assert!(full > off && off > dynamic && dynamic >= none);
    // "the variations ... are not as significant as with Smg98"
    assert!(full / none < 2.0, "Umt98 Full/None = {:.2}", full / none);
    // "there is still a noticeable benefit from dynamic instrumentation"
    assert!(off / dynamic > 1.01, "Full-Off {off} vs Dynamic {dynamic}");

    let none_1 = app_time("umt98", 1, Policy::None);
    let none_8 = app_time("umt98", 8, Policy::None);
    assert!(none_8 < none_1 / 4.0, "{none_1} at 1 -> {none_8} at 8");
}

/// Fig 8(a): confsync stays under the paper's 0.04 s bound, with a change
/// costing slightly more than no change.
#[test]
fn fig8a_confsync_bounds() {
    let _g = OBS_GATE.read().unwrap();
    use dynprof_bench::{confsync_cost, ConfsyncExperiment};
    let m = Machine::ibm_power3_colony();
    let procs = [2, 64, 256];
    let none = confsync_cost(&m, &procs, ConfsyncExperiment::NoChange, 3);
    let change = confsync_cost(&m, &procs, ConfsyncExperiment::WithChange, 3);
    for &(p, v) in &none.points {
        assert!(v < 0.04, "no-change at {p} procs = {v}");
        let c = change.at(p).unwrap();
        assert!(c > v, "change {c} should exceed no-change {v} at {p}");
        assert!(c < 0.04, "change at {p} procs = {c}");
    }
    // Growth with processors is mild (the sync is tree-structured).
    assert!(none.at(256).unwrap() < 3.0 * none.at(2).unwrap());
}

/// Fig 8(b): writing statistics costs roughly an order of magnitude more
/// than a plain sync at scale, but stays far below user-interaction time.
#[test]
fn fig8b_stats_an_order_of_magnitude_up() {
    let _g = OBS_GATE.read().unwrap();
    use dynprof_bench::{confsync_cost, ConfsyncExperiment};
    let m = Machine::ibm_power3_colony();
    let procs = [256];
    let plain = confsync_cost(&m, &procs, ConfsyncExperiment::NoChange, 3);
    let stats = confsync_cost(&m, &procs, ConfsyncExperiment::WriteStats, 3);
    let ratio = stats.at(256).unwrap() / plain.at(256).unwrap();
    assert!(
        (3.0..40.0).contains(&ratio),
        "stats/plain at 256 procs = {ratio:.1}"
    );
    assert!(stats.at(256).unwrap() < 0.5, "still negligible vs the user");
}

/// Fig 8(c): the second architecture behaves the same way (low, flat).
#[test]
fn fig8c_ia32_same_behaviour() {
    let _g = OBS_GATE.read().unwrap();
    use dynprof_bench::{confsync_cost, ConfsyncExperiment};
    let m = Machine::ia32_pentium3_cluster();
    let s = confsync_cost(&m, &[2, 8, 16], ConfsyncExperiment::NoChange, 3);
    for &(p, v) in &s.points {
        assert!(v < 0.006, "IA32 confsync at {p} = {v}");
    }
    assert!(s.at(16).unwrap() < 2.0 * s.at(2).unwrap(), "flat-ish in P");
}

/// Fig 9: creation+instrumentation time grows with process count for the
/// MPI codes but is flat for the OpenMP code (single shared image).
#[test]
fn fig9_instrument_time_shapes() {
    let _g = OBS_GATE.read().unwrap();
    use dynprof::apps::test_app;
    let time_for = |name: &str, cpus: usize| {
        let app = test_app(name, cpus).unwrap();
        let cfg = SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic).with_seed(5);
        run_session(&app, cfg).create_and_instrument().as_secs_f64()
    };
    let smg_2 = time_for("smg98", 2);
    let smg_16 = time_for("smg98", 16);
    assert!(
        smg_16 > 2.5 * smg_2,
        "smg98 create+instrument should grow: {smg_2} -> {smg_16}"
    );
    let umt_1 = time_for("umt98", 1);
    let umt_8 = time_for("umt98", 8);
    assert!(
        (umt_8 - umt_1).abs() / umt_1 < 0.10,
        "umt98 should be flat: {umt_1} vs {umt_8}"
    );
}

/// Golden regression: the reduced Fig 7 reference figure renders to
/// byte-identical JSON.
#[test]
fn golden_fig7_smg98_8_json() {
    let _g = OBS_GATE.read().unwrap();
    check_golden("fig7_smg98_8.json", &fig7_reduced().to_json());
}

/// Golden regression: Fig 8(c) at 4 runs per point.
#[test]
fn golden_fig8c_json() {
    let _g = OBS_GATE.read().unwrap();
    check_golden("fig8c_r4.json", &fig8c(4).to_json());
}

/// Golden regression: the full Fig 9 sweep.
#[test]
fn golden_fig9_json() {
    let _g = OBS_GATE.read().unwrap();
    check_golden("fig9.json", &fig9().to_json());
}

/// An inert overhead budget (`--overhead-budget 100`) attaches no
/// controller at all, so figure output must be byte-identical to the
/// recorded goldens — while a *tight* budget on an app with safe points
/// (sweep3d) demonstrably changes the measured run, proving the flag is
/// actually plumbed through and the identity assertion is not vacuous.
#[test]
fn golden_inert_budget_byte_identical() {
    let _g = OBS_GATE.write().unwrap();
    dynprof_bench::set_overhead_budget(Some(100.0));
    check_golden("fig7_smg98_8.json", &fig7_reduced().to_json());
    check_golden("fig9.json", &fig9().to_json());
    let inert = fig7_run("sweep3d", 4, Policy::Full);
    dynprof_bench::set_overhead_budget(None);
    assert_eq!(
        inert,
        fig7_run("sweep3d", 4, Policy::Full),
        "budget 100% must not perturb a run"
    );
    dynprof_bench::set_overhead_budget(Some(0.01));
    let tight = fig7_run("sweep3d", 4, Policy::Full);
    dynprof_bench::set_overhead_budget(None);
    assert_ne!(
        inert, tight,
        "a tight budget should deactivate probes and move sweep3d's time"
    );
}

/// The controller-convergence figure has the documented shape: the
/// unbudgeted series stays at its plateau, and each budgeted series ends
/// at or under its budget after the first epochs.
#[test]
fn fig_controller_convergence_shape() {
    let _g = OBS_GATE.read().unwrap();
    let fig = dynprof_bench::fig_controller(6);
    assert_eq!(fig.series.len(), dynprof_bench::CONTROLLER_BUDGETS.len());
    let unbudgeted = fig.series("unbudgeted").expect("observer series");
    for budget in [2.0f64, 5.0, 10.0] {
        let s = fig
            .series(&format!("budget {budget}%"))
            .expect("budget series");
        assert_eq!(s.points.len(), unbudgeted.points.len());
        // Converged by epoch 3, and stays converged to the end (re-probe
        // is on its default cadence; epoch 6 is before the first revisit
        // of the steady state's last deactivation can exceed two spikes).
        let (_, last) = *s.points.last().unwrap();
        assert!(
            last <= budget,
            "budget {budget}%: final epoch at {last:.2}%"
        );
        assert!(
            s.points[..4].iter().any(|&(_, pct)| pct <= budget),
            "budget {budget}%: no epoch within budget in the first 4: {:?}",
            s.points
        );
    }
    // The observer plateau sits well above the tightest budget.
    let (_, plateau) = *unbudgeted.points.last().unwrap();
    assert!(plateau > 10.0, "observer plateau at {plateau:.2}%");
}

/// Golden regression: the deterministic subset of the `--metrics` JSON
/// for each reference workload. (Wall-clock gauges are excluded — they
/// differ between any two runs; see `Snapshot::deterministic`.) With the
/// `obs` feature off the snapshots are empty and the no-op goldens still
/// hold, so this pins the feature-off behaviour too.
#[test]
fn golden_metrics_json() {
    let _g = OBS_GATE.write().unwrap();
    fn capture(run: impl FnOnce()) -> String {
        obs::reset();
        obs::set_enabled(true);
        run();
        obs::set_enabled(false);
        let mut snap = obs::snapshot().deterministic();
        // The scheduler-transport counters postdate the recorded goldens:
        // they describe which thread performed each dispatch (and how
        // timer heap entries were reclaimed), not anything the simulation
        // model computed, so they are excluded to keep the goldens pinned
        // across scheduler rewrites. Everything the model produces —
        // events, context switches, queue depth, horizons — stays checked.
        snap.metrics.retain(|m| {
            !matches!(
                m.name.as_str(),
                "sim.direct_handoffs" | "sim.sched_fallbacks" | "sim.timers_cancelled_eagerly"
            )
        });
        snap.to_json().pretty()
    }
    // The bench dev-dependency defaults the obs feature on, so test
    // builds normally have live observation even under
    // `--no-default-features`; probe at runtime rather than trusting the
    // root crate's own feature flags.
    obs::set_enabled(true);
    let live = obs::enabled();
    obs::set_enabled(false);
    let suffix = if live { "" } else { "_nofeature" };
    check_golden(
        &format!("fig7_smg98_8_metrics{suffix}.json"),
        &capture(|| {
            fig7_reduced();
        }),
    );
    check_golden(
        &format!("fig8c_r4_metrics{suffix}.json"),
        &capture(|| {
            fig8c(4);
        }),
    );
    check_golden(
        &format!("fig9_metrics{suffix}.json"),
        &capture(|| {
            fig9();
        }),
    );
}
