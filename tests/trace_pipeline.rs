//! The full data path: instrumented run → trace → file → analysis.

use dynprof::analysis::{read_trace, render, trace_volume, write_trace, Profile, TimelineOptions};
use dynprof::apps::test_app;
use dynprof::core::{run_session, SessionConfig};
use dynprof::sim::Machine;
use dynprof::vt::{Event, Policy, Trace};

fn traced_run(app: &str, cpus: usize, policy: Policy) -> (Trace, dynprof::core::SessionReport) {
    let spec = test_app(app, cpus).unwrap();
    let report = run_session(
        &spec,
        SessionConfig::new(Machine::ibm_power3_colony(), policy).with_seed(12),
    );
    (report.vt.build_trace(), report)
}

#[test]
fn profile_agrees_with_vt_statistics() {
    let (trace, report) = traced_run("sweep3d", 4, Policy::Full);
    let profile = Profile::from_trace(&trace);
    let vt = &report.vt;
    for name in ["sweep", "source", "flux_err"] {
        let id = vt.func_id(name).unwrap();
        let from_trace = profile.aggregate(id);
        let from_vt: u64 = (0..4).map(|r| vt.stat_of(r, id).count).sum();
        assert_eq!(from_trace.count, from_vt, "{name} counts disagree");
    }
}

#[test]
fn trace_survives_disk_round_trip() {
    let (trace, _) = traced_run("sppm", 2, Policy::Subset);
    let dir = std::env::temp_dir().join("dynprof-pipeline");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("sppm-{}.vgvt", std::process::id()));
    write_trace(&trace, &path).unwrap();
    let back = read_trace(&path).unwrap();
    assert_eq!(back, trace);
    std::fs::remove_file(&path).ok();
}

#[test]
fn events_are_time_ordered() {
    let (trace, _) = traced_run("smg98", 2, Policy::Subset);
    for w in trace.events.windows(2) {
        assert!(w[0].time() <= w[1].time(), "events out of order");
    }
}

#[test]
fn timeline_renders_all_ranks_and_mpi_activity() {
    let (trace, _) = traced_run("sweep3d", 4, Policy::Full);
    let art = render(
        &trace,
        TimelineOptions {
            width: 60,
            per_thread: false,
        },
    );
    for r in 0..4 {
        assert!(
            art.contains(&format!("rank   {r}")),
            "missing rank {r}:\n{art}"
        );
    }
    assert!(art.contains('M'), "no MPI activity painted");
    assert!(art.contains('#'), "no function activity painted");
}

#[test]
fn hybrid_timeline_shows_wiggles() {
    let params = dynprof::apps::Sweep3dParams::test().with_threads(3);
    let app = dynprof::apps::sweep3d(2, params);
    let report = run_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Full).with_seed(12),
    );
    let trace = report.vt.build_trace();
    let art = render(
        &trace,
        TimelineOptions {
            width: 60,
            per_thread: true,
        },
    );
    assert!(art.contains('~'), "no OpenMP wiggle painted:\n{art}");
    assert!(art.contains("thread  2"), "per-thread rows missing");
}

#[test]
fn volume_reflects_batching() {
    let (trace, report) = traced_run("smg98", 2, Policy::Full);
    let v = trace_volume(&trace, 24);
    // The modelled volume equals what VT accounted during the run.
    assert_eq!(v.bytes, report.trace_bytes);
    // Batched events represent far more volume than their in-memory count.
    assert!(
        v.bytes > 24 * trace.events.len() as u64 * 10,
        "batching should compress memory: {} bytes for {} events",
        v.bytes,
        trace.events.len()
    );
    assert!(v.bytes_per_second > 0.0);
}

#[test]
fn mpi_events_carry_decodable_ops() {
    let (trace, _) = traced_run("sppm", 2, Policy::None);
    let mut saw_send = false;
    for e in &trace.events {
        if let Event::MpiCall { op, .. } = e {
            let decoded = dynprof::vt::op_from_code(*op).expect("valid op code");
            if decoded == dynprof::mpi::MpiOp::Send {
                saw_send = true;
            }
        }
    }
    assert!(saw_send, "expected MPI_Send events in the sppm trace");
}
