//! Seeded fault-matrix ("chaos") suite for the fault-injection tentpole.
//!
//! For a grid of (seed × profile) the suite drives the DPCL client/daemon
//! protocol and `VT_confsync` under injected message drop/duplication/
//! delay, node slowdown, daemon crash windows, and missed config epochs,
//! asserting the *liveness* contract: every request eventually acks or
//! returns a typed error, confsync never deadlocks, and the run completes.
//! `no_faults_is_identity` is the companion safety contract: a plan with
//! every fault disabled is byte-identical to running with no plan at all.
//!
//! Seeds come from `CHAOS_SEEDS` (comma-separated) or default to four
//! fixed values; all fault decisions derive deterministically from them,
//! so failures reproduce exactly.

use std::sync::{Arc, Mutex, RwLock};

use dynprof::dpcl::{
    AckResult, DegradedPolicy, DpclClient, DpclSystem, HeartbeatConfig, HeartbeatMonitor,
    InstrumentationTxn, NodeHealth, TxnOptions, TxnOutcome,
};
use dynprof::image::{FunctionInfo, ImageBuilder, ProbePoint, Snippet};
use dynprof::mpi::{launch, JobSpec};
use dynprof::obs;
use dynprof::sim::fault::{set_global_spec, FaultPlan, FaultProfile, FaultSpec};
use dynprof::sim::{hb, Machine, ProbeCosts, Sim, SimTime};
use dynprof::vt::{confsync, ConfigDelta, MonitorLink, VtConfig, VtLib};

/// The obs registry is process-global and recording is gated on a global
/// flag, so a test that enables observation must not overlap any other
/// test in this binary (their sim runs would pollute its snapshots).
/// Ordinary tests take `read()`, obs-flipping tests take `write()`.
static OBS_GATE: RwLock<()> = RwLock::new(());

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => {
            let v: Vec<u64> = s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            assert!(!v.is_empty(), "CHAOS_SEEDS set but empty: {s:?}");
            v
        }
        Err(_) => vec![11, 23, 37, 41],
    }
}

fn plan_for(sim: &Sim, seed: u64, profile: &str) -> Arc<FaultPlan> {
    let spec = FaultSpec::parse(&format!("{seed}:{profile}")).expect("profile name");
    FaultPlan::new(&spec, sim.machine())
}

/// With the `check` feature on, every chaos cell doubles as a
/// happens-before regression: faults may leave *warnings* (dropped or
/// duplicated control messages surface as unmatched sends, and the
/// workout patches without suspending), but error-severity findings —
/// collective mismatches, epochs applied out of causal order — mean the
/// recovery machinery broke an invariant. Without the feature this is a
/// no-op and the handle costs nothing.
fn assert_no_hb_errors(handle: &hb::CheckHandle, ctx: &str) {
    if !hb::compiled() {
        return;
    }
    let report = handle.report();
    assert!(
        report.errors().is_empty(),
        "happens-before errors in {ctx}:\n{}",
        report.render()
    );
}

/// One DPCL workout: attach three nodes, install probes, remove a
/// function's instrumentation, wait for every ack, shut down. Returns
/// (virtual end time, acks observed, typed failures observed).
fn dpcl_workout(seed: u64, profile: Option<&str>) -> (SimTime, usize, usize) {
    let sim = Sim::virtual_time(Machine::test_machine(), seed);
    sim.enable_check();
    let check = sim.check_handle();
    if let Some(name) = profile {
        assert!(
            sim.set_fault_plan(plan_for(&sim, seed, name)),
            "plan already installed"
        );
    }
    let system = DpclSystem::new(["u"]);
    let mut b = ImageBuilder::new("t");
    let f = b.add(FunctionInfo::new("hot"));
    let image = Arc::new(b.build());
    let outcome = Arc::new(Mutex::new((0usize, 0usize)));
    let out2 = Arc::clone(&outcome);
    sim.spawn("instrumenter", 0, move |p| {
        let client = DpclClient::new(system, "u");
        let mut handles = Vec::new();
        // test_machine has 4 nodes; the instrumenter runs on node 0.
        for node in 1..=3usize {
            match client.attach(p, node, Arc::clone(&image), format!("t:{node}")) {
                Ok(h) => handles.push(h),
                // A typed attach failure (retry budget exhausted) is an
                // acceptable outcome; liveness only demands we get here.
                Err(msg) => assert!(!msg.is_empty()),
            }
        }
        let mut reqs = Vec::new();
        for h in &handles {
            for _ in 0..4 {
                reqs.push(client.install_probe(p, h, ProbePoint::entry(f), Snippet::noop("n")));
            }
            reqs.push(client.remove_function(p, h, f));
        }
        let (mut acked, mut failed) = (0usize, 0usize);
        for r in reqs {
            match client.wait_ack(p, r) {
                AckResult::Ok { .. } => acked += 1,
                AckResult::Error { .. } | AckResult::TimedOut { .. } => failed += 1,
            }
        }
        client.shutdown(p);
        *out2.lock().unwrap() = (acked, failed);
    });
    let end = sim.run();
    assert_no_hb_errors(
        &check,
        &format!("dpcl workout (seed {seed}, profile {profile:?})"),
    );
    let (acked, failed) = *outcome.lock().unwrap();
    (end, acked, failed)
}

/// Liveness over the full (seed × profile) grid: the workout terminates
/// (no deadlock, no panic) under every profile, and every request is
/// resolved one way or the other.
#[test]
fn fault_matrix_dpcl_workout_terminates() {
    let _g = OBS_GATE.read().unwrap();
    for seed in seeds() {
        for profile in FaultProfile::all_names() {
            let (end, acked, failed) = dpcl_workout(seed, Some(profile));
            assert!(
                end > SimTime::ZERO,
                "empty run for seed {seed} profile {profile}"
            );
            assert!(
                acked + failed > 0,
                "no request resolved for seed {seed} profile {profile}"
            );
            if *profile == "none" {
                assert_eq!(
                    failed, 0,
                    "zero-fault plan must not fail requests (seed {seed})"
                );
            }
        }
    }
}

/// The zero-fault plan is inert: a workout with the `none` profile ends
/// at exactly the virtual time of a workout with no plan installed, with
/// identical outcomes.
#[test]
fn zero_fault_plan_matches_no_plan() {
    let _g = OBS_GATE.read().unwrap();
    for seed in seeds() {
        assert_eq!(
            dpcl_workout(seed, None),
            dpcl_workout(seed, Some("none")),
            "seed {seed}"
        );
    }
}

/// Repeating a (seed, profile) cell reproduces it exactly — the whole
/// point of seed-driven fault plans.
#[test]
fn fault_runs_are_deterministic_per_seed() {
    let _g = OBS_GATE.read().unwrap();
    for profile in ["lossy", "crash", "drop"] {
        assert_eq!(
            dpcl_workout(23, Some(profile)),
            dpcl_workout(23, Some(profile))
        );
    }
    assert_ne!(
        dpcl_workout(11, Some("lossy")).0,
        dpcl_workout(41, Some("lossy")).0,
        "different seeds should perturb differently"
    );
}

/// One confsync chaos run: `rounds` safe points each carrying a config
/// change, then one trailing no-change round for catch-up. Returns the
/// number of partial-epoch markers recorded.
fn confsync_run(seed: u64, profile: &str, ranks: usize, rounds: usize) -> usize {
    let sim = Sim::virtual_time(Machine::test_machine(), seed);
    sim.enable_check();
    let check = sim.check_handle();
    assert!(sim.set_fault_plan(plan_for(&sim, seed, profile)));
    let vt = VtLib::new("app", ranks, VtConfig::all_on(), ProbeCosts::power3());
    let monitor = MonitorLink::new();
    let (v2, m2) = (Arc::clone(&vt), Arc::clone(&monitor));
    launch(&sim, JobSpec::new("app", ranks), vec![], move |p, c| {
        c.init(p);
        v2.init(p, c.rank());
        for r in 0..rounds {
            v2.funcdef(p, &format!("f{r}"));
        }
        c.barrier(p);
        for r in 0..rounds {
            if c.rank() == 0 {
                m2.post_change(
                    ConfigDelta::Set(vec![(format!("f{r}"), false)]),
                    SimTime::from_millis(1),
                );
            }
            let out = confsync(&v2, &m2, p, c, false);
            if out.partial {
                assert!(
                    c.rank() != 0,
                    "rank 0 decides the epoch and must never miss it"
                );
            }
        }
        // Trailing no-change round: every rank applies whatever it
        // deferred, so the job converges.
        let out = confsync(&v2, &m2, p, c, false);
        assert!(!out.changed && !out.partial);
        c.finalize(p);
    });
    sim.run();
    assert_no_hb_errors(
        &check,
        &format!("confsync run (seed {seed}, profile {profile})"),
    );
    // Convergence: every round's delta reached every rank (possibly via
    // catch-up), nothing is left deferred.
    for rank in 0..ranks {
        assert_eq!(vt.deferred_count(rank), 0, "rank {rank} still behind");
        for r in 0..rounds {
            let f = vt.func_id(&format!("f{r}")).unwrap();
            assert!(
                !vt.is_active(rank, f),
                "rank {rank} missed f{r} permanently (seed {seed}, {profile})"
            );
        }
    }
    vt.partial_epochs().len()
}

/// Confsync liveness and convergence under missed config epochs: no
/// deadlock, every rank converges at the next safe point, and partial
/// epochs are recorded rather than silently lost.
#[test]
fn confsync_converges_under_missed_epochs() {
    let _g = OBS_GATE.read().unwrap();
    let mut partials = 0;
    for seed in seeds() {
        for profile in ["epochs", "lossy"] {
            partials += confsync_run(seed, profile, 4, 3);
        }
    }
    assert!(
        partials > 0,
        "the epochs/lossy profiles should miss at least one epoch \
         somewhere in the matrix"
    );
}

/// A zero-fault confsync run records no partial epochs.
#[test]
fn confsync_zero_faults_records_no_partials() {
    let _g = OBS_GATE.read().unwrap();
    assert_eq!(confsync_run(11, "none", 4, 3), 0);
}

/// The headline invariant of the fault tentpole: a fault plan with every
/// fault disabled produces byte-identical figure JSON *and* byte-identical
/// deterministic metrics to a run with no plan installed at all. (The
/// release harness binaries are checked the same way in CI-facing docs;
/// this is the in-tree guard.)
#[test]
fn no_faults_is_identity() {
    let _g = OBS_GATE.write().unwrap();
    set_global_spec(None);

    obs::reset();
    obs::set_enabled(true);
    let fig_base = dynprof_bench::fig9().to_json();
    obs::set_enabled(false);
    let snap_base = obs::snapshot().deterministic();

    set_global_spec(Some(FaultSpec::parse("7:none").expect("spec")));
    obs::reset();
    obs::set_enabled(true);
    let fig_none = dynprof_bench::fig9().to_json();
    obs::set_enabled(false);
    let snap_none = obs::snapshot().deterministic();
    set_global_spec(None);

    assert_eq!(fig_base, fig_none, "figure JSON must be byte-identical");
    assert_eq!(snap_base, snap_none, "deterministic metrics must match");
    assert_eq!(
        snap_base.to_json().pretty(),
        snap_none.to_json().pretty(),
        "rendered metrics JSON must be byte-identical"
    );
}

// ---------------------------------------------------------------------------
// Transactional instrumentation epochs (2PC) under chaos
// ---------------------------------------------------------------------------

/// Run one transactional workout over a (seed, profile, policy) cell and
/// assert the headline invariant of the txn tentpole: after the run every
/// quiesce point observes fully-committed or fully-rolled-back epochs —
/// no daemon journal ends with an open transaction, a node's image holds
/// the probe pair iff its journal committed the transaction's epoch, and
/// entry/exit land atomically.
fn txn_cell(seed: u64, profile: &str, policy: DegradedPolicy) {
    let ctx = format!("txn cell (seed {seed}, {profile}, {})", policy.label());
    let sim = Sim::virtual_time(Machine::test_machine(), seed);
    sim.enable_check();
    let check = sim.check_handle();
    assert!(sim.set_fault_plan(plan_for(&sim, seed, profile)));
    let system = DpclSystem::new(["u"]);
    let images: Vec<_> = (0..3)
        .map(|_| {
            let mut b = ImageBuilder::new("t");
            b.add(FunctionInfo::new("hot"));
            Arc::new(b.build())
        })
        .collect();
    let f = images[0].func("hot").unwrap();

    let report_slot = Arc::new(Mutex::new(None));
    let attached_slot = Arc::new(Mutex::new(Vec::new()));
    let (sys2, imgs) = (Arc::clone(&system), images.clone());
    let (rep2, att2) = (Arc::clone(&report_slot), Arc::clone(&attached_slot));
    sim.spawn("instrumenter", 0, move |p| {
        let client = DpclClient::new(sys2, "u");
        let mut handles = Vec::new();
        for (i, img) in imgs.iter().enumerate() {
            match client.attach(p, 1 + i, Arc::clone(img), format!("t:{i}")) {
                Ok(h) => handles.push((1 + i, h)),
                // A typed attach failure excludes the node from the txn.
                Err(msg) => assert!(!msg.is_empty()),
            }
        }
        let mut txn = InstrumentationTxn::new(TxnOptions {
            policy,
            ..TxnOptions::default()
        });
        for (_, h) in &handles {
            txn.stage_install(h, ProbePoint::entry(f), Snippet::noop("b"));
            txn.stage_install(h, ProbePoint::exit(f), Snippet::noop("e"));
        }
        *att2.lock().unwrap() = handles.iter().map(|&(n, _)| n).collect::<Vec<_>>();
        let report = txn.execute(p, &client, None, None);
        client.shutdown(p);
        *rep2.lock().unwrap() = Some(report);
    });
    sim.run();
    assert_no_hb_errors(&check, &ctx);
    let report = report_slot.lock().unwrap().take().expect("txn executed");
    let attached: Vec<usize> = attached_slot.lock().unwrap().clone();

    // Only the inert profile may take the untransacted fast path.
    assert_eq!(report.two_phase, profile != "none", "{ctx}");

    // Invariant 1: no journal ends with an open (staged/prepared but
    // undecided) transaction — the retry budget outlasts every standard
    // crash window, so decisions always land.
    for j in system.journals() {
        assert!(
            j.open_txns().is_empty(),
            "node {} journal left txn open in {ctx}: {:?}",
            j.node(),
            j.entries()
        );
    }

    // Invariant 2: the set of nodes whose journal committed the epoch is
    // exactly what the coordinator's outcome says it should be.
    let committed: Vec<usize> = attached
        .iter()
        .copied()
        .filter(|&n| {
            system
                .journal(n, "u")
                .is_some_and(|j| j.committed_epochs().contains(&report.epoch))
        })
        .collect();
    let expect: Vec<usize> = match &report.outcome {
        TxnOutcome::Committed if report.two_phase => attached.clone(),
        // Fast path: installs bypass the journal entirely.
        TxnOutcome::Committed => Vec::new(),
        TxnOutcome::CommittedDegraded { excluded } => attached
            .iter()
            .copied()
            .filter(|n| !excluded.contains(n))
            .collect(),
        TxnOutcome::Aborted { .. } | TxnOutcome::ValidationFailed { .. } => Vec::new(),
    };
    assert_eq!(committed, expect, "journal/outcome mismatch in {ctx}");

    // Invariant 3: a node's image holds the probe pair iff its journal
    // committed the epoch, and entry/exit are atomic — no quiesce point
    // can observe half an epoch.
    for (i, img) in images.iter().enumerate() {
        let node = 1 + i;
        if !attached.contains(&node) {
            continue;
        }
        let expect_occupied = if report.two_phase {
            committed.contains(&node)
        } else {
            report.is_committed()
        };
        assert_eq!(
            img.occupied(ProbePoint::entry(f)),
            expect_occupied,
            "node {node} entry probe in {ctx}"
        );
        assert_eq!(
            img.occupied(ProbePoint::exit(f)),
            expect_occupied,
            "node {node} exit probe must match entry (atomic pair) in {ctx}"
        );
    }
}

/// The crash × txn matrix (every profile, both degraded policies, every
/// seed): no cell may ever exhibit partial instrumentation.
#[test]
fn txn_matrix_no_partial_instrumentation() {
    let _g = OBS_GATE.read().unwrap();
    for seed in seeds() {
        for profile in FaultProfile::all_names() {
            for policy in [DegradedPolicy::AbortTxn, DegradedPolicy::ExcludeNode] {
                txn_cell(seed, profile, policy);
            }
        }
    }
}

/// A profile whose crashed daemons never come back within the run: the
/// outage opens somewhere in `[0, 1.5s]` and the downtime exceeds every
/// retry budget. Used to force the degraded/abort decision paths, which
/// the standard `crash` profile (400 ms downtime, outlasted by client
/// retries) deliberately cannot reach.
fn crash_forever_spec(seed: u64) -> FaultSpec {
    let mut profile = FaultProfile::none();
    profile.crash_node_ppm = 500_000;
    profile.crash_start_max = SimTime::from_millis(1500);
    profile.crash_downtime = SimTime::from_secs(3600);
    FaultSpec {
        seed,
        profile_name: "crash-forever".into(),
        profile,
    }
}

/// Find a seed whose crash-forever plan downs exactly one of nodes 1–3,
/// with the outage opening late enough (> 400 ms) that attach completes
/// first. Scanning the plan (not the run) keeps the test deterministic
/// and robust to RNG-stream changes.
fn degraded_scenario() -> (u64, usize, SimTime) {
    for seed in 0..512 {
        let plan = FaultPlan::new(&crash_forever_spec(seed), &Machine::test_machine());
        let down: Vec<(usize, SimTime)> = (1..=3usize)
            .filter_map(|n| plan.daemon_outage(n).map(|(s, _)| (n, s)))
            .collect();
        if let [(victim, start)] = down[..] {
            if start > SimTime::from_millis(400) && start < SimTime::from_millis(1200) {
                return (seed, victim, start);
            }
        }
    }
    panic!("no crash-forever seed in 0..512 downs exactly one node late enough");
}

/// Degraded-mode decision paths, deterministically: one node dies after
/// attach and stays dead. Under `exclude-node` the epoch commits on the
/// survivors and the victim is reported excluded; under `abort-txn` the
/// whole epoch rolls back everywhere. Either way no journal is left open
/// and no image holds half an epoch.
#[test]
fn degraded_mode_excludes_or_aborts_cleanly() {
    let _g = OBS_GATE.read().unwrap();
    let (seed, victim, start) = degraded_scenario();
    for policy in [DegradedPolicy::ExcludeNode, DegradedPolicy::AbortTxn] {
        let sim = Sim::virtual_time(Machine::test_machine(), seed);
        sim.enable_check();
        let check = sim.check_handle();
        assert!(sim.set_fault_plan(FaultPlan::new(&crash_forever_spec(seed), sim.machine())));
        let system = DpclSystem::new(["u"]);
        let images: Vec<_> = (0..3)
            .map(|_| {
                let mut b = ImageBuilder::new("t");
                b.add(FunctionInfo::new("hot"));
                Arc::new(b.build())
            })
            .collect();
        let f = images[0].func("hot").unwrap();
        let report_slot = Arc::new(Mutex::new(None));
        let (sys2, imgs, rep2) = (
            Arc::clone(&system),
            images.clone(),
            Arc::clone(&report_slot),
        );
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(sys2, "u");
            let handles: Vec<_> = imgs
                .iter()
                .enumerate()
                .map(|(i, img)| {
                    client
                        .attach(p, 1 + i, Arc::clone(img), format!("t:{i}"))
                        .expect("attach completes before the outage opens")
                })
                .collect();
            // Step past the victim's outage start so the 2PC rounds hit a
            // daemon that is down for good.
            p.sleep_until(start + SimTime::from_millis(1));
            let mut txn = InstrumentationTxn::new(TxnOptions {
                policy,
                ..TxnOptions::default()
            });
            for h in &handles {
                txn.stage_install(h, ProbePoint::entry(f), Snippet::noop("b"));
                txn.stage_install(h, ProbePoint::exit(f), Snippet::noop("e"));
            }
            let report = txn.execute(p, &client, None, None);
            client.shutdown(p);
            *rep2.lock().unwrap() = Some(report);
        });
        sim.run();
        let ctx = format!("degraded scenario (seed {seed}, {})", policy.label());
        assert_no_hb_errors(&check, &ctx);
        let report = report_slot.lock().unwrap().take().expect("txn executed");
        for j in system.journals() {
            assert!(
                j.open_txns().is_empty(),
                "node {} journal left open in {ctx}",
                j.node()
            );
        }
        match policy {
            DegradedPolicy::ExcludeNode => {
                assert_eq!(
                    report.excluded(),
                    &[victim],
                    "{ctx}: outcome {:?}",
                    report.outcome
                );
                for (i, img) in images.iter().enumerate() {
                    let node = 1 + i;
                    let survivor = node != victim;
                    assert_eq!(
                        img.occupied(ProbePoint::entry(f)),
                        survivor,
                        "{ctx} node {node}"
                    );
                    assert_eq!(
                        img.occupied(ProbePoint::exit(f)),
                        survivor,
                        "{ctx} node {node}"
                    );
                    let j = system.journal(node, "u").expect("journal");
                    assert_eq!(
                        j.committed_epochs().contains(&report.epoch),
                        survivor,
                        "{ctx} node {node} journal"
                    );
                }
            }
            DegradedPolicy::AbortTxn => {
                assert!(
                    matches!(report.outcome, TxnOutcome::Aborted { .. }),
                    "{ctx}: outcome {:?}",
                    report.outcome
                );
                for img in &images {
                    assert!(!img.occupied(ProbePoint::entry(f)), "{ctx}");
                    assert!(!img.occupied(ProbePoint::exit(f)), "{ctx}");
                }
                for j in system.journals() {
                    assert!(j.committed_epochs().is_empty(), "{ctx} node {}", j.node());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Heartbeat failure-detector properties
// ---------------------------------------------------------------------------

/// Zero false positives: under a `none` fault plan the monitor never
/// records a health transition on any seed, across many probe rounds.
#[test]
fn heartbeat_no_false_positives_without_faults() {
    let _g = OBS_GATE.read().unwrap();
    for seed in seeds() {
        let sim = Sim::virtual_time(Machine::test_machine(), seed);
        assert!(sim.set_fault_plan(plan_for(&sim, seed, "none")));
        let system = DpclSystem::new(["u"]);
        let monitor =
            HeartbeatMonitor::new(Arc::clone(&system), 1..=3usize, HeartbeatConfig::default());
        let m2 = Arc::clone(&monitor);
        sim.spawn("hb", 0, move |p| m2.run(p));
        let (sys2, m3) = (Arc::clone(&system), Arc::clone(&monitor));
        sim.spawn("driver", 0, move |p| {
            let client = DpclClient::new(sys2, "u");
            for n in 1..=3usize {
                client.connect(p, n).unwrap();
            }
            p.sleep(SimTime::from_secs(3));
            m3.stop();
            // Let the monitor's in-flight round drain before tearing the
            // daemons down, so no miss is an artifact of shutdown.
            p.sleep(SimTime::from_millis(500));
            client.shutdown(p);
        });
        sim.run();
        assert!(
            monitor.transitions().is_empty(),
            "seed {seed}: false positives {:?}",
            monitor.transitions()
        );
        assert!(monitor.unhealthy().is_empty(), "seed {seed}");
        assert!(
            monitor.rounds() >= 15,
            "seed {seed}: only {} rounds observed",
            monitor.rounds()
        );
        for n in 1..=3usize {
            assert_eq!(monitor.health(n), Some(NodeHealth::Alive), "seed {seed}");
        }
    }
}

/// Detection within the configured bound: a node whose daemons die for
/// good is marked Suspect no later than `suspect_bound()` after the
/// outage opens, reaches Dead, and healthy nodes never transition.
#[test]
fn heartbeat_detects_dead_node_within_bound() {
    let _g = OBS_GATE.read().unwrap();
    let (seed, victim, start) = degraded_scenario();
    let sim = Sim::virtual_time(Machine::test_machine(), seed);
    assert!(sim.set_fault_plan(FaultPlan::new(&crash_forever_spec(seed), sim.machine())));
    let system = DpclSystem::new(["u"]);
    let monitor =
        HeartbeatMonitor::new(Arc::clone(&system), 1..=3usize, HeartbeatConfig::default());
    let m2 = Arc::clone(&monitor);
    sim.spawn("hb", 0, move |p| m2.run(p));
    let (sys2, m3) = (Arc::clone(&system), Arc::clone(&monitor));
    let run_until = start + SimTime::from_millis(1500);
    sim.spawn("driver", 0, move |p| {
        let client = DpclClient::new(sys2, "u");
        for n in 1..=3usize {
            client.connect(p, n).unwrap();
        }
        p.sleep_until(run_until);
        m3.stop();
        p.sleep(SimTime::from_millis(500));
        client.shutdown(p);
    });
    sim.run();
    let bound = monitor.config().suspect_bound();
    let transitions = monitor.transitions();
    let suspect_at = transitions
        .iter()
        .find(|&&(_, n, h)| n == victim && h == NodeHealth::Suspect)
        .map(|&(t, _, _)| t)
        .unwrap_or_else(|| panic!("victim {victim} never suspected: {transitions:?}"));
    assert!(
        suspect_at <= start + bound,
        "suspect at {suspect_at:?}, outage opened {start:?}, bound {bound:?}"
    );
    assert_eq!(
        monitor.health(victim),
        Some(NodeHealth::Dead),
        "victim should progress to Dead: {transitions:?}"
    );
    for &(_, n, _) in &transitions {
        assert_eq!(n, victim, "healthy node transitioned: {transitions:?}");
    }
}

/// Transactional mode with no faults is invisible: figure output is
/// byte-identical whether the txn control plane is off, on, or on with an
/// explicitly inert fault plan (the acceptance-criteria goldens).
#[test]
fn txn_without_faults_is_identity() {
    let _g = OBS_GATE.write().unwrap();
    set_global_spec(None);
    dynprof_bench::set_txn_policy(None);
    let fig_base = dynprof_bench::fig9().to_json();

    dynprof_bench::set_txn_policy(Some(DegradedPolicy::ExcludeNode));
    let fig_txn = dynprof_bench::fig9().to_json();

    set_global_spec(Some(FaultSpec::parse("9:none").expect("spec")));
    let fig_txn_none = dynprof_bench::fig9().to_json();

    set_global_spec(None);
    dynprof_bench::set_txn_policy(None);
    assert_eq!(fig_base, fig_txn, "txn-on (no plan) must be byte-identical");
    assert_eq!(
        fig_base, fig_txn_none,
        "txn-on + inert plan must be byte-identical"
    );
}

// ---------------------------------------------------------------------------
// Overhead-budget controller under chaos
// ---------------------------------------------------------------------------

/// One adaptive (budget-controlled) sweep3d session under a global fault
/// spec: probe-dense scaling, 4 ranks, one confsync epoch per iteration,
/// 5% budget. Callers must hold the `OBS_GATE` write lock (the global
/// fault spec is process-wide).
fn adaptive_chaos_run(seed: u64, profile: &str) -> dynprof::core::SessionReport {
    set_global_spec(Some(
        FaultSpec::parse(&format!("{seed}:{profile}")).expect("spec"),
    ));
    let params = dynprof::apps::Sweep3dParams {
        global_n: 16,
        k_block: 1,
        angle_groups: 4,
        iterations: 4,
        omp_threads: 1,
        scale: 0.001,
        outputs: dynprof::apps::workload::Outputs::new(),
    };
    let cfg = dynprof::core::SessionConfig::new(Machine::test_machine(), dynprof::vt::Policy::Full)
        .with_seed(seed)
        .with_adaptive(dynprof::core::AdaptiveSettings::budget(5.0));
    let report = dynprof::core::run_session(&dynprof::apps::sweep3d(4, params), cfg);
    set_global_spec(None);
    report
}

/// The controller leg of the fault matrix: adaptive sessions complete
/// under message delay/duplication, missed epochs, and the combined lossy
/// profile; every decision's activation delta is well-formed (no
/// contradictions, no unknown symbols); and the activation tables of all
/// caught-up ranks agree with rank 0's — a rank may run behind while an
/// epoch is deferred, but it may never hold a *different* table.
#[test]
fn adaptive_controller_survives_fault_matrix() {
    let _g = OBS_GATE.write().unwrap();
    set_global_spec(None);
    for seed in seeds() {
        for profile in ["delay", "dup", "epochs", "lossy"] {
            let report = adaptive_chaos_run(seed, profile);
            let ctx = format!("adaptive cell (seed {seed}, {profile})");
            let ctrl = report.controller.as_ref().expect("controller attached");
            assert!(!ctrl.decisions().is_empty(), "no decisions in {ctx}");

            let functions = report.vt.build_trace().functions;
            for d in ctrl.decisions() {
                let delta: Vec<(String, bool)> = d
                    .deactivated
                    .iter()
                    .map(|n| (n.clone(), false))
                    .chain(d.reactivated.iter().map(|n| (n.clone(), true)))
                    .collect();
                let findings =
                    dynprof_check::analyzer::check_activation_delta(&delta, Some(&functions));
                assert!(
                    findings.iter().all(|f| f.severity != hb::Severity::Error),
                    "malformed activation delta at round {} in {ctx}: {findings:?}",
                    d.round
                );
            }

            for rank in 0..4usize {
                if report.vt.deferred_count(rank) > 0 {
                    continue; // legitimately behind; will catch up next epoch
                }
                for name in &functions {
                    let f = report.vt.func_id(name).expect("traced function");
                    assert_eq!(
                        report.vt.is_active(rank, f),
                        report.vt.is_active(0, f),
                        "rank {rank} holds a divergent table for {name} in {ctx}"
                    );
                }
            }
        }
    }
    // Determinism: a chaotic cell replays to the identical decision log.
    let a = adaptive_chaos_run(23, "lossy");
    let b = adaptive_chaos_run(23, "lossy");
    assert_eq!(
        a.controller.unwrap().decision_log(),
        b.controller.unwrap().decision_log(),
        "same (seed, profile) must reproduce the same decisions"
    );
}

/// Activation-table reconfigurations riding the transactional epoch path:
/// over the full (seed × profile × policy) matrix, each daemon's table
/// swap runs exactly once iff its journal committed the epoch — never
/// twice (duplicate commits are deduped), never on an aborted or excluded
/// node — and no journal is left open.
#[test]
fn activation_txn_matrix_swaps_atomically() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let _g = OBS_GATE.read().unwrap();
    for seed in seeds() {
        for profile in FaultProfile::all_names() {
            for policy in [DegradedPolicy::AbortTxn, DegradedPolicy::ExcludeNode] {
                let ctx = format!(
                    "activation txn (seed {seed}, {profile}, {})",
                    policy.label()
                );
                let sim = Sim::virtual_time(Machine::test_machine(), seed);
                sim.enable_check();
                let check = sim.check_handle();
                assert!(sim.set_fault_plan(plan_for(&sim, seed, profile)));
                let system = DpclSystem::new(["u"]);
                let swaps: Vec<Arc<AtomicU64>> =
                    (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
                let mut b = ImageBuilder::new("t");
                b.add(FunctionInfo::new("hot"));
                let image = Arc::new(b.build());

                let report_slot = Arc::new(Mutex::new(None));
                let attached_slot = Arc::new(Mutex::new(Vec::new()));
                let (sys2, img2, swaps2) = (Arc::clone(&system), image, swaps.clone());
                let (rep2, att2) = (Arc::clone(&report_slot), Arc::clone(&attached_slot));
                sim.spawn("instrumenter", 0, move |p| {
                    let client = DpclClient::new(sys2, "u");
                    let mut handles = Vec::new();
                    for (i, counter) in swaps2.iter().enumerate() {
                        match client.attach(p, 1 + i, Arc::clone(&img2), format!("t:{i}")) {
                            Ok(h) => handles.push((1 + i, h, Arc::clone(counter))),
                            Err(msg) => assert!(!msg.is_empty()),
                        }
                    }
                    let mut txn = InstrumentationTxn::new(TxnOptions {
                        policy,
                        ..TxnOptions::default()
                    });
                    for (node, h, counter) in &handles {
                        let counter = Arc::clone(counter);
                        txn.stage_activation(
                            h,
                            format!("table@node{node}"),
                            Arc::new(move || {
                                counter.fetch_add(1, Ordering::Relaxed);
                            }),
                        );
                    }
                    *att2.lock().unwrap() = handles.iter().map(|&(n, ..)| n).collect::<Vec<_>>();
                    let report = txn.execute(p, &client, None, None);
                    client.shutdown(p);
                    *rep2.lock().unwrap() = Some(report);
                });
                sim.run();
                assert_no_hb_errors(&check, &ctx);
                let report = report_slot.lock().unwrap().take().expect("txn executed");
                let attached: Vec<usize> = attached_slot.lock().unwrap().clone();

                for j in system.journals() {
                    assert!(
                        j.open_txns().is_empty(),
                        "node {} journal left open in {ctx}",
                        j.node()
                    );
                }
                for (i, counter) in swaps.iter().enumerate() {
                    let node = 1 + i;
                    let expect = if !attached.contains(&node) {
                        0
                    } else if report.two_phase {
                        u64::from(
                            system
                                .journal(node, "u")
                                .is_some_and(|j| j.committed_epochs().contains(&report.epoch)),
                        )
                    } else {
                        u64::from(report.is_committed())
                    };
                    assert_eq!(
                        counter.load(Ordering::Relaxed),
                        expect,
                        "node {node} table swap count in {ctx} (outcome {:?})",
                        report.outcome
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Chunk-indexed trace store under chaos
// ---------------------------------------------------------------------------

/// The store path under faults: a fault-perturbed session's VT buffers,
/// flushed through the bounded `StoreWriter`, must round-trip losslessly
/// — the streaming store is a transport, not an interpretation, so a
/// chaotic trace comes back event-for-event and the streaming profile
/// agrees with the in-memory reference.
#[test]
fn store_round_trip_survives_fault_runs() {
    use dynprof::analysis::store::{write_store_from_vt, StoreOptions, StoreReader};
    use dynprof::analysis::{Profile, ProfileOptions};

    let _g = OBS_GATE.read().unwrap();
    let dir = std::env::temp_dir().join("dynprof-chaos-store");
    std::fs::create_dir_all(&dir).unwrap();
    for seed in seeds() {
        set_global_spec(Some(
            FaultSpec::parse(&format!("{seed}:lossy")).expect("spec"),
        ));
        let spec = dynprof::apps::test_app("sweep3d", 4).expect("app");
        let report = dynprof::core::run_session(
            &spec,
            dynprof::core::SessionConfig::new(
                Machine::ibm_power3_colony(),
                dynprof::vt::Policy::Full,
            )
            .with_seed(seed),
        );
        set_global_spec(None);

        let trace = report.vt.build_trace();
        let path = dir.join(format!("chaos-{seed}-{}.vgvs", std::process::id()));
        let stats =
            write_store_from_vt(&report.vt, &path, StoreOptions { chunk_events: 64 }).unwrap();
        assert_eq!(stats.events as usize, trace.events.len(), "seed {seed}");

        let mut r = StoreReader::open(&path).unwrap();
        let mut back = r.read_all().unwrap();
        let mut reference = trace.clone();
        let key = |e: &dynprof::vt::Event| (e.time(), e.rank(), format!("{e:?}"));
        back.events.sort_by_key(key);
        reference.events.sort_by_key(key);
        assert_eq!(
            back, reference,
            "store round trip under faults, seed {seed}"
        );

        let from_store = Profile::from_store(&mut r, ProfileOptions::default()).unwrap();
        let from_trace = Profile::from_trace(&trace);
        assert_eq!(
            from_store.per_rank, from_trace.per_rank,
            "streaming profile under faults, seed {seed}"
        );
        std::fs::remove_file(&path).ok();
    }
}
