//! Seeded fault-matrix ("chaos") suite for the fault-injection tentpole.
//!
//! For a grid of (seed × profile) the suite drives the DPCL client/daemon
//! protocol and `VT_confsync` under injected message drop/duplication/
//! delay, node slowdown, daemon crash windows, and missed config epochs,
//! asserting the *liveness* contract: every request eventually acks or
//! returns a typed error, confsync never deadlocks, and the run completes.
//! `no_faults_is_identity` is the companion safety contract: a plan with
//! every fault disabled is byte-identical to running with no plan at all.
//!
//! Seeds come from `CHAOS_SEEDS` (comma-separated) or default to four
//! fixed values; all fault decisions derive deterministically from them,
//! so failures reproduce exactly.

use std::sync::{Arc, Mutex, RwLock};

use dynprof::dpcl::{AckResult, DpclClient, DpclSystem};
use dynprof::image::{FunctionInfo, ImageBuilder, ProbePoint, Snippet};
use dynprof::mpi::{launch, JobSpec};
use dynprof::obs;
use dynprof::sim::fault::{set_global_spec, FaultPlan, FaultProfile, FaultSpec};
use dynprof::sim::{hb, Machine, ProbeCosts, Sim, SimTime};
use dynprof::vt::{confsync, ConfigDelta, MonitorLink, VtConfig, VtLib};

/// The obs registry is process-global and recording is gated on a global
/// flag, so a test that enables observation must not overlap any other
/// test in this binary (their sim runs would pollute its snapshots).
/// Ordinary tests take `read()`, obs-flipping tests take `write()`.
static OBS_GATE: RwLock<()> = RwLock::new(());

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => {
            let v: Vec<u64> = s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            assert!(!v.is_empty(), "CHAOS_SEEDS set but empty: {s:?}");
            v
        }
        Err(_) => vec![11, 23, 37, 41],
    }
}

fn plan_for(sim: &Sim, seed: u64, profile: &str) -> Arc<FaultPlan> {
    let spec = FaultSpec::parse(&format!("{seed}:{profile}")).expect("profile name");
    FaultPlan::new(&spec, sim.machine())
}

/// With the `check` feature on, every chaos cell doubles as a
/// happens-before regression: faults may leave *warnings* (dropped or
/// duplicated control messages surface as unmatched sends, and the
/// workout patches without suspending), but error-severity findings —
/// collective mismatches, epochs applied out of causal order — mean the
/// recovery machinery broke an invariant. Without the feature this is a
/// no-op and the handle costs nothing.
fn assert_no_hb_errors(handle: &hb::CheckHandle, ctx: &str) {
    if !hb::compiled() {
        return;
    }
    let report = handle.report();
    assert!(
        report.errors().is_empty(),
        "happens-before errors in {ctx}:\n{}",
        report.render()
    );
}

/// One DPCL workout: attach three nodes, install probes, remove a
/// function's instrumentation, wait for every ack, shut down. Returns
/// (virtual end time, acks observed, typed failures observed).
fn dpcl_workout(seed: u64, profile: Option<&str>) -> (SimTime, usize, usize) {
    let sim = Sim::virtual_time(Machine::test_machine(), seed);
    sim.enable_check();
    let check = sim.check_handle();
    if let Some(name) = profile {
        assert!(
            sim.set_fault_plan(plan_for(&sim, seed, name)),
            "plan already installed"
        );
    }
    let system = DpclSystem::new(["u"]);
    let mut b = ImageBuilder::new("t");
    let f = b.add(FunctionInfo::new("hot"));
    let image = Arc::new(b.build());
    let outcome = Arc::new(Mutex::new((0usize, 0usize)));
    let out2 = Arc::clone(&outcome);
    sim.spawn("instrumenter", 0, move |p| {
        let client = DpclClient::new(system, "u");
        let mut handles = Vec::new();
        // test_machine has 4 nodes; the instrumenter runs on node 0.
        for node in 1..=3usize {
            match client.attach(p, node, Arc::clone(&image), format!("t:{node}")) {
                Ok(h) => handles.push(h),
                // A typed attach failure (retry budget exhausted) is an
                // acceptable outcome; liveness only demands we get here.
                Err(msg) => assert!(!msg.is_empty()),
            }
        }
        let mut reqs = Vec::new();
        for h in &handles {
            for _ in 0..4 {
                reqs.push(client.install_probe(p, h, ProbePoint::entry(f), Snippet::noop("n")));
            }
            reqs.push(client.remove_function(p, h, f));
        }
        let (mut acked, mut failed) = (0usize, 0usize);
        for r in reqs {
            match client.wait_ack(p, r) {
                AckResult::Ok { .. } => acked += 1,
                AckResult::Error { .. } | AckResult::TimedOut { .. } => failed += 1,
            }
        }
        client.shutdown(p);
        *out2.lock().unwrap() = (acked, failed);
    });
    let end = sim.run();
    assert_no_hb_errors(
        &check,
        &format!("dpcl workout (seed {seed}, profile {profile:?})"),
    );
    let (acked, failed) = *outcome.lock().unwrap();
    (end, acked, failed)
}

/// Liveness over the full (seed × profile) grid: the workout terminates
/// (no deadlock, no panic) under every profile, and every request is
/// resolved one way or the other.
#[test]
fn fault_matrix_dpcl_workout_terminates() {
    let _g = OBS_GATE.read().unwrap();
    for seed in seeds() {
        for profile in FaultProfile::all_names() {
            let (end, acked, failed) = dpcl_workout(seed, Some(profile));
            assert!(
                end > SimTime::ZERO,
                "empty run for seed {seed} profile {profile}"
            );
            assert!(
                acked + failed > 0,
                "no request resolved for seed {seed} profile {profile}"
            );
            if *profile == "none" {
                assert_eq!(
                    failed, 0,
                    "zero-fault plan must not fail requests (seed {seed})"
                );
            }
        }
    }
}

/// The zero-fault plan is inert: a workout with the `none` profile ends
/// at exactly the virtual time of a workout with no plan installed, with
/// identical outcomes.
#[test]
fn zero_fault_plan_matches_no_plan() {
    let _g = OBS_GATE.read().unwrap();
    for seed in seeds() {
        assert_eq!(
            dpcl_workout(seed, None),
            dpcl_workout(seed, Some("none")),
            "seed {seed}"
        );
    }
}

/// Repeating a (seed, profile) cell reproduces it exactly — the whole
/// point of seed-driven fault plans.
#[test]
fn fault_runs_are_deterministic_per_seed() {
    let _g = OBS_GATE.read().unwrap();
    for profile in ["lossy", "crash", "drop"] {
        assert_eq!(
            dpcl_workout(23, Some(profile)),
            dpcl_workout(23, Some(profile))
        );
    }
    assert_ne!(
        dpcl_workout(11, Some("lossy")).0,
        dpcl_workout(41, Some("lossy")).0,
        "different seeds should perturb differently"
    );
}

/// One confsync chaos run: `rounds` safe points each carrying a config
/// change, then one trailing no-change round for catch-up. Returns the
/// number of partial-epoch markers recorded.
fn confsync_run(seed: u64, profile: &str, ranks: usize, rounds: usize) -> usize {
    let sim = Sim::virtual_time(Machine::test_machine(), seed);
    sim.enable_check();
    let check = sim.check_handle();
    assert!(sim.set_fault_plan(plan_for(&sim, seed, profile)));
    let vt = VtLib::new("app", ranks, VtConfig::all_on(), ProbeCosts::power3());
    let monitor = MonitorLink::new();
    let (v2, m2) = (Arc::clone(&vt), Arc::clone(&monitor));
    launch(&sim, JobSpec::new("app", ranks), vec![], move |p, c| {
        c.init(p);
        v2.init(p, c.rank());
        for r in 0..rounds {
            v2.funcdef(p, &format!("f{r}"));
        }
        c.barrier(p);
        for r in 0..rounds {
            if c.rank() == 0 {
                m2.post_change(
                    ConfigDelta::Set(vec![(format!("f{r}"), false)]),
                    SimTime::from_millis(1),
                );
            }
            let out = confsync(&v2, &m2, p, c, false);
            if out.partial {
                assert!(
                    c.rank() != 0,
                    "rank 0 decides the epoch and must never miss it"
                );
            }
        }
        // Trailing no-change round: every rank applies whatever it
        // deferred, so the job converges.
        let out = confsync(&v2, &m2, p, c, false);
        assert!(!out.changed && !out.partial);
        c.finalize(p);
    });
    sim.run();
    assert_no_hb_errors(
        &check,
        &format!("confsync run (seed {seed}, profile {profile})"),
    );
    // Convergence: every round's delta reached every rank (possibly via
    // catch-up), nothing is left deferred.
    for rank in 0..ranks {
        assert_eq!(vt.deferred_count(rank), 0, "rank {rank} still behind");
        for r in 0..rounds {
            let f = vt.func_id(&format!("f{r}")).unwrap();
            assert!(
                !vt.is_active(rank, f),
                "rank {rank} missed f{r} permanently (seed {seed}, {profile})"
            );
        }
    }
    vt.partial_epochs().len()
}

/// Confsync liveness and convergence under missed config epochs: no
/// deadlock, every rank converges at the next safe point, and partial
/// epochs are recorded rather than silently lost.
#[test]
fn confsync_converges_under_missed_epochs() {
    let _g = OBS_GATE.read().unwrap();
    let mut partials = 0;
    for seed in seeds() {
        for profile in ["epochs", "lossy"] {
            partials += confsync_run(seed, profile, 4, 3);
        }
    }
    assert!(
        partials > 0,
        "the epochs/lossy profiles should miss at least one epoch \
         somewhere in the matrix"
    );
}

/// A zero-fault confsync run records no partial epochs.
#[test]
fn confsync_zero_faults_records_no_partials() {
    let _g = OBS_GATE.read().unwrap();
    assert_eq!(confsync_run(11, "none", 4, 3), 0);
}

/// The headline invariant of the fault tentpole: a fault plan with every
/// fault disabled produces byte-identical figure JSON *and* byte-identical
/// deterministic metrics to a run with no plan installed at all. (The
/// release harness binaries are checked the same way in CI-facing docs;
/// this is the in-tree guard.)
#[test]
fn no_faults_is_identity() {
    let _g = OBS_GATE.write().unwrap();
    set_global_spec(None);

    obs::reset();
    obs::set_enabled(true);
    let fig_base = dynprof_bench::fig9().to_json();
    obs::set_enabled(false);
    let snap_base = obs::snapshot().deterministic();

    set_global_spec(Some(FaultSpec::parse("7:none").expect("spec")));
    obs::reset();
    obs::set_enabled(true);
    let fig_none = dynprof_bench::fig9().to_json();
    obs::set_enabled(false);
    let snap_none = obs::snapshot().deterministic();
    set_global_spec(None);

    assert_eq!(fig_base, fig_none, "figure JSON must be byte-identical");
    assert_eq!(snap_base, snap_none, "deterministic metrics must match");
    assert_eq!(
        snap_base.to_json().pretty(),
        snap_none.to_json().pretty(),
        "rendered metrics JSON must be byte-identical"
    );
}
