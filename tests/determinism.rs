//! Reproducibility: identical seeds produce bit-identical measurements.
//!
//! The discrete-event simulator is the foundation of every number this
//! repository reports; these tests pin its determinism end-to-end,
//! through MPI, OpenMP, DPCL daemons, and full dynprof sessions.

use dynprof::apps::test_app;
use dynprof::core::{run_session, SessionConfig, SessionReport};
use dynprof::sim::Machine;
use dynprof::vt::Policy;

fn session(app: &str, policy: Policy, seed: u64) -> SessionReport {
    let spec = test_app(app, 4).unwrap();
    run_session(
        &spec,
        SessionConfig::new(Machine::ibm_power3_colony(), policy).with_seed(seed),
    )
}

#[test]
fn static_runs_are_bit_reproducible() {
    for policy in [Policy::Full, Policy::None] {
        let a = session("smg98", policy, 42);
        let b = session("smg98", policy, 42);
        assert_eq!(a.app_time, b.app_time, "{policy}");
        assert_eq!(a.total_time, b.total_time, "{policy}");
        assert_eq!(a.trace_bytes, b.trace_bytes, "{policy}");
        assert_eq!(a.vt.build_trace(), b.vt.build_trace(), "{policy}");
    }
}

#[test]
fn dynamic_sessions_are_bit_reproducible() {
    let a = session("sweep3d", Policy::Dynamic, 7);
    let b = session("sweep3d", Policy::Dynamic, 7);
    assert_eq!(a.app_time, b.app_time);
    assert_eq!(a.create_time, b.create_time);
    assert_eq!(a.instrument_time, b.instrument_time);
    assert_eq!(a.trace_bytes, b.trace_bytes);
}

#[test]
fn different_seeds_change_daemon_timing_but_not_results() {
    let a = session("sweep3d", Policy::Dynamic, 7);
    let b = session("sweep3d", Policy::Dynamic, 8);
    // DPCL jitter differs...
    assert_ne!(
        (a.create_time, a.instrument_time),
        (b.create_time, b.instrument_time),
        "seeds should perturb daemon delays"
    );
    // ...but the instrumentation outcome is identical.
    assert_eq!(a.probe_pairs_installed, b.probe_pairs_installed);
    // And the application's own numerics are seed-independent.
    let oa = {
        let p = dynprof::apps::Sweep3dParams::test();
        let o = std::sync::Arc::clone(&p.outputs);
        run_session(
            &dynprof::apps::sweep3d(4, p),
            SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic).with_seed(7),
        );
        o.get("flux:0").unwrap()
    };
    let ob = {
        let p = dynprof::apps::Sweep3dParams::test();
        let o = std::sync::Arc::clone(&p.outputs);
        run_session(
            &dynprof::apps::sweep3d(4, p),
            SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic).with_seed(8),
        );
        o.get("flux:0").unwrap()
    };
    assert_eq!(oa, ob, "numerics must not depend on the simulation seed");
}

#[test]
fn omp_app_is_reproducible() {
    let a = session("umt98", Policy::Dynamic, 21);
    let b = session("umt98", Policy::Dynamic, 21);
    assert_eq!(a.app_time, b.app_time);
    assert_eq!(a.trace_bytes, b.trace_bytes);
}

#[test]
fn observation_adds_zero_virtual_time() {
    // The self-observability layer must be free on the virtual clock:
    // every simulated result is bit-identical with it off or on. (Counter
    // reproducibility itself is pinned in tests/observability.rs, which
    // owns the global registry.)
    let off = session("smg98", Policy::Dynamic, 42);
    dynprof::obs::set_enabled(true);
    let on = session("smg98", Policy::Dynamic, 42);
    dynprof::obs::set_enabled(false);
    assert_eq!(off.app_time, on.app_time);
    assert_eq!(off.total_time, on.total_time);
    assert_eq!(off.create_time, on.create_time);
    assert_eq!(off.instrument_time, on.instrument_time);
    assert_eq!(off.trace_bytes, on.trace_bytes);
    assert_eq!(off.vt.build_trace(), on.vt.build_trace());
}
