//! Integration tests of the chunk-indexed `VGVS` trace store: seeded
//! round-trip properties, byte-identical determinism, index-driven chunk
//! skipping at 1k-rank scale with bounded-memory witnesses, compaction,
//! corruption boundaries, obs counters, and golden `vgv` report outputs.
//!
//! Goldens live in `tests/golden/`; regenerate intentional changes with
//! `UPDATE_GOLDENS=1 cargo test --test trace_store golden_`.

use std::sync::Mutex;

use dynprof::analysis::store::{
    compact, event_overlaps, write_store_from_trace, StoreOptions, StoreReader, StoreWriter,
};
use dynprof::analysis::{slice_report, top_report, CommStats, Profile, ProfileOptions, TraceError};
use dynprof::obs;
use dynprof::sim::rng::SimRng;
use dynprof::sim::SimTime;
use dynprof::vt::{Event, Trace, VtFuncId};

/// The obs registry is process-global; tests that flip the recording flag
/// must not overlap each other.
static OBS_GATE: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dynprof-store-it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.vgvs", std::process::id()))
}

/// A seeded synthetic trace: per-rank causal event streams mixing every
/// span-carrying event kind, concatenated rank-major (the order a
/// [`StoreWriter`] receives them from per-rank buffers).
fn synth_trace(seed: u64, ranks: u32, steps: u64) -> Trace {
    let mut events = Vec::new();
    for rank in 0..ranks {
        let mut rng = SimRng::new(seed, rank as u64);
        let mut t = rng.gen_range_u64(0..=5_000);
        for _ in 0..steps {
            t += 1_000 + rng.gen_range_u64(0..=2_000);
            let t0 = SimTime::from_nanos(t);
            match rng.gen_range_u64(0..=4) {
                0 => {
                    let dur = 500 + rng.gen_range_u64(0..=1_500);
                    let func = VtFuncId(rng.gen_range_u64(0..=2) as u32);
                    events.push(Event::FuncEnter {
                        t: t0,
                        rank,
                        thread: 0,
                        func,
                    });
                    t += dur;
                    events.push(Event::FuncExit {
                        t: SimTime::from_nanos(t),
                        rank,
                        thread: 0,
                        func,
                    });
                }
                1 => {
                    let dur = rng.gen_range_u64(100..=3_000);
                    events.push(Event::MpiCall {
                        t: t0,
                        t_end: SimTime::from_nanos(t + dur),
                        rank,
                        op: 2,
                        peer: ((rank + 1) % ranks.max(2)) as i32,
                        bytes: rng.gen_range_u64(8..=4_096),
                    });
                    t += dur;
                }
                2 => {
                    let span = rng.gen_range_u64(200..=2_000);
                    events.push(Event::FuncBatch {
                        t: t0,
                        rank,
                        thread: 0,
                        func: VtFuncId(rng.gen_range_u64(0..=2) as u32),
                        count: rng.gen_range_u64(1..=50),
                        span: SimTime::from_nanos(span),
                    });
                    t += span;
                }
                3 => {
                    let dur = rng.gen_range_u64(100..=1_000);
                    events.push(Event::OmpThread {
                        t: t0,
                        t_end: SimTime::from_nanos(t + dur),
                        rank,
                        thread: rng.gen_range_u64(0..=3) as u16,
                        region: 0,
                    });
                    t += dur;
                }
                _ => {
                    let dur = rng.gen_range_u64(100..=800);
                    events.push(Event::Suspended {
                        t: t0,
                        t_end: SimTime::from_nanos(t + dur),
                        rank,
                    });
                    t += dur;
                }
            }
        }
    }
    Trace {
        program: "synth".into(),
        functions: vec!["alpha".into(), "beta".into(), "gamma".into()],
        events,
    }
}

/// The reference ordering [`StoreReader::read_all`] promises: stable
/// `(time, rank)` sort over the writer's input order.
fn reference_sorted(trace: &Trace) -> Trace {
    let mut t = trace.clone();
    t.events.sort_by_key(|e| (e.time(), e.rank()));
    t
}

#[test]
fn seeded_round_trip_matches_reference() {
    for seed in [1u64, 7, 42] {
        let trace = synth_trace(seed, 8, 200);
        let path = tmp(&format!("rt-{seed}"));
        let stats =
            write_store_from_trace(&trace, &path, StoreOptions { chunk_events: 64 }).unwrap();
        assert_eq!(stats.events as usize, trace.events.len());
        assert!(stats.chunks > 8, "chunking actually happened (seed {seed})");

        let mut r = StoreReader::open(&path).unwrap();
        assert_eq!(
            r.read_all().unwrap(),
            reference_sorted(&trace),
            "seed {seed}"
        );

        // Streaming analyses agree with the in-memory reference.
        let from_store = Profile::from_store(&mut r, ProfileOptions::default()).unwrap();
        let from_trace = Profile::from_trace(&trace);
        assert_eq!(from_store.per_rank, from_trace.per_rank, "seed {seed}");
        let comm_store = CommStats::from_store(&mut r).unwrap();
        let comm_trace = CommStats::from_trace(&trace);
        assert_eq!(comm_store.bytes, comm_trace.bytes, "seed {seed}");
        assert_eq!(comm_store.mpi_time, comm_trace.mpi_time, "seed {seed}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn suspension_exclusion_agrees_between_paths() {
    let trace = synth_trace(5, 6, 150);
    let path = tmp("suspend");
    write_store_from_trace(&trace, &path, StoreOptions { chunk_events: 32 }).unwrap();
    let opts = ProfileOptions {
        exclude_suspensions: true,
    };
    let mut r = StoreReader::open(&path).unwrap();
    let from_store = Profile::from_store(&mut r, opts).unwrap();
    let from_trace = Profile::from_trace_opts(&trace, opts);
    assert_eq!(from_store.per_rank, from_trace.per_rank);
    std::fs::remove_file(&path).ok();
}

#[test]
fn store_files_are_byte_identical_for_same_seed() {
    let opts = StoreOptions { chunk_events: 48 };
    let (a, b, c) = (tmp("det-a"), tmp("det-b"), tmp("det-c"));
    write_store_from_trace(&synth_trace(9, 10, 120), &a, opts).unwrap();
    write_store_from_trace(&synth_trace(9, 10, 120), &b, opts).unwrap();
    write_store_from_trace(&synth_trace(10, 10, 120), &c, opts).unwrap();
    let (ba, bb, bc) = (
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        std::fs::read(&c).unwrap(),
    );
    assert_eq!(ba, bb, "same seed must produce byte-identical stores");
    assert_ne!(ba, bc, "different seed must differ");
    for p in [a, b, c] {
        std::fs::remove_file(&p).ok();
    }
}

/// The acceptance-criteria test: on a 1k-rank synthetic trace, a narrow
/// `slice` decodes only the chunks overlapping the window — witnessed by
/// `chunks_skipped`, by the reader's peak chunk allocation, and by the
/// writer's peak buffer — and returns exactly what the in-memory
/// reference computes.
#[test]
fn thousand_rank_slice_decodes_only_overlapping_chunks() {
    let ranks = 1_000u32;
    let trace = synth_trace(42, ranks, 40);
    let path = tmp("kilo");
    let opts = StoreOptions { chunk_events: 16 };
    let stats = write_store_from_trace(&trace, &path, opts).unwrap();

    // Writer memory: one open chunk per rank, not the whole trace.
    // 16 events at ≤ ~40 encoded bytes each per rank.
    assert!(
        stats.peak_buffered_bytes <= ranks as usize * opts.chunk_events * 40,
        "writer buffer must be O(ranks x chunk): {}",
        stats.peak_buffered_bytes
    );
    assert!(
        (stats.peak_buffered_bytes as u64) < stats.bytes / 2,
        "writer never held anything close to the whole file: {} of {}",
        stats.peak_buffered_bytes,
        stats.bytes
    );

    let mut r = StoreReader::open(&path).unwrap();
    let info = r.info();
    assert_eq!(info.ranks as u32, ranks);

    // A window around the middle fifth of the trace.
    let span = info.t_end.saturating_sub(info.t_min);
    let t0 = info.t_min + span * 2 / 5;
    let t1 = info.t_min + span * 3 / 5;
    let mut streamed: Vec<Event> = Vec::new();
    let q = r
        .for_each_query(Some((t0, t1)), None, |ev| streamed.push(ev.clone()))
        .unwrap();
    assert!(
        q.chunks_skipped > 0,
        "index must prune non-overlapping chunks: {q:?}"
    );
    assert_eq!(q.chunks_considered, info.chunks);
    assert_eq!(
        q.chunks_decoded + q.chunks_skipped,
        q.chunks_considered,
        "{q:?}"
    );
    assert!(q.chunks_decoded < info.chunks, "{q:?}");

    // Reader memory: one chunk at a time, never the trace.
    assert!(
        r.peak_chunk_bytes() <= opts.chunk_events * 64,
        "reader decode buffer must be O(chunk): {}",
        r.peak_chunk_bytes()
    );
    assert!(
        (r.peak_chunk_bytes() as u64) < info.file_bytes / 100,
        "peak chunk {} vs file {}",
        r.peak_chunk_bytes(),
        info.file_bytes
    );

    // Identical results to the in-memory reference.
    let mut reference: Vec<Event> = trace
        .events
        .iter()
        .filter(|ev| event_overlaps(ev, t0, t1))
        .cloned()
        .collect();
    let key = |e: &Event| (e.time(), e.rank(), format!("{e:?}"));
    reference.sort_by_key(key);
    streamed.sort_by_key(key);
    assert_eq!(streamed, reference, "windowed query differs from reference");

    // Rank filter composes with the window.
    let mut only_7 = 0u64;
    let q7 = r
        .for_each_query(Some((t0, t1)), Some(7), |ev| {
            assert_eq!(ev.rank(), 7);
            only_7 += 1;
        })
        .unwrap();
    assert_eq!(q7.events, only_7);
    let expected_7 = reference.iter().filter(|e| e.rank() == 7).count() as u64;
    assert_eq!(only_7, expected_7);

    std::fs::remove_file(&path).ok();
}

#[test]
fn compaction_merges_segments_and_remaps_dictionaries() {
    // Three per-rank-group segments with different dictionary orders.
    let mut paths = Vec::new();
    for (i, names) in [
        vec!["alpha", "beta"],
        vec!["beta", "gamma"],
        vec!["gamma", "alpha"],
    ]
    .into_iter()
    .enumerate()
    {
        let path = tmp(&format!("seg-{i}"));
        let mut w =
            StoreWriter::create(&path, "segmented", StoreOptions { chunk_events: 8 }).unwrap();
        w.set_functions(names.iter().map(|s| s.to_string()).collect());
        for k in 0..20u64 {
            let t = SimTime::from_micros(100 * k + i as u64);
            let rank = i as u32;
            w.append(&Event::FuncEnter {
                t,
                rank,
                thread: 0,
                func: VtFuncId((k % 2) as u32),
            });
            w.append(&Event::FuncExit {
                t: t + SimTime::from_micros(30),
                rank,
                thread: 0,
                func: VtFuncId((k % 2) as u32),
            });
        }
        w.finish().unwrap();
        paths.push(path);
    }
    let out = tmp("compacted");
    let stats = compact(&paths, &out, StoreOptions { chunk_events: 32 }).unwrap();
    assert_eq!(stats.events, 3 * 40);

    let mut r = StoreReader::open(&out).unwrap();
    assert_eq!(r.ranks(), vec![0, 1, 2]);
    // Every segment called its dictionary's functions 10 times each; after
    // remapping, per-name call counts must survive.
    let profile = Profile::from_store(&mut r, ProfileOptions::default()).unwrap();
    for name in ["alpha", "beta", "gamma"] {
        let id = VtFuncId(
            r.functions()
                .iter()
                .position(|n| n == name)
                .unwrap_or_else(|| panic!("{name} missing from union dictionary"))
                as u32,
        );
        assert_eq!(
            profile.aggregate(id).count,
            20,
            "{name}: two segments x 10 calls"
        );
    }
    for p in paths.iter().chain([&out]) {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn corrupt_stores_fail_with_typed_errors() {
    let trace = synth_trace(3, 2, 40);
    let path = tmp("corrupt");
    write_store_from_trace(&trace, &path, StoreOptions { chunk_events: 16 }).unwrap();
    let good = std::fs::read(&path).unwrap();

    // Shorter than the 8-byte header.
    std::fs::write(&path, &good[..4]).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(TraceError::TruncatedHeader)
    ));

    // Wrong magic.
    let mut bad = good.clone();
    bad[..4].copy_from_slice(b"NOPE");
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(TraceError::BadMagic)
    ));

    // Unsupported version.
    let mut bad = good.clone();
    bad[4] = 0xff;
    bad[5] = 0xff;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(TraceError::UnsupportedVersion(0xffff))
    ));

    // Footer cut off (e.g. the writer died before finish()).
    std::fs::write(&path, &good[..good.len() - 10]).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(TraceError::TruncatedFooter)
    ));

    // Chunk disk header disagrees with the footer index: open succeeds
    // (the index parses), but reading the chunk is a typed ShortChunk.
    std::fs::write(&path, &good).unwrap();
    let chunk0 = StoreReader::open(&path).unwrap().chunks()[0].offset as usize;
    let mut bad = good.clone();
    // Corrupt the first chunk's count field (header bytes 4..8).
    bad[chunk0 + 4] ^= 0xff;
    std::fs::write(&path, &bad).unwrap();
    let mut r = StoreReader::open(&path).unwrap();
    assert!(matches!(
        r.for_each_query(None, None, |_| {}),
        Err(TraceError::ShortChunk { index: 0 })
    ));

    // Payload corruption leaves header and index agreeing — only the
    // CRC-32 can catch it, as a typed ChecksumMismatch.
    let mut bad = good.clone();
    bad[chunk0 + 40] ^= 0xff; // first payload byte (v2 header is 40B)
    std::fs::write(&path, &bad).unwrap();
    let mut r = StoreReader::open(&path).unwrap();
    assert!(matches!(
        r.for_each_query(None, None, |_| {}),
        Err(TraceError::ChecksumMismatch { index: 0 })
    ));

    // Degraded mode turns that hard error into an accounted skip.
    let mut r = StoreReader::open(&path).unwrap();
    r.set_degraded(true);
    let lost = r.chunks()[0].count as u64;
    let stats = r.for_each_query(None, None, |_| {}).unwrap();
    assert_eq!(stats.chunks_bad, 1, "{stats:?}");
    assert_eq!(stats.events_lost, lost, "{stats:?}");
    assert_eq!(r.dropped_chunks(), 1);
    assert_eq!(r.dropped_events(), lost);

    std::fs::remove_file(&path).ok();
}

#[test]
fn obs_counters_track_store_traffic() {
    let _gate = OBS_GATE.lock().unwrap();
    obs::reset();
    obs::set_enabled(true);
    let trace = synth_trace(11, 6, 100);
    let path = tmp("obs");
    write_store_from_trace(&trace, &path, StoreOptions { chunk_events: 16 }).unwrap();
    let written = obs::counter("analysis.chunks_written").get();
    let bytes = obs::counter("analysis.store_bytes").get();
    assert!(written > 0, "chunks_written not recorded");
    assert_eq!(
        bytes,
        std::fs::metadata(&path).unwrap().len(),
        "store_bytes must equal the file size"
    );

    let mut r = StoreReader::open(&path).unwrap();
    let info = r.info();
    let mid = info.t_min + info.t_end.saturating_sub(info.t_min) / 2;
    r.for_each_query(Some((info.t_min, mid)), None, |_| {})
        .unwrap();
    assert!(obs::counter("analysis.chunks_read").get() > 0);
    assert!(
        obs::counter("analysis.chunks_skipped").get() > 0,
        "half-trace window must skip chunks via the index"
    );
    obs::set_enabled(false);
    obs::reset();
    std::fs::remove_file(&path).ok();
}

// ---- golden `vgv` report outputs ------------------------------------

/// Compare `actual` byte-for-byte against `tests/golden/<name>`, or
/// rewrite the file when `UPDATE_GOLDENS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {path}: {e} (regenerate with UPDATE_GOLDENS=1)")
    });
    assert_eq!(
        actual, expected,
        "golden {name} drifted; regenerate with UPDATE_GOLDENS=1 if intended"
    );
}

fn golden_store() -> std::path::PathBuf {
    let path = tmp("golden");
    write_store_from_trace(
        &synth_trace(42, 4, 60),
        &path,
        StoreOptions { chunk_events: 32 },
    )
    .unwrap();
    path
}

#[test]
fn golden_vgv_top() {
    let path = golden_store();
    let mut r = StoreReader::open(&path).unwrap();
    let report = top_report(&mut r, 10, ProfileOptions::default()).unwrap();
    check_golden("vgv_top.txt", &report);
    std::fs::remove_file(&path).ok();
}

#[test]
fn golden_vgv_slice() {
    let path = golden_store();
    let mut r = StoreReader::open(&path).unwrap();
    let info = r.info();
    let span = info.t_end.saturating_sub(info.t_min);
    let t0 = info.t_min + span / 4;
    let t1 = info.t_min + span / 2;
    let (report, stats) = slice_report(&mut r, t0, t1, None, 64).unwrap();
    assert!(stats.chunks_skipped > 0, "{stats:?}");
    check_golden("vgv_slice.txt", &report);
    std::fs::remove_file(&path).ok();
}

// ---- format back-compat: version-1 (pre-CRC) stores ------------------

/// Hand-encode a version-1 store: 36-byte chunk headers (no CRC field),
/// no salvage preamble, 44-byte index entries, 14-byte trailer — the
/// exact bytes every pre-CRC writer produced. Pinned as a binary golden
/// so the v2 reader can never silently drop legacy compatibility.
fn build_v1_store(trace: &Trace, chunk_events: usize) -> Vec<u8> {
    use bytes::{BufMut, BytesMut};
    use dynprof::analysis::store::codec::encode_event;
    use dynprof::analysis::store::event_end;

    fn put_string(b: &mut BytesMut, s: &str) {
        b.put_u32_le(s.len() as u32);
        b.put_slice(s.as_bytes());
    }

    struct Meta {
        rank: u32,
        offset: u64,
        enc_len: u32,
        count: u32,
        min_t: u64,
        max_t: u64,
        max_end: u64,
    }

    let mut out = BytesMut::new();
    out.put_slice(b"VGVS");
    out.put_u16_le(1); // version 1
    out.put_u16_le(0); // flags

    let mut ranks: Vec<u32> = trace.events.iter().map(|e| e.rank()).collect();
    ranks.sort_unstable();
    ranks.dedup();
    let mut index: Vec<Meta> = Vec::new();
    for rank in ranks {
        let evs: Vec<&Event> = trace.events.iter().filter(|e| e.rank() == rank).collect();
        for chunk in evs.chunks(chunk_events) {
            let mut payload = BytesMut::new();
            let mut prev_t = 0u64;
            let (mut min_t, mut max_t, mut max_end) = (u64::MAX, 0u64, 0u64);
            for ev in chunk {
                encode_event(&mut payload, ev, &mut prev_t);
                let t = ev.time().as_nanos();
                min_t = min_t.min(t);
                max_t = max_t.max(t);
                max_end = max_end.max(event_end(ev).as_nanos());
            }
            let meta = Meta {
                rank,
                offset: out.len() as u64,
                enc_len: payload.len() as u32,
                count: chunk.len() as u32,
                min_t,
                max_t,
                max_end,
            };
            out.put_u32_le(meta.rank);
            out.put_u32_le(meta.count);
            out.put_u32_le(meta.enc_len);
            out.put_u64_le(meta.min_t);
            out.put_u64_le(meta.max_t);
            out.put_u64_le(meta.max_end);
            out.put_slice(&payload);
            index.push(meta);
        }
    }
    let footer_start = out.len();
    put_string(&mut out, &trace.program);
    out.put_u32_le(trace.functions.len() as u32);
    for f in &trace.functions {
        put_string(&mut out, f);
    }
    out.put_u32_le(index.len() as u32);
    for m in &index {
        out.put_u32_le(m.rank);
        out.put_u64_le(m.offset);
        out.put_u32_le(m.enc_len);
        out.put_u32_le(m.count);
        out.put_u64_le(m.min_t);
        out.put_u64_le(m.max_t);
        out.put_u64_le(m.max_end);
    }
    let footer_len = (out.len() - footer_start) as u64;
    out.put_u64_le(footer_len);
    out.put_slice(b"VGVS");
    out.put_u16_le(1);
    out.to_vec()
}

/// Binary golden: compare bytes against `tests/golden/<name>`, or write
/// the file when `UPDATE_GOLDENS` is set.
fn check_golden_bytes(name: &str, actual: &[u8]) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden {path}: {e} (regenerate with UPDATE_GOLDENS=1)")
    });
    assert_eq!(actual, &expected[..], "golden {name} drifted");
}

#[test]
fn v1_stores_still_open_read_only() {
    let trace = synth_trace(9, 3, 50);
    let bytes = build_v1_store(&trace, 32);
    check_golden_bytes("store_v1.vgvs", &bytes);

    let path = tmp("v1-compat");
    std::fs::write(&path, &bytes).unwrap();
    let mut r = StoreReader::open(&path).unwrap();
    assert_eq!(r.version(), 1);
    assert_eq!(r.info().version, 1);
    assert_eq!(r.info().events as usize, trace.events.len());
    assert_eq!(r.functions(), &trace.functions[..]);

    // Contents decode identically to the modern writer's view.
    let v1_all = r.read_all().unwrap();
    let mut expect = trace.events.clone();
    expect.sort_by_key(|e| (e.time(), e.rank()));
    assert_eq!(v1_all.events, expect);

    // And the profile pipeline is version-agnostic.
    let p = Profile::from_store(&mut r, ProfileOptions::default()).unwrap();
    assert!(!p.per_rank.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn v1_store_without_footer_salvages_by_decoding() {
    let trace = synth_trace(10, 2, 40);
    let bytes = build_v1_store(&trace, 16);
    let path = tmp("v1-salvage");
    // Chop the footer and trailer off entirely.
    let full = StoreReader::open({
        std::fs::write(&path, &bytes).unwrap();
        &path
    })
    .unwrap();
    let data_end = full
        .chunks()
        .iter()
        .map(|m| m.offset + 36 + m.enc_len as u64)
        .max()
        .unwrap();
    let n_chunks = full.chunks().len();
    drop(full);
    std::fs::write(&path, &bytes[..data_end as usize]).unwrap();

    assert!(matches!(
        StoreReader::open(&path),
        Err(TraceError::TruncatedFooter)
    ));
    let mut r = StoreReader::open_salvage(&path).unwrap();
    let s = r.salvage().unwrap();
    assert_eq!(s.chunks_recovered, n_chunks);
    assert_eq!(s.events_recovered as usize, trace.events.len());
    assert_eq!(s.tail_bytes_dropped, 0);
    assert!(!s.dict_from_preamble, "v1 has no preamble");
    // Synthesized names cover every referenced function id.
    assert!(!r.functions().is_empty());
    assert!(r.functions().iter().all(|f| f.starts_with("fn#")));
    assert_eq!(r.read_all().unwrap().events.len(), trace.events.len());
    std::fs::remove_file(&path).ok();
}

// ---- compaction preserves checksums ---------------------------------

#[test]
fn compact_reverifies_and_rewrites_crcs() {
    let t1 = synth_trace(21, 2, 40);
    let t2 = synth_trace(22, 2, 40);
    let (p1, p2, out) = (tmp("cmp-a"), tmp("cmp-b"), tmp("cmp-out"));
    write_store_from_trace(&t1, &p1, StoreOptions { chunk_events: 16 }).unwrap();
    write_store_from_trace(&t2, &p2, StoreOptions { chunk_events: 16 }).unwrap();

    compact(&[&p1, &p2], &out, StoreOptions { chunk_events: 64 }).unwrap();
    let mut r = StoreReader::open(&out).unwrap();
    assert_eq!(r.version(), 2);
    assert!(r.chunks().iter().all(|m| m.crc != 0));
    // Every output chunk re-verifies against its fresh CRC.
    for i in 0..r.chunks().len() {
        r.read_chunk(i).unwrap();
    }
    assert_eq!(r.info().events as usize, t1.events.len() + t2.events.len());

    // A corrupt input payload fails compaction with the typed error —
    // corruption cannot flow silently into a compacted store.
    let chunk0 = StoreReader::open(&p1).unwrap().chunks()[0];
    let mut bad = std::fs::read(&p1).unwrap();
    bad[chunk0.offset as usize + 40] ^= 0xff;
    std::fs::write(&p1, &bad).unwrap();
    assert!(matches!(
        compact(&[&p1, &p2], &out, StoreOptions::default()),
        Err(TraceError::ChecksumMismatch { index: 0 })
    ));
    for p in [p1, p2, out] {
        std::fs::remove_file(&p).ok();
    }
}
