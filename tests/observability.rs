//! The self-observability layer: counter determinism, the
//! zero-cost-when-off guarantee, and the parallel figure runner.
//!
//! The obs registry is process-global, so every test here serializes on
//! one mutex and runs in this dedicated binary (Rust integration-test
//! files are separate processes; tests in other files cannot pollute the
//! registry while these run).

use std::sync::Mutex;
use std::time::Instant;

use dynprof::apps::test_app;
use dynprof::core::{run_session, SessionConfig};
use dynprof::obs;
use dynprof::sim::Machine;
use dynprof::vt::Policy;

static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// Run one observed session and return the deterministic slice of the
/// registry (wall-clock metrics, whose names contain `real`, excluded).
fn observed_session(app: &str, policy: Policy, seed: u64) -> obs::Snapshot {
    obs::reset();
    obs::set_enabled(true);
    let spec = test_app(app, 4).unwrap();
    run_session(
        &spec,
        SessionConfig::new(Machine::ibm_power3_colony(), policy).with_seed(seed),
    );
    obs::set_enabled(false);
    obs::snapshot().deterministic()
}

#[test]
fn counters_are_bit_reproducible_per_seed() {
    let _g = REGISTRY_LOCK.lock().unwrap();
    let a = observed_session("sweep3d", Policy::Dynamic, 7);
    let b = observed_session("sweep3d", Policy::Dynamic, 7);
    assert!(!a.metrics.is_empty(), "observed session recorded nothing");
    assert_eq!(a, b, "same seed must reproduce every deterministic metric");
    // JSON rendering is deterministic too (the figure harness relies on
    // this for byte-identical parallel output).
    assert_eq!(a.to_json().pretty(), b.to_json().pretty());
}

#[test]
fn counters_cover_every_layer() {
    let _g = REGISTRY_LOCK.lock().unwrap();
    let snap = observed_session("smg98", Policy::Dynamic, 42);
    for expect in [
        "sim.events_dispatched",
        "sim.context_switches",
        "sim.queue_depth_high_water",
        "mpi.messages",
        "mpi.bytes",
        "mpi.collectives",
        "mpi.barrier_wait_ns",
        "dpcl.requests",
        "dpcl.msgs.install",
        "dpcl.install_latency_ns",
        "vt.events",
        "vt.bytes_flushed",
    ] {
        assert!(
            snap.metrics.iter().any(|m| m.name == expect),
            "metric {expect:?} missing from {:?}",
            snap.metrics.iter().map(|m| &m.name).collect::<Vec<_>>()
        );
    }
}

#[test]
fn disabled_observation_is_invisible() {
    let _g = REGISTRY_LOCK.lock().unwrap();
    obs::reset();
    obs::set_enabled(false);
    let spec = test_app("sweep3d", 4).unwrap();
    run_session(
        &spec,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic).with_seed(7),
    );
    let snap = obs::snapshot();
    for m in &snap.metrics {
        let zero = match &m.value {
            obs::MetricValue::Counter(v) => *v == 0,
            obs::MetricValue::Gauge(v, hw) => *v == 0 && *hw == 0,
            obs::MetricValue::Histogram(h) => h.count == 0,
        };
        assert!(
            zero,
            "metric {:?} recorded while disabled: {:?}",
            m.name, m.value
        );
    }
}

#[test]
fn disabled_check_costs_nanoseconds() {
    // The whole cost of a disabled obs site is one relaxed load + branch.
    // Budget 50 ns/check — an order of magnitude above reality (~1 ns) so
    // the test stays robust on loaded CI hosts, while still catching a
    // regression to, say, a lock or a registry lookup on the fast path.
    let _g = REGISTRY_LOCK.lock().unwrap();
    obs::set_enabled(false);
    const ITERS: u64 = 10_000_000;
    let t = Instant::now();
    let mut sink = 0u64;
    for i in 0..ITERS {
        if obs::enabled() {
            obs::counter("test.never").inc();
        }
        sink = sink.wrapping_add(i);
    }
    let per_iter = t.elapsed().as_nanos() as f64 / ITERS as f64;
    assert!(std::hint::black_box(sink) != 1);
    assert!(
        per_iter < 50.0,
        "disabled obs check costs {per_iter:.1} ns/iter (budget 50 ns)"
    );
}

#[test]
fn parallel_figure_runner_matches_serial_bytes() {
    // The fig7 sweep fans out across a worker pool; its JSON must be
    // byte-identical to the serial runner's. Exercised through the same
    // entry points the `fig7` binary uses.
    let _g = REGISTRY_LOCK.lock().unwrap();
    let serial = dynprof_bench::fig7("smg98").to_json();
    let par = dynprof_bench::fig7_with_workers("smg98", 4).to_json();
    assert_eq!(serial, par);
}

#[test]
fn parallel_fig8_matches_serial_bytes() {
    // Same byte-identity contract for the fig8 confsync sweeps (the
    // entry points the `fig8 --parallel` binary uses). Two seeds per
    // point keep the averaging path honest without the full 16-run cost.
    let _g = REGISTRY_LOCK.lock().unwrap();
    let serial = dynprof_bench::fig8c(2).to_json();
    let par = dynprof_bench::fig8c_with_workers(2, 4).to_json();
    assert_eq!(serial, par);
}

#[test]
fn parallel_fig9_matches_serial_bytes() {
    // And for the fig9 create-and-instrument sweep (`fig9 --parallel`):
    // per-app point order and degraded-label folding must survive the
    // fan-out.
    let _g = REGISTRY_LOCK.lock().unwrap();
    let serial = dynprof_bench::fig9().to_json();
    let par = dynprof_bench::fig9_with_workers(4).to_json();
    assert_eq!(serial, par);
}
