//! Closed-loop adaptive instrumentation, end-to-end: the overhead-budget
//! controller driving `VT_confsync` epochs of sweep3d sessions, plus
//! redundancy suppression in the trace library.
//!
//! The workload is sweep3d scaled so probe cost is a *large* fraction of
//! the run (~12% unbudgeted) — the regime the controller exists for. The
//! headline acceptance property: with a 5% budget, measured overhead
//! converges under budget within 4 confsync epochs, while the observer
//! (unbudgeted) run exceeds it at every epoch.

use dynprof::analysis::Profile;
use dynprof::apps::workload::Outputs;
use dynprof::apps::{sweep3d, Sweep3dParams};
use dynprof::core::{run_session, AdaptiveSettings, SessionConfig, SessionReport};
use dynprof::sim::{Machine, SimTime};
use dynprof::vt::Policy;

/// A sweep3d workload scaled so instrumentation overhead is *visible*:
/// tiny per-cell work and single-plane KBA blocks make the (fixed) probe
/// cost a large fraction of the run.
fn hot_params(iterations: usize) -> Sweep3dParams {
    Sweep3dParams {
        global_n: 16,
        k_block: 1,
        angle_groups: 4,
        iterations,
        omp_threads: 1,
        scale: 0.001,
        outputs: Outputs::new(),
    }
}

/// One adaptive sweep3d session: 4 ranks, fully instrumented, one
/// confsync epoch per flux iteration.
fn adaptive_run(settings: AdaptiveSettings, seed: u64, iterations: usize) -> SessionReport {
    let cfg = SessionConfig::new(Machine::test_machine(), Policy::Full)
        .with_seed(seed)
        .with_adaptive(settings);
    run_session(&sweep3d(4, hot_params(iterations)), cfg)
}

const BUDGET: f64 = 5.0;

/// The issue's acceptance criterion: with `--overhead-budget 5` the
/// measured overhead converges to ≤ 5% within 4 confsync epochs, while
/// an unbudgeted run exceeds it at every epoch.
#[test]
fn overhead_budget_converges_on_sweep3d() {
    let observer = adaptive_run(AdaptiveSettings::observer(), 42, 8);
    let ctrl = observer.controller.as_ref().expect("controller attached");
    let unbudgeted = ctrl.measured_series();
    assert!(
        unbudgeted.iter().all(|&pct| pct > BUDGET),
        "unbudgeted sweep3d run should exceed the {BUDGET}% budget at every epoch: {unbudgeted:?}"
    );
    assert!(
        ctrl.decisions().iter().all(|d| d.deactivated.is_empty()),
        "observer mode must never reconfigure"
    );

    let budgeted = adaptive_run(AdaptiveSettings::budget(BUDGET), 42, 8);
    let ctrl = budgeted.controller.as_ref().expect("controller attached");
    let measured = ctrl.measured_series();
    let converged_at = measured
        .iter()
        .position(|&pct| pct <= BUDGET)
        .unwrap_or(measured.len());
    assert!(
        converged_at < 4,
        "overhead should converge to ≤ {BUDGET}% within 4 epochs: {measured:?}"
    );
    // The controller did real work: probes were deactivated, and the
    // budgeted run traced less than the observer run.
    assert!(ctrl.decisions().iter().any(|d| !d.deactivated.is_empty()));
    assert!(
        budgeted.trace_bytes < observer.trace_bytes,
        "budgeted {} vs observer {}",
        budgeted.trace_bytes,
        observer.trace_bytes
    );
}

/// After every re-probe excursion (a deactivated probe periodically
/// reactivated to check whether its behavior changed), the controller
/// returns under budget within two epochs.
#[test]
fn reprobe_excursions_recover() {
    let report = adaptive_run(AdaptiveSettings::budget(BUDGET), 42, 12);
    let ctrl = report.controller.as_ref().expect("controller attached");
    let measured = ctrl.measured_series();
    let converged_at = measured
        .iter()
        .position(|&pct| pct <= BUDGET)
        .expect("never converged");
    for (i, w) in measured[converged_at..].windows(3).enumerate() {
        assert!(
            w.iter().any(|&pct| pct <= BUDGET),
            "overhead stayed over budget for 3 epochs from epoch {}: {measured:?}",
            converged_at + i
        );
    }
    // Re-probing actually happened.
    assert!(ctrl.decisions().iter().any(|d| !d.reactivated.is_empty()));
}

/// With re-probing disabled and a steady workload, the activation table
/// reaches a fixed point: after convergence no decision changes anything.
#[test]
fn activation_table_reaches_fixed_point_on_steady_workload() {
    let settings = AdaptiveSettings {
        budget_pct: BUDGET,
        reprobe_every: 0,
    };
    let report = adaptive_run(settings, 42, 10);
    let ctrl = report.controller.as_ref().expect("controller attached");
    let decisions = ctrl.decisions();
    let last_change = decisions
        .iter()
        .rposition(|d| !d.deactivated.is_empty() || !d.reactivated.is_empty())
        .expect("controller never acted");
    assert!(
        last_change < 4,
        "table should stop changing within 4 epochs; last change at round {last_change}"
    );
    let off = decisions[last_change].off_count;
    for d in &decisions[last_change + 1..] {
        assert_eq!(d.off_count, off, "off-set drifted after the fixed point");
        assert!(
            d.measured_pct <= BUDGET,
            "steady workload over budget after fixed point: {:?}",
            ctrl.measured_series()
        );
    }
}

/// Same seed, same budget → byte-identical decision log (the controller
/// is a pure function of observed statistics; ties break on probe id).
#[test]
fn controller_decisions_are_deterministic_across_runs() {
    let log = |seed| {
        let report = adaptive_run(AdaptiveSettings::budget(BUDGET), seed, 8);
        report.controller.as_ref().unwrap().decision_log()
    };
    assert_eq!(log(42), log(42));
}

/// Epoch-by-epoch activation decisions pinned for three seeds.
/// Regenerate (only with cause) via
/// `UPDATE_GOLDENS=1 cargo test --test controller controller_decisions_match`.
#[test]
fn controller_decisions_match_recorded_goldens() {
    for seed in [7u64, 21, 42] {
        let report = adaptive_run(AdaptiveSettings::budget(BUDGET), seed, 8);
        let actual = report.controller.as_ref().unwrap().decision_log();
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join(format!("tests/golden/controller_seed{seed}.txt"));
        if std::env::var("UPDATE_GOLDENS").is_ok() {
            std::fs::write(&path, &actual).expect("write golden decision log");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with UPDATE_GOLDENS=1 to record",
                path.display()
            )
        });
        if actual != expected {
            let a: Vec<&str> = actual.lines().collect();
            let b: Vec<&str> = expected.lines().collect();
            let first = a
                .iter()
                .zip(&b)
                .position(|(x, y)| x != y)
                .unwrap_or(a.len().min(b.len()));
            panic!(
                "decision log diverged from golden (seed {seed}) at line {}: \
                 actual {:?} vs expected {:?}",
                first + 1,
                a.get(first),
                b.get(first),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Redundancy suppression
// ---------------------------------------------------------------------------

/// A plain (unadaptive) sweep3d session with the given suppression floor.
fn suppressed_run(floor: SimTime) -> SessionReport {
    let cfg = SessionConfig::new(Machine::test_machine(), Policy::Full)
        .with_seed(42)
        .with_suppress_floor(floor);
    run_session(&sweep3d(4, Sweep3dParams::test()), cfg)
}

/// Suppression elides short entry/exit pairs from the trace but coalesces
/// them into per-function suppressed-count events, so the postmortem
/// profile — call counts, inclusive and exclusive times — is *exact*,
/// not approximated.
#[test]
fn suppressed_profiles_equal_unsuppressed() {
    let base = suppressed_run(SimTime::ZERO);
    let supp = suppressed_run(SimTime::from_micros(10));
    let suppressed_pairs: u64 = (0..4).map(|r| supp.vt.suppressed_pairs(r)).sum();
    assert!(suppressed_pairs > 0, "floor too low: nothing was elided");

    let t_base = base.vt.build_trace();
    let t_supp = supp.vt.build_trace();
    assert!(
        t_supp.events.len() < t_base.events.len(),
        "suppression should shrink the trace: {} vs {}",
        t_supp.events.len(),
        t_base.events.len()
    );
    assert!(supp.trace_bytes < base.trace_bytes);

    let p_base = Profile::from_trace(&t_base);
    let p_supp = Profile::from_trace(&t_supp);
    assert_eq!(p_base.per_rank.len(), p_supp.per_rank.len());
    for (key, fp) in &p_base.per_rank {
        let sp = &p_supp.per_rank[key];
        assert_eq!(fp.count, sp.count, "call count drifted at {key:?}");
        assert_eq!(fp.incl, sp.incl, "inclusive time drifted at {key:?}");
        assert_eq!(fp.excl, sp.excl, "exclusive time drifted at {key:?}");
    }
    // Timing side-effect free: suppression changes the trace, never the
    // run (probe charges are identical whether or not a pair is elided).
    assert_eq!(base.app_time, supp.app_time);
}

/// A floor of zero is suppression *off*: byte-identical trace, identical
/// measurements.
#[test]
fn floor_zero_is_byte_identical_to_suppression_off() {
    let base = suppressed_run(SimTime::ZERO);
    let cfg = SessionConfig::new(Machine::test_machine(), Policy::Full).with_seed(42);
    let off = run_session(&sweep3d(4, Sweep3dParams::test()), cfg);
    assert_eq!(base.app_time, off.app_time);
    assert_eq!(base.total_time, off.total_time);
    assert_eq!(base.trace_bytes, off.trace_bytes);
    let (tb, to) = (base.vt.build_trace(), off.vt.build_trace());
    assert_eq!(tb.events.len(), to.events.len());
    assert_eq!(tb.encode(), to.encode(), "traces must be byte-identical");
}
