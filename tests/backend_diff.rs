//! Differential oracle for the process backends: everything observable —
//! dispatch order, figure JSON, deterministic metrics, fault-injected and
//! transactional runs, happens-before verdicts — must be byte-identical
//! whether simulated processes are OS threads (`ProcBackend::Threads`,
//! the original engine) or stack-swapped coroutines
//! (`ProcBackend::Coroutine`, the default since the threadless rewrite).
//!
//! The threads backend is kept alive precisely to serve as this oracle:
//! any scheduling divergence the coroutine fast paths introduce shows up
//! here as a first-divergence diff rather than as a silent golden drift.

use std::sync::{Arc, Mutex};

use dynprof::core::{run_session, SessionConfig, SessionReport};
use dynprof::obs;
use dynprof::sim::engine::set_backend_override;
use dynprof::sim::fault::set_global_spec;
use dynprof::sim::{hb, FaultSpec, Machine, ProcBackend, Sim, SimTime};
use dynprof::vt::Policy;

/// The backend override and the obs registry are process-global, so every
/// test in this binary serializes on one gate.
static GATE: Mutex<()> = Mutex::new(());

const BOTH: [ProcBackend; 2] = [ProcBackend::Threads, ProcBackend::Coroutine];

/// Run `f` with the process-global backend override pinned to `backend`,
/// restoring the default on exit.
fn with_backend<T>(backend: ProcBackend, f: impl FnOnce() -> T) -> T {
    set_backend_override(Some(backend));
    let out = f();
    set_backend_override(None);
    out
}

/// The same mixed scheduler workload as `tests/properties.rs` (channels
/// with jittered latencies, barrier storms, a gate broadcast, deadline
/// receives, self-wakes), parameterized by backend. Returns the rendered
/// golden-format trace.
fn scheduler_trace(seed: u64, backend: ProcBackend) -> String {
    use dynprof::sim::sync::{SimBarrier, SimChannel, SimGate};
    use std::fmt::Write as _;
    const N: usize = 8;
    const ROUNDS: usize = 12;
    let sim = Sim::virtual_time_with_backend(Machine::test_machine(), seed, backend);
    let log = sim.record_dispatches();
    let stats = sim.stats();
    let chans: Vec<Arc<SimChannel<u32>>> = (0..N).map(|_| Arc::new(SimChannel::new())).collect();
    let bar = Arc::new(SimBarrier::new(N, SimTime::from_nanos(300)));
    let gate = Arc::new(SimGate::new());
    for i in 0..N {
        let chans = chans.clone();
        let bar = Arc::clone(&bar);
        let gate = Arc::clone(&gate);
        sim.spawn(format!("mix{i}"), i % 4, move |p| {
            if i == 0 {
                p.advance(SimTime::from_micros(3));
                gate.open(p, SimTime::from_nanos(500));
            } else {
                gate.wait_open(p);
            }
            for r in 0..ROUNDS {
                p.advance(p.jitter(SimTime::from_micros(1)) + SimTime::from_nanos(10));
                let lat = SimTime::from_nanos(200 + p.jitter(SimTime::from_micros(2)).as_nanos());
                chans[(i + 1) % N].send(p, (i * ROUNDS + r) as u32, lat);
                if r % 3 == 2 {
                    bar.wait(p);
                }
                if r % 4 == 1 {
                    let deadline = p.now() + p.jitter(SimTime::from_micros(3));
                    let _ = chans[i].recv_match_deadline(p, |_| true, deadline);
                } else {
                    let _ = chans[i].recv(p);
                }
                if r % 5 == 0 {
                    p.sleep(p.jitter(SimTime::from_micros(2)) + SimTime::from_nanos(1));
                }
            }
        });
    }
    let horizon = sim.run();
    let mut out = String::new();
    let _ = writeln!(out, "events {}", stats.events_dispatched());
    let _ = writeln!(out, "horizon_ns {}", horizon.as_nanos());
    for &(pid, t) in log.entries().iter() {
        let _ = writeln!(out, "{pid} {}", t.as_nanos());
    }
    out
}

/// Both backends replay the recorded dispatch goldens exactly: same
/// `(pid, time)` sequence, same event count, same horizon. The goldens
/// predate the coroutine backend (they were recorded under the threaded
/// hub-and-spoke scheduler), so this is the strongest statement that the
/// rewrite changed the cost of a handoff and nothing else.
#[test]
fn dispatch_goldens_replay_on_both_backends() {
    let _g = GATE.lock().unwrap();
    for seed in [1u64, 7, 42] {
        let expected = std::fs::read_to_string(format!(
            "{}/tests/golden/dispatch_seed{seed}.txt",
            env!("CARGO_MANIFEST_DIR")
        ))
        .expect("recorded dispatch golden");
        for backend in BOTH {
            let actual = scheduler_trace(seed, backend);
            assert_eq!(
                actual, expected,
                "dispatch trace diverged from golden (seed {seed}, {backend:?})"
            );
        }
    }
}

fn session(app: &str, policy: Policy, seed: u64) -> SessionReport {
    let spec = dynprof::apps::test_app(app, 4).unwrap();
    run_session(
        &spec,
        SessionConfig::new(Machine::ibm_power3_colony(), policy).with_seed(seed),
    )
}

/// Seeded session matrix: every deterministic field of a full dynprof
/// session — timings, trace volume, the built VT trace bytes — is
/// identical across backends, for MPI and OpenMP apps, static and
/// dynamic policies, over several seeds.
#[test]
fn seeded_sessions_identical_across_backends() {
    let _g = GATE.lock().unwrap();
    for (app, policy) in [
        ("smg98", Policy::Full),
        ("sweep3d", Policy::Dynamic),
        ("umt98", Policy::Dynamic),
    ] {
        for seed in [3u64, 11, 42] {
            let t = with_backend(ProcBackend::Threads, || session(app, policy, seed));
            let c = with_backend(ProcBackend::Coroutine, || session(app, policy, seed));
            let ctx = format!("{app}/{policy}/seed {seed}");
            assert_eq!(t.app_time, c.app_time, "app_time ({ctx})");
            assert_eq!(t.total_time, c.total_time, "total_time ({ctx})");
            assert_eq!(t.create_time, c.create_time, "create_time ({ctx})");
            assert_eq!(
                t.instrument_time, c.instrument_time,
                "instrument_time ({ctx})"
            );
            assert_eq!(t.trace_bytes, c.trace_bytes, "trace_bytes ({ctx})");
            assert_eq!(
                t.vt.build_trace(),
                c.vt.build_trace(),
                "VT trace bytes ({ctx})"
            );
        }
    }
}

/// Render figure JSON plus the full deterministic metrics snapshot
/// (scheduler-transport counters *included* — the backends must agree
/// even on direct-handoff and fallback counts, since the dispatch
/// decisions are shared code) under one backend.
fn figure_and_metrics(backend: ProcBackend) -> (String, String) {
    with_backend(backend, || {
        obs::reset();
        obs::set_enabled(true);
        let fig = dynprof_bench::fig9().to_json();
        obs::set_enabled(false);
        let snap = obs::snapshot().deterministic();
        (fig, snap.to_json().pretty())
    })
}

/// Figure JSON and deterministic metrics are byte-identical across
/// backends, including the dispatch accounting the metrics goldens
/// deliberately exclude.
#[test]
fn figures_and_metrics_identical_across_backends() {
    let _g = GATE.lock().unwrap();
    set_global_spec(None);
    let (fig_t, met_t) = figure_and_metrics(ProcBackend::Threads);
    let (fig_c, met_c) = figure_and_metrics(ProcBackend::Coroutine);
    assert_eq!(fig_t, fig_c, "figure JSON must be byte-identical");
    assert_eq!(met_t, met_c, "deterministic metrics must be byte-identical");
}

/// `--faults` byte-identity: with an *active* fault plan (the default
/// `lossy` profile: drops, duplicates, delays), every fault decision
/// derives from the seed, so the two backends must still produce
/// byte-identical figures — and with the plan removed the output returns
/// to the unfaulted baseline on both.
#[test]
fn faulted_runs_identical_across_backends() {
    let _g = GATE.lock().unwrap();
    set_global_spec(Some(FaultSpec::parse("7:lossy").expect("spec")));
    let fig_t = with_backend(ProcBackend::Threads, || dynprof_bench::fig9().to_json());
    let fig_c = with_backend(ProcBackend::Coroutine, || dynprof_bench::fig9().to_json());
    set_global_spec(None);
    assert_eq!(fig_t, fig_c, "faulted figure JSON must be byte-identical");
}

/// `--txn` byte-identity: the transactional control plane (2PC epochs,
/// degraded-mode policy armed) behaves identically on both backends.
#[test]
fn txn_runs_identical_across_backends() {
    let _g = GATE.lock().unwrap();
    set_global_spec(None);
    dynprof_bench::set_txn_policy(Some(dynprof::dpcl::DegradedPolicy::ExcludeNode));
    let fig_t = with_backend(ProcBackend::Threads, || dynprof_bench::fig9().to_json());
    let fig_c = with_backend(ProcBackend::Coroutine, || dynprof_bench::fig9().to_json());
    dynprof_bench::set_txn_policy(None);
    assert_eq!(fig_t, fig_c, "txn figure JSON must be byte-identical");
}

/// Happens-before clean on both backends (`--features check` builds):
/// the detector sees the same event graph through the coroutine
/// suspension points as through the threaded ones, and both runs are
/// race-free with identical rendered reports.
#[test]
fn hb_check_clean_and_identical_across_backends() {
    let _g = GATE.lock().unwrap();
    if !hb::compiled() {
        return; // detector not compiled in; covered by the check-feature CI leg
    }
    let run = |backend| {
        with_backend(backend, || {
            use dynprof::sim::sync::{SimBarrier, SimChannel};
            let sim = Sim::virtual_time(Machine::test_machine(), 5);
            sim.enable_check();
            let check = sim.check_handle();
            let chan = Arc::new(SimChannel::new());
            let bar = Arc::new(SimBarrier::new(4, SimTime::from_nanos(250)));
            for i in 0..4u64 {
                let chan = Arc::clone(&chan);
                let bar = Arc::clone(&bar);
                sim.spawn(format!("p{i}"), (i % 2) as usize, move |p| {
                    for r in 0..6u64 {
                        p.advance(SimTime::from_nanos(100 * (i + 1)));
                        chan.send(p, i * 10 + r, SimTime::from_nanos(300));
                        let _ = chan.recv(p);
                        bar.wait(p);
                    }
                });
            }
            let horizon = sim.run();
            let report = check.report();
            (horizon, report.is_clean(), report.render())
        })
    };
    let (h_t, clean_t, rep_t) = run(ProcBackend::Threads);
    let (h_c, clean_c, rep_c) = run(ProcBackend::Coroutine);
    assert_eq!(h_t, h_c, "horizon must match");
    assert_eq!(rep_t, rep_c, "HB reports must be byte-identical");
    assert!(clean_t && clean_c, "HB run should be clean: {rep_t}");
}
