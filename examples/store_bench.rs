//! Measure the chunk-indexed trace store against the load-everything
//! path: peak RSS and query latency for `top` (full-trace profile) and
//! `slice` (short window), on a legacy `.vgvt` flat file vs a `.vgvs`
//! store of the same events. Feeds the EXPERIMENTS.md "Trace store"
//! table; run each mode in a fresh process so `VmHWM` isolates one path.
//!
//! ```console
//! $ cargo run --release --example store_bench -- gen 1000 40 42 /tmp/synth
//! $ cargo run --release --example store_bench -- legacy /tmp/synth.vgvt <t0ns> <t1ns>
//! $ cargo run --release --example store_bench -- stream /tmp/synth.vgvs <t0ns> <t1ns>
//! $ cargo run --release --example store_bench -- salvage /tmp/synth.vgvs
//! ```
//!
//! `salvage` strips the footer from a copy of the store (simulating a
//! crash after the last chunk flush) and times the forward-scan
//! recovery — the "salvage time vs store size" rows in EXPERIMENTS.md.

use std::time::Instant;

use dynprof::analysis::store::{write_store_from_trace, StoreOptions, StoreReader};
use dynprof::analysis::{
    read_trace, slice_report, top_report, write_trace, Profile, ProfileOptions, TimelineBuilder,
    TimelineOptions,
};
use dynprof::sim::rng::SimRng;
use dynprof::sim::SimTime;
use dynprof::vt::{Event, Trace, VtFuncId};

/// Peak resident set size of this process, from `/proc/self/status`.
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix(" kB").and_then(|n| n.parse().ok()))
        .unwrap_or(0)
}

/// Per-rank causal synthetic streams (same generator family as
/// `tests/trace_store.rs`), concatenated rank-major.
fn synth_trace(seed: u64, ranks: u32, steps: u64) -> Trace {
    let mut events = Vec::new();
    for rank in 0..ranks {
        let mut rng = SimRng::new(seed, rank as u64);
        let mut t = rng.gen_range_u64(0..=5_000);
        for _ in 0..steps {
            t += 1_000 + rng.gen_range_u64(0..=2_000);
            let t0 = SimTime::from_nanos(t);
            match rng.gen_range_u64(0..=2) {
                0 => {
                    let dur = 500 + rng.gen_range_u64(0..=1_500);
                    let func = VtFuncId(rng.gen_range_u64(0..=2) as u32);
                    events.push(Event::FuncEnter {
                        t: t0,
                        rank,
                        thread: 0,
                        func,
                    });
                    t += dur;
                    events.push(Event::FuncExit {
                        t: SimTime::from_nanos(t),
                        rank,
                        thread: 0,
                        func,
                    });
                }
                1 => {
                    let dur = rng.gen_range_u64(100..=3_000);
                    events.push(Event::MpiCall {
                        t: t0,
                        t_end: SimTime::from_nanos(t + dur),
                        rank,
                        op: 2,
                        peer: ((rank + 1) % ranks.max(2)) as i32,
                        bytes: rng.gen_range_u64(8..=4_096),
                    });
                    t += dur;
                }
                _ => {
                    let span = rng.gen_range_u64(200..=2_000);
                    events.push(Event::FuncBatch {
                        t: t0,
                        rank,
                        thread: 0,
                        func: VtFuncId(rng.gen_range_u64(0..=2) as u32),
                        count: rng.gen_range_u64(1..=50),
                        span: SimTime::from_nanos(span),
                    });
                    t += span;
                }
            }
        }
    }
    Trace {
        program: "synth".into(),
        functions: vec!["alpha".into(), "beta".into(), "gamma".into()],
        events,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: store_bench gen <ranks> <steps> <seed> <base-path>\n\
         \x20      store_bench legacy <trace.vgvt> <t0ns> <t1ns>\n\
         \x20      store_bench stream <store.vgvs> <t0ns> <t1ns>\n\
         \x20      store_bench salvage <store.vgvs>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let [_, ranks, steps, seed, base] = &args[..] else {
                usage()
            };
            let trace = synth_trace(
                seed.parse().unwrap(),
                ranks.parse().unwrap(),
                steps.parse().unwrap(),
            );
            let vgvt = format!("{base}.vgvt");
            let vgvs = format!("{base}.vgvs");
            let legacy_bytes = write_trace(&trace, &vgvt).unwrap();
            let stats =
                write_store_from_trace(&trace, &vgvs, StoreOptions { chunk_events: 256 }).unwrap();
            let (lo, hi) = trace.events.iter().fold((u64::MAX, 0), |(lo, hi), e| {
                (lo.min(e.time().as_nanos()), hi.max(e.time().as_nanos()))
            });
            println!(
                "gen: {} events, {} ranks | {vgvt}: {legacy_bytes} bytes | {vgvs}: {} bytes in {} chunks | span {lo}..{hi} ns",
                trace.events.len(),
                ranks,
                stats.bytes,
                stats.chunks,
            );
        }
        Some("legacy") => {
            let [_, path, t0, t1] = &args[..] else {
                usage()
            };
            let (t0, t1): (u64, u64) = (t0.parse().unwrap(), t1.parse().unwrap());
            let start = Instant::now();
            let trace = read_trace(path).unwrap();
            let load = start.elapsed();

            let start = Instant::now();
            let profile = Profile::from_trace_opts(&trace, ProfileOptions::default());
            let top = start.elapsed();

            // The legacy slice still has to scan (and hold) every event.
            let start = Instant::now();
            let mut tl = TimelineBuilder::new(
                &trace.program,
                SimTime::from_nanos(t0),
                SimTime::from_nanos(t1),
                TimelineOptions {
                    width: 64,
                    per_thread: false,
                },
            );
            for ev in &trace.events {
                tl.push(ev);
            }
            let slice = tl.finish();
            let slice_t = start.elapsed();

            println!(
                "legacy: load {:.1} ms | top {:.1} ms ({} functions) | slice {:.1} ms ({} rows) | peak RSS {} kB",
                load.as_secs_f64() * 1e3,
                top.as_secs_f64() * 1e3,
                profile.hot_functions().len(),
                slice_t.as_secs_f64() * 1e3,
                slice.lines().count(),
                peak_rss_kb(),
            );
        }
        Some("stream") => {
            let [_, path, t0, t1] = &args[..] else {
                usage()
            };
            let (t0, t1): (u64, u64) = (t0.parse().unwrap(), t1.parse().unwrap());
            let start = Instant::now();
            let mut reader = StoreReader::open(path).unwrap();
            let open = start.elapsed();

            let start = Instant::now();
            let report = top_report(&mut reader, 20, ProfileOptions::default()).unwrap();
            let top = start.elapsed();

            let start = Instant::now();
            let (_, stats) = slice_report(
                &mut reader,
                SimTime::from_nanos(t0),
                SimTime::from_nanos(t1),
                None,
                64,
            )
            .unwrap();
            let slice_t = start.elapsed();

            println!(
                "stream: open {:.2} ms | top {:.1} ms ({} lines) | slice {:.1} ms ({} of {} chunks decoded, {} skipped) | peak chunk {} kB | peak RSS {} kB",
                open.as_secs_f64() * 1e3,
                top.as_secs_f64() * 1e3,
                report.lines().count(),
                slice_t.as_secs_f64() * 1e3,
                stats.chunks_decoded,
                stats.chunks_considered,
                stats.chunks_skipped,
                reader.peak_chunk_bytes() / 1024,
                peak_rss_kb(),
            );
        }
        Some("salvage") => {
            let [_, path] = &args[..] else { usage() };
            // Crash facsimile: the whole data region survived but the
            // footer never made it to disk.
            let bytes = std::fs::read(path).unwrap();
            let reader = StoreReader::open(path).unwrap();
            let data_end = reader
                .chunks()
                .iter()
                .map(|c| c.offset + 40 + c.enc_len as u64)
                .max()
                .unwrap_or(0);
            let torn = format!("{path}.torn");
            std::fs::write(&torn, &bytes[..data_end as usize]).unwrap();

            let start = Instant::now();
            let mut salvaged = StoreReader::open_salvage(&torn).unwrap();
            let scan = start.elapsed();
            let summary = salvaged.salvage().unwrap();

            let start = Instant::now();
            let report = top_report(&mut salvaged, 20, ProfileOptions::default()).unwrap();
            let query = start.elapsed();

            std::fs::remove_file(&torn).ok();
            println!(
                "salvage: {} bytes footer-less | scan {:.2} ms ({} chunks, {} events, {} tail bytes) | top-after-salvage {:.1} ms ({} lines)",
                data_end,
                scan.as_secs_f64() * 1e3,
                summary.chunks_recovered,
                summary.events_recovered,
                summary.tail_bytes_dropped,
                query.as_secs_f64() * 1e3,
                report.lines().count(),
            );
        }
        _ => usage(),
    }
}
