//! Compare all five Table-3 instrumentation policies on one kernel — a
//! single column of paper Fig 7.
//!
//! Run with: `cargo run --release --example policy_comparison [app] [cpus]`
//! (defaults: smg98 at 8 CPUs, paper-scale workload).

use dynprof::apps::paper_app;
use dynprof::core::{run_session, SessionConfig};
use dynprof::sim::Machine;
use dynprof::vt::{Policy, ALL_POLICIES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app_name = args
        .first()
        .map(String::as_str)
        .unwrap_or("smg98")
        .to_string();
    let cpus: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("== {app_name} at {cpus} CPUs under every instrumentation policy ==\n");
    println!(
        "{:<10} {:>12} {:>10} {:>16} {:>14}",
        "policy", "app time", "vs None", "trace bytes", "probe pairs"
    );

    let baseline = {
        let (app, _) = paper_app(&app_name, cpus).expect("known app");
        run_session(
            &app,
            SessionConfig::new(Machine::ibm_power3_colony(), Policy::None),
        )
        .app_time
    };
    for policy in ALL_POLICIES {
        let (app, _) = paper_app(&app_name, cpus).expect("known app");
        let report = run_session(
            &app,
            SessionConfig::new(Machine::ibm_power3_colony(), policy),
        );
        println!(
            "{:<10} {:>12} {:>9.2}x {:>16} {:>14}",
            policy.label(),
            report.app_time.to_string(),
            report.app_time.as_secs_f64() / baseline.as_secs_f64(),
            report.trace_bytes,
            report.probe_pairs_installed
        );
    }
    println!(
        "\nThe paper's hierarchy: Full >> Full-Off ~= Subset >> Dynamic ~= None \
         (Fig 7; the gap shrinks with function granularity)."
    );
}
