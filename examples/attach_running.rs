//! Dynamic attachment to an already executing application — the extension
//! paper §3.3 leaves as future work ("we do not foresee any difficult
//! issues in extending our tool to support dynamic attachment").
//!
//! Sppm launches on its own with no instrumentation at all; 100 ms into
//! the run, dynprof attaches through the DPCL daemons, suspends the
//! processes, patches the seven hot hydro kernels, resumes, observes for
//! 400 ms, removes its probes, and detaches. The resulting trace holds a
//! mid-flight snapshot, and the two suspension windows per rank are
//! visible to the analysis (paper §5.1).
//!
//! Run with: `cargo run --example attach_running`

use dynprof::analysis::{suspension_windows, Profile, ProfileOptions};
use dynprof::apps::{sppm, SppmParams};
use dynprof::core::{run_attach_session, SessionConfig};
use dynprof::sim::{Machine, SimTime};
use dynprof::vt::Policy;

fn main() {
    let ranks = 4;
    let mut params = SppmParams::test();
    params.scale = 1.0;
    params.base_steps = 10;
    let app = sppm(ranks, params);

    let report = run_attach_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic).with_seed(31),
        SimTime::from_millis(100),
        SimTime::from_millis(400),
    );

    println!("== dynamic attachment to a running sppm ({ranks} ranks) ==\n");
    println!("attach time      : {}", report.create_time);
    println!("instrument time  : {}", report.instrument_time);
    println!("probe pairs      : {}", report.probe_pairs_installed);
    println!("app ran          : {}", report.app_time);
    println!("trace volume     : {} bytes", report.trace_bytes);

    let trace = report.vt.build_trace();
    let windows = suspension_windows(&trace);
    println!("\nsuspension windows (install + removal):");
    for (rank, ws) in &windows {
        let total: f64 = ws.iter().map(|(a, b)| (*b - *a).as_secs_f64()).sum();
        println!("  rank {rank}: {} windows, {total:.4} s total", ws.len());
    }

    println!("\n-- profile of the observation window (suspensions excluded) --");
    let profile = Profile::from_trace_opts(
        &trace,
        ProfileOptions {
            exclude_suspensions: true,
        },
    );
    print!("{}", profile.render_top(8));
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }
}
