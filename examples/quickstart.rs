//! Quickstart: a scripted dynprof session.
//!
//! Spawns the Sweep3d kernel suspended under the instrumenter, queues
//! instrumentation for every function (Sweep3d's `Dynamic` subset is all
//! 21), starts the run — the paper's Fig-6 protocol defers the actual
//! patching until `MPI_Init` completes on every rank — and prints the
//! resulting profile and dynprof's internal timefile.
//!
//! Run with: `cargo run --example quickstart`

use dynprof::analysis::Profile;
use dynprof::apps::{sweep3d, Sweep3dParams};
use dynprof::core::{run_session, Command, SessionConfig};
use dynprof::sim::Machine;
use dynprof::vt::Policy;

fn main() {
    let ranks = 4;
    let app = sweep3d(ranks, Sweep3dParams::test());

    // The same script a user would pipe into dynprof (paper §3.3).
    let script = Command::parse_script(
        "# instrument everything, then run to completion\n\
         insert-file all\n\
         start\n\
         quit\n",
    )
    .expect("script parses");

    let cfg = SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic).with_script(script);
    let report = run_session(&app, cfg);

    println!("== dynprof quickstart: sweep3d on {ranks} ranks ==\n");
    println!(
        "created + instrumented in {} ({} probe pairs), app ran {}",
        report.create_and_instrument(),
        report.probe_pairs_installed,
        report.app_time
    );
    println!("trace volume: {} bytes\n", report.trace_bytes);

    println!("-- profile (top 10 functions) --");
    let profile = Profile::from_trace(&report.vt.build_trace());
    print!("{}", profile.render_top(10));

    println!("\n-- dynprof timefile --");
    print!("{}", report.timefile.render());

    for w in &report.warnings {
        eprintln!("warning: {w}");
    }
}
