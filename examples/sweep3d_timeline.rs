//! Reproduce paper Fig 4: the VGV time-line display of Sweep3d running
//! with 8 MPI processes × 4 OpenMP threads, rendered as ASCII art.
//!
//! MPI processes appear as horizontal bars (`M` = inside an MPI call,
//! `#` = inside an instrumented function) with the OpenMP wiggle glyph
//! (`~`) superimposed where parallel regions execute; per-thread rows
//! expand each team.
//!
//! Run with: `cargo run --example sweep3d_timeline`

use dynprof::analysis::{render, TimelineOptions};
use dynprof::apps::{sweep3d, Sweep3dParams};
use dynprof::core::{run_session, SessionConfig};
use dynprof::sim::Machine;
use dynprof::vt::Policy;

fn main() {
    // The paper's display: 8 MPI processes x 4 OpenMP threads.
    let params = Sweep3dParams::test().with_threads(4);
    let app = sweep3d(8, params);
    let report = run_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Full),
    );

    let trace = report.vt.build_trace();
    println!("== VGV time-line (Fig 4): sweep3d, 8 MPI processes x 4 OpenMP threads ==\n");
    print!(
        "{}",
        render(
            &trace,
            TimelineOptions {
                width: 96,
                per_thread: true,
            }
        )
    );
    println!(
        "\n{} events, {} modelled trace bytes",
        trace.events.len(),
        report.trace_bytes
    );
}
