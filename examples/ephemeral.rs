//! Ephemeral instrumentation — the Traub-style insert/observe/remove
//! pattern the paper supports with `wait` between `insert` and `remove`
//! (§2 "ephemeral instrumentation", §3.3 scripting).
//!
//! The script instruments Sppm's hot hydro kernels only for a window in
//! the middle of the run: probes go in at startup, are removed at a later
//! point (all processes are suspended for the patch, §3.4), and the rest
//! of the run proceeds unperturbed. The trace therefore contains a
//! bounded snapshot instead of the full run.
//!
//! Run with: `cargo run --example ephemeral`

use dynprof::apps::{sppm, SppmParams};
use dynprof::core::{run_session, Command, SessionConfig};
use dynprof::sim::{Machine, SimTime};
use dynprof::vt::Policy;

fn main() {
    let ranks = 4;
    // A mid-sized run (~100 ms of virtual computation) so the observation
    // window lands inside it.
    let mut params = SppmParams::test();
    params.scale = 0.25;
    params.base_steps = 6;
    let app = sppm(ranks, params);

    // insert -> start -> (observe for 40 ms of execution) -> remove -> quit
    let script = vec![
        Command::InsertFile(vec!["subset".into()]),
        Command::Start,
        Command::Wait(SimTime::from_millis(40)),
        Command::RemoveFile(vec!["subset".into()]),
        Command::Quit,
    ];
    let cfg = SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic).with_script(script);
    let report = run_session(&app, cfg);

    println!("== ephemeral instrumentation of sppm ({ranks} ranks) ==\n");
    println!("timefile:");
    print!("{}", report.timefile.render());

    let trace = report.vt.build_trace();
    let window: Vec<_> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            dynprof::vt::Event::FuncEnter { t, .. } | dynprof::vt::Event::FuncBatch { t, .. } => {
                Some(*t)
            }
            _ => None,
        })
        .collect();
    match (window.iter().min(), window.iter().max()) {
        (Some(a), Some(b)) => {
            println!(
                "\nfunction events confined to the observation window: {a} .. {b} \
                 (app ran {})",
                report.app_time
            );
        }
        _ => println!("\nno function events captured (window missed the computation)"),
    }
    println!("trace volume: {} bytes", report.trace_bytes);
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }
}
