//! Dynamic control of instrumentation (paper §2, §5, Fig 2).
//!
//! A statically instrumented application starts with all probes disabled
//! by its configuration file (the `Full-Off` state), computes in phases,
//! and calls `VT_confsync` at the safe point between phases. Mid-run, the
//! monitoring tool posts a configuration change that activates only the
//! solver symbols — so phase 2 is traced while phase 1 was not — and a
//! second safe point writes runtime statistics (Experiment 3).
//!
//! Run with: `cargo run --example dynamic_control`

use std::sync::Arc;

use dynprof::mpi::{launch, JobSpec};
use dynprof::sim::{Machine, Sim, SimTime};
use dynprof::vt::{confsync, ConfigDelta, MonitorLink, VtConfig, VtLib, VtMpiHooks};

fn main() {
    let ranks = 4;
    let machine = Machine::ibm_power3_colony();
    // Compile-time state: everything instrumented, everything off.
    let vt = VtLib::new("phased-solver", ranks, VtConfig::all_off(), machine.probe);
    let monitor = MonitorLink::new();

    // The user, through the monitoring tool's GUI, queues a change: turn
    // the solver symbols on at the next safe point. The 1.5 s response
    // delay models the human at the breakpoint (paper §5: "the user's
    // monitoring interface will be the critical path component").
    monitor.post_change(
        ConfigDelta::Set(vec![("solve_".to_string() + "*", true)]),
        SimTime::from_millis(1500),
    );

    let sim = Sim::virtual_time(machine, 7);
    let (vt2, mon2) = (Arc::clone(&vt), Arc::clone(&monitor));
    launch(
        &sim,
        JobSpec::new("phased-solver", ranks),
        vec![VtMpiHooks::new(Arc::clone(&vt))],
        move |p, comm| {
            comm.init(p);
            let solve = vt2.funcdef(p, "solve_pressure");
            let io = vt2.funcdef(p, "write_checkpoint");
            let phase = |label: &str| {
                // One computation phase: 50 solver calls + one I/O call.
                for _ in 0..50 {
                    vt2.begin(p, comm.rank(), 0, solve, 1);
                    p.advance(SimTime::from_millis(2));
                    vt2.end(p, comm.rank(), 0, solve);
                }
                vt2.begin(p, comm.rank(), 0, io, 1);
                p.advance(SimTime::from_millis(5));
                vt2.end(p, comm.rank(), 0, io);
                let _ = label;
            };

            phase("one"); // probes off: only table lookups
            let out = confsync(&vt2, &mon2, p, comm, false);
            if comm.rank() == 0 {
                println!(
                    "safe point 1: epoch {} ({} symbols flipped)",
                    out.epoch, out.functions_changed
                );
            }
            phase("two"); // solver probes now live
            let out = confsync(&vt2, &mon2, p, comm, true); // + statistics
            if comm.rank() == 0 {
                println!("safe point 2: epoch {} (stats written)", out.epoch);
            }
            comm.finalize(p);
        },
    );
    let makespan = sim.run();

    println!("\nrun finished at {makespan}");
    let trace = vt.build_trace();
    let solve_events = trace
        .events
        .iter()
        .filter(|e| {
            matches!(e,
                dynprof::vt::Event::FuncEnter { func, .. }
                if trace.func_name(*func) == "solve_pressure")
        })
        .count();
    println!(
        "solve_pressure enter-events in the trace: {solve_events} \
         (phase 2 only: 50 calls x {ranks} ranks)"
    );
    assert_eq!(solve_events, 50 * ranks);

    for snap in monitor.snapshots() {
        println!(
            "statistics snapshot at {}: {} ranks, {} rows",
            snap.t,
            snap.per_rank.len(),
            snap.total_rows()
        );
    }
}
