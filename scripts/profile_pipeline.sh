#!/usr/bin/env bash
# profile_pipeline.sh — reproducible CPU/syscall profiling for the engine bench.
#
# Produces timestamped artifacts under results/profiles/ so optimization
# rounds (threads vs coroutine backend, before/after a scheduler change)
# can be compared across sessions. Tools that are absent degrade
# gracefully: the bench always runs and its JSON + log are always
# captured; perf/strace/time layers are added only when available.
#
# Usage:
#   scripts/profile_pipeline.sh
#   BACKENDS=coroutine PROFILE_FREQ=499 scripts/profile_pipeline.sh
#   OUT_ROOT=/tmp/profiles scripts/profile_pipeline.sh
#
# Environment:
#   BACKENDS      Space-delimited backends to profile: threads coroutine
#                 (default: "threads coroutine")
#   PROFILE_FREQ  perf sampling frequency for perf record (default: 199)
#   OUT_ROOT      Output root directory (default: results/profiles)
#   RUN_TS        Override the UTC run timestamp (default: now)
#   BENCH_JSON    Where the bench writes its machine-readable rows
#                 (default: <run dir>/BENCH_engine.json); the checked-in
#                 BENCH_engine.json is never touched by this script.

set -euo pipefail

cd "$(dirname "$0")/.."

BACKENDS="${BACKENDS:-threads coroutine}"
PROFILE_FREQ="${PROFILE_FREQ:-199}"
OUT_ROOT="${OUT_ROOT:-results/profiles}"
RUN_TS="${RUN_TS:-$(date -u +%Y%m%dT%H%M%SZ)}"

for b in ${BACKENDS}; do
    if [[ "${b}" != "threads" && "${b}" != "coroutine" ]]; then
        echo "ERROR: BACKENDS entries must be threads or coroutine (got: ${b})" >&2
        exit 1
    fi
done

if ! command -v cargo >/dev/null 2>&1; then
    echo "ERROR: cargo not found in PATH" >&2
    exit 1
fi

HAVE_PERF=0
HAVE_STRACE=0
HAVE_TIME=0
command -v perf >/dev/null 2>&1 && HAVE_PERF=1
command -v strace >/dev/null 2>&1 && HAVE_STRACE=1
[[ -x /usr/bin/time ]] && HAVE_TIME=1

# perf needs kernel.perf_event_paranoid <= 2 for userspace sampling; lower
# it for the run if we can, and always restore the original value.
ORIG_PERF_PARANOID=""
PARANOID_ADJUSTED=0
if [[ "${HAVE_PERF}" -eq 1 && -r /proc/sys/kernel/perf_event_paranoid ]]; then
    ORIG_PERF_PARANOID="$(cat /proc/sys/kernel/perf_event_paranoid)"
    if [[ "${ORIG_PERF_PARANOID}" -gt 2 ]]; then
        if sudo -n true >/dev/null 2>&1; then
            sudo -n sysctl -w kernel.perf_event_paranoid=2 >/dev/null
            PARANOID_ADJUSTED=1
        else
            echo "WARN: perf_event_paranoid=${ORIG_PERF_PARANOID} and no sudo -n; skipping perf layers" >&2
            HAVE_PERF=0
        fi
    fi
fi
restore_perf_paranoid() {
    if [[ "${PARANOID_ADJUSTED}" -eq 1 && -n "${ORIG_PERF_PARANOID}" ]]; then
        sudo -n sysctl -w "kernel.perf_event_paranoid=${ORIG_PERF_PARANOID}" >/dev/null || true
    fi
}
trap restore_perf_paranoid EXIT

RUN_DIR="${OUT_ROOT}/${RUN_TS}"
mkdir -p "${RUN_DIR}"
BENCH_JSON="${BENCH_JSON:-${RUN_DIR}/BENCH_engine.json}"

echo "== profile_pipeline ${RUN_TS} =="
echo "   backends: ${BACKENDS}"
echo "   perf=${HAVE_PERF} strace=${HAVE_STRACE} time=${HAVE_TIME}"
echo "   artifacts: ${RUN_DIR}/"

# One release build up front so timed runs never include compilation.
cargo build --release -p dynprof-bench --benches >"${RUN_DIR}/build.log" 2>&1
BENCH_BIN="$(ls -t target/release/deps/engine_bench-* 2>/dev/null \
    | grep -v '\.d$' | head -1 || true)"
if [[ -z "${BENCH_BIN}" ]]; then
    echo "ERROR: engine_bench binary not found under target/release/deps" >&2
    exit 1
fi
chmod +x "${BENCH_BIN}" 2>/dev/null || true
echo "   bench bin: ${BENCH_BIN}"

{
    echo "run_ts=${RUN_TS}"
    echo "backends=${BACKENDS}"
    echo "bench_bin=${BENCH_BIN}"
    echo "rustc=$(rustc --version)"
    echo "host=$(uname -srm)"
    echo "nproc=$(nproc 2>/dev/null || echo '?')"
    echo "git=$(git rev-parse --short HEAD 2>/dev/null || echo 'no-git')"
} >"${RUN_DIR}/meta.txt"

# Pass 1: the full bench — every workload on both backends, in-bench
# cross-backend event-count check, JSON dump to the run dir (the
# checked-in BENCH_engine.json is untouched because BENCH_ENGINE_OUT
# points into RUN_DIR). Wall-clock/RSS via /usr/bin/time when present.
echo "-- bench (all workloads, both backends) --"
if [[ "${HAVE_TIME}" -eq 1 ]]; then
    /usr/bin/time -v -o "${RUN_DIR}/time.txt" \
        env BENCH_ENGINE_OUT="${BENCH_JSON}" "${BENCH_BIN}" --bench \
        | tee "${RUN_DIR}/bench.log"
else
    BENCH_ENGINE_OUT="${BENCH_JSON}" "${BENCH_BIN}" --bench \
        | tee "${RUN_DIR}/bench.log"
fi

# Pass 2: one backend at a time (BENCH_ENGINE_BACKENDS restricts the
# bench, which then skips its JSON dump) under perf/strace so the
# samples and syscall counts are attributable to a single backend. The
# strace layer is the motivating measurement: per-event futex pairs on
# the threads backend vs. none on the coroutine backend.
for backend in ${BACKENDS}; do
    if [[ "${HAVE_PERF}" -eq 1 ]]; then
        echo "-- perf stat (${backend}) --"
        perf stat -o "${RUN_DIR}/perf_stat_${backend}.txt" -- \
            env BENCH_ENGINE_BACKENDS="${backend}" "${BENCH_BIN}" --bench \
            >/dev/null 2>>"${RUN_DIR}/perf_stat_${backend}.txt" || \
            echo "WARN: perf stat failed for ${backend}" >&2
        echo "-- perf record -F ${PROFILE_FREQ} (${backend}) --"
        if perf record -F "${PROFILE_FREQ}" -g \
            -o "${RUN_DIR}/perf_${backend}.data" -- \
            env BENCH_ENGINE_BACKENDS="${backend}" "${BENCH_BIN}" --bench \
            >/dev/null 2>&1; then
            perf report --stdio -i "${RUN_DIR}/perf_${backend}.data" \
                >"${RUN_DIR}/perf_report_${backend}.txt" 2>/dev/null || true
        else
            echo "WARN: perf record failed for ${backend}" >&2
        fi
    fi
    if [[ "${HAVE_STRACE}" -eq 1 ]]; then
        echo "-- strace -c (${backend}) --"
        strace -f -c -o "${RUN_DIR}/strace_${backend}.txt" \
            env BENCH_ENGINE_BACKENDS="${backend}" "${BENCH_BIN}" --bench \
            >/dev/null 2>&1 || \
            echo "WARN: strace failed for ${backend}" >&2
    fi
done

echo "== done: $(ls "${RUN_DIR}" | wc -l) artifacts in ${RUN_DIR}/ =="
