//! Typed message payloads.
//!
//! Real MPI moves untyped buffers; we keep Rust types end-to-end but still
//! need a *modelled wire size* for the communication cost model. The
//! [`MpiData`] trait supplies that size. Payloads travel as
//! `Box<dyn Any + Send>` and are downcast on receive.

/// A type that can be sent as an MPI message payload.
pub trait MpiData: Send + 'static {
    /// Modelled wire size in bytes.
    fn byte_len(&self) -> usize;
}

macro_rules! scalar_data {
    ($($t:ty),*) => {
        $(impl MpiData for $t {
            fn byte_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

scalar_data!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl MpiData for () {
    fn byte_len(&self) -> usize {
        0
    }
}

impl<T: Send + 'static> MpiData for Vec<T> {
    fn byte_len(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl MpiData for String {
    fn byte_len(&self) -> usize {
        self.len()
    }
}

impl<A: MpiData, B: MpiData> MpiData for (A, B) {
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len()
    }
}

impl<A: MpiData, B: MpiData, C: MpiData> MpiData for (A, B, C) {
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len() + self.2.byte_len()
    }
}

/// A payload with an explicitly modelled size, for when the simulated
/// message is far larger than the Rust value carrying it (e.g. a halo
/// exchange whose real size is millions of doubles, represented by a
/// checksum).
#[derive(Clone, Debug, PartialEq)]
pub struct Sized<T> {
    /// The carried value.
    pub value: T,
    /// The modelled wire size in bytes.
    pub wire_bytes: usize,
}

impl<T> Sized<T> {
    /// Wrap `value`, declaring its modelled size.
    pub fn new(value: T, wire_bytes: usize) -> Sized<T> {
        Sized { value, wire_bytes }
    }
}

impl<T: Send + 'static> MpiData for Sized<T> {
    fn byte_len(&self) -> usize {
        self.wire_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(2.5f64.byte_len(), 8);
        assert_eq!(1u32.byte_len(), 4);
        assert_eq!(().byte_len(), 0);
    }

    #[test]
    fn vec_and_string_sizes() {
        assert_eq!(vec![0f64; 10].byte_len(), 80);
        assert_eq!("hello".to_string().byte_len(), 5);
    }

    #[test]
    fn tuple_sizes_sum() {
        assert_eq!((1u64, 2u32).byte_len(), 12);
        assert_eq!((1u8, 2u8, vec![0u16; 4]).byte_len(), 10);
    }

    #[test]
    fn sized_overrides_wire_size() {
        let halo = Sized::new(0xDEADBEEFu64, 4 * 1024 * 1024);
        assert_eq!(halo.byte_len(), 4 * 1024 * 1024);
    }
}
