//! Common MPI-layer types.

use dynprof_sim::SimTime;

/// Message tag. User tags must be below [`Tag::USER_LIMIT`]; the runtime
/// reserves the space above it for collective and rendezvous protocol
/// traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u32);

impl Tag {
    /// Exclusive upper bound for user tags.
    pub const USER_LIMIT: u32 = 1 << 28;
    /// Base of the internal tag space used by collectives.
    pub(crate) const COLL_BASE: u32 = Tag::USER_LIMIT;
    /// Base of the internal tag space used by the rendezvous protocol.
    pub(crate) const RNDV_BASE: u32 = Tag::USER_LIMIT + (1 << 27);

    /// A user tag. Panics if out of range.
    pub fn user(t: u32) -> Tag {
        assert!(t < Tag::USER_LIMIT, "user tag {t} out of range");
        Tag(t)
    }

    pub(crate) fn collective(op_seq: u32) -> Tag {
        Tag(Tag::COLL_BASE + (op_seq % (1 << 27)))
    }

    pub(crate) fn rendezvous(id: u32) -> Tag {
        Tag(Tag::RNDV_BASE + (id % (1 << 27)))
    }
}

/// Source selector for a receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// Match a specific rank.
    Rank(usize),
    /// `MPI_ANY_SOURCE`.
    Any,
}

impl Source {
    pub(crate) fn matches(self, src: usize) -> bool {
        match self {
            Source::Rank(r) => r == src,
            Source::Any => true,
        }
    }
}

/// Tag selector for a receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagSel {
    /// Match a specific tag.
    Is(Tag),
    /// `MPI_ANY_TAG` (matches only user tags, never protocol traffic).
    Any,
}

impl TagSel {
    pub(crate) fn matches(self, tag: Tag) -> bool {
        match self {
            TagSel::Is(t) => t == tag,
            TagSel::Any => tag.0 < Tag::USER_LIMIT,
        }
    }
}

/// Completion information of a receive.
#[derive(Clone, Copy, Debug)]
pub struct Status {
    /// Sending rank.
    pub source: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload size in bytes (as modelled).
    pub bytes: usize,
    /// Local completion time.
    pub completed_at: SimTime,
}

/// The MPI operations observable through the wrapper (profiling) interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MpiOp {
    /// `MPI_Init`
    Init,
    /// `MPI_Finalize`
    Finalize,
    /// `MPI_Send` (and the send half of sendrecv)
    Send,
    /// `MPI_Recv` (and the receive half of sendrecv)
    Recv,
    /// `MPI_Barrier`
    Barrier,
    /// `MPI_Bcast`
    Bcast,
    /// `MPI_Reduce`
    Reduce,
    /// `MPI_Allreduce`
    Allreduce,
    /// `MPI_Gather`
    Gather,
    /// `MPI_Allgather`
    Allgather,
    /// `MPI_Alltoall`
    Alltoall,
    /// `MPI_Scan`
    Scan,
}

impl MpiOp {
    /// The conventional C name of the operation.
    pub fn c_name(self) -> &'static str {
        match self {
            MpiOp::Init => "MPI_Init",
            MpiOp::Finalize => "MPI_Finalize",
            MpiOp::Send => "MPI_Send",
            MpiOp::Recv => "MPI_Recv",
            MpiOp::Barrier => "MPI_Barrier",
            MpiOp::Bcast => "MPI_Bcast",
            MpiOp::Reduce => "MPI_Reduce",
            MpiOp::Allreduce => "MPI_Allreduce",
            MpiOp::Gather => "MPI_Gather",
            MpiOp::Allgather => "MPI_Allgather",
            MpiOp::Alltoall => "MPI_Alltoall",
            MpiOp::Scan => "MPI_Scan",
        }
    }
}

/// Errors surfaced by the MPI layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Received payload could not be downcast to the requested type.
    TypeMismatch {
        /// Expected Rust type name.
        expected: &'static str,
    },
    /// Rank argument out of range for the communicator.
    InvalidRank(usize),
    /// Operation attempted before `MPI_Init` or after `MPI_Finalize`.
    NotInitialized,
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::TypeMismatch { expected } => {
                write!(f, "received payload is not of type {expected}")
            }
            MpiError::InvalidRank(r) => write!(f, "rank {r} out of range"),
            MpiError::NotInitialized => write!(f, "MPI not initialized"),
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_spaces_are_disjoint() {
        let u = Tag::user(5);
        let c = Tag::collective(5);
        let r = Tag::rendezvous(5);
        assert!(u.0 < Tag::USER_LIMIT);
        assert!(c.0 >= Tag::USER_LIMIT && c.0 < Tag::RNDV_BASE);
        assert!(r.0 >= Tag::RNDV_BASE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_user_tag_panics() {
        Tag::user(Tag::USER_LIMIT);
    }

    #[test]
    fn any_tag_never_matches_protocol_traffic() {
        assert!(TagSel::Any.matches(Tag::user(7)));
        assert!(!TagSel::Any.matches(Tag::collective(7)));
        assert!(!TagSel::Any.matches(Tag::rendezvous(7)));
        assert!(TagSel::Is(Tag::collective(7)).matches(Tag::collective(7)));
    }

    #[test]
    fn source_matching() {
        assert!(Source::Any.matches(3));
        assert!(Source::Rank(3).matches(3));
        assert!(!Source::Rank(3).matches(4));
    }

    #[test]
    fn op_names() {
        assert_eq!(MpiOp::Init.c_name(), "MPI_Init");
        assert_eq!(MpiOp::Allreduce.c_name(), "MPI_Allreduce");
    }
}
