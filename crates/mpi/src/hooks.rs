//! The wrapper (profiling) interface.
//!
//! Vampirtrace "collects MPI trace information by using the MPI wrapper
//! interface" (paper §3.1): every MPI call is interposed, events are logged
//! before and after the underlying operation. [`MpiHooks`] is that
//! interface; the `dynprof-vt` crate implements it, and `dynprof-core`
//! installs an additional hook to realize the `MPI_Init` callback protocol
//! of paper Fig 6.

use dynprof_sim::Proc;

use crate::comm::Comm;
use crate::types::MpiOp;

/// Observer interposed on every MPI call of a job.
///
/// All methods default to no-ops so implementations override only what
/// they need. Multiple hooks may be installed; they fire in installation
/// order for `begin`/`init`, and in reverse order for `end`/`finalize`
/// (proper nesting, like layered PMPI tools).
pub trait MpiHooks: Send + Sync {
    /// Fired before the operation executes.
    fn on_call_begin(&self, p: &Proc, comm: &Comm, op: MpiOp, peer: Option<usize>, bytes: usize) {
        let _ = (p, comm, op, peer, bytes);
    }

    /// Fired after the operation completes locally.
    fn on_call_end(&self, p: &Proc, comm: &Comm, op: MpiOp, peer: Option<usize>, bytes: usize) {
        let _ = (p, comm, op, peer, bytes);
    }

    /// Fired inside `MPI_Init`, after the runtime is up on this rank but
    /// before `MPI_Init` returns to the application. The Vampirtrace
    /// library initializes its data structures here; dynprof appends its
    /// barrier/callback/spin-wait snippet here (Fig 6).
    fn on_init(&self, p: &Proc, comm: &Comm) {
        let _ = (p, comm);
    }

    /// Fired inside `MPI_Finalize`, before the runtime tears down.
    fn on_finalize(&self, p: &Proc, comm: &Comm) {
        let _ = (p, comm);
    }
}

/// A hook list with nesting-correct dispatch.
#[derive(Default)]
pub struct HookChain {
    hooks: Vec<std::sync::Arc<dyn MpiHooks>>,
}

impl HookChain {
    /// An empty chain.
    pub fn new() -> HookChain {
        HookChain { hooks: Vec::new() }
    }

    /// Append a hook (outermost first).
    pub fn push(&mut self, h: std::sync::Arc<dyn MpiHooks>) {
        self.hooks.push(h);
    }

    /// Number of installed hooks.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// True if no hooks are installed.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }

    pub(crate) fn begin(
        &self,
        p: &Proc,
        comm: &Comm,
        op: MpiOp,
        peer: Option<usize>,
        bytes: usize,
    ) {
        for h in &self.hooks {
            h.on_call_begin(p, comm, op, peer, bytes);
        }
    }

    pub(crate) fn end(&self, p: &Proc, comm: &Comm, op: MpiOp, peer: Option<usize>, bytes: usize) {
        for h in self.hooks.iter().rev() {
            h.on_call_end(p, comm, op, peer, bytes);
        }
    }

    pub(crate) fn init(&self, p: &Proc, comm: &Comm) {
        for h in &self.hooks {
            h.on_init(p, comm);
        }
    }

    pub(crate) fn finalize(&self, p: &Proc, comm: &Comm) {
        for h in self.hooks.iter().rev() {
            h.on_finalize(p, comm);
        }
    }
}
