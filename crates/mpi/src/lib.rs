//! # dynprof-mpi — a simulated MPI runtime
//!
//! Message passing for simulated processes: communicators, typed
//! point-to-point messaging with eager/rendezvous protocols, binomial-tree
//! collectives, and a PMPI-style wrapper interface ([`MpiHooks`]) through
//! which the Vampirtrace layer observes every call — exactly the
//! interposition point the paper's VGV toolset uses (§3.1).
//!
//! Jobs are launched with [`launch`] (or [`launch_from`] inside a running
//! process, as the dynprof tool does via `poe`), optionally *held* at
//! their first instruction behind a gate so an instrumenter can patch
//! their images before `start`.
//!
//! ```
//! use dynprof_mpi::{launch, JobSpec, Tag, Source, TagSel};
//! use dynprof_sim::{Machine, Sim};
//!
//! let sim = Sim::virtual_time(Machine::test_machine(), 1);
//! launch(&sim, JobSpec::new("hello", 2), vec![], |p, comm| {
//!     comm.init(p);
//!     if comm.rank() == 0 {
//!         comm.send(p, 1, Tag::user(0), 123u64);
//!     } else {
//!         let (v, _) = comm.recv::<u64>(p, Source::Rank(0), TagSel::Any);
//!         assert_eq!(v, 123);
//!     }
//!     comm.finalize(p);
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]

mod collectives;
mod comm;
mod data;
mod hooks;
mod job;
mod nonblocking;
mod types;

pub use comm::Comm;
pub use data::{MpiData, Sized};
pub use hooks::{HookChain, MpiHooks};
pub use job::{launch, launch_from, Job, JobSpec};
pub use nonblocking::{RecvRequest, SendRequest};
pub use types::{MpiError, MpiOp, Source, Status, Tag, TagSel};
