//! Job launch — the simulator's `poe` (Parallel Operating Environment).
//!
//! A job spawns one simulated process per MPI rank, block-placed across
//! the machine's nodes. A job may be launched *held*: every rank blocks on
//! a gate before executing its first instruction, which is how `dynprof`
//! spawns a target, instruments it, and only then `start`s it (paper §3.3).

use std::sync::atomic::AtomicU32;
use std::sync::Arc;

use dynprof_sim::sync::{SimChannel, SimGate};
use dynprof_sim::{Proc, Sim, SimTime};

use crate::comm::{Comm, JobState};
use crate::hooks::{HookChain, MpiHooks};

/// Description of an MPI job to launch.
pub struct JobSpec {
    /// Application name (process names become `name:rank`).
    pub name: String,
    /// Number of MPI ranks.
    pub ranks: usize,
    /// First node of the block placement.
    pub base_node: usize,
    /// Messages up to this size use the eager protocol.
    pub eager_limit: usize,
    /// Per-call MPI software overhead.
    pub call_overhead: SimTime,
    /// If set, ranks block on this gate before running the application
    /// body (spawn-suspended, as under a debugger/instrumenter).
    pub hold: Option<Arc<SimGate>>,
}

impl JobSpec {
    /// A job with default protocol parameters.
    pub fn new(name: impl Into<String>, ranks: usize) -> JobSpec {
        assert!(ranks > 0, "job needs at least one rank");
        JobSpec {
            name: name.into(),
            ranks,
            base_node: 0,
            eager_limit: 64 * 1024,
            call_overhead: SimTime::from_micros(1),
            hold: None,
        }
    }

    /// Place the job starting at `node`.
    pub fn on_node(mut self, node: usize) -> JobSpec {
        self.base_node = node;
        self
    }

    /// Launch held: ranks wait on `gate` before running.
    pub fn held_by(mut self, gate: Arc<SimGate>) -> JobSpec {
        self.hold = Some(gate);
        self
    }
}

/// A launched MPI job.
pub struct Job {
    state: Arc<JobState>,
}

impl Job {
    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.state.size
    }

    /// The job name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// A fresh communicator handle for `rank` (for monitoring tools that
    /// need to reason about the job; application ranks receive their own).
    ///
    /// The handle carries its own collective-sequence counter, so do NOT
    /// issue collectives through it concurrently with the application's
    /// own communicator — the collective tags would not line up. Use it
    /// for point-to-point probes and metadata only.
    pub fn comm_for(&self, rank: usize) -> Comm {
        assert!(rank < self.state.size);
        Comm::new(Arc::clone(&self.state), rank)
    }

    /// The machine node hosting `rank`.
    pub fn node_of(&self, rank: usize, machine: &dynprof_sim::Machine) -> usize {
        self.state.node_of(rank, machine)
    }
}

fn build_state(spec: &JobSpec, hooks: Vec<Arc<dyn MpiHooks>>) -> Arc<JobState> {
    let mut chain = HookChain::new();
    for h in hooks {
        chain.push(h);
    }
    Arc::new(JobState {
        name: spec.name.clone(),
        size: spec.ranks,
        base_node: spec.base_node,
        mailboxes: (0..spec.ranks).map(|_| SimChannel::new()).collect(),
        hooks: chain,
        eager_limit: spec.eager_limit,
        call_overhead: spec.call_overhead,
        rndv_ids: AtomicU32::new(0),
        check_id: dynprof_sim::hb::unique_id(),
    })
}

/// Launch a job from outside the simulation (before `run`).
///
/// `body` runs once per rank with that rank's [`Comm`].
pub fn launch<F>(sim: &Sim, spec: JobSpec, hooks: Vec<Arc<dyn MpiHooks>>, body: F) -> Job
where
    F: Fn(&Proc, &Comm) + Send + Sync + 'static,
{
    let state = build_state(&spec, hooks);
    let body = Arc::new(body);
    let machine = sim.machine().clone();
    for rank in 0..spec.ranks {
        let node = state.node_of(rank, &machine);
        let comm = Comm::new(Arc::clone(&state), rank);
        let body = Arc::clone(&body);
        let hold = spec.hold.clone();
        sim.spawn(format!("{}:{rank}", spec.name), node, move |p| {
            if let Some(gate) = hold {
                gate.wait_open(p);
            }
            body(p, &comm);
        });
    }
    Job { state }
}

/// Launch a job from within a running simulated process (e.g. the dynprof
/// instrumenter spawning its target via `poe`). Ranks start at the
/// spawner's current time plus a per-rank process-creation cost.
pub fn launch_from<F>(p: &Proc, spec: JobSpec, hooks: Vec<Arc<dyn MpiHooks>>, body: F) -> Job
where
    F: Fn(&Proc, &Comm) + Send + Sync + 'static,
{
    let state = build_state(&spec, hooks);
    let body = Arc::new(body);
    let machine = p.machine().clone();
    for rank in 0..spec.ranks {
        let node = state.node_of(rank, &machine);
        let comm = Comm::new(Arc::clone(&state), rank);
        let body = Arc::clone(&body);
        let hold = spec.hold.clone();
        p.spawn_child(format!("{}:{rank}", spec.name), node, move |p| {
            if let Some(gate) = hold {
                gate.wait_open(p);
            }
            body(p, &comm);
        });
    }
    Job { state }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Source, Tag, TagSel};
    use dynprof_sim::Machine;
    use parking_lot::Mutex;

    fn run_job<F>(ranks: usize, body: F) -> SimTime
    where
        F: Fn(&Proc, &Comm) + Send + Sync + 'static,
    {
        let sim = Sim::virtual_time(Machine::test_machine(), 7);
        launch(&sim, JobSpec::new("t", ranks), vec![], body);
        sim.run()
    }

    #[test]
    fn ring_pass_sums_ranks() {
        let total = Arc::new(Mutex::new(0u64));
        let t2 = Arc::clone(&total);
        run_job(5, move |p, c| {
            c.init(p);
            let n = c.size();
            if c.rank() == 0 {
                c.send(p, 1, Tag::user(1), 0u64);
                let (acc, _) = c.recv::<u64>(p, Source::Rank(n - 1), TagSel::Is(Tag::user(1)));
                *t2.lock() = acc;
            } else {
                let (acc, _) =
                    c.recv::<u64>(p, Source::Rank(c.rank() - 1), TagSel::Is(Tag::user(1)));
                c.send(p, (c.rank() + 1) % n, Tag::user(1), acc + c.rank() as u64);
            }
            c.finalize(p);
        });
        assert_eq!(*total.lock(), 1 + 2 + 3 + 4);
    }

    #[test]
    fn bcast_reaches_all_ranks() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        run_job(7, move |p, c| {
            c.init(p);
            let v = c.bcast::<u64>(p, 3, (c.rank() == 3).then_some(99));
            s2.lock().push(v);
            c.finalize(p);
        });
        assert_eq!(*seen.lock(), vec![99u64; 7]);
    }

    #[test]
    fn reduce_and_allreduce_sum() {
        let results = Arc::new(Mutex::new((0u64, Vec::new())));
        let r2 = Arc::clone(&results);
        run_job(6, move |p, c| {
            c.init(p);
            let me = c.rank() as u64 + 1;
            if let Some(sum) = c.reduce(p, 2, me, |a, b| a + b) {
                r2.lock().0 = sum;
            }
            let all = c.allreduce(p, me, |a: u64, b| a.max(b));
            r2.lock().1.push(all);
            c.finalize(p);
        });
        let r = results.lock();
        assert_eq!(r.0, 21); // 1+..+6
        assert_eq!(r.1, vec![6u64; 6]);
    }

    #[test]
    fn gather_orders_by_rank() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&out);
        run_job(5, move |p, c| {
            c.init(p);
            if let Some(v) = c.gather(p, 0, c.rank() as u64 * 10) {
                *o2.lock() = v;
            }
            c.finalize(p);
        });
        assert_eq!(*out.lock(), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn allgather_same_everywhere() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&out);
        run_job(4, move |p, c| {
            c.init(p);
            let v = c.allgather(p, c.rank() as u64);
            o2.lock().push(v);
            c.finalize(p);
        });
        for v in out.lock().iter() {
            assert_eq!(*v, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let ok = Arc::new(Mutex::new(0));
        let ok2 = Arc::clone(&ok);
        run_job(4, move |p, c| {
            c.init(p);
            let me = c.rank() as u64;
            // send[i] = me*100 + i; so recv[j] (from rank j) = j*100 + me
            let send: Vec<u64> = (0..4).map(|i| me * 100 + i).collect();
            let recv = c.alltoall(p, send);
            for (j, v) in recv.iter().enumerate() {
                assert_eq!(*v, j as u64 * 100 + me);
            }
            *ok2.lock() += 1;
            c.finalize(p);
        });
        assert_eq!(*ok.lock(), 4);
    }

    #[test]
    fn scan_computes_inclusive_prefixes() {
        let out = Arc::new(Mutex::new(vec![0u64; 6]));
        let o2 = Arc::clone(&out);
        run_job(6, move |p, c| {
            c.init(p);
            let v = c.scan(p, c.rank() as u64 + 1, |a, b| a + b);
            o2.lock()[c.rank()] = v;
            c.finalize(p);
        });
        // Inclusive prefix sums of 1..=6.
        assert_eq!(*out.lock(), vec![1, 3, 6, 10, 15, 21]);
    }

    #[test]
    fn wtime_is_monotonic_seconds() {
        run_job(2, |p, c| {
            c.init(p);
            let a = c.wtime(p);
            p.advance(SimTime::from_millis(250));
            let b = c.wtime(p);
            assert!((b - a - 0.25).abs() < 1e-9, "{a} -> {b}");
            c.finalize(p);
        });
    }

    #[test]
    fn rendezvous_large_message_round_trips() {
        run_job(2, move |p, c| {
            c.init(p);
            if c.rank() == 0 {
                let big = vec![0.5f64; 100_000]; // 800 KB > eager limit
                c.send(p, 1, Tag::user(9), big);
            } else {
                let (v, st) = c.recv::<Vec<f64>>(p, Source::Any, TagSel::Any);
                assert_eq!(v.len(), 100_000);
                assert_eq!(st.bytes, 800_000);
                assert_eq!(st.source, 0);
            }
            c.finalize(p);
        });
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let times = Arc::new(Mutex::new(Vec::new()));
        let t2 = Arc::clone(&times);
        run_job(4, move |p, c| {
            c.init(p);
            p.advance(SimTime::from_millis(c.rank() as u64));
            c.barrier(p);
            t2.lock().push(p.now());
            c.finalize(p);
        });
        let ts = times.lock();
        let min = ts.iter().min().unwrap();
        let max = ts.iter().max().unwrap();
        // Everyone leaves after the slowest arrival; small skew from the
        // tree release is allowed.
        assert!(*min >= SimTime::from_millis(3));
        assert!(max.saturating_sub(*min) < SimTime::from_millis(1));
    }

    #[test]
    fn intra_node_messages_are_faster() {
        // Ranks 0,1 share node 0; ranks 0,8.. would cross nodes. Use a
        // 2-rank same-node job vs a 2-rank cross-node placement.
        fn elapsed(base_a: usize, ranks_apart: bool) -> SimTime {
            let sim = Sim::virtual_time(Machine::test_machine(), 7);
            let done = Arc::new(Mutex::new(SimTime::ZERO));
            let d2 = Arc::clone(&done);
            // test machine: 4 cpus/node. Place rank1 on another node by
            // spreading ranks with a large job if requested.
            let ranks = if ranks_apart { 5 } else { 2 };
            launch(
                &sim,
                JobSpec::new("t", ranks).on_node(base_a),
                vec![],
                move |p, c| {
                    c.init(p);
                    let last = c.size() - 1;
                    if c.rank() == 0 {
                        c.send(p, last, Tag::user(1), vec![1.0f64; 1000]);
                    } else if c.rank() == last {
                        let t0 = p.now();
                        let _ = c.recv::<Vec<f64>>(p, Source::Rank(0), TagSel::Any);
                        *d2.lock() = p.now() - t0;
                    }
                    c.finalize(p);
                },
            );
            sim.run();
            let t = *done.lock();
            t
        }
        // Not a strict latency comparison (init skews overlap), but the
        // cross-node receive must not be cheaper than the same-node one.
        assert!(elapsed(0, true) >= elapsed(0, false));
    }

    #[test]
    #[should_panic(expected = "before MPI_Init")]
    fn send_before_init_panics() {
        run_job(2, |p, c| {
            if c.rank() == 0 {
                c.send(p, 1, Tag::user(0), 1u8);
            } else {
                c.init(p);
                let _ = c.recv::<u8>(p, Source::Any, TagSel::Any);
            }
        });
    }

    #[test]
    fn held_job_waits_for_gate() {
        let sim = Sim::virtual_time(Machine::test_machine(), 7);
        let gate = Arc::new(SimGate::new());
        let starts = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&starts);
        launch(
            &sim,
            JobSpec::new("t", 3).held_by(Arc::clone(&gate)),
            vec![],
            move |p, c| {
                s2.lock().push(p.now());
                c.init(p);
                c.finalize(p);
            },
        );
        sim.spawn("instrumenter", 3, move |p| {
            p.advance(SimTime::from_millis(50));
            gate.open(p, SimTime::ZERO);
        });
        sim.run();
        for t in starts.lock().iter() {
            assert_eq!(*t, SimTime::from_millis(50));
        }
    }

    #[test]
    fn iprobe_sees_arrived_messages_only() {
        run_job(2, |p, c| {
            c.init(p);
            if c.rank() == 0 {
                c.send(p, 1, Tag::user(3), 7u8);
            } else {
                // Drain any timing: advance far past arrival.
                p.advance(SimTime::from_secs(1));
                assert!(c.iprobe(p, Source::Rank(0), TagSel::Is(Tag::user(3))));
                assert!(!c.iprobe(p, Source::Rank(0), TagSel::Is(Tag::user(4))));
                let _ = c.recv::<u8>(p, Source::Rank(0), TagSel::Is(Tag::user(3)));
                assert!(!c.iprobe(p, Source::Any, TagSel::Any));
            }
            c.finalize(p);
        });
    }
}
