//! Collective operations.
//!
//! All collectives are built from the raw point-to-point layer with
//! binomial-tree algorithms, so their cost scales as `O(log P)` network
//! hops — the scaling the paper's Fig 8 depends on. Internal traffic does
//! not fire the wrapper hooks (as with real PMPI, only the top-level call
//! is observed).

use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use dynprof_obs as obs;
use dynprof_sim::Proc;

use crate::comm::{note_send, Comm, Envelope, Kind};
use crate::data::{MpiData, Sized};
use crate::types::{MpiOp, Source, Status, Tag, TagSel};

impl Comm {
    fn next_coll_tag(&self) -> Tag {
        Tag::collective(self.coll_seq.fetch_add(1, Ordering::Relaxed))
    }

    /// Virtual rank relative to `root` (so trees can be rooted anywhere).
    fn vrank(&self, rank: usize, root: usize) -> usize {
        (rank + self.size() - root) % self.size()
    }

    fn unvrank(&self, v: usize, root: usize) -> usize {
        (v + root) % self.size()
    }

    // -- internal building blocks (no hooks) --------------------------------

    /// Binomial-tree broadcast of `data` from `root`; returns each rank's
    /// copy.
    pub(crate) fn bcast_internal<T: MpiData + Clone>(
        &self,
        p: &Proc,
        root: usize,
        data: Option<T>,
        tag: Tag,
    ) -> T {
        let n = self.size();
        let me = self.vrank(self.rank(), root);
        // Receive from the parent (the rank that differs in our lowest set
        // bit); the root has no parent and must carry the value.
        let mut mask = 1usize;
        let value;
        loop {
            if mask >= n {
                // me == 0 (the root).
                value = data.expect("root must supply the broadcast value");
                break;
            }
            if me & mask != 0 {
                let parent = self.unvrank(me - mask, root);
                let (v, _) = self.recv_raw::<T>(p, Source::Rank(parent), TagSel::Is(tag));
                value = v;
                break;
            }
            mask <<= 1;
        }
        // Forward to children me + m for m below our lowest set bit
        // (below n for the root), largest subtree first.
        let mut m = mask >> 1;
        while m > 0 {
            let child = me + m;
            if child < n {
                self.send_raw(p, self.unvrank(child, root), tag, value.clone());
            }
            m >>= 1;
        }
        value
    }

    /// Binomial-tree reduction toward `root`. Returns `Some(result)` on
    /// the root, `None` elsewhere. `op` must be associative; combination
    /// order is the deterministic tree order.
    pub(crate) fn reduce_internal<T: MpiData>(
        &self,
        p: &Proc,
        root: usize,
        mut value: T,
        op: &(dyn Fn(T, T) -> T + Sync),
        tag: Tag,
    ) -> Option<T> {
        let n = self.size();
        let me = self.vrank(self.rank(), root);
        let mut mask = 1usize;
        while mask < n {
            if me & mask != 0 {
                // Send partial to parent and leave.
                let parent = self.unvrank(me - mask, root);
                self.send_raw(p, parent, tag, value);
                return None;
            }
            let child = me | mask;
            if child < n {
                let (other, _) =
                    self.recv_raw::<T>(p, Source::Rank(self.unvrank(child, root)), TagSel::Is(tag));
                value = op(value, other);
            }
            mask <<= 1;
        }
        Some(value)
    }

    /// Barrier built from a zero-byte reduce + broadcast (2 log P hops).
    pub(crate) fn barrier_internal(&self, p: &Proc) {
        let entered = p.now();
        let tag = self.next_coll_tag();
        let up = self.reduce_internal::<u8>(p, 0, 0, &|a, b| a | b, tag);
        self.bcast_internal::<u8>(p, 0, up, tag);
        if obs::enabled() {
            static N: OnceLock<&'static obs::Counter> = OnceLock::new();
            static WAIT: OnceLock<&'static obs::Histogram> = OnceLock::new();
            N.get_or_init(|| obs::counter("mpi.barriers")).inc();
            // Virtual time this rank spent inside the barrier — recorded
            // after the fact, never advancing the clock itself.
            WAIT.get_or_init(|| obs::histogram("mpi.barrier_wait_ns"))
                .record(p.now().saturating_sub(entered).as_nanos());
        }
    }

    fn gather_internal<T: MpiData>(
        &self,
        p: &Proc,
        root: usize,
        value: T,
        tag: Tag,
    ) -> Option<Vec<T>> {
        let wire = value.byte_len() + 8;
        let seed = Sized::new(vec![(self.rank() as u64, value)], wire);
        let merged = self.reduce_internal(
            p,
            root,
            seed,
            &|mut a: Sized<Vec<(u64, T)>>, b| {
                a.value.extend(b.value);
                a.wire_bytes += b.wire_bytes;
                a
            },
            tag,
        );
        merged.map(|mut s| {
            s.value.sort_by_key(|(r, _)| *r);
            s.value.into_iter().map(|(_, v)| v).collect()
        })
    }

    // -- public collectives ---------------------------------------------------

    /// `MPI_Barrier`.
    pub fn barrier(&self, p: &Proc) {
        self.hb_coll(p, "barrier", None);
        self.hooked(p, MpiOp::Barrier, 0, |p| {
            self.barrier_internal(p);
        });
    }

    /// `MPI_Bcast`: `root` supplies `Some(data)`, everyone returns the value.
    pub fn bcast<T: MpiData + Clone>(&self, p: &Proc, root: usize, data: Option<T>) -> T {
        let bytes = data.as_ref().map_or(0, |d| d.byte_len());
        self.hb_coll(p, "bcast", Some(root));
        self.hooked(p, MpiOp::Bcast, bytes, |p| {
            let tag = self.next_coll_tag();
            self.bcast_internal(p, root, data, tag)
        })
    }

    /// `MPI_Reduce` with operator `op`. Returns `Some` on `root` only.
    pub fn reduce<T: MpiData>(
        &self,
        p: &Proc,
        root: usize,
        value: T,
        op: impl Fn(T, T) -> T + Sync,
    ) -> Option<T> {
        let bytes = value.byte_len();
        self.hb_coll(p, "reduce", Some(root));
        self.hooked(p, MpiOp::Reduce, bytes, |p| {
            let tag = self.next_coll_tag();
            self.reduce_internal(p, root, value, &op, tag)
        })
    }

    /// `MPI_Allreduce`: reduce to rank 0, then broadcast.
    pub fn allreduce<T: MpiData + Clone>(
        &self,
        p: &Proc,
        value: T,
        op: impl Fn(T, T) -> T + Sync,
    ) -> T {
        let bytes = value.byte_len();
        self.hb_coll(p, "allreduce", None);
        self.hooked(p, MpiOp::Allreduce, bytes, |p| {
            let tag = self.next_coll_tag();
            let partial = self.reduce_internal(p, 0, value, &op, tag);
            self.bcast_internal(p, 0, partial, tag)
        })
    }

    /// `MPI_Gather`: every rank contributes `value`; the root returns the
    /// vector ordered by rank.
    pub fn gather<T: MpiData>(&self, p: &Proc, root: usize, value: T) -> Option<Vec<T>> {
        let bytes = value.byte_len();
        self.hb_coll(p, "gather", Some(root));
        self.hooked(p, MpiOp::Gather, bytes, |p| {
            let tag = self.next_coll_tag();
            self.gather_internal(p, root, value, tag)
        })
    }

    /// `MPI_Allgather`: gather to rank 0, then broadcast.
    pub fn allgather<T: MpiData + Clone>(&self, p: &Proc, value: T) -> Vec<T> {
        let bytes = value.byte_len();
        self.hb_coll(p, "allgather", None);
        self.hooked(p, MpiOp::Allgather, bytes, |p| {
            let tag = self.next_coll_tag();
            let gathered = self.gather_internal(p, 0, value, tag);
            let wire = gathered
                .as_ref()
                .map_or(0, |v| v.iter().map(|x| x.byte_len()).sum::<usize>());
            self.bcast_internal(p, 0, gathered.map(|v| Sized::new(v, wire)), tag)
                .value
        })
    }

    /// `MPI_Alltoall`: `send[i]` goes to rank `i`; returns the vector of
    /// values received (indexed by source rank). Pairwise-exchange.
    pub fn alltoall<T: MpiData + Clone>(&self, p: &Proc, send: Vec<T>) -> Vec<T> {
        let n = self.size();
        assert_eq!(
            send.len(),
            n,
            "alltoall send vector must have one entry per rank"
        );
        let bytes: usize = send.iter().map(|v| v.byte_len()).sum();
        self.hb_coll(p, "alltoall", None);
        self.hooked(p, MpiOp::Alltoall, bytes, |p| {
            let tag = self.next_coll_tag();
            let me = self.rank();
            let mut recv: Vec<Option<T>> = (0..n).map(|_| None).collect();
            recv[me] = Some(send[me].clone());
            for step in 1..n {
                let dst = (me + step) % n;
                let src = (me + n - step) % n;
                let (v, _) = self.sendrecv_raw::<T, T>(p, dst, tag, send[dst].clone(), src, tag);
                recv[src] = Some(v);
            }
            recv.into_iter()
                .map(|v| v.expect("all slots filled"))
                .collect()
        })
    }

    // -- unlogged collectives (tool traffic) ---------------------------------
    //
    // The instrumentation library synchronizes itself over MPI (VT_confsync
    // broadcasts configuration epochs and gathers statistics). That traffic
    // must not re-enter the wrapper interface, or the tool would trace its
    // own tracing. These variants skip the hook chain but are otherwise
    // identical to the public collectives.

    /// Barrier without firing the wrapper hooks (tool-internal traffic).
    pub fn barrier_unlogged(&self, p: &Proc) {
        self.hb_coll(p, "barrier_unlogged", None);
        p.advance(self.job.call_overhead);
        self.barrier_internal(p);
    }

    /// Broadcast without firing the wrapper hooks (tool-internal traffic).
    pub fn bcast_unlogged<T: MpiData + Clone>(&self, p: &Proc, root: usize, data: Option<T>) -> T {
        self.hb_coll(p, "bcast_unlogged", Some(root));
        p.advance(self.job.call_overhead);
        let tag = self.next_coll_tag();
        self.bcast_internal(p, root, data, tag)
    }

    /// Gather without firing the wrapper hooks (tool-internal traffic).
    pub fn gather_unlogged<T: MpiData>(&self, p: &Proc, root: usize, value: T) -> Option<Vec<T>> {
        self.hb_coll(p, "gather_unlogged", Some(root));
        p.advance(self.job.call_overhead);
        let tag = self.next_coll_tag();
        self.gather_internal(p, root, value, tag)
    }

    /// `MPI_Scan`: inclusive prefix reduction — rank `i` receives
    /// `op(v_0, ..., v_i)`. Linear chain algorithm.
    pub fn scan<T: MpiData + Clone>(&self, p: &Proc, value: T, op: impl Fn(T, T) -> T + Sync) -> T {
        let bytes = value.byte_len();
        self.hb_coll(p, "scan", None);
        self.hooked(p, MpiOp::Scan, bytes, |p| {
            let tag = self.next_coll_tag();
            let me = self.rank();
            let acc = if me == 0 {
                value
            } else {
                let (prev, _) = self.recv_raw::<T>(p, Source::Rank(me - 1), TagSel::Is(tag));
                op(prev, value)
            };
            if me + 1 < self.size() {
                self.send_raw(p, me + 1, tag, acc.clone());
            }
            acc
        })
    }

    /// `MPI_Wtime`: the local wall clock in seconds.
    pub fn wtime(&self, p: &Proc) -> f64 {
        p.now().as_secs_f64()
    }

    fn sendrecv_raw<S: MpiData, R: MpiData>(
        &self,
        p: &Proc,
        dst: usize,
        stag: Tag,
        data: S,
        src: usize,
        rtag: Tag,
    ) -> (R, Status) {
        // Eager-forced to stay deadlock-free regardless of size.
        let bytes = data.byte_len();
        if obs::enabled() {
            note_send(bytes);
        }
        let machine = p.machine();
        let link = machine.link_between(
            self.job.node_of(self.rank(), machine) * machine.cpus_per_node,
            self.job.node_of(dst, machine) * machine.cpus_per_node,
        );
        self.job.mailboxes[dst].send(
            p,
            Envelope {
                src: self.rank(),
                tag: stag,
                bytes,
                kind: Kind::Eager(Box::new(data)),
            },
            link.transfer(bytes),
        );
        self.recv_raw::<R>(p, Source::Rank(src), TagSel::Is(rtag))
    }

    fn hooked<R>(&self, p: &Proc, op: MpiOp, bytes: usize, f: impl FnOnce(&Proc) -> R) -> R {
        assert!(
            self.is_initialized(),
            "MPI collective before MPI_Init on rank {}",
            self.rank()
        );
        if obs::enabled() {
            static COLLS: OnceLock<&'static obs::Counter> = OnceLock::new();
            COLLS.get_or_init(|| obs::counter("mpi.collectives")).inc();
        }
        self.job.hooks.begin(p, self, op, None, bytes);
        p.advance(self.job.call_overhead);
        let r = f(p);
        self.job.hooks.end(p, self, op, None, bytes);
        r
    }
}
