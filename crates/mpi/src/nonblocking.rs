//! Nonblocking point-to-point: `MPI_Isend` / `MPI_Irecv` / `MPI_Wait`.
//!
//! Modelled with the semantics real applications rely on:
//!
//! * `isend` buffers eagerly and completes locally at once (the paper-era
//!   IBM MPI buffered small nonblocking sends the same way; large
//!   nonblocking sends are also buffered here — the simulator charges the
//!   copy but does not model sender-side rendezvous progress);
//! * `irecv` *posts* the receive; the message is matched and consumed at
//!   `wait` time;
//! * requests must be waited on exactly once (dropping an incomplete
//!   request panics, catching lost-request bugs in applications).

use dynprof_sim::Proc;

use crate::comm::Comm;
use crate::data::MpiData;
use crate::types::{MpiOp, Source, Status, Tag, TagSel};

/// A pending nonblocking send.
#[must_use = "MPI requests must be completed with wait()"]
pub struct SendRequest {
    done: bool,
}

impl SendRequest {
    /// Complete the send (no-op for the buffered model, but required for
    /// API discipline).
    pub fn wait(mut self, _p: &Proc) {
        self.done = true;
    }
}

impl Drop for SendRequest {
    fn drop(&mut self) {
        if !self.done && !std::thread::panicking() {
            panic!("MPI send request dropped without wait()");
        }
    }
}

/// A pending nonblocking receive of a `T`.
#[must_use = "MPI requests must be completed with wait()"]
pub struct RecvRequest<T: MpiData> {
    src: Source,
    tag: TagSel,
    done: bool,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: MpiData> RecvRequest<T> {
    /// Block until the posted receive is satisfied.
    pub fn wait(mut self, p: &Proc, comm: &Comm) -> (T, Status) {
        self.done = true;
        comm.wait_recv::<T>(p, self.src, self.tag)
    }
}

impl<T: MpiData> Drop for RecvRequest<T> {
    fn drop(&mut self) {
        if !self.done && !std::thread::panicking() {
            panic!("MPI receive request dropped without wait()");
        }
    }
}

impl Comm {
    /// `MPI_Isend`: start a send; completes locally immediately (buffered).
    pub fn isend<T: MpiData>(&self, p: &Proc, dst: usize, tag: Tag, data: T) -> SendRequest {
        let bytes = data.byte_len();
        self.hooked_p2p(p, MpiOp::Send, Some(dst), bytes, |p| {
            self.send_buffered(p, dst, tag, data);
        });
        SendRequest { done: false }
    }

    /// `MPI_Irecv`: post a receive to be completed by
    /// [`RecvRequest::wait`]. The wrapper interface logs the receive at
    /// completion (wait) time, where its span is meaningful.
    pub fn irecv<T: MpiData>(&self, p: &Proc, src: Source, tag: TagSel) -> RecvRequest<T> {
        // Posting costs a call's software overhead but does not block or
        // log; the Recv event is emitted by wait().
        p.advance(self.call_overhead());
        RecvRequest {
            src,
            tag,
            done: false,
            _marker: std::marker::PhantomData,
        }
    }

    /// `MPI_Waitall` over receive requests of a common type, returning the
    /// completions in posting order.
    pub fn wait_all_recv<T: MpiData>(
        &self,
        p: &Proc,
        reqs: Vec<RecvRequest<T>>,
    ) -> Vec<(T, Status)> {
        reqs.into_iter().map(|r| r.wait(p, self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{launch, JobSpec};
    use dynprof_sim::{Machine, Sim, SimTime};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn run_job<F>(ranks: usize, body: F)
    where
        F: Fn(&Proc, &Comm) + Send + Sync + 'static,
    {
        let sim = Sim::virtual_time(Machine::test_machine(), 3);
        launch(&sim, JobSpec::new("nb", ranks), vec![], body);
        sim.run();
    }

    #[test]
    fn isend_irecv_round_trip() {
        run_job(2, |p, c| {
            c.init(p);
            if c.rank() == 0 {
                let r = c.isend(p, 1, Tag::user(1), 123u64);
                r.wait(p);
            } else {
                let r = c.irecv::<u64>(p, Source::Rank(0), TagSel::Is(Tag::user(1)));
                let (v, st) = r.wait(p, c);
                assert_eq!(v, 123);
                assert_eq!(st.source, 0);
            }
            c.finalize(p);
        });
    }

    #[test]
    fn irecv_posted_before_send_arrives() {
        run_job(2, |p, c| {
            c.init(p);
            if c.rank() == 0 {
                // Exchange without deadlock: both post receives first.
                let r = c.irecv::<u64>(p, Source::Rank(1), TagSel::Any);
                c.isend(p, 1, Tag::user(2), 10u64).wait(p);
                let (v, _) = r.wait(p, c);
                assert_eq!(v, 11);
            } else {
                let r = c.irecv::<u64>(p, Source::Rank(0), TagSel::Any);
                c.isend(p, 0, Tag::user(2), 11u64).wait(p);
                let (v, _) = r.wait(p, c);
                assert_eq!(v, 10);
            }
            c.finalize(p);
        });
    }

    #[test]
    fn waitall_preserves_posting_order() {
        run_job(3, |p, c| {
            c.init(p);
            if c.rank() == 0 {
                let reqs = vec![
                    c.irecv::<u64>(p, Source::Rank(1), TagSel::Any),
                    c.irecv::<u64>(p, Source::Rank(2), TagSel::Any),
                ];
                let got = c.wait_all_recv(p, reqs);
                assert_eq!(got[0].0, 100);
                assert_eq!(got[1].0, 200);
            } else {
                p.advance(SimTime::from_millis(c.rank() as u64)); // skew
                c.isend(p, 0, Tag::user(0), c.rank() as u64 * 100).wait(p);
            }
            c.finalize(p);
        });
    }

    #[test]
    fn large_isend_does_not_block() {
        // A >eager-limit nonblocking send must not rendezvous-deadlock
        // when both sides send before receiving.
        run_job(2, |p, c| {
            c.init(p);
            let big = vec![1.0f64; 20_000]; // 160 KB
            let peer = 1 - c.rank();
            let s = c.isend(p, peer, Tag::user(1), big);
            let r = c.irecv::<Vec<f64>>(p, Source::Rank(peer), TagSel::Any);
            s.wait(p);
            let (v, st) = r.wait(p, c);
            assert_eq!(v.len(), 20_000);
            assert_eq!(st.bytes, 160_000);
            c.finalize(p);
        });
    }

    #[test]
    #[should_panic(expected = "dropped without wait")]
    fn dropping_a_request_panics() {
        run_job(2, |p, c| {
            c.init(p);
            if c.rank() == 0 {
                let _r = c.irecv::<u64>(p, Source::Rank(1), TagSel::Any);
                // dropped here
            } else {
                c.send(p, 0, Tag::user(0), 1u64);
            }
            c.finalize(p);
        });
    }

    #[test]
    fn hooks_observe_nonblocking_ops() {
        use crate::hooks::MpiHooks;
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Count(AtomicUsize);
        impl MpiHooks for Count {
            fn on_call_end(&self, _: &Proc, _: &Comm, op: MpiOp, _: Option<usize>, _: usize) {
                if matches!(op, MpiOp::Send | MpiOp::Recv) {
                    self.0.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let hook = Arc::new(Count::default());
        let h2 = Arc::clone(&hook);
        let sim = Sim::virtual_time(Machine::test_machine(), 3);
        let done = Arc::new(Mutex::new(()));
        let _d = Arc::clone(&done);
        launch(&sim, JobSpec::new("nb", 2), vec![h2], |p, c| {
            c.init(p);
            if c.rank() == 0 {
                c.isend(p, 1, Tag::user(0), 5u8).wait(p);
            } else {
                let r = c.irecv::<u8>(p, Source::Any, TagSel::Any);
                let _ = r.wait(p, c);
            }
            c.finalize(p);
        });
        sim.run();
        assert_eq!(hook.0.load(std::sync::atomic::Ordering::Relaxed), 2);
    }
}
