//! Communicators and point-to-point messaging.
//!
//! Messages travel through per-rank mailboxes ([`SimChannel`]) with
//! arrival times computed from the machine's link models, so intra-node
//! and inter-node transfers cost what the topology says they cost.
//!
//! Two transfer protocols are modelled, as in real MPI implementations:
//! **eager** (payload pushed immediately; default for messages up to the
//! eager limit) and **rendezvous** (RTS → CTS handshake before the data
//! moves; used above the limit, making large sends synchronizing).

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use dynprof_obs as obs;
use dynprof_sim::hb;
use dynprof_sim::sync::SimChannel;
use dynprof_sim::{Proc, SimTime};

use crate::data::MpiData;
use crate::hooks::HookChain;
use crate::types::{MpiOp, Source, Status, Tag, TagSel};

/// Count one outgoing message (handles cached so the enabled path pays
/// two atomic adds; callers guard with [`obs::enabled`]).
pub(crate) fn note_send(bytes: usize) {
    static MSGS: OnceLock<&'static obs::Counter> = OnceLock::new();
    static BYTES: OnceLock<&'static obs::Counter> = OnceLock::new();
    MSGS.get_or_init(|| obs::counter("mpi.messages")).inc();
    BYTES
        .get_or_init(|| obs::counter("mpi.bytes"))
        .add(bytes as u64);
}

pub(crate) enum Kind {
    Eager(Box<dyn Any + Send>),
    Rts { id: u32, data_bytes: usize },
    Cts,
    Data(Box<dyn Any + Send>),
}

pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    pub bytes: usize,
    pub kind: Kind,
}

pub(crate) struct JobState {
    pub name: String,
    pub size: usize,
    pub base_node: usize,
    pub mailboxes: Vec<SimChannel<Envelope>>,
    pub hooks: HookChain,
    pub eager_limit: usize,
    /// Per-call MPI software overhead charged on each side of an op.
    pub call_overhead: SimTime,
    pub rndv_ids: AtomicU32,
    /// Identity for happens-before recording (0 when `check` is off).
    pub check_id: u64,
}

impl JobState {
    /// The machine node hosting `rank` (block placement from `base_node`).
    pub fn node_of(&self, rank: usize, machine: &dynprof_sim::Machine) -> usize {
        (self.base_node + rank / machine.cpus_per_node) % machine.nodes
    }
}

/// A communicator handle for one rank of a job (the `MPI_COMM_WORLD` view).
pub struct Comm {
    pub(crate) job: Arc<JobState>,
    rank: usize,
    initialized: AtomicBool,
    finalized: AtomicBool,
    /// Local collective sequence number; identical across ranks because
    /// MPI requires collectives to be called in the same order everywhere.
    pub(crate) coll_seq: AtomicU32,
}

impl Comm {
    pub(crate) fn new(job: Arc<JobState>, rank: usize) -> Comm {
        Comm {
            job,
            rank,
            initialized: AtomicBool::new(false),
            finalized: AtomicBool::new(false),
            coll_seq: AtomicU32::new(0),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.job.size
    }

    /// The job name (the target application's name).
    pub fn job_name(&self) -> &str {
        &self.job.name
    }

    pub(crate) fn call_overhead(&self) -> dynprof_sim::SimTime {
        self.job.call_overhead
    }

    /// Has `init` completed on this rank?
    pub fn is_initialized(&self) -> bool {
        self.initialized.load(Ordering::Acquire)
    }

    /// Record this rank entering its next collective with the
    /// happens-before checker (`check` feature; folds away when off).
    /// Must run before the collective consumes its sequence number.
    pub(crate) fn hb_coll(&self, p: &Proc, op: &'static str, root: Option<usize>) {
        if hb::on(p) {
            hb::collective(
                p,
                self.job.check_id,
                &self.job.name,
                self.job.size,
                self.rank,
                u64::from(self.coll_seq.load(Ordering::Relaxed)),
                op,
                root,
            );
        }
    }

    fn assert_ready(&self) {
        assert!(
            self.is_initialized(),
            "MPI operation before MPI_Init on rank {}",
            self.rank
        );
        assert!(
            !self.finalized.load(Ordering::Acquire),
            "MPI operation after MPI_Finalize on rank {}",
            self.rank
        );
    }

    /// `MPI_Init`: brings up the runtime on this rank, fires the wrapper
    /// interface's init hooks (where Vampirtrace initializes itself and
    /// dynprof's Fig-6 callback snippet runs), and loosely synchronizes
    /// the job.
    pub fn init(&self, p: &Proc) {
        assert!(
            !self.initialized.swap(true, Ordering::AcqRel),
            "MPI_Init called twice on rank {}",
            self.rank
        );
        self.hb_coll(p, "init", None);
        self.job.hooks.begin(p, self, MpiOp::Init, None, 0);
        // Runtime bring-up cost (connection establishment etc.).
        p.advance(SimTime::from_micros(200));
        // MPI_Init loosely synchronizes all ranks.
        self.barrier_internal(p);
        // Wrapper-level init: VT first, then dynprof's inserted callback.
        self.job.hooks.init(p, self);
        self.job.hooks.end(p, self, MpiOp::Init, None, 0);
    }

    /// `MPI_Finalize`.
    pub fn finalize(&self, p: &Proc) {
        self.assert_ready();
        self.hb_coll(p, "finalize", None);
        self.job.hooks.begin(p, self, MpiOp::Finalize, None, 0);
        self.barrier_internal(p);
        self.job.hooks.finalize(p, self);
        self.finalized.store(true, Ordering::Release);
        self.job.hooks.end(p, self, MpiOp::Finalize, None, 0);
    }

    // -- raw (hook-free) point-to-point: used by collectives & protocols ----

    pub(crate) fn send_raw<T: MpiData>(&self, p: &Proc, dst: usize, tag: Tag, data: T) {
        assert!(dst < self.size(), "send to invalid rank {dst}");
        let bytes = data.byte_len();
        if obs::enabled() {
            note_send(bytes);
        }
        let machine = p.machine();
        let link = machine.link_between(
            self.job.node_of(self.rank, machine) * machine.cpus_per_node,
            self.job.node_of(dst, machine) * machine.cpus_per_node,
        );
        if bytes <= self.job.eager_limit {
            let latency = link.transfer(bytes);
            self.job.mailboxes[dst].send(
                p,
                Envelope {
                    src: self.rank,
                    tag,
                    bytes,
                    kind: Kind::Eager(Box::new(data)),
                },
                latency,
            );
        } else {
            // Rendezvous: RTS, wait for CTS, then stream the data. The
            // sender is occupied for the bandwidth term (buffer in use).
            let id = self.job.rndv_ids.fetch_add(1, Ordering::Relaxed);
            self.job.mailboxes[dst].send(
                p,
                Envelope {
                    src: self.rank,
                    tag,
                    bytes,
                    kind: Kind::Rts {
                        id,
                        data_bytes: bytes,
                    },
                },
                link.transfer(32),
            );
            let rtag = Tag::rendezvous(id);
            let _cts = self.job.mailboxes[self.rank]
                .recv_match(p, |e| e.tag == rtag && matches!(e.kind, Kind::Cts));
            let bw_term = link.transfer(bytes) - link.latency;
            p.advance(bw_term);
            self.job.mailboxes[dst].send(
                p,
                Envelope {
                    src: self.rank,
                    tag: rtag,
                    bytes,
                    kind: Kind::Data(Box::new(data)),
                },
                link.latency,
            );
        }
    }

    pub(crate) fn recv_raw<T: MpiData>(&self, p: &Proc, src: Source, tag: TagSel) -> (T, Status) {
        let env = self.job.mailboxes[self.rank].recv_match(p, |e| {
            src.matches(e.src)
                && tag.matches(e.tag)
                && matches!(e.kind, Kind::Eager(_) | Kind::Rts { .. })
        });
        let (payload, src_rank, otag, bytes): (Box<dyn Any + Send>, usize, Tag, usize) =
            match env.kind {
                Kind::Eager(b) => (b, env.src, env.tag, env.bytes),
                Kind::Rts { id, data_bytes } => {
                    // Clear-to-send, then wait for the streamed data.
                    let machine = p.machine();
                    let link = machine.link_between(
                        self.job.node_of(self.rank, machine) * machine.cpus_per_node,
                        self.job.node_of(env.src, machine) * machine.cpus_per_node,
                    );
                    let rtag = Tag::rendezvous(id);
                    self.job.mailboxes[env.src].send(
                        p,
                        Envelope {
                            src: self.rank,
                            tag: rtag,
                            bytes: 0,
                            kind: Kind::Cts,
                        },
                        link.transfer(16),
                    );
                    let data = self.job.mailboxes[self.rank]
                        .recv_match(p, |e| e.tag == rtag && matches!(e.kind, Kind::Data(_)));
                    match data.kind {
                        Kind::Data(b) => (b, env.src, env.tag, data_bytes),
                        _ => unreachable!("matched Data"),
                    }
                }
                _ => unreachable!("matcher excludes Cts/Data"),
            };
        let value = *payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "MPI recv type mismatch on rank {}: message from {} tag {:?} is not a {}",
                self.rank,
                src_rank,
                otag,
                std::any::type_name::<T>()
            )
        });
        (
            value,
            Status {
                source: src_rank,
                tag: otag,
                bytes,
                completed_at: p.now(),
            },
        )
    }

    // -- public (hooked) point-to-point --------------------------------------

    /// `MPI_Send`.
    pub fn send<T: MpiData>(&self, p: &Proc, dst: usize, tag: Tag, data: T) {
        self.assert_ready();
        let bytes = data.byte_len();
        self.job.hooks.begin(p, self, MpiOp::Send, Some(dst), bytes);
        p.advance(self.job.call_overhead);
        self.send_raw(p, dst, tag, data);
        self.job.hooks.end(p, self, MpiOp::Send, Some(dst), bytes);
    }

    /// `MPI_Recv`.
    pub fn recv<T: MpiData>(&self, p: &Proc, src: Source, tag: TagSel) -> (T, Status) {
        self.assert_ready();
        let peer = match src {
            Source::Rank(r) => Some(r),
            Source::Any => None,
        };
        self.job.hooks.begin(p, self, MpiOp::Recv, peer, 0);
        let (v, st) = self.recv_raw::<T>(p, src, tag);
        p.advance(self.job.call_overhead);
        self.job
            .hooks
            .end(p, self, MpiOp::Recv, Some(st.source), st.bytes);
        (v, st)
    }

    /// `MPI_Sendrecv`: send to `dst` and receive from `src` without
    /// deadlock (the send half is buffered eagerly regardless of size).
    pub fn sendrecv<S: MpiData, R: MpiData>(
        &self,
        p: &Proc,
        dst: usize,
        stag: Tag,
        data: S,
        src: Source,
        rtag: TagSel,
    ) -> (R, Status) {
        self.assert_ready();
        let bytes = data.byte_len();
        self.job.hooks.begin(p, self, MpiOp::Send, Some(dst), bytes);
        p.advance(self.job.call_overhead);
        // Force the eager path: real MPI_Sendrecv is deadlock-free.
        self.send_eager_forced(p, dst, stag, data);
        let (v, st) = self.recv_raw::<R>(p, src, rtag);
        p.advance(self.job.call_overhead);
        self.job
            .hooks
            .end(p, self, MpiOp::Recv, Some(st.source), st.bytes);
        (v, st)
    }

    /// Shared helper: hooks + per-call overhead around a point-to-point op.
    pub(crate) fn hooked_p2p<R>(
        &self,
        p: &Proc,
        op: crate::types::MpiOp,
        peer: Option<usize>,
        bytes: usize,
        f: impl FnOnce(&Proc) -> R,
    ) -> R {
        self.assert_ready();
        self.job.hooks.begin(p, self, op, peer, bytes);
        p.advance(self.job.call_overhead);
        let r = f(p);
        self.job.hooks.end(p, self, op, peer, bytes);
        r
    }

    /// Buffered (eager-forced) send used by `MPI_Isend` and `MPI_Sendrecv`.
    pub(crate) fn send_buffered<T: MpiData>(&self, p: &Proc, dst: usize, tag: Tag, data: T) {
        self.send_eager_forced(p, dst, tag, data);
    }

    /// Complete a posted nonblocking receive (fires the Recv wrapper).
    pub(crate) fn wait_recv<T: MpiData>(&self, p: &Proc, src: Source, tag: TagSel) -> (T, Status) {
        self.assert_ready();
        let peer = match src {
            Source::Rank(r) => Some(r),
            Source::Any => None,
        };
        self.job
            .hooks
            .begin(p, self, crate::types::MpiOp::Recv, peer, 0);
        let (v, st) = self.recv_raw::<T>(p, src, tag);
        p.advance(self.job.call_overhead);
        self.job.hooks.end(
            p,
            self,
            crate::types::MpiOp::Recv,
            Some(st.source),
            st.bytes,
        );
        (v, st)
    }

    fn send_eager_forced<T: MpiData>(&self, p: &Proc, dst: usize, tag: Tag, data: T) {
        assert!(dst < self.size(), "send to invalid rank {dst}");
        let bytes = data.byte_len();
        if obs::enabled() {
            note_send(bytes);
        }
        let machine = p.machine();
        let link = machine.link_between(
            self.job.node_of(self.rank, machine) * machine.cpus_per_node,
            self.job.node_of(dst, machine) * machine.cpus_per_node,
        );
        let latency = link.transfer(bytes);
        self.job.mailboxes[dst].send(
            p,
            Envelope {
                src: self.rank,
                tag,
                bytes,
                kind: Kind::Eager(Box::new(data)),
            },
            latency,
        );
    }

    /// Non-blocking probe: is a matching message available right now?
    pub fn iprobe(&self, p: &Proc, src: Source, tag: TagSel) -> bool {
        self.assert_ready();
        let now = p.now();
        self.job.mailboxes[self.rank]
            .peek_arrival(|e| {
                src.matches(e.src)
                    && tag.matches(e.tag)
                    && matches!(e.kind, Kind::Eager(_) | Kind::Rts { .. })
            })
            .is_some_and(|t| t <= now)
    }
}
