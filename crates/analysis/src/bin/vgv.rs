//! A text-mode stand-in for the VGV GUI (paper §3.1, Fig 4).
//!
//! ```console
//! $ vgv info run.vgvs                 # store summary (footer index only)
//! $ vgv ranks run.vgvs                # per-rank event counts and bounds
//! $ vgv top run.vgvs [--top N] [--exclude-suspensions]
//! $ vgv slice run.vgvs --t0 2ms --t1 5ms [--rank N] [--width N]
//! $ vgv comm run.vgvs                 # rank x rank byte matrix
//! $ vgv fsck run.vgvs [--repair [--out fixed.vgvs]]
//! $ vgv convert run.vgvt run.vgvs [--chunk-events N]
//! $ vgv view run.vgvt [--width N] [--per-thread] [--top N]
//! $ vgv run.vgvt                      # same as `vgv view` (legacy)
//! ```
//!
//! Subcommands other than `view`/`convert` operate on chunk-indexed
//! `VGVS` stores and decode only what the query needs; `view` is the
//! legacy load-everything path for flat `VGVT` traces. A store argument
//! names either one file or a rotated segment family (`run.vgvs` finds
//! `run.0000.vgvs`, `run.0001.vgvs`, …); `--salvage` opens crashed
//! captures without a footer, `--degraded` skips (and reports) corrupt
//! chunks instead of failing.

use dynprof_analysis::store::{fsck, repair, SegmentSet, StoreOptions};
use dynprof_analysis::{
    comm_report, convert, info_report, ranks_report, read_trace, render, slice_report, top_report,
    trace_volume, Profile, ProfileOptions, TimelineOptions,
};
use dynprof_sim::SimTime;

fn usage() -> ! {
    eprintln!(
        "usage: vgv <command> <file> [options]\n\
         commands:\n\
         \x20 info <store.vgvs>                    store summary from the footer index\n\
         \x20 ranks <store.vgvs>                   per-rank event counts and time bounds\n\
         \x20 top <store.vgvs> [--top N] [--exclude-suspensions]\n\
         \x20 slice <store.vgvs> --t0 T --t1 T [--rank N] [--width N]\n\
         \x20 comm <store.vgvs>                    communication matrix\n\
         \x20 fsck <store.vgvs> [--repair] [--out F]  verify chunks, footer; rebuild if asked\n\
         \x20 convert <in.vgvt> <out.vgvs> [--chunk-events N]\n\
         \x20 view <trace.vgvt> [--width N] [--per-thread] [--top N] [--exclude-suspensions]\n\
         store commands also take --salvage (open footer-less captures) and\n\
         --degraded (skip corrupt chunks, reporting the loss); a store path\n\
         may name a rotated segment family (run.vgvs -> run.0000.vgvs, ...)\n\
         times accept ns (plain number), us, ms or s suffixes, e.g. --t0 2.5ms"
    );
    std::process::exit(2);
}

fn fail(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("vgv: {context}: {err}");
    std::process::exit(1);
}

/// Parse `12`, `12us`, `2.5ms`, `1s` into a [`SimTime`].
fn parse_time(s: &str) -> Option<SimTime> {
    let (num, scale) = if let Some(v) = s.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = s.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1e9)
    } else {
        (s, 1.0)
    };
    let v: f64 = num.parse().ok()?;
    if v < 0.0 {
        return None;
    }
    Some(SimTime::from_nanos((v * scale).round() as u64))
}

struct Flags {
    positional: Vec<String>,
    top: usize,
    width: usize,
    per_thread: bool,
    exclude: bool,
    rank: Option<u32>,
    t0: Option<SimTime>,
    t1: Option<SimTime>,
    chunk_events: usize,
    salvage: bool,
    degraded: bool,
    repair: bool,
    out: Option<String>,
}

fn need<'a>(args: &'a [String], i: &mut usize) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => usage(),
    }
}

fn parse_flags(args: &[String]) -> Flags {
    let mut f = Flags {
        positional: Vec::new(),
        top: 20,
        width: 96,
        per_thread: false,
        exclude: false,
        rank: None,
        t0: None,
        t1: None,
        chunk_events: StoreOptions::default().chunk_events,
        salvage: false,
        degraded: false,
        repair: false,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                f.top = need(args, &mut i)
                    .parse()
                    .unwrap_or_else(|e| fail("--top", e))
            }
            "--width" => {
                f.width = need(args, &mut i)
                    .parse()
                    .unwrap_or_else(|e| fail("--width", e))
            }
            "--per-thread" => f.per_thread = true,
            "--exclude-suspensions" => f.exclude = true,
            "--rank" => {
                f.rank = Some(
                    need(args, &mut i)
                        .parse()
                        .unwrap_or_else(|e| fail("--rank", e)),
                )
            }
            "--t0" => {
                f.t0 =
                    Some(parse_time(need(args, &mut i)).unwrap_or_else(|| fail("--t0", "bad time")))
            }
            "--t1" => {
                f.t1 =
                    Some(parse_time(need(args, &mut i)).unwrap_or_else(|| fail("--t1", "bad time")))
            }
            "--chunk-events" => {
                f.chunk_events = need(args, &mut i)
                    .parse()
                    .unwrap_or_else(|e| fail("--chunk-events", e))
            }
            "--salvage" => f.salvage = true,
            "--degraded" => f.degraded = true,
            "--repair" => f.repair = true,
            "--out" => f.out = Some(need(args, &mut i).to_string()),
            flag if flag.starts_with("--") => {
                eprintln!("vgv: unexpected flag {flag:?}");
                usage();
            }
            other => f.positional.push(other.to_string()),
        }
        i += 1;
    }
    f
}

/// Open `path` as an event source: a single store or a rotated segment
/// family, optionally salvaging footer-less members and/or degrading
/// (skip + report) around corrupt chunks.
fn open_source(path: &str, f: &Flags) -> SegmentSet {
    let mut set = if f.salvage {
        SegmentSet::open_salvage(path)
    } else {
        SegmentSet::open(path)
    }
    .unwrap_or_else(|e| fail(path, e));
    if f.degraded {
        set.set_degraded(true);
    }
    set
}

/// After a degraded query, say what was dropped (on stderr, so report
/// bytes stay golden-comparable).
fn report_drops(set: &SegmentSet) {
    if let Some(s) = set.salvage() {
        if s.tail_bytes_dropped > 0 {
            eprintln!(
                "vgv: salvage dropped {} tail bytes (torn final write)",
                s.tail_bytes_dropped
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        usage();
    };
    // `vgv <file.vgvt>` (no subcommand) keeps working as the legacy view.
    let (command, rest): (&str, &[String]) = if command.starts_with('-') || command.contains('.') {
        ("view", &args)
    } else {
        (command.as_str(), &args[1..])
    };
    let f = parse_flags(rest);
    match command {
        "info" => {
            let [path] = &f.positional[..] else { usage() };
            let set = open_source(path, &f);
            print!("{}", info_report(&set));
        }
        "ranks" => {
            let [path] = &f.positional[..] else { usage() };
            print!("{}", ranks_report(&open_source(path, &f)));
        }
        "top" => {
            let [path] = &f.positional[..] else { usage() };
            let mut r = open_source(path, &f);
            let opts = ProfileOptions {
                exclude_suspensions: f.exclude,
            };
            let report = top_report(&mut r, f.top, opts).unwrap_or_else(|e| fail(path, e));
            print!("{report}");
            report_drops(&r);
        }
        "slice" => {
            let [path] = &f.positional[..] else { usage() };
            let (Some(t0), Some(t1)) = (f.t0, f.t1) else {
                eprintln!("vgv slice: --t0 and --t1 are required");
                usage();
            };
            let mut r = open_source(path, &f);
            let (report, _) =
                slice_report(&mut r, t0, t1, f.rank, f.width).unwrap_or_else(|e| fail(path, e));
            print!("{report}");
            report_drops(&r);
        }
        "comm" => {
            let [path] = &f.positional[..] else { usage() };
            let mut r = open_source(path, &f);
            print!("{}", comm_report(&mut r).unwrap_or_else(|e| fail(path, e)));
            report_drops(&r);
        }
        "fsck" => {
            let [path] = &f.positional[..] else { usage() };
            if f.repair {
                let out = f.out.clone().unwrap_or_else(|| format!("{path}.repaired"));
                let report = repair(path, &out).unwrap_or_else(|e| fail(path, e));
                print!("{}", report.render());
                println!("repaired -> {out}");
            } else {
                let report = fsck(path).unwrap_or_else(|e| fail(path, e));
                print!("{}", report.render());
                if !report.is_clean() {
                    std::process::exit(1);
                }
            }
        }
        "convert" => {
            let [from, to] = &f.positional[..] else {
                usage()
            };
            let opts = StoreOptions {
                chunk_events: f.chunk_events,
            };
            let stats = convert(from, to, opts).unwrap_or_else(|e| fail(from, e));
            println!(
                "converted {from} -> {to}: {} events in {} chunks, {} bytes",
                stats.events, stats.chunks, stats.bytes
            );
        }
        "view" => {
            let [path] = &f.positional[..] else { usage() };
            let trace = read_trace(path).unwrap_or_else(|e| fail(path, e));
            print!(
                "{}",
                render(
                    &trace,
                    TimelineOptions {
                        width: f.width,
                        per_thread: f.per_thread,
                    }
                )
            );
            let v = trace_volume(&trace, 24);
            println!(
                "\n{} events, {} modelled bytes, {:.1} KB/s aggregate",
                trace.events.len(),
                v.bytes,
                v.bytes_per_second / 1024.0
            );
            let comm = dynprof_analysis::CommStats::from_trace(&trace);
            let matrix = comm.render_matrix();
            if !matrix.is_empty() {
                println!("\n-- communication --");
                print!("{matrix}");
            }
            println!("\n-- statistics (top {}) --", f.top);
            let profile = Profile::from_trace_opts(
                &trace,
                ProfileOptions {
                    exclude_suspensions: f.exclude,
                },
            );
            print!("{}", profile.render_top(f.top));
        }
        other => {
            eprintln!("vgv: unknown command {other:?}");
            usage();
        }
    }
}
