//! A text-mode stand-in for the VGV GUI (paper §3.1, Fig 4): read a
//! binary trace file and print the time-line display and statistics pane.
//!
//! ```console
//! $ vgv run.vgvt [--width N] [--per-thread] [--top N] [--exclude-suspensions]
//! ```

use dynprof_analysis::{
    read_trace, render, trace_volume, Profile, ProfileOptions, TimelineOptions,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut width = 96usize;
    let mut per_thread = false;
    let mut top = 20usize;
    let mut exclude = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--width" => {
                i += 1;
                width = args[i].parse().expect("width");
            }
            "--per-thread" => per_thread = true,
            "--top" => {
                i += 1;
                top = args[i].parse().expect("top");
            }
            "--exclude-suspensions" => exclude = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("vgv: unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!(
            "usage: vgv <trace.vgvt> [--width N] [--per-thread] [--top N] [--exclude-suspensions]"
        );
        std::process::exit(2);
    };
    let trace = match read_trace(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vgv: {path}: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", render(&trace, TimelineOptions { width, per_thread }));
    let v = trace_volume(&trace, 24);
    println!(
        "\n{} events, {} modelled bytes, {:.1} KB/s aggregate",
        trace.events.len(),
        v.bytes,
        v.bytes_per_second / 1024.0
    );
    let comm = dynprof_analysis::CommStats::from_trace(&trace);
    let matrix = comm.render_matrix();
    if !matrix.is_empty() {
        println!("\n-- communication --");
        print!("{matrix}");
    }
    println!("\n-- statistics (top {top}) --");
    let profile = Profile::from_trace_opts(
        &trace,
        ProfileOptions {
            exclude_suspensions: exclude,
        },
    );
    print!("{}", profile.render_top(top));
}
