//! In-tree CRC-32 (IEEE 802.3, polynomial `0xEDB88320`).
//!
//! The store cannot pull a registry crate (the tree is self-contained —
//! DESIGN §7), so the checksum lives here. Two engines:
//!
//! * slice-by-16: sixteen 256-entry tables built at compile time,
//!   sixteen bytes per step — the portable baseline, and the reference
//!   the SIMD path is differentially tested against;
//! * PCLMULQDQ folding (x86-64 only, runtime-detected): the classic
//!   carry-less-multiply reduction (Gopal et al., "Fast CRC Computation
//!   for Generic Polynomials Using PCLMULQDQ", 2009) that zlib and
//!   crc32fast use, folding 64 input bytes per step.
//!
//! The SIMD path is what keeps the per-chunk checksum under the <5%
//! append-overhead budget pinned in `benches/micro.rs`.

/// The reflected IEEE 802.3 generator polynomial.
const POLY: u32 = 0xEDB8_8320;

/// `TABLES[k][b]` advances a CRC whose next `k+1` input bytes start with
/// byte value `b` followed by `k` zero bytes.
static TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[0][b] = crc;
        b += 1;
    }
    let mut i = 1usize;
    while i < 16 {
        let mut b = 0usize;
        while b < 256 {
            let prev = t[i - 1][b];
            t[i][b] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            b += 1;
        }
        i += 1;
    }
    t
}

/// A streaming CRC-32 computation. [`Crc32::update`] may be called any
/// number of times; the digest covers the concatenation of every slice
/// fed in (the store hashes a chunk's header bytes then its payload).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// Start a fresh digest.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feed `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Crc32 {
        #[cfg(target_arch = "x86_64")]
        if bytes.len() >= 128 && pclmul::available() {
            // SAFETY: feature presence was just checked.
            self.state = unsafe { pclmul::update(self.state, bytes) };
            return self;
        }
        self.state = update_tables(self.state, bytes);
        self
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// The portable slice-by-16 engine: digest `bytes` into `state`.
fn update_tables(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    let mut chunks = bytes.chunks_exact(16);
    for w in &mut chunks {
        // Two register-wide loads; every table index is a shift of a
        // register, which keeps the 16 lookups independent of each
        // other (the serial dependency is only through `lo`).
        let lo = u64::from_le_bytes(w[..8].try_into().unwrap()) ^ crc as u64;
        let hi = u64::from_le_bytes(w[8..].try_into().unwrap());
        crc = TABLES[15][(lo & 0xff) as usize]
            ^ TABLES[14][((lo >> 8) & 0xff) as usize]
            ^ TABLES[13][((lo >> 16) & 0xff) as usize]
            ^ TABLES[12][((lo >> 24) & 0xff) as usize]
            ^ TABLES[11][((lo >> 32) & 0xff) as usize]
            ^ TABLES[10][((lo >> 40) & 0xff) as usize]
            ^ TABLES[9][((lo >> 48) & 0xff) as usize]
            ^ TABLES[8][(lo >> 56) as usize]
            ^ TABLES[7][(hi & 0xff) as usize]
            ^ TABLES[6][((hi >> 8) & 0xff) as usize]
            ^ TABLES[5][((hi >> 16) & 0xff) as usize]
            ^ TABLES[4][((hi >> 24) & 0xff) as usize]
            ^ TABLES[3][((hi >> 32) & 0xff) as usize]
            ^ TABLES[2][((hi >> 40) & 0xff) as usize]
            ^ TABLES[1][((hi >> 48) & 0xff) as usize]
            ^ TABLES[0][(hi >> 56) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    crc
}

/// CRC-32 by PCLMULQDQ folding. The reduction constants are the
/// standard precomputed powers of `x` modulo the (bit-reflected) IEEE
/// polynomial from the Intel white paper; the structure follows the
/// reference implementation every CRC library uses.
#[cfg(target_arch = "x86_64")]
mod pclmul {
    use std::arch::x86_64::*;

    /// `(x^(4·128+32) mod P, x^(4·128-32) mod P)`: folds a lane forward
    /// across 64 bytes.
    const K1K2: (i64, i64) = (0x01_5444_2bd4, 0x01_c6e4_1596);
    /// `(x^(128+32) mod P, x^(128-32) mod P)`: folds a lane forward
    /// across 16 bytes.
    const K3K4: (i64, i64) = (0x01_7519_97d0, 0xccaa_009e);
    /// `x^64 mod P`: reduces 128 bits to 96.
    const K5: i64 = 0x01_63cd_6124;
    /// Barrett reduction constants `(μ, P)`.
    const MU_P: (i64, i64) = (0x01_f701_1641, 0x01_db71_0641);

    pub fn available() -> bool {
        is_x86_feature_detected!("pclmulqdq") && is_x86_feature_detected!("sse4.1")
    }

    /// Fold `lane` forward over the next 16 input bytes `data`.
    #[inline]
    #[target_feature(enable = "pclmulqdq,sse4.1")]
    unsafe fn fold16(lane: __m128i, coeff: __m128i, data: __m128i) -> __m128i {
        _mm_xor_si128(
            _mm_xor_si128(_mm_clmulepi64_si128(lane, coeff, 0x00), data),
            _mm_clmulepi64_si128(lane, coeff, 0x11),
        )
    }

    /// Digest `bytes` (len ≥ 128) into `state`. Caller must have checked
    /// [`available`].
    #[target_feature(enable = "pclmulqdq,sse4.1")]
    pub unsafe fn update(state: u32, bytes: &[u8]) -> u32 {
        let mut p = bytes.as_ptr() as *const __m128i;
        let mut len = bytes.len();

        // Four independent 16-byte lanes, CRC xor'd into the first.
        let mut x1 = _mm_xor_si128(_mm_loadu_si128(p), _mm_cvtsi32_si128(state as i32));
        let mut x2 = _mm_loadu_si128(p.add(1));
        let mut x3 = _mm_loadu_si128(p.add(2));
        let mut x4 = _mm_loadu_si128(p.add(3));
        p = p.add(4);
        len -= 64;

        // Main loop: fold all four lanes across each 64-byte block.
        let k1k2 = _mm_set_epi64x(K1K2.1, K1K2.0);
        while len >= 64 {
            x1 = fold16(x1, k1k2, _mm_loadu_si128(p));
            x2 = fold16(x2, k1k2, _mm_loadu_si128(p.add(1)));
            x3 = fold16(x3, k1k2, _mm_loadu_si128(p.add(2)));
            x4 = fold16(x4, k1k2, _mm_loadu_si128(p.add(3)));
            p = p.add(4);
            len -= 64;
        }

        // Fold the four lanes into one, then any remaining whole blocks.
        let k3k4 = _mm_set_epi64x(K3K4.1, K3K4.0);
        let mut x = fold16(x1, k3k4, x2);
        x = fold16(x, k3k4, x3);
        x = fold16(x, k3k4, x4);
        while len >= 16 {
            x = fold16(x, k3k4, _mm_loadu_si128(p));
            p = p.add(1);
            len -= 16;
        }

        // Reduce 128 bits to 64, then 96 to 64 with K5.
        let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        let x = _mm_xor_si128(
            _mm_clmulepi64_si128(
                _mm_and_si128(x, _mm_set_epi64x(0, !0u32 as i64)),
                _mm_set_epi64x(0, K5),
                0x00,
            ),
            _mm_srli_si128(x, 4),
        );

        // Barrett reduction down to 32 bits.
        let mu_p = _mm_set_epi64x(MU_P.1, MU_P.0);
        let mask32 = _mm_set_epi64x(0, !0u32 as i64);
        let t = _mm_clmulepi64_si128(_mm_and_si128(x, mask32), mu_p, 0x00);
        let t = _mm_clmulepi64_si128(_mm_and_si128(t, mask32), mu_p, 0x10);
        let crc = _mm_extract_epi32(_mm_xor_si128(x, t), 1) as u32;

        // Table-finish the sub-16-byte tail.
        super::update_tables(crc, &bytes[bytes.len() - len..])
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 + 7) as u8).collect();
        for split in [0, 1, 7, 8, 9, 511, 1023, 1024] {
            let mut c = Crc32::new();
            c.update(&data[..split]).update(&data[split..]);
            assert_eq!(c.finish(), crc32(&data), "split {split}");
        }
    }

    /// The SIMD engine must agree with the table engine on every input
    /// length around its thresholds (lane setup, 64/16-byte folds, and
    /// the table-finished tail all get exercised). On non-x86-64 hosts
    /// this degenerates to a self-check of the table path.
    #[test]
    fn engines_agree_across_lengths() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
            .collect();
        for len in (0..256).chain([511, 512, 513, 1023, 1024, 4095, 4096]) {
            let via_tables = !update_tables(!0, &data[..len]);
            assert_eq!(crc32(&data[..len]), via_tables, "len {len}");
            // Streaming split at an odd offset crosses the SIMD gate.
            if len > 130 {
                let mut c = Crc32::new();
                c.update(&data[..67]).update(&data[67..len]);
                assert_eq!(c.finish(), via_tables, "split len {len}");
            }
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let good = crc32(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "flip {byte}:{bit} undetected");
            }
        }
    }
}
