//! # Chunk-indexed trace store (`VGVS`)
//!
//! The legacy `VGVT` format is one flat event array: reading *anything*
//! means decoding *everything*, which dies at the paper's 144×8 scale and
//! is hopeless at 10k+ ranks. The store replaces it with a seekable,
//! chunk-compressed layout so every query touches only the bytes it
//! needs. Format **version 2** (this layout) is also crash-consistent:
//! every chunk carries a CRC-32 and the file is salvageable without its
//! footer (see [`StoreReader::open_salvage`] and DESIGN §17).
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────────────┐
//! │ header (8B):  "VGVS" magic │ version u16 │ flags u16               │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ preamble: len u32 │ crc32 u32 │ program string │ function dict     │
//! │           (written before the first chunk so a footer-less salvage │
//! │            scan still knows the program + function names)          │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ chunk 0: ┌ disk header (40B) ───────────────────────────────┐      │
//! │          │ rank u32 │ count u32 │ enc_len u32 │ crc32 u32   │      │
//! │          │ min_t u64 │ max_t u64 │ max_end u64              │      │
//! │          └ payload: enc_len bytes, delta/varint events ─────┘      │
//! │ chunk 1: …  (one rank per chunk; ≤ chunk_events events)            │
//! │   ⋮       crc32 covers the header's non-crc bytes + the payload    │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ footer:  program string │ function dictionary │ chunk index        │
//! │          (index entry = rank, offset, enc_len, count, crc,         │
//! │           min_t, max_t, max_end — 48B per chunk)                   │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ trailer (18B): footer_len u64 │ footer crc32 │ "VGVS" │ version    │
//! └────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Version-1 files (written before the CRC era: 36-byte chunk headers,
//! 44-byte index entries, no preamble, 14-byte trailer) still open
//! **read-only** through the same [`StoreReader`]; they simply have no
//! checksums to verify.
//!
//! **Bounded memory.** The writer holds one open chunk per rank
//! (`O(ranks × chunk_events)` events, never `O(trace)`); a chunk is
//! encoded incrementally and written out the moment it fills. The reader
//! seeks via the footer index and decodes **one chunk at a time**; a
//! windowed query ([`StoreReader::for_each_query`]) consults each index
//! entry's `[min_t, max_end]` envelope and never reads the payload of a
//! chunk outside the window. Skip ratios are observable through the
//! `analysis.chunks_{written,read,skipped}` counters.
//!
//! **Crash consistency.** A writer that dies before
//! [`StoreWriter::finish`] leaves a file without a footer; the salvage
//! scanner ([`StoreReader::open_salvage`], `vgv fsck [--repair]`) rebuilds
//! the index by forward-scanning the self-describing chunk headers and
//! recovers every chunk whose bytes were fully flushed — the CRC proves
//! it. Long captures can additionally rotate segments
//! ([`RotatingWriter`], [`SegmentSet`]) so a crash only ever risks the
//! tail of the *newest* segment. Torn-write behaviour is tested through
//! the seeded [`iofault::FaultyFile`] layer.
//!
//! **Writing.** [`StoreWriter`] streams events (see
//! [`write_store_from_vt`] for the `VtLib` flush path and
//! [`write_store_from_trace`] for legacy conversion); [`compact`] merges
//! small per-rank segment files into one indexed store, re-mapping
//! function ids when the segments' dictionaries differ and re-verifying
//! every input CRC on the way through.
//!
//! ```
//! use dynprof_analysis::store::{StoreOptions, StoreReader, StoreWriter};
//! use dynprof_sim::SimTime;
//! use dynprof_vt::{Event, VtFuncId};
//!
//! let dir = std::env::temp_dir().join("dynprof-doctest");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join(format!("doc-{}.vgvs", std::process::id()));
//!
//! // Stream events through the bounded-memory writer…
//! let mut w = StoreWriter::create(&path, "demo", StoreOptions::default()).unwrap();
//! w.set_functions(vec!["solve".to_string()]);
//! for i in 0..100u64 {
//!     w.append(&Event::FuncEnter {
//!         t: SimTime::from_micros(2 * i),
//!         rank: (i % 4) as u32,
//!         thread: 0,
//!         func: VtFuncId(0),
//!     });
//!     w.append(&Event::FuncExit {
//!         t: SimTime::from_micros(2 * i + 1),
//!         rank: (i % 4) as u32,
//!         thread: 0,
//!         func: VtFuncId(0),
//!     });
//! }
//! let stats = w.finish().unwrap();
//! assert_eq!(stats.events, 200);
//!
//! // …then query a time window without decoding the whole file.
//! let mut r = StoreReader::open(&path).unwrap();
//! let mut seen = 0;
//! let q = r
//!     .for_each_query(
//!         Some((SimTime::from_micros(10), SimTime::from_micros(20))),
//!         None,
//!         |ev| {
//!             assert!(ev.time() <= SimTime::from_micros(20));
//!             seen += 1;
//!         },
//!     )
//!     .unwrap();
//! assert!(seen > 0 && q.events == seen);
//! std::fs::remove_file(&path).ok();
//! ```

pub mod codec;
mod crc;
pub mod iofault;
mod reader;
mod salvage;
mod segment;
mod writer;

use std::collections::BTreeMap;

pub use codec::{event_end, event_overlaps};
pub use crc::{crc32, Crc32};
pub use iofault::{FaultScript, FaultyFile};
pub use reader::{QueryStats, SalvageSummary, StoreInfo, StoreReader};
pub use salvage::{fsck, repair, ChunkFault, FooterState, FsckReport};
pub use segment::{
    write_store_from_vt_rotating, RetentionPolicy, RotatingWriter, RotationPolicy, SegmentSet,
    SegmentStats,
};
pub use writer::{compact, write_store_from_trace, write_store_from_vt, StoreStats, StoreWriter};

use dynprof_sim::SimTime;
use dynprof_vt::Event;

use crate::error::TraceError;

/// File magic of the chunk-indexed store format.
pub const STORE_MAGIC: &[u8; 4] = b"VGVS";
/// Current store format version (CRC-32 chunks, salvageable preamble).
pub const STORE_VERSION: u16 = 2;
/// The pre-CRC store format version; such files open read-only.
pub const STORE_VERSION_V1: u16 = 1;
/// Bytes of the fixed file header (magic + version + flags).
pub(crate) const HEADER_BYTES: u64 = 8;

/// Bytes of the per-chunk on-disk header for format `version`.
pub(crate) fn chunk_header_bytes(version: u16) -> usize {
    match version {
        STORE_VERSION_V1 => 36,
        _ => 40,
    }
}

/// Bytes of one footer-index entry for format `version`.
pub(crate) fn index_entry_bytes(version: u16) -> usize {
    match version {
        STORE_VERSION_V1 => 44,
        _ => 48,
    }
}

/// Bytes of the trailing `footer_len | [footer crc] | magic | version`
/// trailer for format `version`.
pub(crate) fn trailer_bytes(version: u16) -> u64 {
    match version {
        STORE_VERSION_V1 => 14,
        _ => 18,
    }
}

/// Is `version` one this reader understands?
pub(crate) fn version_supported(version: u16) -> bool {
    version == STORE_VERSION_V1 || version == STORE_VERSION
}

/// Writer/reader tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Events per chunk: the unit of seeking, skipping, and writer
    /// memory. Smaller chunks skip more precisely but index larger.
    pub chunk_events: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions { chunk_events: 2048 }
    }
}

/// One chunk's footer-index entry: everything a query needs to decide
/// whether the payload is worth reading, without touching it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Rank whose events the chunk holds.
    pub rank: u32,
    /// File offset of the chunk's on-disk header.
    pub offset: u64,
    /// Encoded payload length in bytes.
    pub enc_len: u32,
    /// Number of events.
    pub count: u32,
    /// CRC-32 over the chunk header's non-crc bytes followed by the
    /// payload (0 in version-1 files, which carry no checksums).
    pub crc: u32,
    /// Minimum event timestamp.
    pub min_t: SimTime,
    /// Maximum event *start* timestamp (the legacy trace's notion of the
    /// last event time — timeline bounds use this).
    pub max_t: SimTime,
    /// Maximum event *end* timestamp (spans included); window-overlap
    /// tests use `[min_t, max_end]`.
    pub max_end: SimTime,
}

impl ChunkMeta {
    /// Does this chunk's time envelope intersect the closed window
    /// `[t0, t1]`?
    pub fn overlaps(&self, t0: SimTime, t1: SimTime) -> bool {
        self.min_t <= t1 && self.max_end >= t0
    }

    /// Total on-disk bytes of the chunk (header + payload) under format
    /// `version`.
    pub(crate) fn disk_bytes(&self, version: u16) -> u64 {
        chunk_header_bytes(version) as u64 + self.enc_len as u64
    }
}

/// Anything the streaming query layer can consume events from: a single
/// [`StoreReader`] or a rotated [`SegmentSet`]. The `vgv` reports
/// ([`crate::info_report`], [`crate::top_report`], …) and the streaming
/// builders ([`crate::Profile::from_store`],
/// [`crate::CommStats::from_store`]) are generic over this trait, so
/// rotation is transparent to every analysis.
pub trait EventSource {
    /// Program name recorded by the writer.
    fn program(&self) -> &str;

    /// Function dictionary (names indexed by `VtFuncId`).
    fn functions(&self) -> &[String];

    /// Index-only summary (no chunk payload is read).
    fn source_info(&self) -> StoreInfo;

    /// Distinct ranks present, ascending.
    fn source_ranks(&self) -> Vec<u32>;

    /// Per-rank `(events, min_t, max_t)` drawn from the index alone.
    fn source_rank_summary(&self) -> BTreeMap<u32, (u64, SimTime, SimTime)>;

    /// Stream every event overlapping `window` (closed interval; `None` =
    /// all time) on `rank` (`None` = all ranks) through `f`, decoding
    /// only chunks whose index envelope overlaps. Returns what it cost.
    fn query(
        &mut self,
        window: Option<(SimTime, SimTime)>,
        rank: Option<u32>,
        f: &mut dyn FnMut(&Event),
    ) -> Result<QueryStats, TraceError>;

    /// Stream all of one rank's events in recorded (causal) order —
    /// what per-rank call-stack replay (profiles) consumes.
    fn rank_events(&mut self, rank: u32, f: &mut dyn FnMut(&Event)) -> Result<(), TraceError>;
}
