//! # Chunk-indexed trace store (`VGVS`)
//!
//! The legacy `VGVT` format is one flat event array: reading *anything*
//! means decoding *everything*, which dies at the paper's 144×8 scale and
//! is hopeless at 10k+ ranks. The store replaces it with a seekable,
//! chunk-compressed layout so every query touches only the bytes it
//! needs:
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────────────┐
//! │ header (8B):  "VGVS" magic │ version u16 │ flags u16               │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ chunk 0: ┌ disk header (36B) ───────────────────────────────┐      │
//! │          │ rank u32 │ count u32 │ enc_len u32               │      │
//! │          │ min_t u64 │ max_t u64 │ max_end u64              │      │
//! │          └ payload: enc_len bytes, delta/varint events ─────┘      │
//! │ chunk 1: …  (one rank per chunk; ≤ chunk_events events)            │
//! │   ⋮                                                                │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ footer:  program string │ function dictionary │ chunk index        │
//! │          (index entry = rank, offset, enc_len, count,              │
//! │           min_t, max_t, max_end — 44B per chunk)                   │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ trailer (14B): footer_len u64 │ "VGVS" │ version u16               │
//! └────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! **Bounded memory.** The writer holds one open chunk per rank
//! (`O(ranks × chunk_events)` events, never `O(trace)`); a chunk is
//! encoded incrementally and written out the moment it fills. The reader
//! seeks via the footer index and decodes **one chunk at a time**; a
//! windowed query ([`StoreReader::for_each_query`]) consults each index
//! entry's `[min_t, max_end]` envelope and never reads the payload of a
//! chunk outside the window. Skip ratios are observable through the
//! `analysis.chunks_{written,read,skipped}` counters.
//!
//! **Writing.** [`StoreWriter`] streams events (see
//! [`write_store_from_vt`] for the `VtLib` flush path and
//! [`write_store_from_trace`] for legacy conversion); [`compact`] merges
//! small per-rank segment files into one indexed store, re-mapping
//! function ids when the segments' dictionaries differ.
//!
//! ```
//! use dynprof_analysis::store::{StoreOptions, StoreReader, StoreWriter};
//! use dynprof_sim::SimTime;
//! use dynprof_vt::{Event, VtFuncId};
//!
//! let dir = std::env::temp_dir().join("dynprof-doctest");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join(format!("doc-{}.vgvs", std::process::id()));
//!
//! // Stream events through the bounded-memory writer…
//! let mut w = StoreWriter::create(&path, "demo", StoreOptions::default()).unwrap();
//! w.set_functions(vec!["solve".to_string()]);
//! for i in 0..100u64 {
//!     w.append(&Event::FuncEnter {
//!         t: SimTime::from_micros(2 * i),
//!         rank: (i % 4) as u32,
//!         thread: 0,
//!         func: VtFuncId(0),
//!     });
//!     w.append(&Event::FuncExit {
//!         t: SimTime::from_micros(2 * i + 1),
//!         rank: (i % 4) as u32,
//!         thread: 0,
//!         func: VtFuncId(0),
//!     });
//! }
//! let stats = w.finish().unwrap();
//! assert_eq!(stats.events, 200);
//!
//! // …then query a time window without decoding the whole file.
//! let mut r = StoreReader::open(&path).unwrap();
//! let mut seen = 0;
//! let q = r
//!     .for_each_query(
//!         Some((SimTime::from_micros(10), SimTime::from_micros(20))),
//!         None,
//!         |ev| {
//!             assert!(ev.time() <= SimTime::from_micros(20));
//!             seen += 1;
//!         },
//!     )
//!     .unwrap();
//! assert!(seen > 0 && q.events == seen);
//! std::fs::remove_file(&path).ok();
//! ```

mod codec;
mod reader;
mod writer;

pub use codec::{event_end, event_overlaps};
pub use reader::{QueryStats, StoreInfo, StoreReader};
pub use writer::{compact, write_store_from_trace, write_store_from_vt, StoreStats, StoreWriter};

use dynprof_sim::SimTime;

/// File magic of the chunk-indexed store format.
pub const STORE_MAGIC: &[u8; 4] = b"VGVS";
/// Current store format version.
pub const STORE_VERSION: u16 = 1;
/// Bytes of the fixed file header (magic + version + flags).
pub(crate) const HEADER_BYTES: u64 = 8;
/// Bytes of the per-chunk on-disk header.
pub(crate) const CHUNK_HEADER_BYTES: usize = 36;
/// Bytes of the trailing `footer_len | magic | version` trailer.
pub(crate) const TRAILER_BYTES: u64 = 14;

/// Writer/reader tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Events per chunk: the unit of seeking, skipping, and writer
    /// memory. Smaller chunks skip more precisely but index larger.
    pub chunk_events: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions { chunk_events: 2048 }
    }
}

/// One chunk's footer-index entry: everything a query needs to decide
/// whether the payload is worth reading, without touching it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Rank whose events the chunk holds.
    pub rank: u32,
    /// File offset of the chunk's on-disk header.
    pub offset: u64,
    /// Encoded payload length in bytes.
    pub enc_len: u32,
    /// Number of events.
    pub count: u32,
    /// Minimum event timestamp.
    pub min_t: SimTime,
    /// Maximum event *start* timestamp (the legacy trace's notion of the
    /// last event time — timeline bounds use this).
    pub max_t: SimTime,
    /// Maximum event *end* timestamp (spans included); window-overlap
    /// tests use `[min_t, max_end]`.
    pub max_end: SimTime,
}

impl ChunkMeta {
    /// Does this chunk's time envelope intersect the closed window
    /// `[t0, t1]`?
    pub fn overlaps(&self, t0: SimTime, t1: SimTime) -> bool {
        self.min_t <= t1 && self.max_end >= t0
    }
}
