//! The streaming store writer: bounded memory per rank, chunks flushed
//! the moment they fill, footer index written once at `finish()`.
//!
//! Crash-consistency discipline (DESIGN §17): the salvageable preamble
//! (program + function dictionary) is written before the first chunk;
//! every chunk carries a CRC-32 over its header and payload; the footer
//! and trailer land last. At any kill point the file is therefore a
//! valid prefix — every fully-flushed chunk is recoverable by
//! [`StoreReader::open_salvage`](super::StoreReader::open_salvage), and
//! only the unflushed tail is at risk.

use std::collections::HashMap;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::OnceLock;

use bytes::{BufMut, BytesMut};
use dynprof_obs as obs;
use dynprof_sim::SimTime;
use dynprof_vt::{Event, Trace, VtFuncId, VtLib};

use super::codec::{encode_event, event_end};
use super::crc::{crc32, Crc32};
use super::reader::StoreReader;
use super::{ChunkMeta, StoreOptions, HEADER_BYTES, STORE_MAGIC, STORE_VERSION};
use crate::error::TraceError;

fn obs_chunks_written(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.chunks_written"))
        .add(n);
}

fn obs_store_bytes(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.store_bytes"))
        .add(n);
}

/// What one finished store write produced.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Chunks written.
    pub chunks: usize,
    /// Events written.
    pub events: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// High-water mark of encoder memory held across all open chunks —
    /// the writer's bounded-memory witness: `O(ranks × chunk_events)`
    /// regardless of trace length.
    pub peak_buffered_bytes: usize,
}

/// An open, per-rank chunk being encoded incrementally.
struct ChunkBuf {
    payload: BytesMut,
    count: u32,
    min_t: SimTime,
    max_t: SimTime,
    max_end: SimTime,
    prev_t: u64,
}

impl ChunkBuf {
    fn new() -> ChunkBuf {
        ChunkBuf {
            payload: BytesMut::new(),
            count: 0,
            min_t: SimTime(u64::MAX),
            max_t: SimTime::ZERO,
            max_end: SimTime::ZERO,
            prev_t: 0,
        }
    }
}

/// Streaming writer of the `VGVS` chunk-indexed store format
/// (version 2: CRC-32 chunks + salvageable preamble).
///
/// Append events in any rank order; each rank accumulates into its own
/// chunk, flushed to disk when [`StoreOptions::chunk_events`] is reached.
/// Call [`StoreWriter::finish`] to flush partial chunks and write the
/// footer index — a file without a footer is detected as
/// [`TraceError::TruncatedFooter`] by the reader and remains salvageable
/// chunk by chunk.
pub struct StoreWriter<W: Write + Seek> {
    out: W,
    pos: u64,
    opts: StoreOptions,
    program: String,
    functions: Vec<String>,
    preamble_written: bool,
    open: HashMap<u32, ChunkBuf>,
    index: Vec<ChunkMeta>,
    events: u64,
    buffered: usize,
    peak_buffered: usize,
    obs_counted: u64,
    deferred_err: Option<std::io::Error>,
}

impl StoreWriter<BufWriter<std::fs::File>> {
    /// Create a store file at `path`.
    pub fn create(
        path: impl AsRef<Path>,
        program: impl Into<String>,
        opts: StoreOptions,
    ) -> Result<Self, TraceError> {
        let file = std::fs::File::create(path)?;
        StoreWriter::new(BufWriter::new(file), program, opts)
    }
}

impl<W: Write + Seek> StoreWriter<W> {
    /// Wrap any seekable sink.
    pub fn new(
        mut out: W,
        program: impl Into<String>,
        opts: StoreOptions,
    ) -> Result<Self, TraceError> {
        let mut header = [0u8; HEADER_BYTES as usize];
        header[..4].copy_from_slice(STORE_MAGIC);
        header[4..6].copy_from_slice(&STORE_VERSION.to_le_bytes());
        out.write_all(&header)?;
        Ok(StoreWriter {
            out,
            pos: HEADER_BYTES,
            opts: StoreOptions {
                chunk_events: opts.chunk_events.max(1),
            },
            program: program.into(),
            functions: Vec::new(),
            preamble_written: false,
            open: HashMap::new(),
            index: Vec::new(),
            events: 0,
            buffered: 0,
            peak_buffered: 0,
            obs_counted: 0,
            deferred_err: None,
        })
    }

    /// Install the function dictionary (names indexed by `VtFuncId`).
    /// Names installed before the first chunk is flushed land in the
    /// salvageable preamble; later additions only reach the footer.
    pub fn set_functions(&mut self, names: Vec<String>) {
        self.functions = names;
    }

    /// Register one function name, returning its id (append-only; no
    /// dedup — callers that may repeat names should dedup themselves).
    pub fn define_function(&mut self, name: impl Into<String>) -> VtFuncId {
        self.functions.push(name.into());
        VtFuncId(self.functions.len() as u32 - 1)
    }

    /// Events appended so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Bytes this store occupies right now: what is on disk plus the
    /// open per-rank chunk buffers (the footer will add more at
    /// [`StoreWriter::finish`]). Rotation policies poll this.
    pub fn bytes_written(&self) -> u64 {
        self.pos + self.buffered as u64
    }

    /// Append one event to its rank's open chunk, flushing the chunk to
    /// disk if it reaches the configured size.
    pub fn append(&mut self, ev: &Event) {
        let rank = ev.rank();
        let buf = self.open.entry(rank).or_insert_with(ChunkBuf::new);
        let before = buf.payload.len();
        encode_event(&mut buf.payload, ev, &mut buf.prev_t);
        buf.count += 1;
        let t = ev.time();
        buf.min_t = buf.min_t.min(t);
        buf.max_t = buf.max_t.max(t);
        buf.max_end = buf.max_end.max(event_end(ev));
        self.events += 1;
        let full = buf.count as usize >= self.opts.chunk_events;
        self.buffered += buf.payload.len() - before;
        self.peak_buffered = self.peak_buffered.max(self.buffered);
        if full {
            self.flush_rank(rank);
        }
    }

    /// Write the salvage preamble (program + dictionary snapshot) if it
    /// has not been written yet. Must precede the first chunk so a
    /// footer-less scan can name what it recovers.
    fn ensure_preamble(&mut self) -> std::io::Result<()> {
        if self.preamble_written {
            return Ok(());
        }
        self.preamble_written = true;
        let framed = encode_preamble(&self.program, &self.functions);
        self.write_all_tracked(&framed)
    }

    /// Flush `rank`'s open chunk (no-op if empty). Errors are deferred to
    /// `finish()` so the hot path stays infallible.
    fn flush_rank(&mut self, rank: u32) {
        let Some(buf) = self.open.remove(&rank) else {
            return;
        };
        if buf.count == 0 {
            return;
        }
        let start = if obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        // Deferred error handling: remember the first failure, surface it
        // from finish(). (A wedged disk mid-run must not panic the sim.)
        if let Err(e) = self.ensure_preamble() {
            self.buffered -= buf.payload.len();
            if self.deferred_err.is_none() {
                self.deferred_err = Some(e);
            }
            return;
        }
        let mut meta = ChunkMeta {
            rank,
            offset: self.pos,
            enc_len: buf.payload.len() as u32,
            count: buf.count,
            crc: 0,
            min_t: buf.min_t,
            max_t: buf.max_t,
            max_end: buf.max_end,
        };
        let header = encode_chunk_header(&mut meta, &buf.payload);
        self.buffered -= buf.payload.len();
        let wrote = self
            .write_all_tracked(&header)
            .and_then(|()| self.write_all_tracked(&buf.payload));
        if let Err(e) = wrote {
            if self.deferred_err.is_none() {
                self.deferred_err = Some(e);
            }
            return;
        }
        self.index.push(meta);
        if let Some(t0) = start {
            obs::histogram("analysis.encode_real_ns").record(t0.elapsed().as_nanos() as u64);
            obs_chunks_written(1);
            let disk = header.len() as u64 + buf.payload.len() as u64;
            obs_store_bytes(disk);
            self.obs_counted += disk;
        }
    }

    fn write_all_tracked(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.out.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Flush every partial chunk, write the footer index and trailer, and
    /// return the write statistics.
    pub fn finish(mut self) -> Result<StoreStats, TraceError> {
        // Deterministic flush order for partial chunks: ascending rank.
        let mut pending: Vec<u32> = self.open.keys().copied().collect();
        pending.sort_unstable();
        for rank in pending {
            self.flush_rank(rank);
        }
        if let Some(e) = self.deferred_err.take() {
            return Err(TraceError::Io(e));
        }
        // An empty store still carries its preamble.
        self.ensure_preamble()?;
        let footer = encode_footer_and_trailer(&self.program, &self.functions, &self.index);
        self.write_all_tracked(&footer)?;
        self.out.flush()?;
        // Verify nothing was silently lost to a deferred chunk-write
        // failure: the stream position must match our byte accounting.
        let end = self.out.seek(SeekFrom::End(0))?;
        if end != self.pos {
            return Err(TraceError::Io(std::io::Error::other(
                "store write lost bytes (disk full mid-chunk?)",
            )));
        }
        if obs::enabled() {
            // Everything not yet counted per-chunk: header, preamble,
            // footer, trailer — so analysis.store_bytes == file length.
            obs_store_bytes(self.pos - self.obs_counted);
        }
        Ok(StoreStats {
            chunks: self.index.len(),
            events: self.events,
            bytes: self.pos,
            peak_buffered_bytes: self.peak_buffered,
        })
    }
}

/// Encode the version-2 chunk header for `meta`, computing and stamping
/// `meta.crc` (CRC-32 over the header's non-crc bytes then the payload).
pub(crate) fn encode_chunk_header(meta: &mut ChunkMeta, payload: &[u8]) -> BytesMut {
    let mut header = BytesMut::with_capacity(super::chunk_header_bytes(STORE_VERSION));
    header.put_u32_le(meta.rank);
    header.put_u32_le(meta.count);
    header.put_u32_le(meta.enc_len);
    header.put_u32_le(0); // crc placeholder at bytes 12..16
    header.put_u64_le(meta.min_t.as_nanos());
    header.put_u64_le(meta.max_t.as_nanos());
    header.put_u64_le(meta.max_end.as_nanos());
    let mut crc = Crc32::new();
    crc.update(&header[..12])
        .update(&header[16..])
        .update(payload);
    meta.crc = crc.finish();
    header[12..16].copy_from_slice(&meta.crc.to_le_bytes());
    header
}

/// Encode the framed salvage preamble: `len | crc32 | program | dict`.
pub(crate) fn encode_preamble(program: &str, functions: &[String]) -> BytesMut {
    let mut p = BytesMut::new();
    put_string(&mut p, program);
    p.put_u32_le(functions.len() as u32);
    for f in functions {
        put_string(&mut p, f);
    }
    let crc = crc32(&p);
    let mut framed = BytesMut::with_capacity(8 + p.len());
    framed.put_u32_le(p.len() as u32);
    framed.put_u32_le(crc);
    framed.put_slice(&p);
    framed
}

/// Encode the version-2 footer (program, dictionary, chunk index) plus
/// the 18-byte trailer (`footer_len | footer crc | magic | version`).
pub(crate) fn encode_footer_and_trailer(
    program: &str,
    functions: &[String],
    index: &[ChunkMeta],
) -> BytesMut {
    let mut footer = BytesMut::new();
    put_string(&mut footer, program);
    footer.put_u32_le(functions.len() as u32);
    for f in functions {
        put_string(&mut footer, f);
    }
    footer.put_u32_le(index.len() as u32);
    for m in index {
        footer.put_u32_le(m.rank);
        footer.put_u64_le(m.offset);
        footer.put_u32_le(m.enc_len);
        footer.put_u32_le(m.count);
        footer.put_u32_le(m.crc);
        footer.put_u64_le(m.min_t.as_nanos());
        footer.put_u64_le(m.max_t.as_nanos());
        footer.put_u64_le(m.max_end.as_nanos());
    }
    let footer_len = footer.len() as u64;
    let footer_crc = crc32(&footer);
    footer.put_u64_le(footer_len);
    footer.put_u32_le(footer_crc);
    footer.put_slice(STORE_MAGIC);
    footer.put_u16_le(STORE_VERSION);
    footer
}

pub(crate) fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Flush a [`VtLib`]'s per-rank trace buffers straight into a store file —
/// the figure-run path. Events stream rank by rank through the bounded
/// writer; no merged `O(trace)` vector is ever built.
pub fn write_store_from_vt(
    vt: &VtLib,
    path: impl AsRef<Path>,
    opts: StoreOptions,
) -> Result<StoreStats, TraceError> {
    let mut w = StoreWriter::create(path, vt.program(), opts)?;
    w.set_functions(vt.function_names());
    for rank in 0..vt.ranks() {
        vt.with_rank_events(rank, |events| {
            for ev in events {
                w.append(ev);
            }
        });
    }
    w.finish()
}

/// Convert an in-memory (legacy) [`Trace`] into a store file.
pub fn write_store_from_trace(
    trace: &Trace,
    path: impl AsRef<Path>,
    opts: StoreOptions,
) -> Result<StoreStats, TraceError> {
    let mut w = StoreWriter::create(path, trace.program.clone(), opts)?;
    w.set_functions(trace.functions.clone());
    for ev in &trace.events {
        w.append(ev);
    }
    w.finish()
}

/// Compact several store segments (e.g. one small file per rank group)
/// into a single indexed store. Function dictionaries are unioned by
/// name; events whose segment used different ids are re-mapped. Every
/// input chunk's CRC is re-verified on the way through (a corrupt input
/// fails compaction with a typed [`TraceError::ChecksumMismatch`]), and
/// the output is freshly checksummed by the writer.
pub fn compact(
    inputs: &[impl AsRef<Path>],
    out: impl AsRef<Path>,
    opts: StoreOptions,
) -> Result<StoreStats, TraceError> {
    let mut readers = Vec::with_capacity(inputs.len());
    for p in inputs {
        readers.push(StoreReader::open(p)?);
    }
    let program = readers
        .first()
        .map(|r| r.program().to_string())
        .unwrap_or_default();
    // Union dictionary, preserving first-seen order.
    let mut names: Vec<String> = Vec::new();
    let mut remaps: Vec<Vec<u32>> = Vec::new();
    for r in &readers {
        let mut remap = Vec::with_capacity(r.functions().len());
        for f in r.functions() {
            match names.iter().position(|n| n == f) {
                Some(i) => remap.push(i as u32),
                None => {
                    names.push(f.clone());
                    remap.push(names.len() as u32 - 1);
                }
            }
        }
        remaps.push(remap);
    }
    let mut w = StoreWriter::create(out, program, opts)?;
    w.set_functions(names);
    for (r, remap) in readers.iter_mut().zip(&remaps) {
        for i in 0..r.chunks().len() {
            for mut ev in r.read_chunk(i)? {
                remap_func(&mut ev, remap);
                w.append(&ev);
            }
        }
    }
    w.finish()
}

pub(crate) fn remap_func(ev: &mut Event, remap: &[u32]) {
    if let Event::FuncEnter { func, .. }
    | Event::FuncExit { func, .. }
    | Event::FuncBatch { func, .. }
    | Event::FuncSuppressed { func, .. } = ev
    {
        if let Some(&to) = remap.get(func.0 as usize) {
            *func = VtFuncId(to);
        }
    }
}
