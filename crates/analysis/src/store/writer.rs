//! The streaming store writer: bounded memory per rank, chunks flushed
//! the moment they fill, footer index written once at `finish()`.

use std::collections::HashMap;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::OnceLock;

use bytes::{BufMut, BytesMut};
use dynprof_obs as obs;
use dynprof_sim::SimTime;
use dynprof_vt::{Event, Trace, VtFuncId, VtLib};

use super::codec::{encode_event, event_end};
use super::reader::StoreReader;
use super::{ChunkMeta, StoreOptions, HEADER_BYTES, STORE_MAGIC, STORE_VERSION};
use crate::error::TraceError;

fn obs_chunks_written(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.chunks_written"))
        .add(n);
}

fn obs_store_bytes(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.store_bytes"))
        .add(n);
}

/// What one finished store write produced.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Chunks written.
    pub chunks: usize,
    /// Events written.
    pub events: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// High-water mark of encoder memory held across all open chunks —
    /// the writer's bounded-memory witness: `O(ranks × chunk_events)`
    /// regardless of trace length.
    pub peak_buffered_bytes: usize,
}

/// An open, per-rank chunk being encoded incrementally.
struct ChunkBuf {
    payload: BytesMut,
    count: u32,
    min_t: SimTime,
    max_t: SimTime,
    max_end: SimTime,
    prev_t: u64,
}

impl ChunkBuf {
    fn new() -> ChunkBuf {
        ChunkBuf {
            payload: BytesMut::new(),
            count: 0,
            min_t: SimTime(u64::MAX),
            max_t: SimTime::ZERO,
            max_end: SimTime::ZERO,
            prev_t: 0,
        }
    }
}

/// Streaming writer of the `VGVS` chunk-indexed store format.
///
/// Append events in any rank order; each rank accumulates into its own
/// chunk, flushed to disk when [`StoreOptions::chunk_events`] is reached.
/// Call [`StoreWriter::finish`] to flush partial chunks and write the
/// footer index — a file without a footer is detected as
/// [`TraceError::TruncatedFooter`] by the reader.
pub struct StoreWriter<W: Write + Seek> {
    out: W,
    pos: u64,
    opts: StoreOptions,
    program: String,
    functions: Vec<String>,
    open: HashMap<u32, ChunkBuf>,
    index: Vec<ChunkMeta>,
    events: u64,
    buffered: usize,
    peak_buffered: usize,
    deferred_err: Option<std::io::Error>,
}

impl StoreWriter<BufWriter<std::fs::File>> {
    /// Create a store file at `path`.
    pub fn create(
        path: impl AsRef<Path>,
        program: impl Into<String>,
        opts: StoreOptions,
    ) -> Result<Self, TraceError> {
        let file = std::fs::File::create(path)?;
        StoreWriter::new(BufWriter::new(file), program, opts)
    }
}

impl<W: Write + Seek> StoreWriter<W> {
    /// Wrap any seekable sink.
    pub fn new(
        mut out: W,
        program: impl Into<String>,
        opts: StoreOptions,
    ) -> Result<Self, TraceError> {
        let mut header = [0u8; HEADER_BYTES as usize];
        header[..4].copy_from_slice(STORE_MAGIC);
        header[4..6].copy_from_slice(&STORE_VERSION.to_le_bytes());
        out.write_all(&header)?;
        Ok(StoreWriter {
            out,
            pos: HEADER_BYTES,
            opts: StoreOptions {
                chunk_events: opts.chunk_events.max(1),
            },
            program: program.into(),
            functions: Vec::new(),
            open: HashMap::new(),
            index: Vec::new(),
            events: 0,
            buffered: 0,
            peak_buffered: 0,
            deferred_err: None,
        })
    }

    /// Install the function dictionary (names indexed by `VtFuncId`).
    pub fn set_functions(&mut self, names: Vec<String>) {
        self.functions = names;
    }

    /// Register one function name, returning its id (append-only; no
    /// dedup — callers that may repeat names should dedup themselves).
    pub fn define_function(&mut self, name: impl Into<String>) -> VtFuncId {
        self.functions.push(name.into());
        VtFuncId(self.functions.len() as u32 - 1)
    }

    /// Append one event to its rank's open chunk, flushing the chunk to
    /// disk if it reaches the configured size.
    pub fn append(&mut self, ev: &Event) {
        let rank = ev.rank();
        let buf = self.open.entry(rank).or_insert_with(ChunkBuf::new);
        let before = buf.payload.len();
        encode_event(&mut buf.payload, ev, &mut buf.prev_t);
        buf.count += 1;
        let t = ev.time();
        buf.min_t = buf.min_t.min(t);
        buf.max_t = buf.max_t.max(t);
        buf.max_end = buf.max_end.max(event_end(ev));
        self.events += 1;
        let full = buf.count as usize >= self.opts.chunk_events;
        self.buffered += buf.payload.len() - before;
        self.peak_buffered = self.peak_buffered.max(self.buffered);
        if full {
            self.flush_rank(rank);
        }
    }

    /// Flush `rank`'s open chunk (no-op if empty). Errors are deferred to
    /// `finish()` so the hot path stays infallible.
    fn flush_rank(&mut self, rank: u32) {
        let Some(buf) = self.open.remove(&rank) else {
            return;
        };
        if buf.count == 0 {
            return;
        }
        let start = if obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let meta = ChunkMeta {
            rank,
            offset: self.pos,
            enc_len: buf.payload.len() as u32,
            count: buf.count,
            min_t: buf.min_t,
            max_t: buf.max_t,
            max_end: buf.max_end,
        };
        let mut header = BytesMut::with_capacity(super::CHUNK_HEADER_BYTES);
        header.put_u32_le(meta.rank);
        header.put_u32_le(meta.count);
        header.put_u32_le(meta.enc_len);
        header.put_u64_le(meta.min_t.as_nanos());
        header.put_u64_le(meta.max_t.as_nanos());
        header.put_u64_le(meta.max_end.as_nanos());
        self.buffered -= buf.payload.len();
        // Deferred error handling: remember the first failure, surface it
        // from finish(). (A wedged disk mid-run must not panic the sim.)
        let wrote = self
            .write_all_tracked(&header)
            .and_then(|()| self.write_all_tracked(&buf.payload));
        if let Err(e) = wrote {
            if self.deferred_err.is_none() {
                self.deferred_err = Some(e);
            }
            return;
        }
        self.index.push(meta);
        if let Some(t0) = start {
            obs::histogram("analysis.encode_real_ns").record(t0.elapsed().as_nanos() as u64);
            obs_chunks_written(1);
            obs_store_bytes(super::CHUNK_HEADER_BYTES as u64 + buf.payload.len() as u64);
        }
    }

    fn write_all_tracked(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.out.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Flush every partial chunk, write the footer index and trailer, and
    /// return the write statistics.
    pub fn finish(mut self) -> Result<StoreStats, TraceError> {
        // Deterministic flush order for partial chunks: ascending rank.
        let mut pending: Vec<u32> = self.open.keys().copied().collect();
        pending.sort_unstable();
        for rank in pending {
            self.flush_rank(rank);
        }
        if let Some(e) = self.deferred_err.take() {
            return Err(TraceError::Io(e));
        }
        // Footer: program, dictionary, index.
        let mut footer = BytesMut::new();
        put_string(&mut footer, &self.program);
        footer.put_u32_le(self.functions.len() as u32);
        for f in &self.functions {
            put_string(&mut footer, f);
        }
        footer.put_u32_le(self.index.len() as u32);
        for m in &self.index {
            footer.put_u32_le(m.rank);
            footer.put_u64_le(m.offset);
            footer.put_u32_le(m.enc_len);
            footer.put_u32_le(m.count);
            footer.put_u64_le(m.min_t.as_nanos());
            footer.put_u64_le(m.max_t.as_nanos());
            footer.put_u64_le(m.max_end.as_nanos());
        }
        let footer_len = footer.len() as u64;
        footer.put_u64_le(footer_len);
        footer.put_slice(STORE_MAGIC);
        footer.put_u16_le(STORE_VERSION);
        self.write_all_tracked(&footer)?;
        self.out.flush()?;
        // Verify nothing was silently lost to a deferred chunk-write
        // failure: the stream position must match our byte accounting.
        let end = self.out.seek(SeekFrom::End(0))?;
        if end != self.pos {
            return Err(TraceError::Io(std::io::Error::other(
                "store write lost bytes (disk full mid-chunk?)",
            )));
        }
        if obs::enabled() {
            obs_store_bytes(footer_len + super::TRAILER_BYTES + HEADER_BYTES);
        }
        Ok(StoreStats {
            chunks: self.index.len(),
            events: self.events,
            bytes: self.pos,
            peak_buffered_bytes: self.peak_buffered,
        })
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Flush a [`VtLib`]'s per-rank trace buffers straight into a store file —
/// the figure-run path. Events stream rank by rank through the bounded
/// writer; no merged `O(trace)` vector is ever built.
pub fn write_store_from_vt(
    vt: &VtLib,
    path: impl AsRef<Path>,
    opts: StoreOptions,
) -> Result<StoreStats, TraceError> {
    let mut w = StoreWriter::create(path, vt.program(), opts)?;
    w.set_functions(vt.function_names());
    for rank in 0..vt.ranks() {
        vt.with_rank_events(rank, |events| {
            for ev in events {
                w.append(ev);
            }
        });
    }
    w.finish()
}

/// Convert an in-memory (legacy) [`Trace`] into a store file.
pub fn write_store_from_trace(
    trace: &Trace,
    path: impl AsRef<Path>,
    opts: StoreOptions,
) -> Result<StoreStats, TraceError> {
    let mut w = StoreWriter::create(path, trace.program.clone(), opts)?;
    w.set_functions(trace.functions.clone());
    for ev in &trace.events {
        w.append(ev);
    }
    w.finish()
}

/// Compact several store segments (e.g. one small file per rank group)
/// into a single indexed store. Function dictionaries are unioned by
/// name; events whose segment used different ids are re-mapped.
pub fn compact(
    inputs: &[impl AsRef<Path>],
    out: impl AsRef<Path>,
    opts: StoreOptions,
) -> Result<StoreStats, TraceError> {
    let mut readers = Vec::with_capacity(inputs.len());
    for p in inputs {
        readers.push(StoreReader::open(p)?);
    }
    let program = readers
        .first()
        .map(|r| r.program().to_string())
        .unwrap_or_default();
    // Union dictionary, preserving first-seen order.
    let mut names: Vec<String> = Vec::new();
    let mut remaps: Vec<Vec<u32>> = Vec::new();
    for r in &readers {
        let mut remap = Vec::with_capacity(r.functions().len());
        for f in r.functions() {
            match names.iter().position(|n| n == f) {
                Some(i) => remap.push(i as u32),
                None => {
                    names.push(f.clone());
                    remap.push(names.len() as u32 - 1);
                }
            }
        }
        remaps.push(remap);
    }
    let mut w = StoreWriter::create(out, program, opts)?;
    w.set_functions(names);
    for (r, remap) in readers.iter_mut().zip(&remaps) {
        for i in 0..r.chunks().len() {
            for mut ev in r.read_chunk(i)? {
                remap_func(&mut ev, remap);
                w.append(&ev);
            }
        }
    }
    w.finish()
}

fn remap_func(ev: &mut Event, remap: &[u32]) {
    if let Event::FuncEnter { func, .. }
    | Event::FuncExit { func, .. }
    | Event::FuncBatch { func, .. }
    | Event::FuncSuppressed { func, .. } = ev
    {
        if let Some(&to) = remap.get(func.0 as usize) {
            *func = VtFuncId(to);
        }
    }
}
