//! Seeded fault injection for store I/O: a `Write + Seek` wrapper that
//! tears, shortens, or kills writes at deterministic points.
//!
//! The crash-recovery chaos tests (`tests/crash_recovery.rs`) wrap the
//! store writer's sink in a [`FaultyFile`] whose [`FaultScript`] is
//! drawn from a [`SimRng`] stream, so every "the disk died at byte k"
//! scenario is reproducible from a seed. A torn write delivers an exact
//! prefix of the bytes and then fails forever — precisely the contract
//! the salvage scanner's crash-consistency argument (DESIGN §17)
//! assumes of a real crash.

use std::io::{Seek, SeekFrom, Write};

use dynprof_sim::rng::SimRng;

/// Where and how the injected fault fires. The default script never
/// faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultScript {
    /// Accept bytes up to this absolute count, then fail every write —
    /// a torn `write_all`: the prefix reaches the file, the rest never
    /// does.
    pub torn_at_byte: Option<u64>,
    /// Deliver exactly one short write (half the buffer) before
    /// behaving normally again — exercises callers' partial-write
    /// handling without losing data.
    pub short_write_once: bool,
    /// Fail permanently after this many successful `write` calls.
    pub fail_after_writes: Option<u64>,
}

impl FaultScript {
    /// Tear the stream at absolute byte `k`.
    pub fn torn_at(k: u64) -> FaultScript {
        FaultScript {
            torn_at_byte: Some(k),
            ..FaultScript::default()
        }
    }

    /// One short write, then normal service.
    pub fn short_once() -> FaultScript {
        FaultScript {
            short_write_once: true,
            ..FaultScript::default()
        }
    }

    /// Die after `n` successful write calls.
    pub fn fail_after(n: u64) -> FaultScript {
        FaultScript {
            fail_after_writes: Some(n),
            ..FaultScript::default()
        }
    }

    /// Draw a deterministic script from `rng`: a torn write somewhere in
    /// `1..=max_bytes`, a fail-after-N, or a harmless short write —
    /// the chaos matrix's per-(seed, kill-point) generator.
    pub fn from_rng(rng: &mut SimRng, max_bytes: u64) -> FaultScript {
        let max = max_bytes.max(2);
        match rng.gen_index(3) {
            0 => FaultScript::torn_at(rng.gen_range_u64(1..=max)),
            1 => FaultScript::fail_after(rng.gen_range_u64(1..=64)),
            _ => FaultScript::short_once(),
        }
    }

    /// Does this script ever make data disappear? (A short write alone
    /// does not — callers retry the remainder.)
    pub fn is_lossy(&self) -> bool {
        self.torn_at_byte.is_some() || self.fail_after_writes.is_some()
    }
}

/// A `Write + Seek` adapter that executes a [`FaultScript`] against its
/// inner sink. Once a lossy fault fires, every subsequent write (and
/// flush) fails — the device is gone, like a kill -9 or a yanked disk.
pub struct FaultyFile<W: Write + Seek> {
    inner: W,
    script: FaultScript,
    accepted: u64,
    writes: u64,
    tripped: bool,
    short_spent: bool,
}

impl<W: Write + Seek> FaultyFile<W> {
    /// Wrap `inner` under `script`.
    pub fn new(inner: W, script: FaultScript) -> FaultyFile<W> {
        FaultyFile {
            inner,
            script,
            accepted: 0,
            writes: 0,
            tripped: false,
            short_spent: false,
        }
    }

    /// Total payload bytes the inner sink actually received.
    pub fn bytes_accepted(&self) -> u64 {
        self.accepted
    }

    /// Has the lossy fault fired yet?
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Unwrap the inner sink (e.g. to fsync or inspect the file).
    pub fn into_inner(self) -> W {
        self.inner
    }

    fn dead() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::BrokenPipe, "injected I/O fault")
    }
}

impl<W: Write + Seek> Write for FaultyFile<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.tripped {
            return Err(FaultyFile::<W>::dead());
        }
        if let Some(n) = self.script.fail_after_writes {
            if self.writes >= n {
                self.tripped = true;
                return Err(FaultyFile::<W>::dead());
            }
        }
        let mut take = buf.len();
        if let Some(k) = self.script.torn_at_byte {
            let room = k.saturating_sub(self.accepted);
            if (take as u64) > room {
                take = room as usize;
                self.tripped = true;
                if take == 0 {
                    return Err(FaultyFile::<W>::dead());
                }
            }
        }
        if self.script.short_write_once && !self.short_spent && take > 1 {
            self.short_spent = true;
            take /= 2;
        }
        self.inner.write_all(&buf[..take])?;
        self.accepted += take as u64;
        self.writes += 1;
        Ok(take)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.tripped {
            return Err(FaultyFile::<W>::dead());
        }
        self.inner.flush()
    }
}

impl<W: Write + Seek> Seek for FaultyFile<W> {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.inner.seek(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn torn_write_delivers_exact_prefix() {
        let mut f = FaultyFile::new(Cursor::new(Vec::new()), FaultScript::torn_at(10));
        let err = f.write_all(&[7u8; 64]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(f.tripped());
        let inner = f.into_inner().into_inner();
        assert_eq!(inner, vec![7u8; 10]);
    }

    #[test]
    fn short_write_loses_nothing() {
        let mut f = FaultyFile::new(Cursor::new(Vec::new()), FaultScript::short_once());
        f.write_all(&[1u8; 40]).unwrap();
        f.write_all(&[2u8; 8]).unwrap();
        let inner = f.into_inner().into_inner();
        assert_eq!(inner.len(), 48);
        assert_eq!(&inner[..40], &[1u8; 40][..]);
    }

    #[test]
    fn fail_after_n_writes_then_dead_forever() {
        let mut f = FaultyFile::new(Cursor::new(Vec::new()), FaultScript::fail_after(2));
        f.write_all(b"aa").unwrap();
        f.write_all(b"bb").unwrap();
        assert!(f.write_all(b"cc").is_err());
        assert!(f.write_all(b"dd").is_err());
        assert!(f.flush().is_err());
        assert_eq!(f.bytes_accepted(), 4);
    }

    #[test]
    fn scripts_are_deterministic_per_seed() {
        let mut a = SimRng::new(42, 7);
        let mut b = SimRng::new(42, 7);
        for _ in 0..32 {
            assert_eq!(
                FaultScript::from_rng(&mut a, 1 << 20),
                FaultScript::from_rng(&mut b, 1 << 20)
            );
        }
    }
}
