//! Chunk-payload codec: LEB128 varints, zigzag deltas, and the
//! per-event encoding used inside store chunks.
//!
//! Within a chunk every event belongs to one rank, so the rank is hoisted
//! into the chunk header and never repeated. Timestamps are delta-encoded
//! against the previous event's timestamp (zigzag, because a `FuncBatch`
//! carries its *start* time and can step backwards), and every other
//! integer field is a varint. A typical `FuncEnter` costs 4–6 bytes
//! against 19 in the legacy flat encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dynprof_sim::SimTime;
use dynprof_vt::{Event, VtFuncId};

/// Append `v` as an LEB128 varint (7 bits per byte, little-endian).
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decode one LEB128 varint; `None` on truncation or overlong input.
pub fn get_varint(buf: &mut Bytes) -> Option<u64> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        if buf.remaining() < 1 {
            return None;
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Map a signed delta onto an unsigned varint-friendly value.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The instant an event stops being "active": `t_end` for spanned events
/// (`MpiCall`, `OmpThread`, `Suspended`), `t + span` for `FuncBatch`, the
/// timestamp itself otherwise. Window-overlap tests use this so a long
/// MPI call that *starts* before the window still matches it.
pub fn event_end(ev: &Event) -> SimTime {
    match *ev {
        Event::MpiCall { t_end, .. }
        | Event::OmpThread { t_end, .. }
        | Event::Suspended { t_end, .. } => t_end,
        Event::FuncBatch { t, span, .. } | Event::FuncSuppressed { t, span, .. } => t + span,
        _ => ev.time(),
    }
}

/// Does `ev` overlap the closed window `[t0, t1]`?
pub fn event_overlaps(ev: &Event, t0: SimTime, t1: SimTime) -> bool {
    ev.time() <= t1 && event_end(ev) >= t0
}

fn kind_of(ev: &Event) -> u8 {
    match ev {
        Event::FuncEnter { .. } => 1,
        Event::FuncExit { .. } => 2,
        Event::FuncBatch { .. } => 3,
        Event::MpiCall { .. } => 4,
        Event::OmpFork { .. } => 5,
        Event::OmpJoin { .. } => 6,
        Event::OmpThread { .. } => 7,
        Event::ConfSync { .. } => 8,
        Event::Suspended { .. } => 9,
        Event::FuncSuppressed { .. } => 10,
    }
}

/// Append the chunk encoding of `ev`. `prev_t` carries the running
/// timestamp of the delta chain and is updated to `ev.time()`.
pub fn encode_event(buf: &mut BytesMut, ev: &Event, prev_t: &mut u64) {
    buf.put_u8(kind_of(ev));
    let t = ev.time().as_nanos();
    put_varint(buf, zigzag(t as i64 - *prev_t as i64));
    *prev_t = t;
    match *ev {
        Event::FuncEnter { thread, func, .. } | Event::FuncExit { thread, func, .. } => {
            put_varint(buf, thread as u64);
            put_varint(buf, func.0 as u64);
        }
        Event::FuncBatch {
            thread,
            func,
            count,
            span,
            ..
        }
        | Event::FuncSuppressed {
            thread,
            func,
            count,
            span,
            ..
        } => {
            put_varint(buf, thread as u64);
            put_varint(buf, func.0 as u64);
            put_varint(buf, count);
            put_varint(buf, span.as_nanos());
        }
        Event::MpiCall {
            t,
            t_end,
            op,
            peer,
            bytes,
            ..
        } => {
            put_varint(buf, t_end.saturating_sub(t).as_nanos());
            buf.put_u8(op);
            put_varint(buf, zigzag(peer as i64));
            put_varint(buf, bytes);
        }
        Event::OmpFork { region, team, .. } | Event::OmpJoin { region, team, .. } => {
            put_varint(buf, region as u64);
            put_varint(buf, team as u64);
        }
        Event::OmpThread {
            t,
            t_end,
            thread,
            region,
            ..
        } => {
            put_varint(buf, t_end.saturating_sub(t).as_nanos());
            put_varint(buf, thread as u64);
            put_varint(buf, region as u64);
        }
        Event::ConfSync { epoch, .. } => {
            put_varint(buf, epoch as u64);
        }
        Event::Suspended { t, t_end, .. } => {
            put_varint(buf, t_end.saturating_sub(t).as_nanos());
        }
    }
}

/// Decode one event of `rank` from a chunk payload, advancing `prev_t`.
/// `None` on truncated or malformed input.
pub fn decode_event(buf: &mut Bytes, rank: u32, prev_t: &mut u64) -> Option<Event> {
    if buf.remaining() < 1 {
        return None;
    }
    let kind = buf.get_u8();
    let dt = unzigzag(get_varint(buf)?);
    let t_nanos = prev_t.checked_add_signed(dt)?;
    *prev_t = t_nanos;
    let t = SimTime::from_nanos(t_nanos);
    Some(match kind {
        1 | 2 => {
            let thread = get_varint(buf)? as u16;
            let func = VtFuncId(get_varint(buf)? as u32);
            if kind == 1 {
                Event::FuncEnter {
                    t,
                    rank,
                    thread,
                    func,
                }
            } else {
                Event::FuncExit {
                    t,
                    rank,
                    thread,
                    func,
                }
            }
        }
        3 => Event::FuncBatch {
            t,
            rank,
            thread: get_varint(buf)? as u16,
            func: VtFuncId(get_varint(buf)? as u32),
            count: get_varint(buf)?,
            span: SimTime::from_nanos(get_varint(buf)?),
        },
        4 => {
            let dur = get_varint(buf)?;
            if buf.remaining() < 1 {
                return None;
            }
            let op = buf.get_u8();
            let peer = unzigzag(get_varint(buf)?) as i32;
            let bytes = get_varint(buf)?;
            Event::MpiCall {
                t,
                t_end: t + SimTime::from_nanos(dur),
                rank,
                op,
                peer,
                bytes,
            }
        }
        5 | 6 => {
            let region = get_varint(buf)? as u32;
            let team = get_varint(buf)? as u16;
            if kind == 5 {
                Event::OmpFork {
                    t,
                    rank,
                    region,
                    team,
                }
            } else {
                Event::OmpJoin {
                    t,
                    rank,
                    region,
                    team,
                }
            }
        }
        7 => {
            let dur = get_varint(buf)?;
            Event::OmpThread {
                t,
                t_end: t + SimTime::from_nanos(dur),
                rank,
                thread: get_varint(buf)? as u16,
                region: get_varint(buf)? as u32,
            }
        }
        8 => Event::ConfSync {
            t,
            rank,
            epoch: get_varint(buf)? as u32,
        },
        9 => {
            let dur = get_varint(buf)?;
            Event::Suspended {
                t,
                t_end: t + SimTime::from_nanos(dur),
                rank,
            }
        }
        10 => Event::FuncSuppressed {
            t,
            rank,
            thread: get_varint(buf)? as u16,
            func: VtFuncId(get_varint(buf)? as u32),
            count: get_varint(buf)?,
            span: SimTime::from_nanos(get_varint(buf)?),
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip() {
        let mut buf = BytesMut::new();
        let samples = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &samples {
            put_varint(&mut buf, v);
        }
        let mut b = buf.freeze();
        for &v in &samples {
            assert_eq!(get_varint(&mut b), Some(v));
        }
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut b = Bytes::from(vec![0x80, 0x80]); // continuation with no end
        assert_eq!(get_varint(&mut b), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, -123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn events_round_trip_with_backward_deltas() {
        let us = SimTime::from_micros;
        let events = vec![
            Event::FuncEnter {
                t: us(100),
                rank: 7,
                thread: 3,
                func: VtFuncId(12),
            },
            // FuncBatch time-travels backwards relative to the previous
            // event (it carries its start time) — the zigzag delta case.
            Event::FuncBatch {
                t: us(40),
                rank: 7,
                thread: 3,
                func: VtFuncId(5),
                count: 1000,
                span: us(55),
            },
            Event::MpiCall {
                t: us(120),
                t_end: us(140),
                rank: 7,
                op: 2,
                peer: -1,
                bytes: 1 << 20,
            },
            Event::OmpFork {
                t: us(150),
                rank: 7,
                region: 2,
                team: 8,
            },
            Event::OmpThread {
                t: us(151),
                t_end: us(160),
                rank: 7,
                thread: 4,
                region: 2,
            },
            Event::OmpJoin {
                t: us(161),
                rank: 7,
                region: 2,
                team: 8,
            },
            Event::ConfSync {
                t: us(170),
                rank: 7,
                epoch: 9,
            },
            Event::Suspended {
                t: us(171),
                t_end: us(180),
                rank: 7,
            },
            Event::FuncSuppressed {
                t: us(181),
                rank: 7,
                thread: 3,
                func: VtFuncId(5),
                count: 42,
                span: us(9),
            },
            Event::FuncExit {
                t: us(200),
                rank: 7,
                thread: 3,
                func: VtFuncId(12),
            },
        ];
        let mut buf = BytesMut::new();
        let mut prev = 0u64;
        for e in &events {
            encode_event(&mut buf, e, &mut prev);
        }
        let mut b = buf.freeze();
        let mut prev = 0u64;
        for e in &events {
            assert_eq!(decode_event(&mut b, 7, &mut prev).as_ref(), Some(e));
        }
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn delta_encoding_is_compact() {
        // 1000 events 1us apart should take ~4-6 bytes each, far below
        // the 19-byte flat encoding.
        let mut buf = BytesMut::new();
        let mut prev = 0u64;
        for i in 0..1000u64 {
            encode_event(
                &mut buf,
                &Event::FuncEnter {
                    t: SimTime::from_micros(i),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(3),
                },
                &mut prev,
            );
        }
        assert!(buf.len() < 1000 * 8, "encoding not compact: {}", buf.len());
    }

    #[test]
    fn event_end_covers_spans() {
        let us = SimTime::from_micros;
        let m = Event::MpiCall {
            t: us(5),
            t_end: us(20),
            rank: 0,
            op: 2,
            peer: 1,
            bytes: 0,
        };
        assert_eq!(event_end(&m), us(20));
        assert!(event_overlaps(&m, us(10), us(15)));
        assert!(!event_overlaps(&m, us(21), us(30)));
        let b = Event::FuncBatch {
            t: us(10),
            rank: 0,
            thread: 0,
            func: VtFuncId(0),
            count: 2,
            span: us(30),
        };
        assert_eq!(event_end(&b), us(40));
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut b = Bytes::from(vec![99, 0]); // unknown kind
        assert_eq!(decode_event(&mut b, 0, &mut 0), None);
        let mut b = Bytes::from(vec![1]); // kind with no timestamp
        assert_eq!(decode_event(&mut b, 0, &mut 0), None);
        let mut b = Bytes::from(vec![1, 0]); // timestamp but no fields
        assert_eq!(decode_event(&mut b, 0, &mut 0), None);
    }
}
