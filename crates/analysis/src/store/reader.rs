//! The seeking store reader: footer-index open, one-chunk-at-a-time
//! decode, CRC verification, and windowed queries that never touch
//! non-overlapping chunks.

use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::OnceLock;

use bytes::{Buf, Bytes};
use dynprof_obs as obs;
use dynprof_sim::SimTime;
use dynprof_vt::{Event, Trace};

use super::codec::{decode_event, event_overlaps};
use super::crc::{crc32, Crc32};
use super::{
    chunk_header_bytes, index_entry_bytes, trailer_bytes, version_supported, ChunkMeta,
    EventSource, HEADER_BYTES, STORE_MAGIC, STORE_VERSION,
};
use crate::error::TraceError;

fn obs_chunks_read(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.chunks_read"))
        .add(n);
}

fn obs_chunks_skipped(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.chunks_skipped"))
        .add(n);
}

fn obs_chunks_bad_crc(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.chunks_bad_crc"))
        .add(n);
}

fn obs_events_lost(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.events_lost"))
        .add(n);
}

/// What one windowed query cost — and, in degraded mode, exactly what it
/// had to drop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Chunks in the store (after the rank filter).
    pub chunks_considered: usize,
    /// Chunks whose payload was read and decoded.
    pub chunks_decoded: usize,
    /// Chunks skipped purely from the footer index.
    pub chunks_skipped: usize,
    /// Chunks dropped because they failed their CRC or shape checks
    /// (only in degraded mode — strict readers error instead).
    pub chunks_bad: usize,
    /// Events lost with those dropped chunks, per the index's counts.
    pub events_lost: u64,
    /// Events delivered to the callback.
    pub events: u64,
}

/// What a footer-less salvage scan recovered and what it had to leave
/// behind (see [`StoreReader::open_salvage`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SalvageSummary {
    /// Chunks recovered by the forward scan.
    pub chunks_recovered: usize,
    /// Events inside those chunks.
    pub events_recovered: u64,
    /// Trailing bytes that could not be validated as a complete chunk —
    /// the torn tail the crash destroyed. 0 means the scan consumed the
    /// file exactly.
    pub tail_bytes_dropped: u64,
    /// The dictionary came from the salvage preamble (`true`) or had to
    /// be synthesized as placeholder names (`false`, version-1 files).
    pub dict_from_preamble: bool,
}

/// Summary of a store file, computed from the footer index alone
/// (no chunk payload is read).
#[derive(Clone, Debug, Default)]
pub struct StoreInfo {
    /// Program name.
    pub program: String,
    /// Registered function count.
    pub functions: usize,
    /// Total chunks.
    pub chunks: usize,
    /// Total events.
    pub events: u64,
    /// Distinct ranks.
    pub ranks: usize,
    /// File size in bytes.
    pub file_bytes: u64,
    /// Earliest event timestamp.
    pub t_min: SimTime,
    /// Latest event *start* timestamp.
    pub t_max: SimTime,
    /// Latest event *end* timestamp (spans included).
    pub t_end: SimTime,
    /// Store format version (2 = CRC-32 chunks, 1 = pre-CRC read-only).
    pub version: u16,
    /// Segments backing this source (1 for a single file; rotated
    /// [`SegmentSet`](super::SegmentSet)s report their member count).
    pub segments: usize,
    /// Salvage summary when the source was opened footer-less.
    pub salvage: Option<SalvageSummary>,
}

/// Reader over a `VGVS` store file. Holds the footer index in memory
/// (48 bytes per chunk); payloads are decoded one chunk at a time and
/// verified against their CRC-32 (format version 2).
pub struct StoreReader {
    file: std::fs::File,
    version: u16,
    program: String,
    functions: Vec<String>,
    index: Vec<ChunkMeta>,
    file_bytes: u64,
    events: u64,
    degraded: bool,
    salvage: Option<SalvageSummary>,
    dropped_chunks: usize,
    dropped_events: u64,
    /// Largest single decoded-payload allocation so far — the reader's
    /// bounded-memory witness (`O(chunk)`, never `O(trace)`).
    peak_chunk_bytes: usize,
}

impl StoreReader {
    /// Open a store file: validate magic/version, read the footer index.
    /// Accepts both current (version 2, checksummed) and legacy
    /// (version 1, read-only) files; a missing or torn footer is the
    /// typed [`TraceError::TruncatedFooter`] — reach for
    /// [`StoreReader::open_salvage`] to recover such a capture.
    pub fn open(path: impl AsRef<Path>) -> Result<StoreReader, TraceError> {
        let mut file = std::fs::File::open(path)?;
        let file_bytes = file.seek(SeekFrom::End(0))?;
        if file_bytes < HEADER_BYTES {
            return Err(TraceError::TruncatedHeader);
        }
        let mut head = [0u8; HEADER_BYTES as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if &head[..4] != STORE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if !version_supported(version) {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let tbytes = trailer_bytes(version);
        if file_bytes < HEADER_BYTES + tbytes {
            return Err(TraceError::TruncatedFooter);
        }
        // Trailer: footer_len u64 | [footer crc u32] | magic | version.
        let mut trailer = vec![0u8; tbytes as usize];
        file.seek(SeekFrom::End(-(tbytes as i64)))?;
        file.read_exact(&mut trailer)?;
        let magic_at = trailer.len() - 6;
        if &trailer[magic_at..magic_at + 4] != STORE_MAGIC
            || u16::from_le_bytes([trailer[magic_at + 4], trailer[magic_at + 5]]) != version
        {
            return Err(TraceError::TruncatedFooter);
        }
        let footer_len = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        // Checked arithmetic: a garbage footer_len near u64::MAX must be
        // a typed error, not a wrapping add that sneaks past the bound.
        let needed = footer_len
            .checked_add(tbytes)
            .and_then(|v| v.checked_add(HEADER_BYTES))
            .ok_or(TraceError::TruncatedFooter)?;
        if needed > file_bytes {
            return Err(TraceError::TruncatedFooter);
        }
        let back = i64::try_from(tbytes + footer_len).map_err(|_| TraceError::TruncatedFooter)?;
        file.seek(SeekFrom::End(-back))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact(&mut footer)?;
        if version >= STORE_VERSION {
            let footer_crc = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
            if crc32(&footer) != footer_crc {
                return Err(TraceError::TruncatedFooter);
            }
        }
        let mut buf = Bytes::from(footer);
        let program = take_string(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(TraceError::TruncatedFooter);
        }
        let nf = buf.get_u32_le() as usize;
        let mut functions = Vec::with_capacity(nf.min(1 << 20));
        for _ in 0..nf {
            functions.push(take_string(&mut buf)?);
        }
        if buf.remaining() < 4 {
            return Err(TraceError::TruncatedFooter);
        }
        let nc = buf.get_u32_le() as usize;
        let entry = index_entry_bytes(version);
        let mut index = Vec::with_capacity(nc.min(1 << 24));
        for i in 0..nc {
            if buf.remaining() < entry {
                return Err(TraceError::TruncatedFooter);
            }
            let rank = buf.get_u32_le();
            let offset = buf.get_u64_le();
            let enc_len = buf.get_u32_le();
            let count = buf.get_u32_le();
            let crc = if version >= STORE_VERSION {
                buf.get_u32_le()
            } else {
                0
            };
            let meta = ChunkMeta {
                rank,
                offset,
                enc_len,
                count,
                crc,
                min_t: SimTime::from_nanos(buf.get_u64_le()),
                max_t: SimTime::from_nanos(buf.get_u64_le()),
                max_end: SimTime::from_nanos(buf.get_u64_le()),
            };
            let end = meta
                .offset
                .checked_add(meta.disk_bytes(version))
                .ok_or(TraceError::ShortChunk { index: i })?;
            if end > file_bytes {
                return Err(TraceError::ShortChunk { index: i });
            }
            index.push(meta);
        }
        Ok(StoreReader::from_parts(
            file, version, program, functions, index, file_bytes, None,
        ))
    }

    /// Assemble a reader from already-validated parts (the salvage
    /// scanner builds its index without a footer).
    pub(crate) fn from_parts(
        file: std::fs::File,
        version: u16,
        program: String,
        functions: Vec<String>,
        index: Vec<ChunkMeta>,
        file_bytes: u64,
        salvage: Option<SalvageSummary>,
    ) -> StoreReader {
        let events = index.iter().map(|m| m.count as u64).sum();
        StoreReader {
            file,
            version,
            program,
            functions,
            index,
            file_bytes,
            events,
            degraded: false,
            salvage,
            dropped_chunks: 0,
            dropped_events: 0,
            peak_chunk_bytes: 0,
        }
    }

    /// Attach a salvage summary (the salvage path's no-damage fast case
    /// opens normally and then records what it found).
    pub(crate) fn with_salvage(mut self, summary: SalvageSummary) -> StoreReader {
        self.salvage = Some(summary);
        self
    }

    /// Open a store whose footer is missing or torn (the writer died
    /// before [`StoreWriter::finish`](super::StoreWriter::finish)) by
    /// forward-scanning the self-describing chunk headers. Recovers every
    /// chunk whose bytes were fully flushed — each one proves itself via
    /// its CRC-32 — and reports the torn tail via
    /// [`StoreReader::salvage`]. See `vgv fsck [--repair]`.
    pub fn open_salvage(path: impl AsRef<Path>) -> Result<StoreReader, TraceError> {
        super::salvage::open_salvage(path)
    }

    /// Store format version (2 = current, 1 = pre-CRC legacy).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Program name recorded by the writer.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Function dictionary (names indexed by `VtFuncId`).
    pub fn functions(&self) -> &[String] {
        &self.functions
    }

    /// The footer index: one entry per chunk, in file order.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.index
    }

    /// Switch degraded mode on: queries skip chunks that fail their CRC
    /// or shape checks instead of erroring, counting every dropped chunk
    /// and event in [`QueryStats`] (and the session-level
    /// [`StoreReader::dropped_chunks`]) — corruption is reported, never
    /// silently absorbed.
    pub fn set_degraded(&mut self, on: bool) {
        self.degraded = on;
    }

    /// Is this reader in degraded (skip-bad-chunks) mode?
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The salvage summary, when this reader was built by
    /// [`StoreReader::open_salvage`].
    pub fn salvage(&self) -> Option<SalvageSummary> {
        self.salvage
    }

    /// Chunks dropped by degraded-mode queries since open.
    pub fn dropped_chunks(&self) -> usize {
        self.dropped_chunks
    }

    /// Events lost with those dropped chunks, per the index's counts.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Largest single chunk-payload allocation made so far — the
    /// bounded-memory witness for tests.
    pub fn peak_chunk_bytes(&self) -> usize {
        self.peak_chunk_bytes
    }

    /// Index-only store summary.
    pub fn info(&self) -> StoreInfo {
        let mut ranks: Vec<u32> = self.index.iter().map(|m| m.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        let t_min = self
            .index
            .iter()
            .map(|m| m.min_t)
            .min()
            .unwrap_or(SimTime::ZERO);
        let t_max = self
            .index
            .iter()
            .map(|m| m.max_t)
            .max()
            .unwrap_or(SimTime::ZERO);
        let t_end = self
            .index
            .iter()
            .map(|m| m.max_end)
            .max()
            .unwrap_or(SimTime::ZERO);
        StoreInfo {
            program: self.program.clone(),
            functions: self.functions.len(),
            chunks: self.index.len(),
            events: self.events,
            ranks: ranks.len(),
            file_bytes: self.file_bytes,
            t_min,
            t_max,
            t_end,
            version: self.version,
            segments: 1,
            salvage: self.salvage,
        }
    }

    /// Decode chunk `i`'s events (exactly one chunk resident at a time),
    /// verifying its CRC-32 on version-2 files.
    pub fn read_chunk(&mut self, i: usize) -> Result<Vec<Event>, TraceError> {
        let meta = *self
            .index
            .get(i)
            .ok_or(TraceError::ShortChunk { index: i })?;
        let start = if obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let hbytes = chunk_header_bytes(self.version);
        self.file.seek(SeekFrom::Start(meta.offset))?;
        let mut header = vec![0u8; hbytes];
        self.file
            .read_exact(&mut header)
            .map_err(|_| TraceError::ShortChunk { index: i })?;
        let rank = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let count = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let enc_len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if rank != meta.rank || count != meta.count || enc_len != meta.enc_len {
            return Err(TraceError::ShortChunk { index: i });
        }
        let mut payload = vec![0u8; enc_len as usize];
        self.file
            .read_exact(&mut payload)
            .map_err(|_| TraceError::ShortChunk { index: i })?;
        if self.version >= STORE_VERSION {
            let header_crc = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
            let mut crc = Crc32::new();
            crc.update(&header[..12])
                .update(&header[16..])
                .update(&payload);
            let actual = crc.finish();
            if actual != header_crc || actual != meta.crc {
                if obs::enabled() {
                    obs_chunks_bad_crc(1);
                }
                return Err(TraceError::ChecksumMismatch { index: i });
            }
        }
        self.peak_chunk_bytes = self.peak_chunk_bytes.max(payload.len());
        let mut buf = Bytes::from(payload);
        let mut prev_t = 0u64;
        let mut events = Vec::with_capacity(count as usize);
        for n in 0..count {
            match decode_event(&mut buf, meta.rank, &mut prev_t) {
                Some(ev) => events.push(ev),
                None => return Err(TraceError::BadEvent { index: n as u64 }),
            }
        }
        if let Some(t0) = start {
            obs::histogram("analysis.decode_real_ns").record(t0.elapsed().as_nanos() as u64);
            obs_chunks_read(1);
        }
        Ok(events)
    }

    /// In degraded mode, absorb a chunk-content error as an accounted
    /// drop; strict mode propagates it. I/O errors always propagate.
    fn degrade(
        &mut self,
        i: usize,
        e: TraceError,
        stats: Option<&mut QueryStats>,
    ) -> Result<(), TraceError> {
        let droppable = matches!(
            e,
            TraceError::ChecksumMismatch { .. }
                | TraceError::ShortChunk { .. }
                | TraceError::BadEvent { .. }
        );
        if !self.degraded || !droppable {
            return Err(e);
        }
        let count = self.index.get(i).map(|m| m.count as u64).unwrap_or(0);
        self.dropped_chunks += 1;
        self.dropped_events += count;
        if let Some(stats) = stats {
            stats.chunks_bad += 1;
            stats.events_lost += count;
        }
        if obs::enabled() {
            obs_events_lost(count);
        }
        Ok(())
    }

    /// Stream every event overlapping `window` (closed interval; `None` =
    /// all time) on `rank` (`None` = all ranks) through `f`, decoding
    /// only chunks whose index envelope overlaps. Returns what it cost.
    /// In degraded mode ([`StoreReader::set_degraded`]) corrupt chunks
    /// are skipped and accounted in [`QueryStats::chunks_bad`] /
    /// [`QueryStats::events_lost`] instead of failing the query.
    pub fn for_each_query(
        &mut self,
        window: Option<(SimTime, SimTime)>,
        rank: Option<u32>,
        mut f: impl FnMut(&Event),
    ) -> Result<QueryStats, TraceError> {
        self.query_dyn(window, rank, &mut f)
    }

    fn query_dyn(
        &mut self,
        window: Option<(SimTime, SimTime)>,
        rank: Option<u32>,
        f: &mut dyn FnMut(&Event),
    ) -> Result<QueryStats, TraceError> {
        let mut stats = QueryStats::default();
        for i in 0..self.index.len() {
            let meta = self.index[i];
            if rank.is_some_and(|r| r != meta.rank) {
                continue;
            }
            stats.chunks_considered += 1;
            if let Some((t0, t1)) = window {
                if !meta.overlaps(t0, t1) {
                    stats.chunks_skipped += 1;
                    if obs::enabled() {
                        obs_chunks_skipped(1);
                    }
                    continue;
                }
            }
            let events = match self.read_chunk(i) {
                Ok(events) => events,
                Err(e) => {
                    self.degrade(i, e, Some(&mut stats))?;
                    continue;
                }
            };
            stats.chunks_decoded += 1;
            for ev in events {
                if let Some((t0, t1)) = window {
                    if !event_overlaps(&ev, t0, t1) {
                        continue;
                    }
                }
                stats.events += 1;
                f(&ev);
            }
        }
        Ok(stats)
    }

    /// Stream all of one rank's events in recorded (causal) order —
    /// what per-rank call-stack replay (profiles) consumes. Degraded
    /// mode skips (and accounts) corrupt chunks like
    /// [`StoreReader::for_each_query`].
    pub fn for_each_rank_event(
        &mut self,
        rank: u32,
        mut f: impl FnMut(&Event),
    ) -> Result<(), TraceError> {
        for i in 0..self.index.len() {
            if self.index[i].rank != rank {
                continue;
            }
            let events = match self.read_chunk(i) {
                Ok(events) => events,
                Err(e) => {
                    self.degrade(i, e, None)?;
                    continue;
                }
            };
            for ev in &events {
                f(ev);
            }
        }
        Ok(())
    }

    /// Distinct ranks present, ascending.
    pub fn ranks(&self) -> Vec<u32> {
        let mut ranks: Vec<u32> = self.index.iter().map(|m| m.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Per-rank `(events, min_t, max_t)` drawn from the index alone.
    pub fn rank_summary(&self) -> BTreeMap<u32, (u64, SimTime, SimTime)> {
        let mut out: BTreeMap<u32, (u64, SimTime, SimTime)> = BTreeMap::new();
        for m in &self.index {
            let e = out.entry(m.rank).or_insert((0, m.min_t, m.max_t));
            e.0 += m.count as u64;
            e.1 = e.1.min(m.min_t);
            e.2 = e.2.max(m.max_t);
        }
        out
    }

    /// Materialize the whole store as a legacy [`Trace`] (merged across
    /// ranks, `(time, rank)`-sorted) — the compatibility escape hatch and
    /// the reference path the streaming queries are tested against.
    /// Memory is `O(trace)`; avoid on large stores.
    pub fn read_all(&mut self) -> Result<Trace, TraceError> {
        let mut events = Vec::with_capacity(self.events as usize);
        for i in 0..self.index.len() {
            match self.read_chunk(i) {
                Ok(chunk) => events.extend(chunk),
                Err(e) => self.degrade(i, e, None)?,
            }
        }
        events.sort_by_key(|e| (e.time(), e.rank()));
        Ok(Trace {
            program: self.program.clone(),
            functions: self.functions.clone(),
            events,
        })
    }
}

impl EventSource for StoreReader {
    fn program(&self) -> &str {
        StoreReader::program(self)
    }

    fn functions(&self) -> &[String] {
        StoreReader::functions(self)
    }

    fn source_info(&self) -> StoreInfo {
        self.info()
    }

    fn source_ranks(&self) -> Vec<u32> {
        self.ranks()
    }

    fn source_rank_summary(&self) -> BTreeMap<u32, (u64, SimTime, SimTime)> {
        self.rank_summary()
    }

    fn query(
        &mut self,
        window: Option<(SimTime, SimTime)>,
        rank: Option<u32>,
        f: &mut dyn FnMut(&Event),
    ) -> Result<QueryStats, TraceError> {
        self.query_dyn(window, rank, f)
    }

    fn rank_events(&mut self, rank: u32, f: &mut dyn FnMut(&Event)) -> Result<(), TraceError> {
        self.for_each_rank_event(rank, f)
    }
}

pub(crate) fn take_string(buf: &mut Bytes) -> Result<String, TraceError> {
    if buf.remaining() < 4 {
        return Err(TraceError::BadString);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(TraceError::BadString);
    }
    let s = buf.split_to(n);
    String::from_utf8(s.to_vec()).map_err(|_| TraceError::BadString)
}
