//! The seeking store reader: footer-index open, one-chunk-at-a-time
//! decode, and windowed queries that never touch non-overlapping chunks.

use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::OnceLock;

use bytes::{Buf, Bytes};
use dynprof_obs as obs;
use dynprof_sim::SimTime;
use dynprof_vt::{Event, Trace};

use super::codec::{decode_event, event_overlaps};
use super::{
    ChunkMeta, CHUNK_HEADER_BYTES, HEADER_BYTES, STORE_MAGIC, STORE_VERSION, TRAILER_BYTES,
};
use crate::error::TraceError;

fn obs_chunks_read(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.chunks_read"))
        .add(n);
}

fn obs_chunks_skipped(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.chunks_skipped"))
        .add(n);
}

/// What one windowed query cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Chunks in the store (after the rank filter).
    pub chunks_considered: usize,
    /// Chunks whose payload was read and decoded.
    pub chunks_decoded: usize,
    /// Chunks skipped purely from the footer index.
    pub chunks_skipped: usize,
    /// Events delivered to the callback.
    pub events: u64,
}

/// Summary of a store file, computed from the footer index alone
/// (no chunk payload is read).
#[derive(Clone, Debug, Default)]
pub struct StoreInfo {
    /// Program name.
    pub program: String,
    /// Registered function count.
    pub functions: usize,
    /// Total chunks.
    pub chunks: usize,
    /// Total events.
    pub events: u64,
    /// Distinct ranks.
    pub ranks: usize,
    /// File size in bytes.
    pub file_bytes: u64,
    /// Earliest event timestamp.
    pub t_min: SimTime,
    /// Latest event *start* timestamp.
    pub t_max: SimTime,
    /// Latest event *end* timestamp (spans included).
    pub t_end: SimTime,
}

/// Reader over a `VGVS` store file. Holds the footer index in memory
/// (44 bytes per chunk); payloads are decoded one chunk at a time.
pub struct StoreReader {
    file: std::fs::File,
    program: String,
    functions: Vec<String>,
    index: Vec<ChunkMeta>,
    file_bytes: u64,
    events: u64,
    /// Largest single decoded-payload allocation so far — the reader's
    /// bounded-memory witness (`O(chunk)`, never `O(trace)`).
    peak_chunk_bytes: usize,
}

impl StoreReader {
    /// Open a store file: validate magic/version, read the footer index.
    pub fn open(path: impl AsRef<Path>) -> Result<StoreReader, TraceError> {
        let mut file = std::fs::File::open(path)?;
        let file_bytes = file.seek(SeekFrom::End(0))?;
        if file_bytes < HEADER_BYTES {
            return Err(TraceError::TruncatedHeader);
        }
        let mut head = [0u8; HEADER_BYTES as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if &head[..4] != STORE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != STORE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        if file_bytes < HEADER_BYTES + TRAILER_BYTES {
            return Err(TraceError::TruncatedFooter);
        }
        // Trailer: footer_len u64 | magic | version.
        let mut trailer = [0u8; TRAILER_BYTES as usize];
        file.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))?;
        file.read_exact(&mut trailer)?;
        if &trailer[8..12] != STORE_MAGIC
            || u16::from_le_bytes([trailer[12], trailer[13]]) != STORE_VERSION
        {
            return Err(TraceError::TruncatedFooter);
        }
        let footer_len = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        if footer_len + TRAILER_BYTES + HEADER_BYTES > file_bytes {
            return Err(TraceError::TruncatedFooter);
        }
        file.seek(SeekFrom::End(-((TRAILER_BYTES + footer_len) as i64)))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact(&mut footer)?;
        let mut buf = Bytes::from(footer);
        let program = take_string(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(TraceError::TruncatedFooter);
        }
        let nf = buf.get_u32_le() as usize;
        let mut functions = Vec::with_capacity(nf.min(1 << 20));
        for _ in 0..nf {
            functions.push(take_string(&mut buf)?);
        }
        if buf.remaining() < 4 {
            return Err(TraceError::TruncatedFooter);
        }
        let nc = buf.get_u32_le() as usize;
        let mut index = Vec::with_capacity(nc.min(1 << 24));
        let mut events = 0u64;
        for i in 0..nc {
            if buf.remaining() < 44 {
                return Err(TraceError::TruncatedFooter);
            }
            let meta = ChunkMeta {
                rank: buf.get_u32_le(),
                offset: buf.get_u64_le(),
                enc_len: buf.get_u32_le(),
                count: buf.get_u32_le(),
                min_t: SimTime::from_nanos(buf.get_u64_le()),
                max_t: SimTime::from_nanos(buf.get_u64_le()),
                max_end: SimTime::from_nanos(buf.get_u64_le()),
            };
            if meta.offset + (CHUNK_HEADER_BYTES as u64) + (meta.enc_len as u64) > file_bytes {
                return Err(TraceError::ShortChunk { index: i });
            }
            events += meta.count as u64;
            index.push(meta);
        }
        Ok(StoreReader {
            file,
            program,
            functions,
            index,
            file_bytes,
            events,
            peak_chunk_bytes: 0,
        })
    }

    /// Program name recorded by the writer.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Function dictionary (names indexed by `VtFuncId`).
    pub fn functions(&self) -> &[String] {
        &self.functions
    }

    /// The footer index: one entry per chunk, in file order.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.index
    }

    /// Largest single chunk-payload allocation made so far — the
    /// bounded-memory witness for tests.
    pub fn peak_chunk_bytes(&self) -> usize {
        self.peak_chunk_bytes
    }

    /// Index-only store summary.
    pub fn info(&self) -> StoreInfo {
        let mut ranks: Vec<u32> = self.index.iter().map(|m| m.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        let t_min = self
            .index
            .iter()
            .map(|m| m.min_t)
            .min()
            .unwrap_or(SimTime::ZERO);
        let t_max = self
            .index
            .iter()
            .map(|m| m.max_t)
            .max()
            .unwrap_or(SimTime::ZERO);
        let t_end = self
            .index
            .iter()
            .map(|m| m.max_end)
            .max()
            .unwrap_or(SimTime::ZERO);
        StoreInfo {
            program: self.program.clone(),
            functions: self.functions.len(),
            chunks: self.index.len(),
            events: self.events,
            ranks: ranks.len(),
            file_bytes: self.file_bytes,
            t_min,
            t_max,
            t_end,
        }
    }

    /// Decode chunk `i`'s events (exactly one chunk resident at a time).
    pub fn read_chunk(&mut self, i: usize) -> Result<Vec<Event>, TraceError> {
        let meta = *self
            .index
            .get(i)
            .ok_or(TraceError::ShortChunk { index: i })?;
        let start = if obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        self.file.seek(SeekFrom::Start(meta.offset))?;
        let mut header = [0u8; CHUNK_HEADER_BYTES];
        self.file
            .read_exact(&mut header)
            .map_err(|_| TraceError::ShortChunk { index: i })?;
        let rank = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let count = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let enc_len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if rank != meta.rank || count != meta.count || enc_len != meta.enc_len {
            return Err(TraceError::ShortChunk { index: i });
        }
        let mut payload = vec![0u8; enc_len as usize];
        self.file
            .read_exact(&mut payload)
            .map_err(|_| TraceError::ShortChunk { index: i })?;
        self.peak_chunk_bytes = self.peak_chunk_bytes.max(payload.len());
        let mut buf = Bytes::from(payload);
        let mut prev_t = 0u64;
        let mut events = Vec::with_capacity(count as usize);
        for n in 0..count {
            match decode_event(&mut buf, meta.rank, &mut prev_t) {
                Some(ev) => events.push(ev),
                None => return Err(TraceError::BadEvent { index: n as u64 }),
            }
        }
        if let Some(t0) = start {
            obs::histogram("analysis.decode_real_ns").record(t0.elapsed().as_nanos() as u64);
            obs_chunks_read(1);
        }
        Ok(events)
    }

    /// Stream every event overlapping `window` (closed interval; `None` =
    /// all time) on `rank` (`None` = all ranks) through `f`, decoding
    /// only chunks whose index envelope overlaps. Returns what it cost.
    pub fn for_each_query(
        &mut self,
        window: Option<(SimTime, SimTime)>,
        rank: Option<u32>,
        mut f: impl FnMut(&Event),
    ) -> Result<QueryStats, TraceError> {
        let mut stats = QueryStats::default();
        for i in 0..self.index.len() {
            let meta = self.index[i];
            if rank.is_some_and(|r| r != meta.rank) {
                continue;
            }
            stats.chunks_considered += 1;
            if let Some((t0, t1)) = window {
                if !meta.overlaps(t0, t1) {
                    stats.chunks_skipped += 1;
                    if obs::enabled() {
                        obs_chunks_skipped(1);
                    }
                    continue;
                }
            }
            stats.chunks_decoded += 1;
            for ev in self.read_chunk(i)? {
                if let Some((t0, t1)) = window {
                    if !event_overlaps(&ev, t0, t1) {
                        continue;
                    }
                }
                stats.events += 1;
                f(&ev);
            }
        }
        Ok(stats)
    }

    /// Stream all of one rank's events in recorded (causal) order —
    /// what per-rank call-stack replay (profiles) consumes.
    pub fn for_each_rank_event(
        &mut self,
        rank: u32,
        mut f: impl FnMut(&Event),
    ) -> Result<(), TraceError> {
        for i in 0..self.index.len() {
            if self.index[i].rank != rank {
                continue;
            }
            for ev in self.read_chunk(i)? {
                f(&ev);
            }
        }
        Ok(())
    }

    /// Distinct ranks present, ascending.
    pub fn ranks(&self) -> Vec<u32> {
        let mut ranks: Vec<u32> = self.index.iter().map(|m| m.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Per-rank `(events, min_t, max_t)` drawn from the index alone.
    pub fn rank_summary(&self) -> BTreeMap<u32, (u64, SimTime, SimTime)> {
        let mut out: BTreeMap<u32, (u64, SimTime, SimTime)> = BTreeMap::new();
        for m in &self.index {
            let e = out.entry(m.rank).or_insert((0, m.min_t, m.max_t));
            e.0 += m.count as u64;
            e.1 = e.1.min(m.min_t);
            e.2 = e.2.max(m.max_t);
        }
        out
    }

    /// Materialize the whole store as a legacy [`Trace`] (merged across
    /// ranks, `(time, rank)`-sorted) — the compatibility escape hatch and
    /// the reference path the streaming queries are tested against.
    /// Memory is `O(trace)`; avoid on large stores.
    pub fn read_all(&mut self) -> Result<Trace, TraceError> {
        let mut events = Vec::with_capacity(self.events as usize);
        for i in 0..self.index.len() {
            events.extend(self.read_chunk(i)?);
        }
        events.sort_by_key(|e| (e.time(), e.rank()));
        Ok(Trace {
            program: self.program.clone(),
            functions: self.functions.clone(),
            events,
        })
    }
}

fn take_string(buf: &mut Bytes) -> Result<String, TraceError> {
    if buf.remaining() < 4 {
        return Err(TraceError::BadString);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(TraceError::BadString);
    }
    let s = buf.split_to(n);
    String::from_utf8(s.to_vec()).map_err(|_| TraceError::BadString)
}
