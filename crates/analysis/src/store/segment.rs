//! Segment rotation and multi-segment reading.
//!
//! Long captures should not bet everything on one file: the
//! [`RotatingWriter`] rolls to a fresh segment (`name.0000.vgvs`,
//! `name.0001.vgvs`, …) whenever the open one crosses its
//! [`RotationPolicy`] byte/event caps, sealing each closed segment with
//! a full footer. A crash therefore only ever risks the tail of the
//! *newest* segment — everything older is a complete, footer-valid
//! store. [`RetentionPolicy`] bounds disk by deleting the oldest
//! segments past a keep-last-N budget (flight-recorder mode).
//!
//! [`SegmentSet`] is the read side: it discovers a base name's
//! segments, unions their function dictionaries (re-mapping ids like
//! [`compact`](super::compact)), and implements
//! [`EventSource`](super::EventSource) so `vgv info/top/slice/comm` and
//! the streaming profile/comm builders work across segments untouched.

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use dynprof_obs as obs;
use dynprof_sim::SimTime;
use dynprof_vt::{Event, VtLib};

use super::reader::{QueryStats, StoreInfo, StoreReader};
use super::writer::{remap_func, StoreStats, StoreWriter};
use super::{EventSource, StoreOptions};
use crate::error::TraceError;

fn obs_segments_rotated(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.segments_rotated"))
        .add(n);
}

/// When to roll to a new segment. A cap of `None` never triggers; the
/// default policy never rotates (single-file behaviour, byte-identical
/// to a plain [`StoreWriter`](super::StoreWriter) run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RotationPolicy {
    /// Roll once the open segment holds at least this many bytes
    /// (on-disk plus buffered).
    pub max_bytes: Option<u64>,
    /// Roll once the open segment holds at least this many events.
    pub max_events: Option<u64>,
}

impl RotationPolicy {
    /// Roll at `max_bytes` per segment.
    pub fn by_bytes(max_bytes: u64) -> RotationPolicy {
        RotationPolicy {
            max_bytes: Some(max_bytes.max(1)),
            max_events: None,
        }
    }

    /// Roll at `max_events` per segment.
    pub fn by_events(max_events: u64) -> RotationPolicy {
        RotationPolicy {
            max_bytes: None,
            max_events: Some(max_events.max(1)),
        }
    }

    fn should_roll(&self, bytes: u64, events: u64) -> bool {
        self.max_bytes.is_some_and(|cap| bytes >= cap)
            || self.max_events.is_some_and(|cap| events >= cap)
    }
}

/// How many closed segments to keep on disk. The default keeps
/// everything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep only the newest N segments (the open one counts); older
    /// segments are deleted as rotation seals new ones.
    pub keep_last: Option<usize>,
}

impl RetentionPolicy {
    /// Keep the newest `n` segments (flight-recorder mode).
    pub fn keep_last(n: usize) -> RetentionPolicy {
        RetentionPolicy {
            keep_last: Some(n.max(1)),
        }
    }
}

/// What one rotating capture produced.
#[derive(Clone, Debug, Default)]
pub struct SegmentStats {
    /// Segments still on disk, in order.
    pub segments: Vec<PathBuf>,
    /// Segments rotated (sealed because a cap was hit).
    pub rotated: usize,
    /// Segments deleted by retention.
    pub deleted: usize,
    /// Events written across all segments (including deleted ones).
    pub events: u64,
    /// Chunks written across surviving segments.
    pub chunks: usize,
    /// Bytes across surviving segments.
    pub bytes: u64,
}

/// A [`StoreWriter`](super::StoreWriter) that rolls across
/// `name.NNNN.vgvs` segments per a [`RotationPolicy`], sealing each
/// closed segment with a full footer and pruning old ones per a
/// [`RetentionPolicy`].
pub struct RotatingWriter {
    base: PathBuf,
    program: String,
    functions: Vec<String>,
    opts: StoreOptions,
    rotation: RotationPolicy,
    retention: RetentionPolicy,
    current: Option<StoreWriter<std::io::BufWriter<std::fs::File>>>,
    next_seg: usize,
    live: Vec<PathBuf>,
    sealed: Vec<StoreStats>,
    rotated: usize,
    deleted: usize,
    events: u64,
}

/// `base` = `trace.vgvs`, `seg` = 3 → `trace.0003.vgvs`.
pub(crate) fn segment_path(base: &Path, seg: usize) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("vgvs");
    base.with_file_name(format!("{stem}.{seg:04}.{ext}"))
}

impl RotatingWriter {
    /// Start a rotating capture. `base` names the segment family:
    /// `trace.vgvs` produces `trace.0000.vgvs`, `trace.0001.vgvs`, ….
    pub fn create(
        base: impl AsRef<Path>,
        program: impl Into<String>,
        opts: StoreOptions,
        rotation: RotationPolicy,
        retention: RetentionPolicy,
    ) -> Result<RotatingWriter, TraceError> {
        let base = base.as_ref().to_path_buf();
        let program = program.into();
        let first = segment_path(&base, 0);
        let writer = StoreWriter::create(&first, program.clone(), opts)?;
        Ok(RotatingWriter {
            base,
            program,
            functions: Vec::new(),
            opts,
            rotation,
            retention,
            current: Some(writer),
            next_seg: 1,
            live: vec![first],
            sealed: Vec::new(),
            rotated: 0,
            deleted: 0,
            events: 0,
        })
    }

    /// Install the function dictionary (forwarded to every segment's
    /// writer, so each segment is self-contained and salvageable).
    pub fn set_functions(&mut self, names: Vec<String>) {
        self.functions = names.clone();
        if let Some(w) = self.current.as_mut() {
            w.set_functions(names);
        }
    }

    /// Segment files currently on disk, oldest first.
    pub fn segments(&self) -> &[PathBuf] {
        &self.live
    }

    /// Append one event, rolling to a new segment when the open one
    /// crosses the rotation caps.
    pub fn append(&mut self, ev: &Event) -> Result<(), TraceError> {
        let w = self.current.as_mut().expect("writer present until finish");
        w.append(ev);
        self.events += 1;
        if self
            .rotation
            .should_roll(w.bytes_written(), w.events_written())
        {
            self.roll()?;
        }
        Ok(())
    }

    /// Seal the open segment (full footer) and start the next one.
    fn roll(&mut self) -> Result<(), TraceError> {
        let w = self.current.take().expect("writer present until finish");
        self.sealed.push(w.finish()?);
        self.rotated += 1;
        if obs::enabled() {
            obs_segments_rotated(1);
        }
        self.prune()?;
        let next = segment_path(&self.base, self.next_seg);
        self.next_seg += 1;
        let mut writer = StoreWriter::create(&next, self.program.clone(), self.opts)?;
        writer.set_functions(self.functions.clone());
        self.current = Some(writer);
        self.live.push(next);
        Ok(())
    }

    /// Delete the oldest segments past the retention budget. Runs after
    /// a seal, just before the next segment opens — `keep_last` counts
    /// that about-to-open segment, so sealed ones get `keep - 1` slots.
    fn prune(&mut self) -> Result<(), TraceError> {
        let Some(keep) = self.retention.keep_last else {
            return Ok(());
        };
        while self.live.len() + 1 > keep {
            let victim = self.live.remove(0);
            std::fs::remove_file(&victim)?;
            self.deleted += 1;
            if !self.sealed.is_empty() {
                self.sealed.remove(0);
            }
        }
        Ok(())
    }

    /// Seal the final segment and report what the capture produced.
    pub fn finish(mut self) -> Result<SegmentStats, TraceError> {
        let w = self.current.take().expect("writer present until finish");
        self.sealed.push(w.finish()?);
        let chunks = self.sealed.iter().map(|s| s.chunks).sum();
        let bytes = self.sealed.iter().map(|s| s.bytes).sum();
        Ok(SegmentStats {
            segments: self.live,
            rotated: self.rotated,
            deleted: self.deleted,
            events: self.events,
            chunks,
            bytes,
        })
    }
}

/// Flush a [`VtLib`]'s per-rank buffers through a [`RotatingWriter`] —
/// the rotating twin of
/// [`write_store_from_vt`](super::write_store_from_vt).
pub fn write_store_from_vt_rotating(
    vt: &VtLib,
    base: impl AsRef<Path>,
    opts: StoreOptions,
    rotation: RotationPolicy,
    retention: RetentionPolicy,
) -> Result<SegmentStats, TraceError> {
    let mut w = RotatingWriter::create(base, vt.program(), opts, rotation, retention)?;
    w.set_functions(vt.function_names());
    for rank in 0..vt.ranks() {
        let mut res: Result<(), TraceError> = Ok(());
        vt.with_rank_events(rank, |events| {
            for ev in events {
                if res.is_ok() {
                    res = w.append(ev);
                }
            }
        });
        res?;
    }
    w.finish()
}

/// One member of a [`SegmentSet`].
struct Member {
    reader: StoreReader,
    /// Maps this member's function ids into the set's union dictionary.
    remap: Vec<u32>,
}

/// A reader over a whole segment family that behaves like one store.
/// Dictionaries are unioned by name (first-seen order) and events are
/// re-mapped on the fly, exactly like [`compact`](super::compact) —
/// so every [`EventSource`] consumer (reports, profiles, comm matrices)
/// is rotation-agnostic.
pub struct SegmentSet {
    members: Vec<Member>,
    paths: Vec<PathBuf>,
    program: String,
    functions: Vec<String>,
}

impl SegmentSet {
    /// Segment files a base name resolves to: the base itself when it
    /// exists, else its `name.NNNN.vgvs` siblings in order.
    pub fn discover(base: impl AsRef<Path>) -> Vec<PathBuf> {
        let base = base.as_ref();
        if base.exists() {
            return vec![base.to_path_buf()];
        }
        let mut found = Vec::new();
        for seg in 0..10_000usize {
            let p = segment_path(base, seg);
            if p.exists() {
                found.push(p);
            } else if !found.is_empty() {
                // Surviving segment numbers are contiguous (retention
                // deletes from the front); the first gap past the run
                // ends it. A leading gap just means old segments were
                // retired, so keep scanning until the run starts.
                break;
            }
        }
        found
    }

    /// Open a base name's segments strictly: every member must have a
    /// valid footer.
    pub fn open(base: impl AsRef<Path>) -> Result<SegmentSet, TraceError> {
        SegmentSet::open_inner(base.as_ref(), false)
    }

    /// Open leniently for post-crash analysis: sealed members open
    /// normally, and a member with a missing/torn footer (at most the
    /// newest segment, by the rotation discipline) is salvaged instead
    /// of failing the whole set.
    pub fn open_salvage(base: impl AsRef<Path>) -> Result<SegmentSet, TraceError> {
        SegmentSet::open_inner(base.as_ref(), true)
    }

    fn open_inner(base: &Path, salvage: bool) -> Result<SegmentSet, TraceError> {
        let paths = SegmentSet::discover(base);
        if paths.is_empty() {
            let seg0 = segment_path(base, 0);
            return Err(TraceError::Io(std::io::Error::new(
                ErrorKind::NotFound,
                format!(
                    "no store at {} (nor segments like {})",
                    base.display(),
                    seg0.display()
                ),
            )));
        }
        let mut readers = Vec::with_capacity(paths.len());
        for p in &paths {
            let r = if salvage {
                StoreReader::open_salvage(p)?
            } else {
                StoreReader::open(p)?
            };
            readers.push(r);
        }
        let program = readers
            .first()
            .map(|r| r.program().to_string())
            .unwrap_or_default();
        // Union dictionary, preserving first-seen order (compact's rule).
        let mut functions: Vec<String> = Vec::new();
        let mut members = Vec::with_capacity(readers.len());
        for reader in readers {
            let mut remap = Vec::with_capacity(reader.functions().len());
            for f in reader.functions() {
                match functions.iter().position(|n| n == f) {
                    Some(i) => remap.push(i as u32),
                    None => {
                        functions.push(f.clone());
                        remap.push(functions.len() as u32 - 1);
                    }
                }
            }
            members.push(Member { reader, remap });
        }
        Ok(SegmentSet {
            members,
            paths,
            program,
            functions,
        })
    }

    /// Paths of the member segments, oldest first.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Is the set empty? (It never is after a successful open.)
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Forward degraded mode (skip-and-account bad chunks) to every
    /// member.
    pub fn set_degraded(&mut self, on: bool) {
        for m in &mut self.members {
            m.reader.set_degraded(on);
        }
    }

    /// The newest member's salvage summary, if any member was salvaged.
    pub fn salvage(&self) -> Option<super::SalvageSummary> {
        self.members.iter().rev().find_map(|m| m.reader.salvage())
    }
}

impl EventSource for SegmentSet {
    fn program(&self) -> &str {
        &self.program
    }

    fn functions(&self) -> &[String] {
        &self.functions
    }

    fn source_info(&self) -> StoreInfo {
        let mut out = StoreInfo {
            program: self.program.clone(),
            functions: self.functions.len(),
            segments: self.members.len(),
            salvage: self.salvage(),
            ..StoreInfo::default()
        };
        let mut ranks: Vec<u32> = Vec::new();
        let mut first = true;
        for m in &self.members {
            let info = m.reader.info();
            out.chunks += info.chunks;
            out.events += info.events;
            out.file_bytes += info.file_bytes;
            out.version = out.version.max(info.version);
            ranks.extend(m.reader.ranks());
            if info.chunks == 0 {
                continue;
            }
            if first {
                out.t_min = info.t_min;
                out.t_max = info.t_max;
                out.t_end = info.t_end;
                first = false;
            } else {
                out.t_min = out.t_min.min(info.t_min);
                out.t_max = out.t_max.max(info.t_max);
                out.t_end = out.t_end.max(info.t_end);
            }
        }
        ranks.sort_unstable();
        ranks.dedup();
        out.ranks = ranks.len();
        out
    }

    fn source_ranks(&self) -> Vec<u32> {
        let mut ranks: Vec<u32> = self.members.iter().flat_map(|m| m.reader.ranks()).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    fn source_rank_summary(&self) -> BTreeMap<u32, (u64, SimTime, SimTime)> {
        let mut out: BTreeMap<u32, (u64, SimTime, SimTime)> = BTreeMap::new();
        for m in &self.members {
            for (rank, (n, lo, hi)) in m.reader.rank_summary() {
                let e = out.entry(rank).or_insert((0, lo, hi));
                e.0 += n;
                e.1 = e.1.min(lo);
                e.2 = e.2.max(hi);
            }
        }
        out
    }

    fn query(
        &mut self,
        window: Option<(SimTime, SimTime)>,
        rank: Option<u32>,
        f: &mut dyn FnMut(&Event),
    ) -> Result<QueryStats, TraceError> {
        let mut total = QueryStats::default();
        for m in &mut self.members {
            let remap = &m.remap;
            let stats = m.reader.for_each_query(window, rank, |ev| {
                let mut ev = ev.clone();
                remap_func(&mut ev, remap);
                f(&ev);
            })?;
            total.chunks_considered += stats.chunks_considered;
            total.chunks_decoded += stats.chunks_decoded;
            total.chunks_skipped += stats.chunks_skipped;
            total.chunks_bad += stats.chunks_bad;
            total.events_lost += stats.events_lost;
            total.events += stats.events;
        }
        Ok(total)
    }

    fn rank_events(&mut self, rank: u32, f: &mut dyn FnMut(&Event)) -> Result<(), TraceError> {
        // Segments are sealed in time order, so concatenating members in
        // order preserves each rank's causal event order.
        for m in &mut self.members {
            let remap = &m.remap;
            m.reader.for_each_rank_event(rank, |ev| {
                let mut ev = ev.clone();
                remap_func(&mut ev, remap);
                f(&ev);
            })?;
        }
        Ok(())
    }
}
