//! Footer-less salvage: recover every fully-flushed chunk from a store
//! whose writer died before `finish()`, and the `vgv fsck [--repair]`
//! machinery built on top of it.
//!
//! The store's crash-consistency argument (DESIGN §17) is that the file
//! is *always a valid prefix*: header, then the CRC-framed preamble,
//! then self-describing chunks each carrying its own CRC-32. The salvage
//! scanner walks those chunks forward; a chunk is recovered iff every
//! one of its bytes reached the disk — its checksum proves it. Whatever
//! follows the last provable chunk (a torn write, a partial footer) is
//! reported as the dropped tail, never silently absorbed.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dynprof_obs as obs;
use dynprof_sim::SimTime;
use dynprof_vt::Event;

use super::codec::decode_event;
use super::crc::{crc32, Crc32};
use super::reader::{take_string, SalvageSummary, StoreReader};
use super::writer::{encode_preamble, put_string};
use super::{
    chunk_header_bytes, trailer_bytes, version_supported, ChunkMeta, HEADER_BYTES, STORE_MAGIC,
    STORE_VERSION, STORE_VERSION_V1,
};
use crate::error::TraceError;

fn obs_chunks_salvaged(n: u64) {
    static C: OnceLock<&'static obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("analysis.chunks_salvaged"))
        .add(n);
}

/// What `fsck` concluded about the store's footer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FooterState {
    /// Footer and trailer parse and (version 2) the footer CRC matches.
    Valid,
    /// Trailer magic is present but the footer is unreadable — torn
    /// mid-write or corrupted afterwards.
    Torn,
    /// No trailer magic at all: the writer never reached `finish()`.
    Missing,
}

impl std::fmt::Display for FooterState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FooterState::Valid => write!(f, "valid"),
            FooterState::Torn => write!(f, "torn"),
            FooterState::Missing => write!(f, "missing"),
        }
    }
}

/// One chunk `fsck` could not vouch for.
#[derive(Clone, Debug)]
pub struct ChunkFault {
    /// Position in the footer index (valid-footer files) or scan order.
    pub index: usize,
    /// File offset of the chunk's on-disk header.
    pub offset: u64,
    /// Human-readable cause (CRC mismatch, short chunk, torn tail…).
    pub reason: String,
}

/// Everything `vgv fsck` learned about one store file.
#[derive(Clone, Debug)]
pub struct FsckReport {
    /// The store that was checked.
    pub path: PathBuf,
    /// Store format version (2 = checksummed, 1 = pre-CRC legacy).
    pub version: u16,
    /// File size in bytes.
    pub file_bytes: u64,
    /// Footer verdict.
    pub footer: FooterState,
    /// Program name (from footer, preamble, or `"unknown"`).
    pub program: String,
    /// Chunks whose contents are provably intact.
    pub chunks_ok: usize,
    /// Events inside those chunks.
    pub events_ok: u64,
    /// Chunks that failed verification (bad CRC, short, undecodable).
    pub faults: Vec<ChunkFault>,
    /// Bytes past the last provable chunk that salvage would drop
    /// (torn final chunk, partial footer). 0 on a clean file.
    pub tail_bytes: u64,
    /// Whether the function dictionary was recovered (preamble or
    /// footer) rather than synthesized.
    pub dict_recovered: bool,
}

impl FsckReport {
    /// Nothing wrong: valid footer, every chunk verified, no stray tail.
    pub fn is_clean(&self) -> bool {
        self.footer == FooterState::Valid && self.faults.is_empty() && self.tail_bytes == 0
    }

    /// Is there anything worth writing to a repaired file?
    pub fn is_salvageable(&self) -> bool {
        self.chunks_ok > 0
    }

    /// The `vgv fsck` console rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name = self.path.display();
        out.push_str(&format!(
            "fsck {name}: format v{}, {} bytes, program \"{}\"\n",
            self.version, self.file_bytes, self.program
        ));
        out.push_str(&format!("  footer: {}\n", self.footer));
        out.push_str(&format!(
            "  chunks: {} ok ({} events), {} bad\n",
            self.chunks_ok,
            self.events_ok,
            self.faults.len()
        ));
        for f in &self.faults {
            out.push_str(&format!(
                "    chunk {} @ offset {}: {}\n",
                f.index, f.offset, f.reason
            ));
        }
        if self.tail_bytes > 0 {
            out.push_str(&format!(
                "  tail:   {} bytes unrecoverable\n",
                self.tail_bytes
            ));
        }
        if self.is_clean() {
            out.push_str("  verdict: clean\n");
        } else if self.is_salvageable() {
            out.push_str(&format!(
                "  verdict: damaged — {} events recoverable, repair with `vgv fsck {name} --repair`\n",
                self.events_ok
            ));
        } else {
            out.push_str("  verdict: nothing recoverable\n");
        }
        out
    }
}

/// What a forward scan recovered from a footer-less (or torn) store.
struct ScanOutcome {
    version: u16,
    file_bytes: u64,
    program: String,
    functions: Vec<String>,
    dict_recovered: bool,
    chunks: Vec<ChunkMeta>,
    /// Offset just past the last recovered chunk.
    chunks_end: u64,
    /// Why the scan stopped before end-of-file, if it did.
    stop_reason: Option<String>,
}

/// Read the 8-byte file header, returning the format version.
fn read_version(file: &mut std::fs::File, file_bytes: u64) -> Result<u16, TraceError> {
    if file_bytes < HEADER_BYTES {
        return Err(TraceError::TruncatedHeader);
    }
    let mut head = [0u8; HEADER_BYTES as usize];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut head)?;
    if &head[..4] != STORE_MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if !version_supported(version) {
        return Err(TraceError::UnsupportedVersion(version));
    }
    Ok(version)
}

/// Forward-scan `file` for self-describing chunks, trusting nothing the
/// bytes cannot prove: version-2 chunks must pass their CRC-32,
/// version-1 chunks must decode event-by-event to exactly their declared
/// length.
fn forward_scan(file: &mut std::fs::File) -> Result<ScanOutcome, TraceError> {
    let file_bytes = file.seek(SeekFrom::End(0))?;
    let version = read_version(file, file_bytes)?;
    let mut program = String::from("unknown");
    let mut functions: Vec<String> = Vec::new();
    let mut dict_recovered = false;
    let mut pos = HEADER_BYTES;
    let mut stop_reason: Option<String> = None;

    if version >= STORE_VERSION {
        // The CRC-framed preamble precedes the first chunk. If it cannot
        // be validated we do not know where chunk data starts — which
        // only happens when the writer died before flushing anything.
        match read_preamble(file, file_bytes, pos) {
            Ok((p, fns, end)) => {
                program = p;
                functions = fns;
                dict_recovered = true;
                pos = end;
            }
            Err(reason) => {
                return Ok(ScanOutcome {
                    version,
                    file_bytes,
                    program,
                    functions,
                    dict_recovered: false,
                    chunks: Vec::new(),
                    chunks_end: pos,
                    stop_reason: Some(reason),
                });
            }
        }
    }

    let hbytes = chunk_header_bytes(version) as u64;
    let mut chunks: Vec<ChunkMeta> = Vec::new();
    let mut max_func: Option<u32> = None;
    loop {
        let remaining = file_bytes - pos;
        if remaining < hbytes {
            if remaining > 0 {
                stop_reason = Some(format!("{remaining} trailing bytes, no chunk header"));
            }
            break;
        }
        let mut header = vec![0u8; hbytes as usize];
        file.seek(SeekFrom::Start(pos))?;
        file.read_exact(&mut header)?;
        let rank = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let count = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let enc_len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        let times_at = hbytes as usize - 24;
        let min_t = u64::from_le_bytes(header[times_at..times_at + 8].try_into().expect("8"));
        let max_t = u64::from_le_bytes(header[times_at + 8..times_at + 16].try_into().expect("8"));
        let max_end =
            u64::from_le_bytes(header[times_at + 16..times_at + 24].try_into().expect("8"));
        // A writer never flushes an empty chunk; zero fields mean we are
        // looking at footer bytes or a torn header.
        if count == 0 || enc_len == 0 {
            stop_reason = Some("not a chunk header".to_string());
            break;
        }
        let end = match pos
            .checked_add(hbytes)
            .and_then(|v| v.checked_add(enc_len as u64))
        {
            Some(end) if end <= file_bytes => end,
            _ => {
                stop_reason = Some(format!(
                    "chunk declares {enc_len} payload bytes past end of file"
                ));
                break;
            }
        };
        let mut payload = vec![0u8; enc_len as usize];
        file.read_exact(&mut payload)?;
        let crc_field;
        if version >= STORE_VERSION {
            crc_field = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
            let mut crc = Crc32::new();
            crc.update(&header[..12])
                .update(&header[16..])
                .update(&payload);
            if crc.finish() != crc_field {
                stop_reason = Some("chunk CRC-32 mismatch".to_string());
                break;
            }
        } else {
            // Version 1 has no checksum: prove the chunk by decoding it.
            crc_field = 0;
            let mut buf = Bytes::from(payload);
            let mut prev_t = 0u64;
            let mut ok = true;
            for _ in 0..count {
                match decode_event(&mut buf, rank, &mut prev_t) {
                    Some(ev) => track_max_func(&ev, &mut max_func),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok || buf.remaining() > 0 {
                stop_reason = Some("chunk does not decode".to_string());
                break;
            }
        }
        chunks.push(ChunkMeta {
            rank,
            offset: pos,
            enc_len,
            count,
            crc: crc_field,
            min_t: SimTime::from_nanos(min_t),
            max_t: SimTime::from_nanos(max_t),
            max_end: SimTime::from_nanos(max_end),
        });
        pos = end;
    }

    if version == STORE_VERSION_V1 && !dict_recovered {
        // No preamble in version 1: synthesize placeholder names wide
        // enough for every function id the recovered events reference.
        if let Some(max) = max_func {
            functions = (0..=max).map(|i| format!("fn#{i}")).collect();
        }
    }

    Ok(ScanOutcome {
        version,
        file_bytes,
        program,
        functions,
        dict_recovered,
        chunks,
        chunks_end: pos,
        stop_reason,
    })
}

fn track_max_func(ev: &Event, max_func: &mut Option<u32>) {
    if let Event::FuncEnter { func, .. }
    | Event::FuncExit { func, .. }
    | Event::FuncBatch { func, .. }
    | Event::FuncSuppressed { func, .. } = ev
    {
        *max_func = Some(max_func.map_or(func.0, |m| m.max(func.0)));
    }
}

/// Parse the CRC-framed preamble at `pos`. Returns the program, the
/// dictionary, and the offset just past the frame — or a reason string
/// when the frame is absent or torn.
fn read_preamble(
    file: &mut std::fs::File,
    file_bytes: u64,
    pos: u64,
) -> Result<(String, Vec<String>, u64), String> {
    if file_bytes - pos < 8 {
        return Err("file ends inside the preamble frame".to_string());
    }
    let mut frame = [0u8; 8];
    file.seek(SeekFrom::Start(pos)).map_err(|e| e.to_string())?;
    file.read_exact(&mut frame).map_err(|e| e.to_string())?;
    let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as u64;
    let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
    let end = pos
        .checked_add(8)
        .and_then(|v| v.checked_add(len))
        .filter(|&e| e <= file_bytes)
        .ok_or_else(|| "preamble frame longer than the file".to_string())?;
    let mut payload = vec![0u8; len as usize];
    file.read_exact(&mut payload).map_err(|e| e.to_string())?;
    if crc32(&payload) != crc {
        return Err("preamble CRC-32 mismatch (torn first write?)".to_string());
    }
    let mut buf = Bytes::from(payload);
    let program = take_string(&mut buf).map_err(|_| "bad preamble program string".to_string())?;
    if buf.remaining() < 4 {
        return Err("preamble dictionary truncated".to_string());
    }
    let nf = buf.get_u32_le() as usize;
    let mut functions = Vec::with_capacity(nf.min(1 << 20));
    for _ in 0..nf {
        functions.push(take_string(&mut buf).map_err(|_| "bad preamble dictionary".to_string())?);
    }
    Ok((program, functions, end))
}

/// Open a store without trusting its footer: forward-scan the chunks and
/// build the index from what the bytes prove. Files whose footer *is*
/// intact open normally (salvage then reports zero drops). Called via
/// [`StoreReader::open_salvage`].
pub(crate) fn open_salvage(path: impl AsRef<Path>) -> Result<StoreReader, TraceError> {
    let path = path.as_ref();
    match StoreReader::open(path) {
        Ok(r) => {
            let events = r.chunks().iter().map(|m| m.count as u64).sum();
            let summary = SalvageSummary {
                chunks_recovered: r.chunks().len(),
                events_recovered: events,
                tail_bytes_dropped: 0,
                dict_from_preamble: r.version() >= STORE_VERSION,
            };
            Ok(r.with_salvage(summary))
        }
        Err(TraceError::TruncatedFooter) => {
            let mut file = std::fs::File::open(path)?;
            let scan = forward_scan(&mut file)?;
            let summary = SalvageSummary {
                chunks_recovered: scan.chunks.len(),
                events_recovered: scan.chunks.iter().map(|m| m.count as u64).sum(),
                tail_bytes_dropped: scan.file_bytes - scan.chunks_end,
                dict_from_preamble: scan.dict_recovered,
            };
            if obs::enabled() {
                obs_chunks_salvaged(summary.chunks_recovered as u64);
            }
            Ok(StoreReader::from_parts(
                file,
                scan.version,
                scan.program,
                scan.functions,
                scan.chunks,
                scan.file_bytes,
                Some(summary),
            ))
        }
        Err(e) => Err(e),
    }
}

/// Classify a file that failed the normal footer parse: trailer magic
/// present → [`FooterState::Torn`], absent → [`FooterState::Missing`].
fn classify_footer(path: &Path, version: u16) -> FooterState {
    let Ok(mut file) = std::fs::File::open(path) else {
        return FooterState::Missing;
    };
    let Ok(file_bytes) = file.seek(SeekFrom::End(0)) else {
        return FooterState::Missing;
    };
    if file_bytes < HEADER_BYTES + trailer_bytes(version) {
        return FooterState::Missing;
    }
    let mut tail = [0u8; 6];
    if file.seek(SeekFrom::End(-6)).is_err() || file.read_exact(&mut tail).is_err() {
        return FooterState::Missing;
    }
    if &tail[..4] == STORE_MAGIC {
        FooterState::Torn
    } else {
        FooterState::Missing
    }
}

/// Check a store end to end: footer parse, then per-chunk verification
/// (CRC on version 2, full decode on version 1); footer-less files get
/// the forward salvage scan. Corruption is *reported*, not an error —
/// `fsck` only fails on I/O problems or a file that is not a store at
/// all.
pub fn fsck(path: impl AsRef<Path>) -> Result<FsckReport, TraceError> {
    let path = path.as_ref();
    match StoreReader::open(path) {
        Ok(mut r) => {
            let mut faults = Vec::new();
            let mut chunks_ok = 0usize;
            let mut events_ok = 0u64;
            for i in 0..r.chunks().len() {
                let meta = r.chunks()[i];
                match r.read_chunk(i) {
                    Ok(events) => {
                        chunks_ok += 1;
                        events_ok += events.len() as u64;
                    }
                    Err(e) => faults.push(ChunkFault {
                        index: i,
                        offset: meta.offset,
                        reason: e.to_string(),
                    }),
                }
            }
            let info = r.info();
            Ok(FsckReport {
                path: path.to_path_buf(),
                version: r.version(),
                file_bytes: info.file_bytes,
                footer: FooterState::Valid,
                program: r.program().to_string(),
                chunks_ok,
                events_ok,
                faults,
                tail_bytes: 0,
                dict_recovered: true,
            })
        }
        Err(TraceError::TruncatedFooter) => {
            let mut file = std::fs::File::open(path)?;
            let scan = forward_scan(&mut file)?;
            let mut faults = Vec::new();
            let tail_bytes = scan.file_bytes - scan.chunks_end;
            if let Some(reason) = scan.stop_reason {
                faults.push(ChunkFault {
                    index: scan.chunks.len(),
                    offset: scan.chunks_end,
                    reason,
                });
            }
            Ok(FsckReport {
                path: path.to_path_buf(),
                version: scan.version,
                file_bytes: scan.file_bytes,
                footer: classify_footer(path, scan.version),
                program: scan.program.clone(),
                chunks_ok: scan.chunks.len(),
                events_ok: scan.chunks.iter().map(|m| m.count as u64).sum(),
                faults,
                tail_bytes,
                dict_recovered: scan.dict_recovered,
            })
        }
        Err(e) => Err(e),
    }
}

/// Write a repaired copy of `path` to `out`: every provably-intact chunk
/// is copied **byte-for-byte** (headers are offset-free, so raw copy
/// preserves CRCs and chunk boundaries — queries against the repaired
/// file match the salvaged view exactly), then a fresh preamble, footer,
/// and trailer are written so [`StoreReader::open`] accepts the result.
/// Returns the pre-repair [`FsckReport`] describing what was recovered.
pub fn repair(path: impl AsRef<Path>, out: impl AsRef<Path>) -> Result<FsckReport, TraceError> {
    let path = path.as_ref();
    let report = fsck(path)?;
    // Collect the good chunks (index + metadata) the same way fsck did.
    let (version, program, functions, good): (u16, String, Vec<String>, Vec<ChunkMeta>) =
        match StoreReader::open(path) {
            Ok(mut r) => {
                let mut good = Vec::new();
                for i in 0..r.chunks().len() {
                    let meta = r.chunks()[i];
                    if r.read_chunk(i).is_ok() {
                        good.push(meta);
                    }
                }
                (
                    r.version(),
                    r.program().to_string(),
                    r.functions().to_vec(),
                    good,
                )
            }
            Err(TraceError::TruncatedFooter) => {
                let mut file = std::fs::File::open(path)?;
                let scan = forward_scan(&mut file)?;
                (scan.version, scan.program, scan.functions, scan.chunks)
            }
            Err(e) => return Err(e),
        };

    let mut input = std::fs::File::open(path)?;
    let mut sink = std::io::BufWriter::new(std::fs::File::create(out.as_ref())?);
    let mut header = [0u8; HEADER_BYTES as usize];
    header[..4].copy_from_slice(STORE_MAGIC);
    header[4..6].copy_from_slice(&version.to_le_bytes());
    sink.write_all(&header)?;
    let mut pos = HEADER_BYTES;
    if version >= STORE_VERSION {
        let framed = encode_preamble(&program, &functions);
        sink.write_all(&framed)?;
        pos += framed.len() as u64;
    }
    let mut index = Vec::with_capacity(good.len());
    for meta in &good {
        let disk = meta.disk_bytes(version);
        let mut raw = vec![0u8; disk as usize];
        input.seek(SeekFrom::Start(meta.offset))?;
        input.read_exact(&mut raw)?;
        sink.write_all(&raw)?;
        let mut moved = *meta;
        moved.offset = pos;
        index.push(moved);
        pos += disk;
    }
    let footer = encode_footer_versioned(version, &program, &functions, &index);
    sink.write_all(&footer)?;
    sink.flush()?;
    Ok(report)
}

/// Encode the footer + trailer in the given format version (repair must
/// preserve the input's version so its raw-copied chunk headers stay
/// self-consistent).
fn encode_footer_versioned(
    version: u16,
    program: &str,
    functions: &[String],
    index: &[ChunkMeta],
) -> BytesMut {
    if version >= STORE_VERSION {
        return super::writer::encode_footer_and_trailer(program, functions, index);
    }
    let mut footer = BytesMut::new();
    put_string(&mut footer, program);
    footer.put_u32_le(functions.len() as u32);
    for f in functions {
        put_string(&mut footer, f);
    }
    footer.put_u32_le(index.len() as u32);
    for m in index {
        footer.put_u32_le(m.rank);
        footer.put_u64_le(m.offset);
        footer.put_u32_le(m.enc_len);
        footer.put_u32_le(m.count);
        footer.put_u64_le(m.min_t.as_nanos());
        footer.put_u64_le(m.max_t.as_nanos());
        footer.put_u64_le(m.max_end.as_nanos());
    }
    let footer_len = footer.len() as u64;
    footer.put_u64_le(footer_len);
    footer.put_slice(STORE_MAGIC);
    footer.put_u16_le(STORE_VERSION_V1);
    footer
}
