//! # dynprof-analysis — postmortem trace analysis
//!
//! The VGV GUI's analysis layer, reimplemented as a library (paper §3.1,
//! Fig 4) and rebuilt around a scalable trace store: per-function
//! profiles with inclusive/exclusive virtual time and load-imbalance
//! metrics, trace-volume accounting (the paper's motivating "2 MB/s per
//! processor" problem), communication statistics, and the main time-line
//! display rendered as ASCII art.
//!
//! ## Two trace formats
//!
//! | | legacy `VGVT` ([`read_trace`]) | store `VGVS` ([`store`]) |
//! |---|---|---|
//! | layout | one flat event array | fixed-size chunks + footer index |
//! | read cost | whole file, always | only chunks overlapping the query |
//! | memory | `O(trace)` | `O(chunk)` |
//! | written by | [`write_trace`] | [`store::StoreWriter`] |
//!
//! The analyses consume **event streams**, not materialized traces:
//! [`ProfileBuilder`], [`TimelineBuilder`] and [`CommStats::push`] accept
//! events one at a time, so a million-rank store never has to fit in
//! memory. The `Trace`-taking entry points ([`Profile::from_trace`],
//! [`render`], [`CommStats::from_trace`]) remain as thin wrappers.
//!
//! ## Streaming round trip
//!
//! ```
//! use dynprof_analysis::store::{StoreOptions, StoreReader, StoreWriter};
//! use dynprof_analysis::{Profile, ProfileOptions};
//! use dynprof_sim::SimTime;
//! use dynprof_vt::{Event, VtFuncId};
//!
//! let dir = std::env::temp_dir().join("dynprof-doctest");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join(format!("lib-{}.vgvs", std::process::id()));
//!
//! let mut w = StoreWriter::create(&path, "demo", StoreOptions { chunk_events: 8 }).unwrap();
//! w.set_functions(vec!["work".to_string()]);
//! for i in 0..32u64 {
//!     let t0 = SimTime::from_micros(10 * i);
//!     w.append(&Event::FuncEnter { t: t0, rank: 0, thread: 0, func: VtFuncId(0) });
//!     w.append(&Event::FuncExit {
//!         t: t0 + SimTime::from_micros(7),
//!         rank: 0,
//!         thread: 0,
//!         func: VtFuncId(0),
//!     });
//! }
//! let stats = w.finish().unwrap();
//! assert!(stats.chunks > 1, "multiple chunks written");
//!
//! let mut r = StoreReader::open(&path).unwrap();
//! let profile = Profile::from_store(&mut r, ProfileOptions::default()).unwrap();
//! let hot = profile.hot_functions();
//! assert_eq!(profile.name(hot[0].0), "work");
//! assert_eq!(hot[0].1.count, 32);
//! std::fs::remove_file(&path).ok();
//! ```

#![warn(missing_docs)]

mod comm;
mod error;
mod profile;
mod query;
pub mod store;
mod timeline;
mod tracefile;

pub use comm::CommStats;
pub use error::TraceError;
pub use profile::{
    suspension_windows, trace_volume, FuncProfile, Profile, ProfileBuilder, ProfileOptions,
    TraceVolume,
};
pub use query::{comm_report, info_report, ranks_report, slice_report, top_report};
pub use timeline::{render, TimelineBuilder, TimelineOptions};
pub use tracefile::{convert, decode_legacy, read_trace, write_trace};
