//! # dynprof-analysis — postmortem trace analysis
//!
//! The VGV GUI's analysis layer, reimplemented as a library (paper §3.1,
//! Fig 4): read a binary trace file, compute per-function profiles with
//! inclusive/exclusive time and load-imbalance metrics, measure trace
//! volume (the paper's motivating "2 MB/s per processor" problem), and
//! render the main time-line display — MPI processes and OpenMP threads
//! as horizontal bars, with wiggle glyphs over parallel regions — as
//! ASCII art.

#![warn(missing_docs)]

mod comm;
mod profile;
mod timeline;
mod tracefile;

pub use comm::CommStats;
pub use profile::{
    suspension_windows, trace_volume, FuncProfile, Profile, ProfileOptions, TraceVolume,
};
pub use timeline::{render, TimelineOptions};
pub use tracefile::{read_trace, write_trace};
