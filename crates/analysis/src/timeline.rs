//! An ASCII rendering of the VGV main time-line display (paper Fig 4).
//!
//! "In the main time-line display, MPI processes and OpenMP threads are
//! shown as horizontal bars. A wiggle glyph is superimposed on these bars
//! to represent OpenMP parallel regions."
//!
//! Each rank gets one row; time is bucketed into columns. Bucket glyphs,
//! by precedence: `M` while inside an MPI call, `~` while any OpenMP
//! parallel region is active (the wiggle), `#` while inside an
//! instrumented function, `.` otherwise-idle trace time, ` ` before the
//! rank's first event. Optional per-thread rows expand the wiggle into
//! the individual team members.

use dynprof_sim::SimTime;
use dynprof_vt::{Event, Trace};

/// Timeline rendering options.
#[derive(Clone, Copy, Debug)]
pub struct TimelineOptions {
    /// Number of time buckets (columns).
    pub width: usize,
    /// Also render one row per OpenMP thread.
    pub per_thread: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 72,
            per_thread: false,
        }
    }
}

#[derive(Clone, Copy, PartialEq, PartialOrd)]
enum Glyph {
    Blank = 0,
    Idle = 1,
    Func = 2,
    Wiggle = 3,
    Mpi = 4,
    /// Suspended by the instrumenter (paper §5.1's period of inactivity).
    Suspended = 5,
}

impl Glyph {
    fn ch(self) -> char {
        match self {
            Glyph::Blank => ' ',
            Glyph::Idle => '.',
            Glyph::Func => '#',
            Glyph::Wiggle => '~',
            Glyph::Mpi => 'M',
            Glyph::Suspended => 'S',
        }
    }
}

/// Render the trace as an ASCII time-line.
pub fn render(trace: &Trace, opts: TimelineOptions) -> String {
    let (t0, t1) = match (trace.events.first(), trace.events.last()) {
        (Some(a), Some(b)) => (a.time(), b.time()),
        _ => return String::from("(empty trace)\n"),
    };
    let span = t1.saturating_sub(t0).max(SimTime::from_nanos(1));
    let width = opts.width.max(8);
    let bucket_of = |t: SimTime| -> usize {
        let rel = t.saturating_sub(t0).as_nanos() as u128;
        ((rel * width as u128 / span.as_nanos().max(1) as u128) as usize).min(width - 1)
    };

    let mut ranks: Vec<u32> = trace.events.iter().map(Event::rank).collect();
    ranks.sort_unstable();
    ranks.dedup();

    // Row keys: (rank, Option<thread>).
    let mut rows: Vec<(u32, Option<u16>)> = Vec::new();
    for &r in &ranks {
        rows.push((r, None));
        if opts.per_thread {
            let mut threads: Vec<u16> = trace
                .events
                .iter()
                .filter_map(|e| match *e {
                    Event::OmpThread { rank, thread, .. } if rank == r => Some(thread),
                    _ => None,
                })
                .collect();
            threads.sort_unstable();
            threads.dedup();
            for t in threads {
                rows.push((r, Some(t)));
            }
        }
    }

    let mut grid: Vec<Vec<Glyph>> = vec![vec![Glyph::Blank; width]; rows.len()];
    let row_index = |rank: u32, thread: Option<u16>| -> Option<usize> {
        rows.iter().position(|&k| k == (rank, thread))
    };
    let mut paint = |row: Option<usize>, a: SimTime, b: SimTime, g: Glyph| {
        if let Some(r) = row {
            let (ba, bb) = (bucket_of(a), bucket_of(b));
            for cell in grid[r][ba..=bb].iter_mut() {
                if (*cell as u8) < (g as u8) {
                    *cell = g;
                }
            }
        }
    };

    // First pass: base activity (idle from first to last event per rank).
    let mut first_last: std::collections::BTreeMap<u32, (SimTime, SimTime)> = Default::default();
    for e in &trace.events {
        let entry = first_last.entry(e.rank()).or_insert((e.time(), e.time()));
        entry.0 = entry.0.min(e.time());
        entry.1 = entry.1.max(e.time());
    }
    for (&r, &(a, b)) in &first_last {
        paint(row_index(r, None), a, b, Glyph::Idle);
    }

    // Second pass: spans.
    let mut func_stack: std::collections::BTreeMap<(u32, u16), Vec<SimTime>> = Default::default();
    for e in &trace.events {
        match *e {
            Event::FuncEnter {
                t, rank, thread, ..
            } => {
                func_stack.entry((rank, thread)).or_default().push(t);
            }
            Event::FuncExit {
                t, rank, thread, ..
            } => {
                if let Some(t0) = func_stack.entry((rank, thread)).or_default().pop() {
                    paint(row_index(rank, None), t0, t, Glyph::Func);
                    if opts.per_thread {
                        paint(row_index(rank, Some(thread)), t0, t, Glyph::Func);
                    }
                }
            }
            Event::FuncBatch {
                t,
                rank,
                thread,
                span,
                ..
            } => {
                paint(row_index(rank, None), t, t + span, Glyph::Func);
                if opts.per_thread {
                    paint(row_index(rank, Some(thread)), t, t + span, Glyph::Func);
                }
            }
            Event::MpiCall { t, t_end, rank, .. } => {
                paint(row_index(rank, None), t, t_end, Glyph::Mpi);
            }
            Event::OmpThread {
                t,
                t_end,
                rank,
                thread,
                ..
            } => {
                paint(row_index(rank, None), t, t_end, Glyph::Wiggle);
                if opts.per_thread {
                    paint(row_index(rank, Some(thread)), t, t_end, Glyph::Wiggle);
                }
            }
            Event::Suspended { t, t_end, rank } => {
                paint(row_index(rank, None), t, t_end, Glyph::Suspended);
            }
            _ => {}
        }
    }

    // Assemble.
    let mut out = String::new();
    out.push_str(&format!(
        "time-line of {:?}: {} .. {} ({} ranks)\n",
        trace.program,
        t0,
        t1,
        ranks.len()
    ));
    out.push_str("legend: M=MPI call  ~=OpenMP region  #=function  S=suspended  .=traced\n");
    for (i, &(rank, thread)) in rows.iter().enumerate() {
        let label = match thread {
            None => format!("rank {rank:>3}      "),
            Some(t) => format!("  thread {t:>2}   "),
        };
        out.push_str(&label);
        out.push('|');
        out.extend(grid[i].iter().map(|g| g.ch()));
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_vt::VtFuncId;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn sample() -> Trace {
        Trace {
            program: "sweep3d".into(),
            functions: vec!["sweep".into()],
            events: vec![
                Event::FuncEnter {
                    t: us(0),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                },
                Event::MpiCall {
                    t: us(10),
                    t_end: us(30),
                    rank: 0,
                    op: 2,
                    peer: 1,
                    bytes: 100,
                },
                Event::FuncExit {
                    t: us(50),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                },
                Event::OmpFork {
                    t: us(0),
                    rank: 1,
                    region: 0,
                    team: 2,
                },
                Event::OmpThread {
                    t: us(5),
                    t_end: us(45),
                    rank: 1,
                    thread: 0,
                    region: 0,
                },
                Event::OmpThread {
                    t: us(5),
                    t_end: us(40),
                    rank: 1,
                    thread: 1,
                    region: 0,
                },
                Event::OmpJoin {
                    t: us(50),
                    rank: 1,
                    region: 0,
                    team: 2,
                },
            ],
        }
    }

    #[test]
    fn renders_rows_for_each_rank() {
        let s = render(&sample(), TimelineOptions::default());
        assert!(s.contains("rank   0"));
        assert!(s.contains("rank   1"));
        assert!(s.contains('M'), "MPI glyph missing:\n{s}");
        assert!(s.contains('~'), "wiggle glyph missing:\n{s}");
        assert!(s.contains('#'), "function glyph missing:\n{s}");
    }

    #[test]
    fn per_thread_rows_expand_team() {
        let s = render(
            &sample(),
            TimelineOptions {
                width: 40,
                per_thread: true,
            },
        );
        assert!(s.contains("thread  0"));
        assert!(s.contains("thread  1"));
    }

    #[test]
    fn mpi_glyph_beats_function_glyph() {
        let s = render(
            &sample(),
            TimelineOptions {
                width: 50,
                per_thread: false,
            },
        );
        let row0 = s.lines().find(|l| l.contains("rank   0")).unwrap();
        // The MPI call sits at 20%-60% of the row.
        let bars: String = row0.chars().skip_while(|c| *c != '|').collect();
        assert!(bars.contains('M'));
        assert!(bars.contains('#'));
    }

    #[test]
    fn empty_trace_is_handled() {
        let t = Trace::default();
        assert_eq!(render(&t, TimelineOptions::default()), "(empty trace)\n");
    }

    #[test]
    fn width_is_respected() {
        let s = render(
            &sample(),
            TimelineOptions {
                width: 30,
                per_thread: false,
            },
        );
        for line in s.lines().filter(|l| l.starts_with("rank")) {
            let inner = line.split('|').nth(1).unwrap();
            assert_eq!(inner.chars().count(), 30);
        }
    }
}
