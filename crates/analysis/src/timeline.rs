//! An ASCII rendering of the VGV main time-line display (paper Fig 4).
//!
//! "In the main time-line display, MPI processes and OpenMP threads are
//! shown as horizontal bars. A wiggle glyph is superimposed on these bars
//! to represent OpenMP parallel regions."
//!
//! Each rank gets one row; time is bucketed into columns. Bucket glyphs,
//! by precedence: `M` while inside an MPI call, `~` while any OpenMP
//! parallel region is active (the wiggle), `#` while inside an
//! instrumented function, `.` otherwise-idle trace time, ` ` before the
//! rank's first event. Optional per-thread rows expand the activity of
//! the individual team members.
//!
//! Rendering is streaming: [`TimelineBuilder`] takes the time bounds up
//! front (for a store, the footer index provides them without decoding
//! anything), accepts events in any order via [`TimelineBuilder::push`],
//! and assembles the rows at [`TimelineBuilder::finish`]. Memory is
//! `O(rows × width)` — the size of the picture, not of the trace.

use std::collections::BTreeMap;

use dynprof_sim::SimTime;
use dynprof_vt::{Event, Trace};

/// Timeline rendering options.
#[derive(Clone, Copy, Debug)]
pub struct TimelineOptions {
    /// Number of time buckets (columns).
    pub width: usize,
    /// Also render one row per OpenMP thread.
    pub per_thread: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 72,
            per_thread: false,
        }
    }
}

#[derive(Clone, Copy, PartialEq, PartialOrd)]
enum Glyph {
    Blank = 0,
    Idle = 1,
    Func = 2,
    Wiggle = 3,
    Mpi = 4,
    /// Suspended by the instrumenter (paper §5.1's period of inactivity).
    Suspended = 5,
}

impl Glyph {
    fn ch(self) -> char {
        match self {
            Glyph::Blank => ' ',
            Glyph::Idle => '.',
            Glyph::Func => '#',
            Glyph::Wiggle => '~',
            Glyph::Mpi => 'M',
            Glyph::Suspended => 'S',
        }
    }
}

/// Streaming timeline accumulator over a fixed time window `[t0, t1]`.
pub struct TimelineBuilder {
    program: String,
    t0: SimTime,
    t1: SimTime,
    width: usize,
    per_thread: bool,
    /// Row grids keyed `(rank, None)` for the rank row, `(rank,
    /// Some(thread))` for per-thread rows; `BTreeMap` order is already
    /// display order (rank row first, then its threads ascending).
    grids: BTreeMap<(u32, Option<u16>), Vec<Glyph>>,
    /// Per-rank first/last event time, painted as the idle baseline.
    first_last: BTreeMap<u32, (SimTime, SimTime)>,
    /// Open function frames per (rank, thread).
    func_stack: BTreeMap<(u32, u16), Vec<SimTime>>,
    events: u64,
}

impl TimelineBuilder {
    /// Start a timeline of `program` spanning `[t0, t1]`.
    pub fn new(
        program: impl Into<String>,
        t0: SimTime,
        t1: SimTime,
        opts: TimelineOptions,
    ) -> Self {
        TimelineBuilder {
            program: program.into(),
            t0,
            t1,
            width: opts.width.max(8),
            per_thread: opts.per_thread,
            grids: BTreeMap::new(),
            first_last: BTreeMap::new(),
            func_stack: BTreeMap::new(),
            events: 0,
        }
    }

    fn bucket_of(&self, t: SimTime) -> usize {
        let span = self.t1.saturating_sub(self.t0).max(SimTime::from_nanos(1));
        let rel = t.saturating_sub(self.t0).as_nanos() as u128;
        ((rel * self.width as u128 / span.as_nanos().max(1) as u128) as usize).min(self.width - 1)
    }

    fn paint(&mut self, rank: u32, thread: Option<u16>, a: SimTime, b: SimTime, g: Glyph) {
        let (ba, bb) = (self.bucket_of(a), self.bucket_of(b));
        let width = self.width;
        let grid = self
            .grids
            .entry((rank, thread))
            .or_insert_with(|| vec![Glyph::Blank; width]);
        for cell in grid[ba..=bb].iter_mut() {
            if (*cell as u8) < (g as u8) {
                *cell = g;
            }
        }
    }

    /// Account one event (order-independent except for
    /// `FuncEnter`/`FuncExit` pairing, which needs each rank-thread's
    /// causal order — what traces and store chunks both provide).
    pub fn push(&mut self, ev: &Event) {
        self.events += 1;
        let rank = ev.rank();
        let entry = self
            .first_last
            .entry(rank)
            .or_insert((ev.time(), ev.time()));
        entry.0 = entry.0.min(ev.time());
        entry.1 = entry.1.max(ev.time());
        match *ev {
            Event::FuncEnter {
                t, rank, thread, ..
            } => {
                self.func_stack.entry((rank, thread)).or_default().push(t);
            }
            Event::FuncExit {
                t, rank, thread, ..
            } => {
                if let Some(t0) = self.func_stack.entry((rank, thread)).or_default().pop() {
                    self.paint(rank, None, t0, t, Glyph::Func);
                    if self.per_thread {
                        self.paint(rank, Some(thread), t0, t, Glyph::Func);
                    }
                }
            }
            Event::FuncBatch {
                t,
                rank,
                thread,
                span,
                ..
            } => {
                self.paint(rank, None, t, t + span, Glyph::Func);
                if self.per_thread {
                    self.paint(rank, Some(thread), t, t + span, Glyph::Func);
                }
            }
            Event::MpiCall { t, t_end, rank, .. } => {
                self.paint(rank, None, t, t_end, Glyph::Mpi);
            }
            Event::OmpThread {
                t,
                t_end,
                rank,
                thread,
                ..
            } => {
                self.paint(rank, None, t, t_end, Glyph::Wiggle);
                if self.per_thread {
                    self.paint(rank, Some(thread), t, t_end, Glyph::Wiggle);
                }
            }
            Event::Suspended { t, t_end, rank } => {
                self.paint(rank, None, t, t_end, Glyph::Suspended);
            }
            _ => {}
        }
    }

    /// Assemble the picture. Returns `"(empty trace)\n"` when nothing
    /// was pushed.
    pub fn finish(mut self) -> String {
        if self.events == 0 {
            return String::from("(empty trace)\n");
        }
        // Idle baseline: each rank's first..last event span.
        let spans: Vec<(u32, SimTime, SimTime)> = self
            .first_last
            .iter()
            .map(|(&r, &(a, b))| (r, a, b))
            .collect();
        for (r, a, b) in spans {
            self.paint(r, None, a, b, Glyph::Idle);
        }
        let ranks = self.first_last.len();
        let mut out = String::new();
        out.push_str(&format!(
            "time-line of {:?}: {} .. {} ({} ranks)\n",
            self.program, self.t0, self.t1, ranks
        ));
        out.push_str("legend: M=MPI call  ~=OpenMP region  #=function  S=suspended  .=traced\n");
        for (&(rank, thread), grid) in &self.grids {
            let label = match thread {
                None => format!("rank {rank:>3}      "),
                Some(t) => format!("  thread {t:>2}   "),
            };
            out.push_str(&label);
            out.push('|');
            out.extend(grid.iter().map(|g| g.ch()));
            out.push_str("|\n");
        }
        out
    }
}

/// Render a whole trace as an ASCII time-line (the legacy entry point;
/// events must be time-sorted, as [`dynprof_vt::VtLib::build_trace`]
/// guarantees).
pub fn render(trace: &Trace, opts: TimelineOptions) -> String {
    let (t0, t1) = match (trace.events.first(), trace.events.last()) {
        (Some(a), Some(b)) => (a.time(), b.time()),
        _ => return String::from("(empty trace)\n"),
    };
    let mut b = TimelineBuilder::new(trace.program.clone(), t0, t1, opts);
    for ev in &trace.events {
        b.push(ev);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_vt::VtFuncId;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn sample() -> Trace {
        Trace {
            program: "sweep3d".into(),
            functions: vec!["sweep".into()],
            events: vec![
                Event::FuncEnter {
                    t: us(0),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                },
                Event::MpiCall {
                    t: us(10),
                    t_end: us(30),
                    rank: 0,
                    op: 2,
                    peer: 1,
                    bytes: 100,
                },
                Event::FuncExit {
                    t: us(50),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                },
                Event::OmpFork {
                    t: us(0),
                    rank: 1,
                    region: 0,
                    team: 2,
                },
                Event::OmpThread {
                    t: us(5),
                    t_end: us(45),
                    rank: 1,
                    thread: 0,
                    region: 0,
                },
                Event::OmpThread {
                    t: us(5),
                    t_end: us(40),
                    rank: 1,
                    thread: 1,
                    region: 0,
                },
                Event::OmpJoin {
                    t: us(50),
                    rank: 1,
                    region: 0,
                    team: 2,
                },
            ],
        }
    }

    #[test]
    fn renders_rows_for_each_rank() {
        let s = render(&sample(), TimelineOptions::default());
        assert!(s.contains("rank   0"));
        assert!(s.contains("rank   1"));
        assert!(s.contains('M'), "MPI glyph missing:\n{s}");
        assert!(s.contains('~'), "wiggle glyph missing:\n{s}");
        assert!(s.contains('#'), "function glyph missing:\n{s}");
    }

    #[test]
    fn per_thread_rows_expand_team() {
        let s = render(
            &sample(),
            TimelineOptions {
                width: 40,
                per_thread: true,
            },
        );
        assert!(s.contains("thread  0"));
        assert!(s.contains("thread  1"));
    }

    #[test]
    fn mpi_glyph_beats_function_glyph() {
        let s = render(
            &sample(),
            TimelineOptions {
                width: 50,
                per_thread: false,
            },
        );
        let row0 = s.lines().find(|l| l.contains("rank   0")).unwrap();
        // The MPI call sits at 20%-60% of the row.
        let bars: String = row0.chars().skip_while(|c| *c != '|').collect();
        assert!(bars.contains('M'));
        assert!(bars.contains('#'));
    }

    #[test]
    fn empty_trace_is_handled() {
        let t = Trace::default();
        assert_eq!(render(&t, TimelineOptions::default()), "(empty trace)\n");
    }

    #[test]
    fn width_is_respected() {
        let s = render(
            &sample(),
            TimelineOptions {
                width: 30,
                per_thread: false,
            },
        );
        for line in s.lines().filter(|l| l.starts_with("rank")) {
            let inner = line.split('|').nth(1).unwrap();
            assert_eq!(inner.chars().count(), 30);
        }
    }

    #[test]
    fn windowed_builder_clamps_outside_spans() {
        // A window inside the trace: spans crossing the edge clamp to it.
        let mut b = TimelineBuilder::new(
            "w",
            us(10),
            us(20),
            TimelineOptions {
                width: 10,
                per_thread: false,
            },
        );
        b.push(&Event::MpiCall {
            t: us(5),
            t_end: us(40),
            rank: 0,
            op: 2,
            peer: 1,
            bytes: 0,
        });
        let s = b.finish();
        let row = s.lines().find(|l| l.starts_with("rank")).unwrap();
        let inner: String = row.split('|').nth(1).unwrap().into();
        assert_eq!(inner, "MMMMMMMMMM", "span clamps to the window: {s}");
    }

    #[test]
    fn builder_equals_legacy_render() {
        let trace = sample();
        let opts = TimelineOptions {
            width: 44,
            per_thread: false,
        };
        let mut b = TimelineBuilder::new(
            trace.program.clone(),
            trace.events.first().unwrap().time(),
            trace.events.last().unwrap().time(),
            opts,
        );
        for ev in &trace.events {
            b.push(ev);
        }
        assert_eq!(b.finish(), render(&trace, opts));
    }
}
