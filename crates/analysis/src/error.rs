//! Typed trace-I/O errors.
//!
//! Both trace decoders — the legacy whole-file `VGVT` reader
//! ([`crate::read_trace`]) and the chunk-indexed `VGVS` store reader
//! ([`crate::store::StoreReader`]) — report corruption through one enum,
//! so callers can distinguish "this is not a trace file at all"
//! ([`TraceError::BadMagic`]) from "this is a trace file that was cut
//! short" ([`TraceError::TruncatedHeader`], [`TraceError::ShortChunk`])
//! and react accordingly (e.g. retry a partially-copied file, or refuse
//! a wrong-format one outright).

use std::fmt;
use std::io;

/// Everything that can go wrong reading a trace or store file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying filesystem failure (open, seek, read, write).
    Io(io::Error),
    /// The file ends before the fixed-size header (or a header-resident
    /// table such as the function dictionary) is complete.
    TruncatedHeader,
    /// The magic number is neither `VGVT` (legacy) nor `VGVS` (store).
    BadMagic,
    /// The magic matched but the format version is unknown.
    UnsupportedVersion(u16),
    /// The store's trailing footer (index + trailer) is missing or cut
    /// short — the writer died before `finish()`.
    TruncatedFooter,
    /// Chunk `index` declares more payload bytes than the file holds, or
    /// its header disagrees with the footer index.
    ShortChunk {
        /// Position of the offending chunk in the footer index.
        index: usize,
    },
    /// Chunk `index` is the right shape but its CRC-32 does not match —
    /// the payload (or its header) was corrupted after being written.
    /// Degraded readers ([`crate::store::StoreReader::set_degraded`]) skip
    /// such chunks and account for them instead of failing.
    ChecksumMismatch {
        /// Position of the offending chunk in the footer index.
        index: usize,
    },
    /// Event `index` within the current chunk (or legacy event stream)
    /// failed to decode.
    BadEvent {
        /// Ordinal of the malformed event.
        index: u64,
    },
    /// A length-prefixed string (program name, function dictionary entry)
    /// is truncated or not UTF-8.
    BadString,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::TruncatedHeader => write!(f, "truncated trace header"),
            TraceError::BadMagic => write!(f, "bad magic (not a VGVT/VGVS trace file)"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::TruncatedFooter => write!(f, "truncated store footer (unfinished write?)"),
            TraceError::ShortChunk { index } => write!(f, "chunk {index} shorter than declared"),
            TraceError::ChecksumMismatch { index } => {
                write!(f, "chunk {index} failed its CRC-32 check (corrupted data)")
            }
            TraceError::BadEvent { index } => write!(f, "malformed event {index}"),
            TraceError::BadString => write!(f, "truncated or non-UTF-8 string"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> io::Error {
        match e {
            TraceError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}
