//! Incremental queries over a chunk-indexed store, rendered as text.
//!
//! These are the library entry points behind the `vgv` subcommands
//! (`info`, `ranks`, `top`, `slice`), so the golden tests pin the same
//! bytes the CLI prints. Each report states — via [`QueryStats`] where a
//! query ran — how much of the store it actually decoded.

use dynprof_sim::SimTime;

use crate::error::TraceError;
use crate::store::{EventSource, QueryStats, STORE_VERSION};
use crate::{CommStats, Profile, ProfileOptions, TimelineBuilder, TimelineOptions};

/// `vgv info`: the store summary, computed from the footer index alone —
/// no chunk payload is decoded. Works on a single store or a rotated
/// segment family; salvaged sources additionally report what the
/// recovery scan kept and dropped.
pub fn info_report<S: EventSource + ?Sized>(reader: &S) -> String {
    let info = reader.source_info();
    let mut out = String::new();
    out.push_str(&format!("store of {:?}\n", info.program));
    out.push_str(&format!("  events:    {}\n", info.events));
    out.push_str(&format!("  ranks:     {}\n", info.ranks));
    out.push_str(&format!("  functions: {}\n", info.functions));
    out.push_str(&format!("  chunks:    {}\n", info.chunks));
    out.push_str(&format!("  bytes:     {}\n", info.file_bytes));
    out.push_str(&format!(
        "  time:      {} .. {} (spans end {})\n",
        info.t_min, info.t_max, info.t_end
    ));
    let checks = if info.version >= STORE_VERSION {
        "crc32 per chunk"
    } else {
        "none (v1 legacy, read-only)"
    };
    out.push_str(&format!("  format:    v{} ({checks})\n", info.version));
    if info.segments > 1 {
        out.push_str(&format!("  segments:  {}\n", info.segments));
    }
    if let Some(s) = info.salvage {
        out.push_str(&format!(
            "  salvage:   {} chunks ({} events) recovered, {} tail bytes dropped\n",
            s.chunks_recovered, s.events_recovered, s.tail_bytes_dropped
        ));
        if !s.dict_from_preamble {
            out.push_str("  salvage:   function names synthesized (no preamble)\n");
        }
    }
    out
}

/// `vgv ranks`: per-rank event counts and time bounds, from the footer
/// index alone.
pub fn ranks_report<S: EventSource + ?Sized>(reader: &S) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>12} {:>14} {:>14}\n",
        "rank", "events", "first", "last"
    ));
    for (rank, (events, t0, t1)) in reader.source_rank_summary() {
        out.push_str(&format!(
            "{:<10} {:>12} {:>14} {:>14}\n",
            format!("rank {rank}"),
            events,
            t0.to_string(),
            t1.to_string()
        ));
    }
    out
}

/// `vgv top`: the hot-function table, streamed through a
/// [`crate::ProfileBuilder`] one chunk at a time.
pub fn top_report<S: EventSource + ?Sized>(
    reader: &mut S,
    top: usize,
    opts: ProfileOptions,
) -> Result<String, TraceError> {
    let profile = Profile::from_store(reader, opts)?;
    Ok(profile.render_top(top))
}

/// `vgv slice`: render the time-line of a window, decoding only the
/// chunks that overlap it. Returns the picture and what the query cost
/// (`chunks_skipped` > 0 on any store larger than the window).
pub fn slice_report<S: EventSource + ?Sized>(
    reader: &mut S,
    t0: SimTime,
    t1: SimTime,
    rank: Option<u32>,
    width: usize,
) -> Result<(String, QueryStats), TraceError> {
    let mut b = TimelineBuilder::new(
        reader.program().to_string(),
        t0,
        t1,
        TimelineOptions {
            width,
            per_thread: false,
        },
    );
    // Enter/exit pairs split by the window edge stay unpainted; span
    // events (MpiCall/OmpThread/FuncBatch/Suspended) carry their own
    // extent and clamp to the window in the builder.
    let stats = reader.query(Some((t0, t1)), rank, &mut |ev| b.push(ev))?;
    let mut out = b.finish();
    out.push_str(&format!(
        "query: {} of {} chunks decoded, {} skipped via index, {} events\n",
        stats.chunks_decoded, stats.chunks_considered, stats.chunks_skipped, stats.events
    ));
    // Degraded reads must say what they dropped; clean reads keep the
    // PR 8 golden bytes untouched.
    if stats.chunks_bad > 0 {
        out.push_str(&format!(
            "degraded: {} corrupt chunks skipped, {} events lost\n",
            stats.chunks_bad, stats.events_lost
        ));
    }
    Ok((out, stats))
}

/// `vgv comm` on a store: the rank×rank byte matrix plus per-rank MPI
/// time, streamed one chunk at a time.
pub fn comm_report<S: EventSource + ?Sized>(reader: &mut S) -> Result<String, TraceError> {
    let stats = CommStats::from_store(reader)?;
    let mut out = stats.render_matrix();
    if out.is_empty() {
        out.push_str("(no point-to-point traffic)\n");
    }
    for (rank, t) in &stats.mpi_time {
        out.push_str(&format!("rank {rank:>3} mpi time {t}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{write_store_from_trace, StoreOptions, StoreReader};
    use dynprof_vt::{Event, Trace, VtFuncId};

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn store_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dynprof-test-query");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.vgvs", std::process::id()))
    }

    fn sample_store(name: &str, chunk_events: usize) -> StoreReader {
        let mut events = Vec::new();
        for rank in 0..4u32 {
            for i in 0..50u64 {
                let t0 = us(100 * i);
                events.push(Event::FuncEnter {
                    t: t0,
                    rank,
                    thread: 0,
                    func: VtFuncId(0),
                });
                events.push(Event::MpiCall {
                    t: t0 + us(10),
                    t_end: t0 + us(30),
                    rank,
                    op: 2,
                    peer: ((rank + 1) % 4) as i32,
                    bytes: 64,
                });
                events.push(Event::FuncExit {
                    t: t0 + us(90),
                    rank,
                    thread: 0,
                    func: VtFuncId(0),
                });
            }
        }
        let trace = Trace {
            program: "qtest".into(),
            functions: vec!["step".into()],
            events,
        };
        let path = store_path(name);
        write_store_from_trace(&trace, &path, StoreOptions { chunk_events }).unwrap();
        StoreReader::open(&path).unwrap()
    }

    #[test]
    fn info_report_summarizes_from_index() {
        let r = sample_store("info", 32);
        let s = info_report(&r);
        assert!(s.contains("store of \"qtest\""), "{s}");
        assert!(s.contains("events:    600"), "{s}");
        assert!(s.contains("ranks:     4"), "{s}");
    }

    #[test]
    fn ranks_report_lists_each_rank() {
        let r = sample_store("ranks", 32);
        let s = ranks_report(&r);
        for rank in 0..4 {
            assert!(s.contains(&format!("rank {rank}")), "{s}");
        }
        assert!(s.contains("150"), "per-rank event count: {s}");
    }

    #[test]
    fn top_report_names_hot_function() {
        let mut r = sample_store("top", 32);
        let s = top_report(&mut r, 5, ProfileOptions::default()).unwrap();
        assert!(s.contains("step"), "{s}");
    }

    #[test]
    fn slice_report_skips_chunks_and_says_so() {
        let mut r = sample_store("slice", 16);
        let (s, stats) = slice_report(&mut r, us(200), us(400), None, 40).unwrap();
        assert!(stats.chunks_skipped > 0, "index must prune: {stats:?}");
        assert!(s.contains("skipped via index"), "{s}");
        assert!(s.contains('M'), "MPI activity inside window: {s}");
    }

    #[test]
    fn slice_rank_filter_narrows_rows() {
        let mut r = sample_store("slice-rank", 16);
        let (s, _) = slice_report(&mut r, us(0), us(1000), Some(2), 40).unwrap();
        assert!(s.contains("rank   2"), "{s}");
        assert!(!s.contains("rank   1"), "{s}");
    }

    #[test]
    fn comm_report_has_matrix_and_mpi_time() {
        let mut r = sample_store("comm", 32);
        let s = comm_report(&mut r).unwrap();
        assert!(s.contains("bytes sent"), "{s}");
        assert!(s.contains("mpi time"), "{s}");
    }
}
