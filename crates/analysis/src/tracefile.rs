//! Legacy trace-file I/O: the flat `VGVT` format (paper §3.1).
//!
//! This is the load-everything path the chunk-indexed store
//! ([`crate::store`]) supersedes: [`read_trace`] materializes the whole
//! event array in memory. It is kept as the compatibility decoder behind
//! `vgv convert` and for small traces; new code should write `VGVS`
//! stores ([`crate::store::StoreWriter`]) and stream queries instead.
//!
//! Corruption is reported through the typed [`TraceError`] shared with
//! the store reader, so callers can tell a truncated copy
//! ([`TraceError::TruncatedHeader`]) from a wrong-format file
//! ([`TraceError::BadMagic`]).

use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, Bytes};
use dynprof_vt::{Event, Trace};

use crate::error::TraceError;

const MAGIC: &[u8; 4] = b"VGVT";
const VERSION: u16 = 1;

/// Write a trace to disk in the binary `VGVT` format. Returns the bytes
/// written.
pub fn write_trace(trace: &Trace, path: impl AsRef<Path>) -> Result<u64, TraceError> {
    let encoded = trace.encode();
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encoded)?;
    Ok(encoded.len() as u64)
}

/// Read a legacy `VGVT` trace from disk, with typed corruption errors.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    decode_legacy(Bytes::from(buf))
}

/// Decode the legacy format from memory (typed twin of
/// `dynprof_vt::Trace::decode`).
pub fn decode_legacy(mut buf: Bytes) -> Result<Trace, TraceError> {
    if buf.remaining() < 4 {
        return Err(TraceError::TruncatedHeader);
    }
    if &buf.split_to(4)[..] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    if buf.remaining() < 2 {
        return Err(TraceError::TruncatedHeader);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let program = take_string(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(TraceError::TruncatedHeader);
    }
    let nf = buf.get_u32_le() as usize;
    let mut functions = Vec::with_capacity(nf.min(1 << 20));
    for _ in 0..nf {
        functions.push(take_string(&mut buf)?);
    }
    if buf.remaining() < 8 {
        return Err(TraceError::TruncatedHeader);
    }
    let ne = buf.get_u64_le() as usize;
    let mut events = Vec::with_capacity(ne.min(1 << 24));
    for i in 0..ne {
        match Event::decode(&mut buf) {
            Some(e) => events.push(e),
            None => return Err(TraceError::BadEvent { index: i as u64 }),
        }
    }
    Ok(Trace {
        program,
        functions,
        events,
    })
}

/// Convert a legacy `VGVT` file into a chunk-indexed `VGVS` store — the
/// migration path for traces recorded before the store existed.
pub fn convert(
    from: impl AsRef<Path>,
    to: impl AsRef<Path>,
    opts: crate::store::StoreOptions,
) -> Result<crate::store::StoreStats, TraceError> {
    let trace = read_trace(from)?;
    crate::store::write_store_from_trace(&trace, to, opts)
}

fn take_string(buf: &mut Bytes) -> Result<String, TraceError> {
    if buf.remaining() < 4 {
        return Err(TraceError::TruncatedHeader);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(TraceError::TruncatedHeader);
    }
    let s = buf.split_to(n);
    String::from_utf8(s.to_vec()).map_err(|_| TraceError::BadString)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_sim::SimTime;
    use dynprof_vt::{Event, VtFuncId};

    fn tiny_trace() -> Trace {
        Trace {
            program: "t".into(),
            functions: vec!["f".into()],
            events: vec![
                Event::FuncEnter {
                    t: SimTime::from_micros(1),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                },
                Event::FuncExit {
                    t: SimTime::from_micros(5),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                },
            ],
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dynprof-test-traces");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.vgvt", std::process::id()))
    }

    #[test]
    fn disk_round_trip() {
        let trace = tiny_trace();
        let path = tmp("trace");
        let n = write_trace(&trace, &path).unwrap();
        assert!(n > 0);
        let back = read_trace(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_typed() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a trace").unwrap();
        assert!(matches!(read_trace(&path), Err(TraceError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_header_is_typed() {
        // Shorter than magic + version.
        let path = tmp("short");
        std::fs::write(&path, b"VGVT\x01").unwrap();
        assert!(matches!(
            read_trace(&path),
            Err(TraceError::TruncatedHeader)
        ));
        // Magic + version, but the program string is cut off.
        std::fs::write(&path, b"VGVT\x01\x00\xff\x00\x00\x00ab").unwrap();
        assert!(matches!(
            read_trace(&path),
            Err(TraceError::TruncatedHeader)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsupported_version_is_typed() {
        let path = tmp("version");
        std::fs::write(&path, b"VGVT\xff\xff").unwrap();
        assert!(matches!(
            read_trace(&path),
            Err(TraceError::UnsupportedVersion(0xffff))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_event_stream_is_typed() {
        let trace = tiny_trace();
        let encoded = trace.encode();
        let path = tmp("cut");
        // Drop the last 5 bytes: the final event can't decode.
        std::fs::write(&path, &encoded[..encoded.len() - 5]).unwrap();
        assert!(matches!(
            read_trace(&path),
            Err(TraceError::BadEvent { index: 1 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io() {
        assert!(matches!(
            read_trace("/nonexistent/definitely/not/here.vgvt"),
            Err(TraceError::Io(_))
        ));
    }

    #[test]
    fn typed_decode_agrees_with_vt_decode() {
        let trace = tiny_trace();
        let encoded = trace.encode();
        let ours = decode_legacy(encoded.clone()).unwrap();
        let theirs = Trace::decode(encoded).unwrap();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn convert_produces_queryable_store() {
        let trace = tiny_trace();
        let src = tmp("convert-src");
        write_trace(&trace, &src).unwrap();
        let dst = tmp("convert-dst");
        let stats = convert(&src, &dst, crate::store::StoreOptions::default()).unwrap();
        assert_eq!(stats.events, 2);
        let mut r = crate::store::StoreReader::open(&dst).unwrap();
        assert_eq!(r.read_all().unwrap(), trace);
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&dst).ok();
    }
}
