//! Trace-file I/O: the postmortem hand-off between the instrumented run
//! and the analysis GUI ("all data collected at run-time is ... written to
//! a trace file", paper §3.1).

use std::io::{self, Read, Write};
use std::path::Path;

use bytes::Bytes;
use dynprof_vt::Trace;

/// Write a trace to disk in the binary `VGVT` format.
pub fn write_trace(trace: &Trace, path: impl AsRef<Path>) -> io::Result<u64> {
    let encoded = trace.encode();
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encoded)?;
    Ok(encoded.len() as u64)
}

/// Read a trace from disk.
pub fn read_trace(path: impl AsRef<Path>) -> io::Result<Trace> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    Trace::decode(Bytes::from(buf)).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_sim::SimTime;
    use dynprof_vt::{Event, VtFuncId};

    #[test]
    fn disk_round_trip() {
        let trace = Trace {
            program: "t".into(),
            functions: vec!["f".into()],
            events: vec![Event::FuncEnter {
                t: SimTime::from_micros(1),
                rank: 0,
                thread: 0,
                func: VtFuncId(0),
            }],
        };
        let dir = std::env::temp_dir().join("dynprof-test-traces");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.vgvt", std::process::id()));
        let n = write_trace(&trace, &path).unwrap();
        assert!(n > 0);
        let back = read_trace(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_is_an_error() {
        let dir = std::env::temp_dir().join("dynprof-test-traces");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("garbage-{}.vgvt", std::process::id()));
        std::fs::write(&path, b"not a trace").unwrap();
        assert!(read_trace(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
