//! Postmortem profiles from traces.
//!
//! The VGV GUI's statistics views, recomputed from the trace data:
//! per-function inclusive/exclusive time and call counts, per rank and
//! aggregated, plus the load-imbalance metrics instrumentation exists to
//! expose (paper §1).
//!
//! Profiles are accumulated by [`ProfileBuilder`], which consumes events
//! one at a time — feed it a whole [`Trace`] ([`Profile::from_trace`]) or
//! stream a chunk-indexed store through it ([`Profile::from_store`])
//! without ever materializing the event array.

use std::collections::BTreeMap;

use dynprof_sim::SimTime;
use dynprof_vt::{Event, Trace, VtFuncId};

use crate::error::TraceError;
use crate::store::EventSource;

/// Aggregated statistics of one function on one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FuncProfile {
    /// Completed calls.
    pub count: u64,
    /// Inclusive time.
    pub incl: SimTime,
    /// Exclusive time.
    pub excl: SimTime,
}

/// Profile computation options.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfileOptions {
    /// Disregard instrumenter-initiated suspension periods when computing
    /// function times — the paper's §5.1 requirement: "analysis tools
    /// would need to be modified to likewise disregard these periods of
    /// inactivity when calculating the aggregate runtime of functions."
    pub exclude_suspensions: bool,
}

/// A full profile computed from a [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// `(rank, func)` → statistics.
    pub per_rank: BTreeMap<(u32, VtFuncId), FuncProfile>,
    /// Function names (from the trace dictionary).
    pub functions: Vec<String>,
    /// Ranks seen.
    pub ranks: Vec<u32>,
}

/// An open call frame: (func, entry time, time attributed to callees).
type Frame = (VtFuncId, SimTime, SimTime);

/// Streaming profile accumulator: feed events in each rank's causal
/// order via [`ProfileBuilder::push`], then [`ProfileBuilder::finish`].
/// Memory is `O(functions × ranks + open frames)` — independent of
/// trace length.
///
/// To honor [`ProfileOptions::exclude_suspensions`], install the
/// per-rank suspension windows (a cheap pre-pass) with
/// [`ProfileBuilder::set_suspensions`] before pushing events.
pub struct ProfileBuilder {
    opts: ProfileOptions,
    suspensions: BTreeMap<u32, Vec<(SimTime, SimTime)>>,
    per_rank: BTreeMap<(u32, VtFuncId), FuncProfile>,
    /// Open frames per (rank, thread).
    stacks: BTreeMap<(u32, u16), Vec<Frame>>,
    ranks: Vec<u32>,
    functions: Vec<String>,
}

impl ProfileBuilder {
    /// Start a profile over the given function dictionary.
    pub fn new(functions: Vec<String>, opts: ProfileOptions) -> ProfileBuilder {
        ProfileBuilder {
            opts,
            suspensions: BTreeMap::new(),
            per_rank: BTreeMap::new(),
            stacks: BTreeMap::new(),
            ranks: Vec::new(),
            functions,
        }
    }

    /// Install per-rank suspension windows (sorted, disjoint) to discount
    /// when [`ProfileOptions::exclude_suspensions`] is set.
    pub fn set_suspensions(&mut self, windows: BTreeMap<u32, Vec<(SimTime, SimTime)>>) {
        self.suspensions = windows;
    }

    fn discount(&self, rank: u32, a: SimTime, b: SimTime) -> SimTime {
        if !self.opts.exclude_suspensions {
            return SimTime::ZERO;
        }
        match self.suspensions.get(&rank) {
            Some(ws) => overlap_with(a, b, ws),
            None => SimTime::ZERO,
        }
    }

    /// Account one event.
    pub fn push(&mut self, ev: &Event) {
        let rank = ev.rank();
        if !self.ranks.contains(&rank) {
            self.ranks.push(rank);
        }
        match *ev {
            Event::FuncEnter {
                t,
                rank,
                thread,
                func,
            } => {
                self.stacks
                    .entry((rank, thread))
                    .or_default()
                    .push((func, t, SimTime::ZERO));
            }
            Event::FuncExit {
                t,
                rank,
                thread,
                func,
            } => {
                let popped = self.stacks.get_mut(&(rank, thread)).and_then(Vec::pop);
                if let Some((f, t0, child)) = popped {
                    debug_assert_eq!(f, func, "trace stack mismatch");
                    let span = t
                        .saturating_sub(t0)
                        .saturating_sub(self.discount(rank, t0, t));
                    let e = self.per_rank.entry((rank, func)).or_default();
                    e.count += 1;
                    e.incl += span;
                    e.excl += span.saturating_sub(child);
                    if let Some(parent) = self
                        .stacks
                        .get_mut(&(rank, thread))
                        .and_then(|s| s.last_mut())
                    {
                        parent.2 += span;
                    }
                }
            }
            // A suppressed-count record carries exactly the cumulative
            // wall time of its elided entry/exit pairs, so it is accounted
            // like a batch: profiles from a suppressed trace match the
            // unsuppressed ones in inclusive/exclusive time.
            Event::FuncBatch {
                t,
                rank,
                thread,
                func,
                count,
                span,
            }
            | Event::FuncSuppressed {
                t,
                rank,
                thread,
                func,
                count,
                span,
            } => {
                let span = span.saturating_sub(self.discount(rank, t, t + span));
                let e = self.per_rank.entry((rank, func)).or_default();
                e.count += count;
                e.incl += span;
                e.excl += span;
                if let Some(parent) = self.stacks.entry((rank, thread)).or_default().last_mut() {
                    parent.2 += span;
                }
            }
            _ => {}
        }
    }

    /// Finish: sort the rank list and produce the [`Profile`].
    pub fn finish(mut self) -> Profile {
        self.ranks.sort_unstable();
        Profile {
            per_rank: self.per_rank,
            functions: self.functions,
            ranks: self.ranks,
        }
    }
}

impl Profile {
    /// Compute the profile by replaying the trace's per-(rank, thread)
    /// call stacks. `FuncBatch` events contribute their aggregate span.
    pub fn from_trace(trace: &Trace) -> Profile {
        Profile::from_trace_opts(trace, ProfileOptions::default())
    }

    /// As [`Profile::from_trace`], with options.
    pub fn from_trace_opts(trace: &Trace, opts: ProfileOptions) -> Profile {
        let mut b = ProfileBuilder::new(trace.functions.clone(), opts);
        if opts.exclude_suspensions {
            b.set_suspensions(suspension_windows(trace));
        }
        for ev in &trace.events {
            b.push(ev);
        }
        b.finish()
    }

    /// Stream a chunk-indexed store through a [`ProfileBuilder`],
    /// rank by rank, decoding one chunk at a time. When
    /// [`ProfileOptions::exclude_suspensions`] is set a pre-pass collects
    /// the suspension windows first (still `O(chunk)` memory).
    pub fn from_store<S: EventSource + ?Sized>(
        reader: &mut S,
        opts: ProfileOptions,
    ) -> Result<Profile, TraceError> {
        let mut b = ProfileBuilder::new(reader.functions().to_vec(), opts);
        if opts.exclude_suspensions {
            let mut windows: BTreeMap<u32, Vec<(SimTime, SimTime)>> = BTreeMap::new();
            reader.query(None, None, &mut |ev| {
                if let Event::Suspended { t, t_end, rank } = *ev {
                    windows.entry(rank).or_default().push((t, t_end));
                }
            })?;
            for ws in windows.values_mut() {
                ws.sort_unstable();
            }
            b.set_suspensions(windows);
        }
        for rank in reader.source_ranks() {
            reader.rank_events(rank, &mut |ev| b.push(ev))?;
        }
        Ok(b.finish())
    }

    /// Function name lookup.
    pub fn name(&self, f: VtFuncId) -> &str {
        self.functions
            .get(f.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Aggregate a function's statistics across ranks.
    pub fn aggregate(&self, f: VtFuncId) -> FuncProfile {
        let mut total = FuncProfile::default();
        for ((_, func), p) in &self.per_rank {
            if *func == f {
                total.count += p.count;
                total.incl += p.incl;
                total.excl += p.excl;
            }
        }
        total
    }

    /// All functions with any recorded activity, by descending aggregate
    /// inclusive time.
    pub fn hot_functions(&self) -> Vec<(VtFuncId, FuncProfile)> {
        let mut by_func: BTreeMap<VtFuncId, FuncProfile> = BTreeMap::new();
        for ((_, func), p) in &self.per_rank {
            let e = by_func.entry(*func).or_default();
            e.count += p.count;
            e.incl += p.incl;
            e.excl += p.excl;
        }
        let mut v: Vec<_> = by_func.into_iter().collect();
        v.sort_by(|a, b| b.1.incl.cmp(&a.1.incl).then(a.0.cmp(&b.0)));
        v
    }

    /// Load imbalance of `f` across ranks: `max(incl) / mean(incl)`
    /// (1.0 = perfectly balanced; 0.0 if never called).
    pub fn imbalance(&self, f: VtFuncId) -> f64 {
        let per: Vec<f64> = self
            .ranks
            .iter()
            .map(|r| {
                self.per_rank
                    .get(&(*r, f))
                    .map_or(0.0, |p| p.incl.as_secs_f64())
            })
            .collect();
        if per.is_empty() {
            return 0.0;
        }
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        per.iter().cloned().fold(0.0, f64::max) / mean
    }

    /// Render the top-`n` functions as a text table (the GUI's statistics
    /// pane).
    pub fn render_top(&self, n: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>12} {:>14} {:>14} {:>8}\n",
            "function", "calls", "incl", "excl", "imbal"
        ));
        for (f, p) in self.hot_functions().into_iter().take(n) {
            out.push_str(&format!(
                "{:<40} {:>12} {:>14} {:>14} {:>8.2}\n",
                self.name(f),
                p.count,
                p.incl.to_string(),
                p.excl.to_string(),
                self.imbalance(f)
            ));
        }
        out
    }
}

/// Per-rank instrumenter-suspension windows found in a trace.
pub fn suspension_windows(trace: &Trace) -> BTreeMap<u32, Vec<(SimTime, SimTime)>> {
    let mut out: BTreeMap<u32, Vec<(SimTime, SimTime)>> = BTreeMap::new();
    for ev in &trace.events {
        if let Event::Suspended { t, t_end, rank } = *ev {
            out.entry(rank).or_default().push((t, t_end));
        }
    }
    for ws in out.values_mut() {
        ws.sort_unstable();
    }
    out
}

/// Total overlap of `[a, b]` with the (sorted, disjoint) windows.
fn overlap_with(a: SimTime, b: SimTime, windows: &[(SimTime, SimTime)]) -> SimTime {
    let mut total = SimTime::ZERO;
    for &(w0, w1) in windows {
        if w0 >= b {
            break;
        }
        let lo = a.max(w0);
        let hi = b.min(w1);
        if hi > lo {
            total += hi - lo;
        }
    }
    total
}

/// Trace volume statistics: the paper's motivating data-rate numbers
/// ("performance data gathering has been estimated to grow at ~2 MB/s").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceVolume {
    /// Modelled bytes in the trace.
    pub bytes: u64,
    /// Trace duration (first to last event).
    pub duration: SimTime,
    /// Bytes per second of execution, across all ranks.
    pub bytes_per_second: f64,
}

/// Compute trace-volume statistics (with `event_bytes` per plain event).
pub fn trace_volume(trace: &Trace, event_bytes: usize) -> TraceVolume {
    let bytes = trace.modelled_bytes(event_bytes);
    let duration = match (trace.events.first(), trace.events.last()) {
        (Some(a), Some(b)) => b.time().saturating_sub(a.time()),
        _ => SimTime::ZERO,
    };
    let secs = duration.as_secs_f64();
    TraceVolume {
        bytes,
        duration,
        bytes_per_second: if secs > 0.0 { bytes as f64 / secs } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> Trace {
        let us = SimTime::from_micros;
        Trace {
            program: "toy".into(),
            functions: vec!["main".into(), "work".into()],
            events: vec![
                Event::FuncEnter {
                    t: us(0),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                },
                Event::FuncEnter {
                    t: us(10),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(1),
                },
                Event::FuncExit {
                    t: us(40),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(1),
                },
                Event::FuncExit {
                    t: us(50),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                },
                Event::FuncEnter {
                    t: us(0),
                    rank: 1,
                    thread: 0,
                    func: VtFuncId(0),
                },
                Event::FuncBatch {
                    t: us(5),
                    rank: 1,
                    thread: 0,
                    func: VtFuncId(1),
                    count: 100,
                    span: us(60),
                },
                Event::FuncExit {
                    t: us(70),
                    rank: 1,
                    thread: 0,
                    func: VtFuncId(0),
                },
            ],
        }
    }

    #[test]
    fn nested_calls_split_incl_excl() {
        let p = Profile::from_trace(&toy_trace());
        let main0 = p.per_rank[&(0, VtFuncId(0))];
        let work0 = p.per_rank[&(0, VtFuncId(1))];
        assert_eq!(main0.count, 1);
        assert_eq!(main0.incl, SimTime::from_micros(50));
        assert_eq!(main0.excl, SimTime::from_micros(20));
        assert_eq!(work0.incl, SimTime::from_micros(30));
        assert_eq!(work0.excl, SimTime::from_micros(30));
    }

    #[test]
    fn batches_count_fully_and_charge_parents() {
        let p = Profile::from_trace(&toy_trace());
        let work1 = p.per_rank[&(1, VtFuncId(1))];
        assert_eq!(work1.count, 100);
        assert_eq!(work1.incl, SimTime::from_micros(60));
        let main1 = p.per_rank[&(1, VtFuncId(0))];
        assert_eq!(main1.excl, SimTime::from_micros(10));
    }

    #[test]
    fn hot_functions_sorted_by_inclusive() {
        let p = Profile::from_trace(&toy_trace());
        let hot = p.hot_functions();
        assert_eq!(p.name(hot[0].0), "main"); // 50+70us total
        assert_eq!(hot[0].1.count, 2);
    }

    #[test]
    fn imbalance_detects_skew() {
        let p = Profile::from_trace(&toy_trace());
        // work: rank0 30us, rank1 60us -> max/mean = 60/45.
        let f = VtFuncId(1);
        assert!((p.imbalance(f) - 60.0 / 45.0).abs() < 1e-9);
    }

    #[test]
    fn volume_counts_batches() {
        let v = trace_volume(&toy_trace(), 24);
        // 6 plain events + batch of 100 pairs.
        assert_eq!(v.bytes, 6 * 24 + 200 * 24);
        assert_eq!(v.duration, SimTime::from_micros(70));
        assert!(v.bytes_per_second > 0.0);
    }

    #[test]
    fn suspension_exclusion_discounts_overlap() {
        // work: 0..100us with a 20..50us suspension inside.
        let us = SimTime::from_micros;
        let trace = Trace {
            program: "t".into(),
            functions: vec!["work".into()],
            events: vec![
                Event::FuncEnter {
                    t: us(0),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                },
                Event::Suspended {
                    t: us(20),
                    t_end: us(50),
                    rank: 0,
                },
                Event::FuncExit {
                    t: us(100),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                },
            ],
        };
        let plain = Profile::from_trace(&trace);
        assert_eq!(plain.per_rank[&(0, VtFuncId(0))].incl, us(100));
        let fair = Profile::from_trace_opts(
            &trace,
            ProfileOptions {
                exclude_suspensions: true,
            },
        );
        assert_eq!(fair.per_rank[&(0, VtFuncId(0))].incl, us(70));
        // Windows are reported per rank.
        let ws = suspension_windows(&trace);
        assert_eq!(ws[&0], vec![(us(20), us(50))]);
    }

    #[test]
    fn suspension_exclusion_clips_partial_overlap() {
        let us = SimTime::from_micros;
        let trace = Trace {
            program: "t".into(),
            functions: vec!["w".into()],
            events: vec![
                // Batch spanning 10..40; suspension 30..60 overlaps 10us.
                Event::Suspended {
                    t: us(30),
                    t_end: us(60),
                    rank: 0,
                },
                Event::FuncBatch {
                    t: us(10),
                    rank: 0,
                    thread: 0,
                    func: VtFuncId(0),
                    count: 5,
                    span: us(30),
                },
            ],
        };
        let fair = Profile::from_trace_opts(
            &trace,
            ProfileOptions {
                exclude_suspensions: true,
            },
        );
        assert_eq!(fair.per_rank[&(0, VtFuncId(0))].incl, us(20));
        // Other ranks are unaffected.
        let trace2 = Trace {
            events: trace
                .events
                .iter()
                .cloned()
                .map(|e| match e {
                    Event::FuncBatch {
                        t,
                        thread,
                        func,
                        count,
                        span,
                        ..
                    } => Event::FuncBatch {
                        t,
                        rank: 1,
                        thread,
                        func,
                        count,
                        span,
                    },
                    other => other,
                })
                .collect(),
            ..trace.clone()
        };
        let fair2 = Profile::from_trace_opts(
            &trace2,
            ProfileOptions {
                exclude_suspensions: true,
            },
        );
        assert_eq!(fair2.per_rank[&(1, VtFuncId(0))].incl, us(30));
    }

    #[test]
    fn render_top_mentions_functions() {
        let p = Profile::from_trace(&toy_trace());
        let s = p.render_top(5);
        assert!(s.contains("main"));
        assert!(s.contains("work"));
    }
}
