//! Communication statistics from MPI trace events — the VGV GUI's
//! message-statistics views.

use std::collections::BTreeMap;

use dynprof_sim::SimTime;
use dynprof_vt::{op_from_code, Event, Trace};

/// Point-to-point traffic between rank pairs, plus per-rank MPI time.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    /// `(sender, receiver)` → total bytes (from the send side's events).
    pub bytes: BTreeMap<(u32, u32), u64>,
    /// `(sender, receiver)` → message count.
    pub messages: BTreeMap<(u32, u32), u64>,
    /// Per-rank total time inside MPI calls.
    pub mpi_time: BTreeMap<u32, SimTime>,
    /// Per-rank count of collective operations.
    pub collectives: BTreeMap<u32, u64>,
}

impl CommStats {
    /// Account one event. Only `MpiCall` contributes; order is
    /// irrelevant, so chunks can be streamed in any order.
    pub fn push(&mut self, ev: &Event) {
        if let Event::MpiCall {
            t,
            t_end,
            rank,
            op,
            peer,
            bytes,
        } = *ev
        {
            *self.mpi_time.entry(rank).or_insert(SimTime::ZERO) += t_end.saturating_sub(t);
            match op_from_code(op) {
                Some(dynprof_mpi::MpiOp::Send) if peer >= 0 => {
                    *self.bytes.entry((rank, peer as u32)).or_insert(0) += bytes;
                    *self.messages.entry((rank, peer as u32)).or_insert(0) += 1;
                }
                Some(
                    dynprof_mpi::MpiOp::Barrier
                    | dynprof_mpi::MpiOp::Bcast
                    | dynprof_mpi::MpiOp::Reduce
                    | dynprof_mpi::MpiOp::Allreduce
                    | dynprof_mpi::MpiOp::Gather
                    | dynprof_mpi::MpiOp::Allgather
                    | dynprof_mpi::MpiOp::Alltoall
                    | dynprof_mpi::MpiOp::Scan,
                ) => {
                    *self.collectives.entry(rank).or_insert(0) += 1;
                }
                _ => {}
            }
        }
    }

    /// Compute the statistics from a trace's `MpiCall` events.
    pub fn from_trace(trace: &Trace) -> CommStats {
        let mut out = CommStats::default();
        for ev in &trace.events {
            out.push(ev);
        }
        out
    }

    /// Compute the statistics from a chunk-indexed store, decoding one
    /// chunk at a time.
    pub fn from_store<S: crate::store::EventSource + ?Sized>(
        reader: &mut S,
    ) -> Result<CommStats, crate::TraceError> {
        let mut out = CommStats::default();
        reader.query(None, None, &mut |ev| out.push(ev))?;
        Ok(out)
    }

    /// Render the rank×rank byte matrix as text (empty string if no
    /// point-to-point traffic was traced).
    pub fn render_matrix(&self) -> String {
        let ranks: Vec<u32> = {
            let mut r: Vec<u32> = self.bytes.keys().flat_map(|&(a, b)| [a, b]).collect();
            r.sort_unstable();
            r.dedup();
            r
        };
        if ranks.is_empty() {
            return String::new();
        }
        let mut out = String::from("bytes sent (row = sender, col = receiver)\n");
        out.push_str("        ");
        for &c in &ranks {
            out.push_str(&format!("{c:>12}"));
        }
        out.push('\n');
        for &r in &ranks {
            out.push_str(&format!("rank {r:>3}"));
            for &c in &ranks {
                let v = self.bytes.get(&(r, c)).copied().unwrap_or(0);
                out.push_str(&format!("{v:>12}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_sim::SimTime;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn trace_with_traffic() -> Trace {
        Trace {
            program: "t".into(),
            functions: vec![],
            events: vec![
                Event::MpiCall {
                    t: us(0),
                    t_end: us(5),
                    rank: 0,
                    op: 2,
                    peer: 1,
                    bytes: 100,
                },
                Event::MpiCall {
                    t: us(5),
                    t_end: us(9),
                    rank: 0,
                    op: 2,
                    peer: 1,
                    bytes: 50,
                },
                Event::MpiCall {
                    t: us(0),
                    t_end: us(9),
                    rank: 1,
                    op: 3,
                    peer: 0,
                    bytes: 150,
                },
                Event::MpiCall {
                    t: us(10),
                    t_end: us(20),
                    rank: 0,
                    op: 4,
                    peer: -1,
                    bytes: 0,
                },
                Event::MpiCall {
                    t: us(10),
                    t_end: us(20),
                    rank: 1,
                    op: 4,
                    peer: -1,
                    bytes: 0,
                },
            ],
        }
    }

    #[test]
    fn sends_accumulate_by_pair() {
        let s = CommStats::from_trace(&trace_with_traffic());
        assert_eq!(s.bytes[&(0, 1)], 150);
        assert_eq!(s.messages[&(0, 1)], 2);
        assert!(
            !s.bytes.contains_key(&(1, 0)),
            "recv side not double-counted"
        );
    }

    #[test]
    fn mpi_time_and_collectives_counted() {
        let s = CommStats::from_trace(&trace_with_traffic());
        assert_eq!(s.mpi_time[&0], us(19));
        assert_eq!(s.mpi_time[&1], us(19));
        assert_eq!(s.collectives[&0], 1);
        assert_eq!(s.collectives[&1], 1);
    }

    #[test]
    fn matrix_renders_senders_and_receivers() {
        let s = CommStats::from_trace(&trace_with_traffic());
        let m = s.render_matrix();
        assert!(m.contains("rank   0"));
        assert!(m.contains("150"));
        assert_eq!(CommStats::default().render_matrix(), "");
    }
}
