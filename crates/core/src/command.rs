//! The dynprof command language (paper Table 1).
//!
//! ```text
//! Command      Shortcut  Description
//! help         h         Displays a help message
//! insert ...   i         Inserts instrumentation into one or more functions.
//! remove ...   r         Removes instrumentation from one or more functions.
//! insert-file  if        Inserts instrumentation into all of the functions
//!                        listed in the provided file or files.
//! remove-file  rf        Removes instrumentation from all of the functions
//!                        listed in the provided file or files.
//! start        s         Starts execution of the target application.
//! quit         q         Detaches the instrumenter from the application.
//! wait         w         Causes the tool to wait before executing the next
//!                        command.
//! ```

use dynprof_sim::SimTime;

/// One dynprof command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `help` / `h`.
    Help,
    /// `insert f...` / `i`: instrument the named functions.
    Insert(Vec<String>),
    /// `remove f...` / `r`: de-instrument the named functions.
    Remove(Vec<String>),
    /// `insert-file f...` / `if`: instrument every function listed in the
    /// named function-list files.
    InsertFile(Vec<String>),
    /// `remove-file f...` / `rf`.
    RemoveFile(Vec<String>),
    /// `start` / `s`: release the suspended target.
    Start,
    /// `quit` / `q`: detach, leaving active instrumentation in place.
    Quit,
    /// `wait [seconds]` / `w`: pause script execution (default 1 s).
    Wait(SimTime),
}

/// A command-line parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}

/// The `help` text (Table 1).
pub const HELP_TEXT: &str = "\
dynprof commands:
  help         (h)   Displays a help message
  insert ...   (i)   Inserts instrumentation into one or more functions.
  remove ...   (r)   Removes instrumentation from one or more functions.
  insert-file  (if)  Inserts instrumentation into all of the functions
                     listed in the provided file or files.
  remove-file  (rf)  Removes instrumentation from all of the functions
                     listed in the provided file or files.
  start        (s)   Starts execution of the target application.
  quit         (q)   Detaches the instrumenter from the application.
  wait [sec]   (w)   Causes the tool to wait before executing the next
                     command.
";

impl Command {
    /// Parse one command line. Blank lines and `#` comments yield `None`.
    pub fn parse(line: &str) -> Result<Option<Command>, ParseError> {
        let stripped = line.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            return Ok(None);
        }
        let mut tokens = stripped.split_whitespace();
        let word = tokens.next().expect("nonempty");
        let args: Vec<String> = tokens.map(str::to_string).collect();
        let need_args = |cmd: &str| -> Result<Vec<String>, ParseError> {
            if args.is_empty() {
                Err(ParseError {
                    message: format!("{cmd} requires at least one argument"),
                })
            } else {
                Ok(args.clone())
            }
        };
        let no_args = |cmd: &str| -> Result<(), ParseError> {
            if args.is_empty() {
                Ok(())
            } else {
                Err(ParseError {
                    message: format!("{cmd} takes no arguments"),
                })
            }
        };
        let cmd = match word.to_ascii_lowercase().as_str() {
            "help" | "h" => {
                no_args("help")?;
                Command::Help
            }
            "insert" | "i" => Command::Insert(need_args("insert")?),
            "remove" | "r" => Command::Remove(need_args("remove")?),
            "insert-file" | "if" => Command::InsertFile(need_args("insert-file")?),
            "remove-file" | "rf" => Command::RemoveFile(need_args("remove-file")?),
            "start" | "s" => {
                no_args("start")?;
                Command::Start
            }
            "quit" | "q" => {
                no_args("quit")?;
                Command::Quit
            }
            "wait" | "w" => {
                let secs = match args.as_slice() {
                    [] => 1.0,
                    [v] => v.parse::<f64>().map_err(|_| ParseError {
                        message: format!("wait: bad duration {v:?}"),
                    })?,
                    _ => {
                        return Err(ParseError {
                            message: "wait takes at most one duration".into(),
                        })
                    }
                };
                if secs < 0.0 || !secs.is_finite() {
                    return Err(ParseError {
                        message: format!("wait: duration must be non-negative, got {secs}"),
                    });
                }
                Command::Wait(SimTime::from_secs_f64(secs))
            }
            other => {
                return Err(ParseError {
                    message: format!("unknown command {other:?} (try `help`)"),
                })
            }
        };
        Ok(Some(cmd))
    }

    /// Parse a whole script (one command per line).
    pub fn parse_script(text: &str) -> Result<Vec<Command>, ParseError> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            match Command::parse(line) {
                Ok(Some(c)) => out.push(c),
                Ok(None) => {}
                Err(e) => {
                    return Err(ParseError {
                        message: format!("line {}: {}", i + 1, e.message),
                    })
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_long_and_short_forms_agree() {
        let pairs = [("help", "h"), ("start", "s"), ("quit", "q")];
        for (long, short) in pairs {
            assert_eq!(
                Command::parse(long).unwrap(),
                Command::parse(short).unwrap(),
                "{long}/{short}"
            );
        }
        assert_eq!(
            Command::parse("insert f g").unwrap(),
            Command::parse("i f g").unwrap()
        );
        assert_eq!(
            Command::parse("remove f").unwrap(),
            Command::parse("r f").unwrap()
        );
        assert_eq!(
            Command::parse("insert-file funcs.txt").unwrap(),
            Command::parse("if funcs.txt").unwrap()
        );
        assert_eq!(
            Command::parse("remove-file funcs.txt").unwrap(),
            Command::parse("rf funcs.txt").unwrap()
        );
        assert_eq!(
            Command::parse("wait 2.5").unwrap(),
            Command::parse("w 2.5").unwrap()
        );
    }

    #[test]
    fn insert_carries_function_names() {
        assert_eq!(
            Command::parse("insert sweep source flux_err").unwrap(),
            Some(Command::Insert(vec![
                "sweep".into(),
                "source".into(),
                "flux_err".into()
            ]))
        );
    }

    #[test]
    fn wait_defaults_to_one_second() {
        assert_eq!(
            Command::parse("wait").unwrap(),
            Some(Command::Wait(SimTime::from_secs(1)))
        );
        assert_eq!(
            Command::parse("w 0.25").unwrap(),
            Some(Command::Wait(SimTime::from_millis(250)))
        );
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        assert_eq!(Command::parse("").unwrap(), None);
        assert_eq!(Command::parse("   # just a comment").unwrap(), None);
        assert_eq!(
            Command::parse("start # begin now").unwrap(),
            Some(Command::Start)
        );
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(Command::parse("insert")
            .unwrap_err()
            .message
            .contains("argument"));
        assert!(Command::parse("frobnicate")
            .unwrap_err()
            .message
            .contains("unknown"));
        assert!(Command::parse("wait -3")
            .unwrap_err()
            .message
            .contains("non-negative"));
        assert!(Command::parse("wait a b")
            .unwrap_err()
            .message
            .contains("at most one"));
        assert!(Command::parse("start now")
            .unwrap_err()
            .message
            .contains("no arguments"));
    }

    #[test]
    fn script_parsing_reports_line_numbers() {
        let script = "\
# instrument the solver then run
insert-file solver.txt
start
wait 5
quit
";
        let cmds = Command::parse_script(script).unwrap();
        assert_eq!(cmds.len(), 4);
        assert_eq!(cmds[0], Command::InsertFile(vec!["solver.txt".into()]));
        assert_eq!(cmds[3], Command::Quit);

        let err = Command::parse_script("start\nbogus\n").unwrap_err();
        assert!(err.message.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn help_text_mentions_every_command() {
        for c in [
            "help",
            "insert",
            "remove",
            "insert-file",
            "remove-file",
            "start",
            "quit",
            "wait",
        ] {
            assert!(HELP_TEXT.contains(c), "{c} missing from help");
        }
    }
}
