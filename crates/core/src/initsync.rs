//! The MPI_Init / VT_init deferral protocol (paper §3.4, Fig 6).
//!
//! Instrumentation cannot be inserted before `MPI_Init` completes on every
//! rank (the Vampirtrace library initializes inside `MPI_Init`, so calling
//! `VT` functions earlier is unsafe). dynprof therefore inserts, at load
//! time, a callback snippet at the end of `MPI_Init`:
//!
//! ```c
//! MPI_Barrier(MPI_COMM_WORLD);   // synchronize after everyone's MPI_Init
//! DPCL_callback();               // tell the instrumenter it is safe
//! DYNVT_spin();                  // wait for the instrumenter's release
//! MPI_Barrier(MPI_COMM_WORLD);   // re-synchronize (releases are skewed)
//! ```
//!
//! For OpenMP applications the snippet is inserted at the end of
//! `VT_init` (statically placed at the start of `main` by the Guide
//! compiler); since that point is single-threaded, no barriers are needed.

use std::sync::Arc;

use dynprof_dpcl::{CallbackSender, DpclClient};
use dynprof_mpi::{Comm, MpiHooks};
use dynprof_sim::sync::SimGate;
use dynprof_sim::{Proc, SimTime};

/// Callback tag used by the init snippet.
pub const INIT_CALLBACK_TAG: u64 = 0xD1;

/// Shared state of the init-deferral protocol: the callback path to the
/// instrumenter and the per-process spin-release gates.
pub struct InitSync {
    sender: CallbackSender,
    gates: Vec<Arc<SimGate>>,
}

impl InitSync {
    /// Protocol state for `processes` target processes, calling back to
    /// `client`.
    pub fn new(client: &DpclClient, processes: usize) -> Arc<InitSync> {
        Arc::new(InitSync {
            sender: client.callback_sender(),
            gates: (0..processes).map(|_| Arc::new(SimGate::new())).collect(),
        })
    }

    /// The MPI hook realizing Fig 6 (install at job launch, *after* the
    /// Vampirtrace hook so VT is initialized when the snippet runs).
    pub fn mpi_hook(self: &Arc<Self>) -> Arc<InitSyncHook> {
        Arc::new(InitSyncHook {
            sync: Arc::clone(self),
        })
    }

    /// The OpenMP-application variant: run at the end of `VT_init`
    /// (paper: callback + spin wait, no barriers — single-threaded point).
    pub fn omp_init(&self, p: &Proc) {
        self.sender.send(p, INIT_CALLBACK_TAG, 0);
        self.gates[0].wait_open(p);
    }

    /// Instrumenter side: block until all `n` processes have reached the
    /// callback; returns the reporting ranks.
    pub fn await_ready(&self, client: &DpclClient, p: &Proc, n: usize) -> Vec<u64> {
        client.recv_callbacks(p, INIT_CALLBACK_TAG, n)
    }

    /// Instrumenter side: reset the spin variable in every process. Each
    /// release is a separate daemon write and "may incur differing delays
    /// for each target process" — hence the second barrier in the snippet.
    pub fn release_all(&self, p: &Proc) {
        let d = p.machine().daemon;
        for gate in &self.gates {
            p.advance(dynprof_dpcl::CLIENT_SEND_COST);
            gate.open(p, d.base_delay + p.jitter(d.jitter));
        }
    }

    /// Number of processes participating.
    pub fn processes(&self) -> usize {
        self.gates.len()
    }
}

/// [`MpiHooks`] implementation carrying the Fig-6 snippet.
pub struct InitSyncHook {
    sync: Arc<InitSync>,
}

impl MpiHooks for InitSyncHook {
    fn on_init(&self, p: &Proc, comm: &Comm) {
        // begin dynamically inserted code (Fig 6):
        comm.barrier(p);
        self.sync
            .sender
            .send(p, INIT_CALLBACK_TAG, comm.rank() as u64);
        // DYNVT_spin(): poll the spin variable. The gate wait models the
        // blocking; a small charge models the polling loop's wake-up.
        self.sync.gates[comm.rank()].wait_open(p);
        p.advance(SimTime::from_micros(1));
        comm.barrier(p);
        // end dynamically inserted code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_dpcl::DpclSystem;
    use dynprof_mpi::{launch, JobSpec};
    use dynprof_sim::{Machine, Sim};
    use parking_lot::Mutex;

    /// The full Fig-6 dance: ranks block in MPI_Init until the
    /// instrumenter has heard from everyone and released the spins; the
    /// second barrier re-aligns the skewed releases.
    #[test]
    fn ranks_leave_init_together_after_release() {
        let sim = Sim::virtual_time(Machine::test_machine(), 21);
        let system = DpclSystem::new(["u"]);
        let exits = Arc::new(Mutex::new(Vec::new()));

        // The client lives on the instrumenter; publish InitSync for the job.
        let client = Arc::new(DpclClient::new(system, "u"));
        let sync = InitSync::new(&client, 4);

        let (s2, e2) = (Arc::clone(&sync), Arc::clone(&exits));
        launch(
            &sim,
            JobSpec::new("app", 4),
            vec![s2.mpi_hook()],
            move |p, c| {
                c.init(p);
                e2.lock().push((c.rank(), p.now()));
                c.finalize(p);
            },
        );

        let (c2, s3) = (Arc::clone(&client), Arc::clone(&sync));
        sim.spawn("instrumenter", 3, move |p| {
            let ranks = s3.await_ready(&c2, p, 4);
            assert_eq!(ranks.len(), 4);
            // "Instrument" for a while, then release.
            p.advance(SimTime::from_millis(40));
            s3.release_all(p);
        });
        sim.run();

        let exits = exits.lock();
        assert_eq!(exits.len(), 4);
        let min = exits.iter().map(|&(_, t)| t).min().unwrap();
        let max = exits.iter().map(|&(_, t)| t).max().unwrap();
        // All ranks leave MPI_Init nearly together (barrier re-sync), and
        // only after the instrumenter's 40 ms of work.
        assert!(
            min >= SimTime::from_millis(40),
            "left before release: {min}"
        );
        assert!(
            max.saturating_sub(min) < SimTime::from_millis(1),
            "resync failed: spread {min}..{max}"
        );
    }

    #[test]
    fn omp_variant_needs_single_release() {
        let sim = Sim::virtual_time(Machine::test_machine(), 22);
        let system = DpclSystem::new(["u"]);
        let client = Arc::new(DpclClient::new(system, "u"));
        let sync = InitSync::new(&client, 1);
        let done = Arc::new(Mutex::new(SimTime::ZERO));

        let (s2, d2) = (Arc::clone(&sync), Arc::clone(&done));
        sim.spawn("umt98", 1, move |p| {
            s2.omp_init(p); // callback + spin, no barriers
            *d2.lock() = p.now();
        });
        let (c2, s3) = (client, sync);
        sim.spawn("instrumenter", 0, move |p| {
            s3.await_ready(&c2, p, 1);
            p.advance(SimTime::from_millis(10));
            s3.release_all(p);
        });
        sim.run();
        assert!(*done.lock() >= SimTime::from_millis(10));
    }
}
