//! dynprof's internal timing log.
//!
//! "dynprof is instrumented to collect detailed timings about its internal
//! operations, and these timings are written to a timefile" (paper §3.3).
//! Figure 9's "time to create and instrument" series come from here.

use parking_lot::Mutex;

use dynprof_sim::SimTime;

/// One timed internal operation.
#[derive(Clone, Debug, PartialEq)]
pub struct TimefileEntry {
    /// Operation label (e.g. `create`, `instrument`, `release`).
    pub label: String,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl TimefileEntry {
    /// Duration of the operation.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// The timefile: an append-only log of timed operations.
#[derive(Default)]
pub struct Timefile {
    entries: Mutex<Vec<TimefileEntry>>,
}

impl Timefile {
    /// An empty timefile.
    pub fn new() -> Timefile {
        Timefile::default()
    }

    /// Record one operation.
    pub fn record(&self, label: impl Into<String>, start: SimTime, end: SimTime) {
        self.entries.lock().push(TimefileEntry {
            label: label.into(),
            start,
            end,
        });
    }

    /// All entries, in record order.
    pub fn entries(&self) -> Vec<TimefileEntry> {
        self.entries.lock().clone()
    }

    /// Total duration of entries with `label` (zero if none).
    pub fn total(&self, label: &str) -> SimTime {
        self.entries
            .lock()
            .iter()
            .filter(|e| e.label == label)
            .map(TimefileEntry::duration)
            .sum()
    }

    /// Render the timefile as the text dynprof writes at exit.
    pub fn render(&self) -> String {
        let entries = self.entries.lock();
        let mut out = String::from("# dynprof internal timings\n# label start end duration\n");
        for e in entries.iter() {
            out.push_str(&format!(
                "{} {} {} {}\n",
                e.label,
                e.start.as_secs_f64(),
                e.end.as_secs_f64(),
                e.duration().as_secs_f64()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_matching_labels() {
        let tf = Timefile::new();
        tf.record(
            "instrument",
            SimTime::from_millis(10),
            SimTime::from_millis(30),
        );
        tf.record("create", SimTime::ZERO, SimTime::from_millis(10));
        tf.record(
            "instrument",
            SimTime::from_millis(40),
            SimTime::from_millis(45),
        );
        assert_eq!(tf.total("instrument"), SimTime::from_millis(25));
        assert_eq!(tf.total("create"), SimTime::from_millis(10));
        assert_eq!(tf.total("missing"), SimTime::ZERO);
    }

    #[test]
    fn render_lists_every_entry() {
        let tf = Timefile::new();
        tf.record("create", SimTime::ZERO, SimTime::from_secs(2));
        let text = tf.render();
        assert!(text.contains("create 0 2 2\n"));
        assert!(text.starts_with("# dynprof internal timings"));
    }

    #[test]
    fn entry_duration_saturates() {
        let e = TimefileEntry {
            label: "x".into(),
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(3),
        };
        assert_eq!(e.duration(), SimTime::ZERO);
    }
}
