//! # dynprof-core — the dynprof tool
//!
//! The paper's primary contribution (§3): a DPCL-based dynamic
//! instrumenter for mixed MPI/OpenMP applications, for use with the
//! Vampirtrace/GuideView toolset.
//!
//! * [`Command`] — the scriptable command language of Table 1
//!   (`insert`, `remove`, `insert-file`, `remove-file`, `start`, `quit`,
//!   `wait`, `help`).
//! * [`InitSync`] — the `MPI_Init` deferral protocol of Fig 6 (barrier,
//!   `DPCL_callback`, `DYNVT_spin`, barrier) and its barrier-free
//!   `VT_init` variant for OpenMP programs.
//! * [`AppSpec`] — what dynprof sees of a target application; the four
//!   ASCI kernels in `dynprof-apps` are provided in this form.
//! * [`run_session`] — execute one instrumented run under any Table 3
//!   policy, returning the paper's measurements (application time,
//!   create/instrument times, trace volume).
//! * [`Timefile`] — dynprof's internal-operation timing log (§3.3).

#![warn(missing_docs)]

mod app;
mod command;
mod initsync;
mod session;
mod timefile;

pub use app::{AdaptiveRuntime, AppBody, AppCtx, AppMode, AppSpec};
pub use command::{Command, ParseError, HELP_TEXT};
pub use initsync::{InitSync, InitSyncHook, INIT_CALLBACK_TAG};
pub use session::{
    run_attach_session, run_session, AdaptiveSettings, SessionConfig, SessionReport, TxnSettings,
    POE_BASE, POE_PER_PROC,
};
pub use timefile::{Timefile, TimefileEntry};
