//! A dynprof session: spawn the target (held), attach, run the command
//! script, and collect measurements (paper §3.3, §4.2).
//!
//! Two paths exist, matching the paper's methodology (Table 3):
//!
//! * **static policies** (`Full`, `Full-Off`, `Subset`, `None`): the
//!   application runs alone, with static instrumentation and the VT
//!   configuration file chosen by the policy — no dynprof, no DPCL.
//! * **`Dynamic`**: dynprof spawns the target suspended, attaches through
//!   DPCL, queues instrumentation requests until the MPI_Init callback
//!   confirms it is safe (Fig 6), patches every process image, and
//!   releases the application.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dynprof_dpcl::{
    AckResult, DegradedPolicy, DpclClient, DpclSystem, HeartbeatConfig, HeartbeatMonitor,
    InstrumentationTxn, ProcessHandle, TxnOptions, TxnOutcome,
};
use dynprof_image::ProbePoint;
use dynprof_mpi::{launch_from, JobSpec, MpiHooks};
use dynprof_sim::hb::Finding;
use dynprof_sim::sync::SimGate;
use dynprof_sim::{Machine, Proc, Sim, SimTime};
use dynprof_vt::{
    vt_begin_snippet, vt_end_snippet, ControllerConfig, MonitorLink, OverheadController, Policy,
    VtLib, VtMpiHooks, VtStaticHooks,
};

use crate::app::{AdaptiveRuntime, AppCtx, AppMode, AppSpec};
use crate::command::Command;
use crate::initsync::InitSync;
use crate::timefile::Timefile;

/// `poe` job-startup base cost.
pub const POE_BASE: SimTime = SimTime::from_millis(400);
/// `poe` per-process startup cost.
pub const POE_PER_PROC: SimTime = SimTime::from_millis(30);

/// Configuration of one session run.
#[derive(Clone)]
pub struct SessionConfig {
    /// Machine model to simulate.
    pub machine: Machine,
    /// Simulation seed.
    pub seed: u64,
    /// Instrumentation policy (Table 3).
    pub policy: Policy,
    /// dynprof command script; `None` uses the policy's default
    /// (`insert-file subset`, `start`, `quit` for `Dynamic`).
    pub script: Option<Vec<Command>>,
    /// Named function-list files for `insert-file`/`remove-file`. The
    /// session pre-defines `subset` (the app's important subset) and
    /// `all` (every manifest function).
    pub function_files: BTreeMap<String, Vec<String>>,
    /// First node of the application placement.
    pub app_base_node: usize,
    /// Node the instrumenter runs on (the paper used the few interactive
    /// nodes of the batch system).
    pub instrumenter_node: usize,
    /// Journal per-call PC intervals in every image (enables post-run
    /// evaluation of an ideal statistical sampler; see
    /// `dynprof_vt::sample_image`).
    pub enable_pc_log: bool,
    /// Run multi-node instrumentation changes as 2PC transactions
    /// (`None`: the classic multicast path).
    pub txn: Option<TxnSettings>,
    /// Redundancy-suppression floor: entry/exit pairs shorter than this
    /// are elided from the trace (coalesced into per-function
    /// suppressed-count events; profiles stay exact). `ZERO` disables
    /// suppression and is byte-identical to not setting it at all.
    pub suppress_floor: SimTime,
    /// Closed-loop adaptive instrumentation (`None`: no controller, no
    /// confsync at safe points — byte-identical to earlier sessions).
    pub adaptive: Option<AdaptiveSettings>,
}

/// Settings of the closed-loop overhead controller attached to an
/// adaptive session. The controller observes per-probe cost at each
/// `VT_confsync` safe point and rewrites the activation table to keep
/// measured instrumentation overhead under `budget_pct`.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveSettings {
    /// Overhead budget in percent of application time
    /// (`f64::INFINITY`: observe only, never reconfigure).
    pub budget_pct: f64,
    /// Re-probe one deactivated function every this many under-budget
    /// decisions (0 disables re-probing).
    pub reprobe_every: u64,
}

impl AdaptiveSettings {
    /// A controller enforcing `budget_pct`, with the default re-probe
    /// schedule.
    pub fn budget(budget_pct: f64) -> AdaptiveSettings {
        AdaptiveSettings {
            budget_pct,
            reprobe_every: ControllerConfig::default().reprobe_every,
        }
    }

    /// Observe-only: record measured overhead per epoch, never deactivate.
    pub fn observer() -> AdaptiveSettings {
        AdaptiveSettings::budget(f64::INFINITY)
    }
}

/// Transactional-epoch settings for the `Dynamic` policy.
#[derive(Clone)]
pub struct TxnSettings {
    /// Reaction to a failed participant.
    pub policy: DegradedPolicy,
    /// Run a heartbeat failure detector alongside the session (it feeds
    /// the coordinator's dead-node pre-check). Only spawned under a
    /// non-inert fault plan — undisturbed runs stay byte-identical.
    pub heartbeat: bool,
    /// Pre-flight probe-plan validator (normally `dynprof-check`'s
    /// analyzer, injected as a closure to keep the crate graph acyclic);
    /// called with the function names about to be instrumented. Any
    /// error finding aborts the transaction before a message is sent.
    #[allow(clippy::type_complexity)]
    pub validator: Option<Arc<dyn Fn(&[String]) -> Vec<Finding> + Send + Sync>>,
}

impl TxnSettings {
    /// Settings with the given degraded-mode policy, heartbeat on, no
    /// validator.
    pub fn new(policy: DegradedPolicy) -> TxnSettings {
        TxnSettings {
            policy,
            heartbeat: true,
            validator: None,
        }
    }
}

impl SessionConfig {
    /// Defaults for `machine`/`policy`: seed 42, app on node 0, the
    /// instrumenter on the machine's last node.
    pub fn new(machine: Machine, policy: Policy) -> SessionConfig {
        let instrumenter_node = machine.nodes - 1;
        SessionConfig {
            machine,
            seed: 42,
            policy,
            script: None,
            function_files: BTreeMap::new(),
            app_base_node: 0,
            instrumenter_node,
            enable_pc_log: false,
            txn: None,
            suppress_floor: SimTime::ZERO,
            adaptive: None,
        }
    }

    /// Run instrumentation changes through the 2PC transactional control
    /// plane.
    pub fn with_txn(mut self, settings: TxnSettings) -> SessionConfig {
        self.txn = Some(settings);
        self
    }

    /// Attach a closed-loop overhead controller; the application's
    /// [`AppCtx::safe_point`]s become live `VT_confsync` epochs.
    pub fn with_adaptive(mut self, settings: AdaptiveSettings) -> SessionConfig {
        self.adaptive = Some(settings);
        self
    }

    /// Elide entry/exit pairs shorter than `floor` from the trace.
    pub fn with_suppress_floor(mut self, floor: SimTime) -> SessionConfig {
        self.suppress_floor = floor;
        self
    }

    /// Enable PC-interval journaling (statistical-sampling studies).
    pub fn with_pc_log(mut self) -> SessionConfig {
        self.enable_pc_log = true;
        self
    }

    /// Use a specific seed.
    pub fn with_seed(mut self, seed: u64) -> SessionConfig {
        self.seed = seed;
        self
    }

    /// Use a custom dynprof script.
    pub fn with_script(mut self, script: Vec<Command>) -> SessionConfig {
        self.script = Some(script);
        self
    }

    /// The default Dynamic-policy script (paper §4.2: instrument the
    /// subset before the main computation begins, then run).
    pub fn default_dynamic_script() -> Vec<Command> {
        vec![
            Command::InsertFile(vec!["subset".into()]),
            Command::Start,
            Command::Quit,
        ]
    }
}

/// Measurements of one session.
pub struct SessionReport {
    /// The policy that ran.
    pub policy: Policy,
    /// Application main-computation time: latest body end minus earliest
    /// body start (excludes startup instrumentation, which happens while
    /// the target is suspended — paper §4.2).
    pub app_time: SimTime,
    /// Full simulation makespan.
    pub total_time: SimTime,
    /// Time to create (spawn + attach) the target (Fig 9 component).
    pub create_time: SimTime,
    /// Time to insert the startup instrumentation (Fig 9 component).
    pub instrument_time: SimTime,
    /// Modelled trace volume produced.
    pub trace_bytes: u64,
    /// Probes installed at startup (entry+exit pairs).
    pub probe_pairs_installed: usize,
    /// dynprof's internal timefile.
    pub timefile: Arc<Timefile>,
    /// The trace library (trace + stats access for analysis).
    pub vt: Arc<VtLib>,
    /// Diagnostics (unknown functions, failed installs, ...).
    pub warnings: Vec<String>,
    /// The per-process images (inspection: call counts, PC journals).
    pub images: Vec<Arc<dynprof_image::Image>>,
    /// The overhead controller, when the session ran adaptively
    /// (decision log, measured-overhead series).
    pub controller: Option<Arc<OverheadController>>,
}

impl SessionReport {
    /// Fig 9's metric: create + instrument.
    pub fn create_and_instrument(&self) -> SimTime {
        self.create_time + self.instrument_time
    }
}

struct BodyTimes {
    times: Mutex<Vec<Option<(SimTime, SimTime)>>>,
}

impl BodyTimes {
    fn new(n: usize) -> Arc<BodyTimes> {
        Arc::new(BodyTimes {
            times: Mutex::new(vec![None; n]),
        })
    }

    fn record(&self, rank: usize, start: SimTime, end: SimTime) {
        self.times.lock()[rank] = Some((start, end));
    }

    fn app_time(&self) -> SimTime {
        let times = self.times.lock();
        let mut min = SimTime::MAX;
        let mut max = SimTime::ZERO;
        for t in times.iter().flatten() {
            min = min.min(t.0);
            max = max.max(t.1);
        }
        if min == SimTime::MAX {
            SimTime::ZERO
        } else {
            max - min
        }
    }
}

/// Instantiate the adaptive runtime of a session: set the trace library's
/// suppression floor and, when a controller is configured, build the
/// monitor link the application's safe points will poll. Returns `(None,
/// None)` for unadaptive sessions — no link, no confsync, no new bytes.
fn make_adaptive(
    cfg: &SessionConfig,
    vt: &Arc<VtLib>,
) -> (
    Option<Arc<AdaptiveRuntime>>,
    Option<Arc<OverheadController>>,
) {
    if cfg.suppress_floor > SimTime::ZERO {
        vt.set_suppress_floor(cfg.suppress_floor);
    }
    match &cfg.adaptive {
        None => (None, None),
        Some(s) => {
            let ctrl = OverheadController::new(ControllerConfig {
                budget_pct: s.budget_pct,
                reprobe_every: s.reprobe_every,
                ..ControllerConfig::default()
            });
            let monitor = MonitorLink::new();
            monitor.attach_controller(Arc::clone(&ctrl));
            let runtime = AdaptiveRuntime {
                monitor,
                write_stats: false,
            };
            (Some(Arc::new(runtime)), Some(ctrl))
        }
    }
}

/// Run one session of `app` under `cfg` and return the measurements.
pub fn run_session(app: &AppSpec, cfg: SessionConfig) -> SessionReport {
    match cfg.policy {
        Policy::Dynamic => run_dynamic(app, cfg),
        _ => run_static(app, cfg),
    }
}

/// Attach to an *already executing* application (the extension paper §3.3
/// leaves as future work: "we do not foresee any difficult issues in
/// extending our tool to support dynamic attachment").
///
/// The target launches normally (no hold gate, no startup deferral); at
/// `attach_at`, dynprof attaches through DPCL, suspends every process,
/// installs entry/exit probes for the app's subset, resumes, waits for
/// `observe`, removes its instrumentation again, and detaches — an
/// ephemeral observation window in the middle of an uninstrumented run.
pub fn run_attach_session(
    app: &AppSpec,
    cfg: SessionConfig,
    attach_at: SimTime,
    observe: SimTime,
) -> SessionReport {
    let processes = app.mode.processes();
    let vt = VtLib::new(
        &app.name,
        processes,
        dynprof_vt::VtConfig::all_on(),
        cfg.machine.probe,
    );
    let images: Arc<Vec<_>> = Arc::new(
        (0..processes)
            .map(|rank| {
                let img = app.build_image(false);
                img.set_observer(dynprof_vt::VtImageObserver::new(Arc::clone(&vt), rank));
                img
            })
            .collect(),
    );
    let sim = Sim::virtual_time(cfg.machine.clone(), cfg.seed);
    let times = BodyTimes::new(processes);
    let timefile = Arc::new(Timefile::new());
    let system = DpclSystem::new(["dynprof"]);
    let warnings: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let pairs_out: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
    let (adaptive, controller) = make_adaptive(&cfg, &vt);

    // The application starts on its own — nobody is holding it.
    let nodes_of: Vec<usize> = match app.mode {
        AppMode::Mpi { ranks } => {
            let (vt3, imgs, times3, body) = (
                Arc::clone(&vt),
                Arc::clone(&images),
                Arc::clone(&times),
                Arc::clone(&app.body),
            );
            let adaptive2 = adaptive.clone();
            let job = dynprof_mpi::launch(
                &sim,
                JobSpec::new(&app.name, ranks).on_node(cfg.app_base_node),
                vec![VtMpiHooks::new(Arc::clone(&vt))],
                move |p, comm| {
                    comm.init(p);
                    let rank = comm.rank();
                    let t0 = p.now();
                    body(&AppCtx {
                        p,
                        comm: Some(comm),
                        image: &imgs[rank],
                        vt: &vt3,
                        rank,
                        nranks: ranks,
                        omp_threads: 1,
                        adaptive: adaptive2.clone(),
                    });
                    times3.record(rank, t0, p.now());
                    comm.finalize(p);
                },
            );
            (0..ranks).map(|r| job.node_of(r, &cfg.machine)).collect()
        }
        AppMode::Omp { threads } => {
            let (vt3, imgs, times3, body) = (
                Arc::clone(&vt),
                Arc::clone(&images),
                Arc::clone(&times),
                Arc::clone(&app.body),
            );
            let adaptive2 = adaptive.clone();
            let name = app.name.clone();
            let node = cfg.app_base_node;
            sim.spawn(name, node, move |p| {
                vt3.init(p, 0);
                let t0 = p.now();
                body(&AppCtx {
                    p,
                    comm: None,
                    image: &imgs[0],
                    vt: &vt3,
                    rank: 0,
                    nranks: 1,
                    omp_threads: threads,
                    adaptive: adaptive2.clone(),
                });
                times3.record(0, t0, p.now());
                vt3.finalize(p, 0);
            });
            vec![node]
        }
    };

    {
        let vt = Arc::clone(&vt);
        let images = Arc::clone(&images);
        let timefile = Arc::clone(&timefile);
        let subset = app.subset.clone();
        let name = app.name.clone();
        let warnings2 = Arc::clone(&warnings);
        let pairs2 = Arc::clone(&pairs_out);
        sim.spawn("dynprof-attach", cfg.instrumenter_node, move |p| {
            p.sleep_until(attach_at);
            let client = DpclClient::new(system, "dynprof");
            // Attach to the live processes.
            let t0 = p.now();
            let mut handles = Vec::new();
            for (i, &node) in nodes_of.iter().enumerate() {
                match client.attach(p, node, Arc::clone(&images[i]), format!("{name}:{i}")) {
                    Ok(h) => handles.push(h),
                    Err(e) => {
                        warnings2.lock().push(format!("attach failed: {e}"));
                        client.shutdown(p);
                        return;
                    }
                }
            }
            timefile.record("attach", t0, p.now());
            // Instrument only if VT is up everywhere (it initializes inside
            // MPI_Init / at the start of main; attaching that early would
            // be unsafe — the same constraint as §3.4).
            if !(0..handles.len()).all(|r| vt.is_initialized(r)) {
                warnings2
                    .lock()
                    .push("attach: VT not initialized everywhere; skipping".into());
                client.shutdown(p);
                return;
            }
            // Suspend, install subset probes, resume.
            let t0 = p.now();
            let reqs: Vec<_> = handles.iter().map(|h| client.suspend(p, h)).collect();
            client.wait_all(p, &reqs);
            let mut reqs = Vec::new();
            let mut pairs = 0usize;
            for fname in &subset {
                let fid = match handles[0].image.func(fname) {
                    Some(f) => f,
                    None => continue,
                };
                let vtid = vt.funcdef(p, fname);
                for h in &handles {
                    reqs.push(client.install_probe(
                        p,
                        h,
                        dynprof_image::ProbePoint::entry(fid),
                        vt_begin_snippet(Arc::clone(&vt), vtid),
                    ));
                    reqs.push(client.install_probe(
                        p,
                        h,
                        dynprof_image::ProbePoint::exit(fid),
                        vt_end_snippet(Arc::clone(&vt), vtid),
                    ));
                    pairs += 1;
                }
            }
            let failures = install_failures(&client.wait_all(p, &reqs));
            if !failures.is_empty() {
                warnings2.lock().push(failures);
            }
            *pairs2.lock() = pairs;
            let resumes: Vec<_> = handles.iter().map(|h| client.resume(p, h)).collect();
            client.wait_all(p, &resumes);
            timefile.record("instrument", t0, p.now());
            // Observe, then remove everything and detach.
            p.sleep(observe);
            let t0 = p.now();
            let reqs: Vec<_> = handles.iter().map(|h| client.suspend(p, h)).collect();
            client.wait_all(p, &reqs);
            let mut reqs = Vec::new();
            for fname in &subset {
                if let Some(fid) = handles[0].image.func(fname) {
                    for h in &handles {
                        reqs.push(client.remove_function(p, h, fid));
                    }
                }
            }
            client.wait_all(p, &reqs);
            let resumes: Vec<_> = handles.iter().map(|h| client.resume(p, h)).collect();
            client.wait_all(p, &resumes);
            timefile.record("remove", t0, p.now());
            client.shutdown(p);
        });
    }

    let total = sim.run();
    let pairs = *pairs_out.lock();
    let warnings = std::mem::take(&mut *warnings.lock());
    SessionReport {
        policy: cfg.policy,
        app_time: times.app_time(),
        total_time: total,
        create_time: timefile.total("attach"),
        instrument_time: timefile.total("instrument"),
        trace_bytes: vt.total_trace_bytes(),
        probe_pairs_installed: pairs,
        timefile,
        vt,
        warnings,
        images: images.to_vec(),
        controller,
    }
}

/// Summarize failed install acks: the count plus each distinct typed
/// reason (verifier rejections, patch hazards, timeouts). Empty when
/// every ack succeeded.
fn install_failures(acks: &[(dynprof_dpcl::ReqId, AckResult)]) -> String {
    let mut reasons: Vec<String> = acks
        .iter()
        .filter_map(|(_, r)| match r {
            AckResult::Ok { .. } => None,
            AckResult::Error { message } => Some(message.clone()),
            AckResult::TimedOut { attempts } => {
                Some(format!("timed out after {attempts} attempt(s)"))
            }
        })
        .collect();
    if reasons.is_empty() {
        return String::new();
    }
    let n = reasons.len();
    reasons.sort_unstable();
    reasons.dedup();
    format!("{n} probe installs failed: {}", reasons.join("; "))
}

fn make_function_files(app: &AppSpec, cfg: &SessionConfig) -> BTreeMap<String, Vec<String>> {
    let mut files = cfg.function_files.clone();
    files
        .entry("subset".into())
        .or_insert_with(|| app.subset.clone());
    files
        .entry("all".into())
        .or_insert_with(|| app.function_names());
    files
}

// ---------------------------------------------------------------------------
// Static policies: plain (instrumented) runs, no dynprof.
// ---------------------------------------------------------------------------

fn run_static(app: &AppSpec, cfg: SessionConfig) -> SessionReport {
    let processes = app.mode.processes();
    let vt = VtLib::new(
        &app.name,
        processes,
        cfg.policy.config(&app.subset),
        cfg.machine.probe,
    );
    let static_instr = cfg.policy.static_instrumentation();
    let images: Arc<Vec<_>> = Arc::new(
        (0..processes)
            .map(|_| {
                let img = app.build_image(static_instr);
                if static_instr {
                    img.set_static_hooks(VtStaticHooks::for_image(Arc::clone(&vt), &img));
                }
                if cfg.enable_pc_log {
                    img.enable_pc_log();
                }
                img
            })
            .collect(),
    );
    let sim = Sim::virtual_time(cfg.machine.clone(), cfg.seed);
    let times = BodyTimes::new(processes);
    let (adaptive, controller) = make_adaptive(&cfg, &vt);

    match app.mode {
        AppMode::Mpi { ranks } => {
            let (vt2, imgs, times2, body) = (
                Arc::clone(&vt),
                Arc::clone(&images),
                Arc::clone(&times),
                Arc::clone(&app.body),
            );
            let adaptive2 = adaptive.clone();
            let omp_threads = 1;
            dynprof_mpi::launch(
                &sim,
                JobSpec::new(&app.name, ranks).on_node(cfg.app_base_node),
                vec![VtMpiHooks::new(Arc::clone(&vt))],
                move |p, comm| {
                    comm.init(p);
                    let rank = comm.rank();
                    let t0 = p.now();
                    body(&AppCtx {
                        p,
                        comm: Some(comm),
                        image: &imgs[rank],
                        vt: &vt2,
                        rank,
                        nranks: ranks,
                        omp_threads,
                        adaptive: adaptive2.clone(),
                    });
                    times2.record(rank, t0, p.now());
                    comm.finalize(p);
                },
            );
        }
        AppMode::Omp { threads } => {
            let (vt2, imgs, times2, body) = (
                Arc::clone(&vt),
                Arc::clone(&images),
                Arc::clone(&times),
                Arc::clone(&app.body),
            );
            let adaptive2 = adaptive.clone();
            let name = app.name.clone();
            let node = cfg.app_base_node;
            sim.spawn(name, node, move |p| {
                // Guide statically inserts VT_init at the start of main.
                vt2.init(p, 0);
                let t0 = p.now();
                body(&AppCtx {
                    p,
                    comm: None,
                    image: &imgs[0],
                    vt: &vt2,
                    rank: 0,
                    nranks: 1,
                    omp_threads: threads,
                    adaptive: adaptive2.clone(),
                });
                times2.record(0, t0, p.now());
                vt2.finalize(p, 0);
            });
        }
    }
    let total = sim.run();
    SessionReport {
        policy: cfg.policy,
        app_time: times.app_time(),
        total_time: total,
        create_time: SimTime::ZERO,
        instrument_time: SimTime::ZERO,
        trace_bytes: vt.total_trace_bytes(),
        probe_pairs_installed: 0,
        timefile: Arc::new(Timefile::new()),
        vt,
        warnings: Vec::new(),
        images: images.to_vec(),
        controller,
    }
}

// ---------------------------------------------------------------------------
// Dynamic policy: a full dynprof session.
// ---------------------------------------------------------------------------

struct DynState {
    client: DpclClient,
    sync: Arc<InitSync>,
    handles: Vec<ProcessHandle>,
    vt: Arc<VtLib>,
    timefile: Arc<Timefile>,
    files: BTreeMap<String, Vec<String>>,
    warnings: Vec<String>,
    pairs_installed: usize,
    started: bool,
    txn: Option<TxnSettings>,
    monitor: Option<Arc<HeartbeatMonitor>>,
}

impl DynState {
    fn resolve_files(&mut self, files: &[String]) -> Vec<String> {
        let mut names = Vec::new();
        for f in files {
            match self.files.get(f) {
                Some(list) => names.extend(list.iter().cloned()),
                None => self
                    .warnings
                    .push(format!("insert-file: unknown function list {f:?}")),
            }
        }
        names
    }

    /// Install entry/exit VT probes for `names` in every process.
    fn install(&mut self, p: &Proc, names: &[String]) {
        let t0 = p.now();
        if self.handles.is_empty() {
            self.warnings
                .push("install: no attached processes; nothing to do".into());
            return;
        }
        // The 2PC control plane only engages under a live fault plan: an
        // inert plan cannot produce a partial epoch, so transactional
        // sessions take the classic path and stay byte-identical to
        // untransacted runs (the `InstrumentationTxn` fast path guards
        // direct library users the same way).
        let faulty = p.fault_plan().is_some_and(|plan| !plan.is_inert());
        match self.txn.clone() {
            Some(settings) if faulty => self.install_txn(p, names, &settings),
            _ => self.install_multicast(p, names),
        }
        self.timefile.record("instrument", t0, p.now());
    }

    /// The classic path: multicast install requests, then wait for every
    /// ack.
    fn install_multicast(&mut self, p: &Proc, names: &[String]) {
        let mut reqs = Vec::new();
        for name in names {
            let fid = match self.handles[0].image.func(name) {
                Some(f) => f,
                None => {
                    self.warnings
                        .push(format!("insert: unknown function {name:?}"));
                    continue;
                }
            };
            // dynprof registers the symbol with Vampirtrace (§3.4).
            let vtid = self.vt.funcdef(p, name);
            for h in &self.handles {
                reqs.push(self.client.install_probe(
                    p,
                    h,
                    ProbePoint::entry(fid),
                    vt_begin_snippet(Arc::clone(&self.vt), vtid),
                ));
                reqs.push(self.client.install_probe(
                    p,
                    h,
                    ProbePoint::exit(fid),
                    vt_end_snippet(Arc::clone(&self.vt), vtid),
                ));
            }
            self.pairs_installed += self.handles.len();
        }
        let failures = install_failures(&self.client.wait_all(p, &reqs));
        if !failures.is_empty() {
            self.warnings.push(failures);
        }
    }

    /// The transactional path: stage the same probe batch, then run the
    /// 2PC protocol so either every process gets the epoch or none does
    /// (or, under `exclude-node`, the run is explicitly degraded).
    fn install_txn(&mut self, p: &Proc, names: &[String], settings: &TxnSettings) {
        let mut txn = InstrumentationTxn::new(TxnOptions {
            policy: settings.policy,
            ..TxnOptions::default()
        });
        let pairs_before = self.pairs_installed;
        let mut staged_names: Vec<String> = Vec::new();
        for name in names {
            let fid = match self.handles[0].image.func(name) {
                Some(f) => f,
                None => {
                    self.warnings
                        .push(format!("insert: unknown function {name:?}"));
                    continue;
                }
            };
            let vtid = self.vt.funcdef(p, name);
            for h in &self.handles {
                txn.stage_install(
                    h,
                    ProbePoint::entry(fid),
                    vt_begin_snippet(Arc::clone(&self.vt), vtid),
                );
                txn.stage_install(
                    h,
                    ProbePoint::exit(fid),
                    vt_end_snippet(Arc::clone(&self.vt), vtid),
                );
            }
            self.pairs_installed += self.handles.len();
            staged_names.push(name.clone());
        }
        let v = settings.validator.clone();
        let validator_closure = v.map(|v| move || v(&staged_names));
        let validator: Option<&dyn Fn() -> Vec<Finding>> = validator_closure
            .as_ref()
            .map(|c| c as &dyn Fn() -> Vec<Finding>);
        let report = txn.execute(p, &self.client, validator, self.monitor.as_deref());
        if report.two_phase {
            // Actual coverage: each committed op is one probe.
            self.pairs_installed = pairs_before + (report.applied / 2) as usize;
        }
        match &report.outcome {
            TxnOutcome::Committed => {}
            TxnOutcome::CommittedDegraded { excluded } => {
                self.vt.note_degraded(report.epoch, excluded);
                self.warnings.push(format!(
                    "txn epoch {} committed degraded; excluded nodes {excluded:?}",
                    report.epoch
                ));
            }
            TxnOutcome::Aborted { reason } => {
                self.warnings
                    .push(format!("txn epoch {} aborted: {reason}", report.epoch));
            }
            TxnOutcome::ValidationFailed { errors } => {
                for e in errors {
                    self.warnings.push(format!("txn validation: {e}"));
                }
            }
        }
        for f in &report.op_failures {
            self.warnings.push(format!("txn install failed: {f}"));
        }
        for node in &report.unconfirmed {
            self.warnings
                .push(format!("txn decision to node {node} unconfirmed"));
        }
    }

    /// Remove all instrumentation from `names` in every process.
    fn remove(&mut self, p: &Proc, names: &[String]) {
        let t0 = p.now();
        if self.handles.is_empty() {
            self.warnings
                .push("remove: no attached processes; nothing to do".into());
            return;
        }
        let mut reqs = Vec::new();
        for name in names {
            let fid = match self.handles[0].image.func(name) {
                Some(f) => f,
                None => {
                    self.warnings
                        .push(format!("remove: unknown function {name:?}"));
                    continue;
                }
            };
            for h in &self.handles {
                reqs.push(self.client.remove_function(p, h, fid));
            }
        }
        self.client.wait_all(p, &reqs);
        self.timefile.record("remove", t0, p.now());
    }

    /// Suspend every process, run `f`, resume every process — the paper's
    /// mid-run modification procedure ("all processes are first
    /// suspended", §3.4).
    fn while_suspended(&mut self, p: &Proc, f: impl FnOnce(&mut Self, &Proc)) {
        let reqs: Vec<_> = self
            .handles
            .iter()
            .map(|h| self.client.suspend(p, h))
            .collect();
        self.client.wait_all(p, &reqs);
        f(self, p);
        let reqs: Vec<_> = self
            .handles
            .iter()
            .map(|h| self.client.resume(p, h))
            .collect();
        // Wait for the resumes to land so a subsequent quit/shutdown can
        // never overtake them.
        self.client.wait_all(p, &reqs);
    }
}

fn run_dynamic(app: &AppSpec, cfg: SessionConfig) -> SessionReport {
    let processes = app.mode.processes();
    let vt = VtLib::new(
        &app.name,
        processes,
        cfg.policy.config(&app.subset),
        cfg.machine.probe,
    );
    let images: Arc<Vec<_>> = Arc::new(
        (0..processes)
            .map(|rank| {
                let img = app.build_image(false);
                // §5.1: record suspension windows into the trace.
                img.set_observer(dynprof_vt::VtImageObserver::new(Arc::clone(&vt), rank));
                if cfg.enable_pc_log {
                    img.enable_pc_log();
                }
                img
            })
            .collect(),
    );
    let sim = Sim::virtual_time(cfg.machine.clone(), cfg.seed);
    let times = BodyTimes::new(processes);
    let timefile = Arc::new(Timefile::new());
    let system = DpclSystem::new(["dynprof"]);
    let script = cfg
        .script
        .clone()
        .unwrap_or_else(SessionConfig::default_dynamic_script);
    let files = make_function_files(app, &cfg);
    let start_gate = Arc::new(SimGate::new());
    let warnings: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let pairs_out: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
    let (adaptive, controller) = make_adaptive(&cfg, &vt);

    {
        let vt = Arc::clone(&vt);
        let images = Arc::clone(&images);
        let times = Arc::clone(&times);
        let timefile = Arc::clone(&timefile);
        let app = app.clone();
        let machine = cfg.machine.clone();
        let start_gate2 = Arc::clone(&start_gate);
        let warnings2 = Arc::clone(&warnings);
        let pairs_out2 = Arc::clone(&pairs_out);
        let app_base = cfg.app_base_node;
        let txn_settings = cfg.txn.clone();
        let adaptive = adaptive.clone();
        sim.spawn("dynprof", cfg.instrumenter_node, move |p| {
            let client = DpclClient::new(system, "dynprof");
            let sync = InitSync::new(&client, processes);

            // ---- create: spawn the target suspended, attach everywhere.
            let t_create = p.now();
            p.advance(POE_BASE + POE_PER_PROC * processes as u64);
            let nodes_of: Vec<usize> = match app.mode {
                AppMode::Mpi { ranks } => {
                    let (vt3, imgs, times3, body) = (
                        Arc::clone(&vt),
                        Arc::clone(&images),
                        Arc::clone(&times),
                        Arc::clone(&app.body),
                    );
                    let hooks: Vec<Arc<dyn MpiHooks>> =
                        vec![VtMpiHooks::new(Arc::clone(&vt)), sync.mpi_hook()];
                    let adaptive2 = adaptive.clone();
                    let job = launch_from(
                        p,
                        JobSpec::new(&app.name, ranks)
                            .on_node(app_base)
                            .held_by(Arc::clone(&start_gate2)),
                        hooks,
                        move |ap, comm| {
                            comm.init(ap);
                            let rank = comm.rank();
                            let t0 = ap.now();
                            body(&AppCtx {
                                p: ap,
                                comm: Some(comm),
                                image: &imgs[rank],
                                vt: &vt3,
                                rank,
                                nranks: ranks,
                                omp_threads: 1,
                                adaptive: adaptive2.clone(),
                            });
                            times3.record(rank, t0, ap.now());
                            comm.finalize(ap);
                        },
                    );
                    (0..ranks).map(|r| job.node_of(r, &machine)).collect()
                }
                AppMode::Omp { threads } => {
                    let (vt3, imgs, times3, body) = (
                        Arc::clone(&vt),
                        Arc::clone(&images),
                        Arc::clone(&times),
                        Arc::clone(&app.body),
                    );
                    let sync2 = Arc::clone(&sync);
                    let gate = Arc::clone(&start_gate2);
                    let name = app.name.clone();
                    let adaptive2 = adaptive.clone();
                    p.spawn_child(name, app_base, move |ap| {
                        gate.wait_open(ap);
                        // VT_init at the start of main (Guide), then the
                        // dynamically inserted callback + spin (Fig 6
                        // variant without barriers, §3.4).
                        vt3.init(ap, 0);
                        sync2.omp_init(ap);
                        let t0 = ap.now();
                        body(&AppCtx {
                            p: ap,
                            comm: None,
                            image: &imgs[0],
                            vt: &vt3,
                            rank: 0,
                            nranks: 1,
                            omp_threads: threads,
                            adaptive: adaptive2.clone(),
                        });
                        times3.record(0, t0, ap.now());
                        vt3.finalize(ap, 0);
                    });
                    vec![app_base]
                }
            };
            let mut handles = Vec::with_capacity(processes);
            let mut attach_warnings = Vec::new();
            for (i, &node) in nodes_of.iter().enumerate() {
                match client.attach(p, node, Arc::clone(&images[i]), format!("{}:{i}", app.name)) {
                    Ok(h) => handles.push(h),
                    Err(e) => attach_warnings.push(format!(
                        "attach failed for process {i}: {e}; excluded from instrumentation"
                    )),
                }
            }
            timefile.record("create", t_create, p.now());

            // Heartbeat failure detection: only under a non-inert fault
            // plan (an undisturbed run must stay byte-identical), and only
            // when the transactional control plane asked for it.
            let faulty = p.fault_plan().is_some_and(|plan| !plan.is_inert());
            let monitor = match &txn_settings {
                Some(s) if s.heartbeat && faulty => {
                    let mut nodes = nodes_of.clone();
                    nodes.sort_unstable();
                    nodes.dedup();
                    let m = HeartbeatMonitor::new(
                        Arc::clone(client.system()),
                        nodes,
                        HeartbeatConfig::default(),
                    );
                    let m2 = Arc::clone(&m);
                    p.spawn_child("dynprof-hb", p.node(), move |hp| m2.run(hp));
                    Some(m)
                }
                _ => None,
            };

            let mut st = DynState {
                client,
                sync: Arc::clone(&sync),
                handles,
                vt: Arc::clone(&vt),
                timefile: Arc::clone(&timefile),
                files,
                warnings: attach_warnings,
                pairs_installed: 0,
                started: false,
                txn: txn_settings,
                monitor,
            };
            let mut pending: Vec<String> = Vec::new();
            let do_start = |st: &mut DynState, p: &Proc, pending: &mut Vec<String>| {
                let t0 = p.now();
                start_gate2.open(p, SimTime::from_micros(50));
                st.sync.await_ready(&st.client, p, processes);
                timefile.record("start-to-callback", t0, p.now());
                // Safe now: act on the queued requests (paper §3.4).
                let names = std::mem::take(pending);
                st.install(p, &names);
                let t_rel = p.now();
                st.sync.release_all(p);
                st.timefile.record("release", t_rel, p.now());
                st.started = true;
            };
            for cmd in &script {
                match cmd {
                    Command::Help => { /* prints HELP_TEXT interactively */ }
                    Command::Insert(names) => {
                        if st.started {
                            let names = names.clone();
                            st.while_suspended(p, |st, p| st.install(p, &names));
                        } else {
                            pending.extend(names.iter().cloned());
                        }
                    }
                    Command::InsertFile(fs) => {
                        let names = st.resolve_files(fs);
                        if st.started {
                            st.while_suspended(p, |st, p| st.install(p, &names));
                        } else {
                            pending.extend(names);
                        }
                    }
                    Command::Remove(names) => {
                        if st.started {
                            let names = names.clone();
                            st.while_suspended(p, |st, p| st.remove(p, &names));
                        } else {
                            pending.retain(|n| !names.contains(n));
                        }
                    }
                    Command::RemoveFile(fs) => {
                        let names = st.resolve_files(fs);
                        if st.started {
                            st.while_suspended(p, |st, p| st.remove(p, &names));
                        } else {
                            pending.retain(|n| !names.contains(n));
                        }
                    }
                    Command::Start => {
                        if !st.started {
                            do_start(&mut st, p, &mut pending);
                        }
                    }
                    Command::Wait(d) => p.sleep(*d),
                    Command::Quit => break,
                }
            }
            if !st.started {
                // A script that never starts the target would deadlock it;
                // dynprof's interactive loop effectively always starts.
                st.warnings
                    .push("script had no `start`; target started at script end".into());
                do_start(&mut st, p, &mut pending);
            }
            // quit: detach, leaving active instrumentation in place.
            if let Some(m) = &st.monitor {
                m.stop();
            }
            st.client.shutdown(p);
            warnings2.lock().extend(st.warnings);
            *pairs_out2.lock() = st.pairs_installed;
        });
    }

    let total = sim.run();
    let pairs = *pairs_out.lock();
    let warnings = std::mem::take(&mut *warnings.lock());
    SessionReport {
        policy: cfg.policy,
        app_time: times.app_time(),
        total_time: total,
        create_time: timefile.total("create"),
        instrument_time: timefile.total("instrument"),
        trace_bytes: vt.total_trace_bytes(),
        probe_pairs_installed: pairs,
        timefile,
        vt,
        warnings,
        images: images.to_vec(),
        controller,
    }
}
