//! Target-application description.
//!
//! A [`AppSpec`] is what dynprof sees of an application: its name, its
//! function manifest (the symbol table), the "important subset" used by
//! the `Subset`/`Dynamic` policies, its parallel mode, and a body to
//! execute per process. The `dynprof-apps` crate provides the four ASCI
//! kernels as `AppSpec`s.

use std::sync::Arc;

use dynprof_image::{CallerCtx, FuncId, FunctionInfo, Image};
use dynprof_mpi::Comm;
use dynprof_omp::OmpRuntime;
use dynprof_sim::Proc;
use dynprof_vt::{VtLib, VtOmpHooks};

/// Parallel execution mode of the target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppMode {
    /// An MPI job of `ranks` processes.
    Mpi {
        /// Number of MPI ranks.
        ranks: usize,
    },
    /// A single-process OpenMP application with a team of `threads`
    /// (restricted to one SMP node, as in the paper).
    Omp {
        /// OpenMP team size.
        threads: usize,
    },
}

impl AppMode {
    /// Number of processes (MPI ranks, or 1 for OpenMP).
    pub fn processes(self) -> usize {
        match self {
            AppMode::Mpi { ranks } => ranks,
            AppMode::Omp { .. } => 1,
        }
    }

    /// Number of "CPUs" in the paper's x-axis sense.
    pub fn cpus(self) -> usize {
        match self {
            AppMode::Mpi { ranks } => ranks,
            AppMode::Omp { threads } => threads,
        }
    }
}

/// The session-side state behind [`AppCtx::safe_point`]: the monitoring
/// link that `VT_confsync` polls (carrying any attached
/// [`dynprof_vt::OverheadController`]) plus the per-epoch statistics
/// switch. Present only when the session enabled adaptive
/// instrumentation — bodies of unadaptive runs see `None` and their safe
/// points are no-ops, so those runs stay byte-identical.
pub struct AdaptiveRuntime {
    /// Change feed polled by rank 0 at every safe point.
    pub monitor: Arc<dynprof_vt::MonitorLink>,
    /// Write runtime statistics at each safe point (Fig 8 Experiment 3).
    pub write_stats: bool,
}

/// Per-process execution context handed to the application body.
pub struct AppCtx<'a> {
    /// The executing simulated process.
    pub p: &'a Proc,
    /// The communicator (MPI apps only).
    pub comm: Option<&'a Comm>,
    /// This process's executable image.
    pub image: &'a Arc<Image>,
    /// The trace library.
    pub vt: &'a Arc<VtLib>,
    /// MPI rank (0 for OpenMP apps).
    pub rank: usize,
    /// Number of ranks (1 for OpenMP apps).
    pub nranks: usize,
    /// OpenMP team size (1 for pure MPI apps).
    pub omp_threads: usize,
    /// Adaptive-instrumentation hooks (None outside adaptive sessions).
    pub adaptive: Option<Arc<AdaptiveRuntime>>,
}

impl<'a> AppCtx<'a> {
    /// The communicator; panics for non-MPI apps.
    pub fn comm(&self) -> &Comm {
        self.comm.expect("MPI communicator in a non-MPI app")
    }

    /// Resolve a function id by name; panics if absent from the manifest.
    pub fn fid(&self, name: &str) -> FuncId {
        self.image
            .func(name)
            .unwrap_or_else(|| panic!("function {name:?} not in {}'s image", self.image.program()))
    }

    /// Call `fid` (thread 0) through the image, firing instrumentation.
    pub fn call<R>(&self, fid: FuncId, body: impl FnOnce() -> R) -> R {
        self.image.call(
            self.p,
            CallerCtx {
                rank: self.rank,
                thread: 0,
            },
            fid,
            body,
        )
    }

    /// Batched call of a hot leaf function (see `Image::call_batch`).
    pub fn call_batch<R>(&self, fid: FuncId, reps: u64, body: impl FnOnce(u64) -> R) -> R {
        self.image.call_batch(
            self.p,
            CallerCtx {
                rank: self.rank,
                thread: 0,
            },
            fid,
            reps,
            body,
        )
    }

    /// Call `fid` from OpenMP thread `thread` on the worker process `wp`.
    pub fn call_on_thread<R>(
        &self,
        wp: &Proc,
        thread: usize,
        fid: FuncId,
        body: impl FnOnce() -> R,
    ) -> R {
        self.image.call(
            wp,
            CallerCtx {
                rank: self.rank,
                thread,
            },
            fid,
            body,
        )
    }

    /// Batched call from an OpenMP worker thread.
    pub fn call_batch_on_thread<R>(
        &self,
        wp: &Proc,
        thread: usize,
        fid: FuncId,
        reps: u64,
        body: impl FnOnce(u64) -> R,
    ) -> R {
        self.image.call_batch(
            wp,
            CallerCtx {
                rank: self.rank,
                thread,
            },
            fid,
            reps,
            body,
        )
    }

    /// A `VT_confsync` safe point (paper §5): in an adaptive MPI session,
    /// collectively synchronize the activation table — applying any
    /// pending configuration change or controller decision. Outside
    /// adaptive sessions (or in non-MPI apps) this is a no-op, so
    /// sprinkling safe points through an application body cannot move a
    /// byte of an unadaptive run.
    pub fn safe_point(&self) {
        if let (Some(ar), Some(comm)) = (&self.adaptive, self.comm) {
            dynprof_vt::confsync(self.vt, &ar.monitor, self.p, comm, ar.write_stats);
        }
    }

    /// Create this process's OpenMP runtime with Guidetrace logging wired
    /// to the trace library.
    pub fn make_omp_runtime(&self) -> OmpRuntime {
        self.make_omp_runtime_with(self.omp_threads)
    }

    /// As [`AppCtx::make_omp_runtime`], with an explicit team size (hybrid
    /// MPI/OpenMP applications choose their own, e.g. Sweep3d in Fig 4).
    pub fn make_omp_runtime_with(&self, threads: usize) -> OmpRuntime {
        OmpRuntime::new(
            self.p,
            format!("{}:{}", self.image.program(), self.rank),
            threads,
            vec![VtOmpHooks::new(Arc::clone(self.vt), self.rank)],
        )
    }
}

/// Body closure type of an application.
pub type AppBody = Arc<dyn Fn(&AppCtx<'_>) + Send + Sync>;

/// A target application, as dynprof sees it.
#[derive(Clone)]
pub struct AppSpec {
    /// Application name (paper Table 2: Smg98, Sppm, Sweep3d, Umt98, ...).
    pub name: String,
    /// Full function manifest (the image symbol table).
    pub functions: Vec<FunctionInfo>,
    /// The "important subset" instrumented by `Subset` and `Dynamic`.
    pub subset: Vec<String>,
    /// Parallel mode.
    pub mode: AppMode,
    /// Per-process body.
    pub body: AppBody,
}

impl AppSpec {
    /// Names of all manifest functions.
    pub fn function_names(&self) -> Vec<String> {
        self.functions.iter().map(|f| f.name.clone()).collect()
    }

    /// Build one process image for this app. `static_instr` selects
    /// whether the Guide compiler inserted entry/exit instrumentation
    /// (paper Table 3 policies `Full`/`Full-Off`/`Subset`).
    pub fn build_image(&self, static_instr: bool) -> Arc<Image> {
        let mut b = dynprof_image::ImageBuilder::new(self.name.clone());
        for f in &self.functions {
            b.add(f.clone().static_instr(static_instr));
        }
        Arc::new(b.build())
    }
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec")
            .field("name", &self.name)
            .field("functions", &self.functions.len())
            .field("subset", &self.subset.len())
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_app() -> AppSpec {
        AppSpec {
            name: "toy".into(),
            functions: vec![FunctionInfo::new("main"), FunctionInfo::new("work")],
            subset: vec!["work".into()],
            mode: AppMode::Mpi { ranks: 4 },
            body: Arc::new(|_| {}),
        }
    }

    #[test]
    fn mode_accessors() {
        assert_eq!(AppMode::Mpi { ranks: 8 }.processes(), 8);
        assert_eq!(AppMode::Mpi { ranks: 8 }.cpus(), 8);
        assert_eq!(AppMode::Omp { threads: 4 }.processes(), 1);
        assert_eq!(AppMode::Omp { threads: 4 }.cpus(), 4);
    }

    #[test]
    fn build_image_respects_static_flag() {
        let app = toy_app();
        let dynamic = app.build_image(false);
        let stat = app.build_image(true);
        assert_eq!(dynamic.len(), 2);
        assert!(
            !dynamic
                .info(dynamic.func("work").unwrap())
                .statically_instrumented
        );
        assert!(
            stat.info(stat.func("work").unwrap())
                .statically_instrumented
        );
    }

    #[test]
    fn function_names_match_manifest() {
        assert_eq!(toy_app().function_names(), vec!["main", "work"]);
    }
}
