//! The DPCL wire protocol between instrumenters and daemons.

use std::sync::Arc;

use dynprof_image::{Image, ProbePoint, Snippet, SnippetId};
use dynprof_sim::sync::SimChannel;
use dynprof_sim::SimTime;

/// Request identifier for matching asynchronous acknowledgements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// Target process identifier within one communication daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TargetId(pub u32);

/// Transaction identifier: one per [`crate::InstrumentationTxn`] attempt.
/// Daemons key their staged-probe sets and journal records by it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

/// One operation staged by a transaction, applied only when the COMMIT
/// arrives.
#[derive(Clone)]
pub(crate) enum StagedOp {
    /// Apply `snippet` at `point` of `target`.
    Install {
        target: TargetId,
        point: ProbePoint,
        snippet: Snippet,
    },
    /// Swap a probe activation table on `target`. The swap itself is a
    /// caller-supplied closure (dpcl stays ignorant of the trace
    /// library's table types); `label` identifies the change in votes
    /// and failure messages. Because the closure only runs at COMMIT,
    /// a partially applied table is impossible: either every
    /// participant's journal commits the epoch and swaps, or none does.
    Activation {
        target: TargetId,
        label: String,
        apply: Arc<dyn Fn() + Send + Sync>,
    },
}

impl StagedOp {
    /// The target process this op applies to.
    pub(crate) fn target(&self) -> TargetId {
        match self {
            StagedOp::Install { target, .. } | StagedOp::Activation { target, .. } => *target,
        }
    }
}

/// Instrumenter → daemon messages.
///
/// `Clone` so the client can keep an idempotent-resend buffer: a request
/// that times out is re-sent byte-for-byte under the **same** [`ReqId`],
/// and the daemon's dedup table makes re-application a no-op.
#[derive(Clone)]
pub(crate) enum DownMsg {
    /// Register a target process image with the daemon.
    Attach {
        req: ReqId,
        target: TargetId,
        image: Arc<Image>,
        name: String,
    },
    /// Insert a snippet at a probe point of a target.
    Install {
        req: ReqId,
        target: TargetId,
        point: ProbePoint,
        snippet: Snippet,
    },
    /// Remove a snippet.
    Remove {
        req: ReqId,
        target: TargetId,
        point: ProbePoint,
        snippet: SnippetId,
    },
    /// Remove all instrumentation from a function (both points).
    RemoveFunction {
        req: ReqId,
        target: TargetId,
        func: dynprof_image::FuncId,
    },
    /// Suspend the target process.
    Suspend { req: ReqId, target: TargetId },
    /// Resume the target process.
    Resume { req: ReqId, target: TargetId },
    /// Stage a batch of installs under a transaction (2PC phase 0). The
    /// daemon journals the ops durably but does not touch the image.
    TxnStage {
        req: ReqId,
        txn: TxnId,
        ops: Vec<StagedOp>,
    },
    /// PREPARE (2PC phase 1): vote on whether the staged ops of `txn`
    /// can be applied. `Ok` acks vote commit; `Error` acks vote abort.
    TxnPrepare { req: ReqId, txn: TxnId, epoch: u64 },
    /// COMMIT (2PC phase 2): apply every staged op of `txn` atomically
    /// with respect to quiesce points, journal the commit, and record
    /// the happens-before apply event under `hb_lib`.
    TxnCommit {
        req: ReqId,
        txn: TxnId,
        epoch: u64,
        hb_lib: u64,
    },
    /// ABORT: discard the staged ops of `txn` and journal the rollback.
    TxnAbort { req: ReqId, txn: TxnId, epoch: u64 },
    /// Tear the daemon down.
    Shutdown { req: ReqId },
}

impl DownMsg {
    /// The request id this message will be acknowledged under.
    pub(crate) fn req_id(&self) -> Option<ReqId> {
        match self {
            DownMsg::Attach { req, .. }
            | DownMsg::Install { req, .. }
            | DownMsg::Remove { req, .. }
            | DownMsg::RemoveFunction { req, .. }
            | DownMsg::Suspend { req, .. }
            | DownMsg::Resume { req, .. }
            | DownMsg::TxnStage { req, .. }
            | DownMsg::TxnPrepare { req, .. }
            | DownMsg::TxnCommit { req, .. }
            | DownMsg::TxnAbort { req, .. }
            | DownMsg::Shutdown { req } => Some(*req),
        }
    }
}

/// Super-daemon requests.
#[derive(Clone)]
pub(crate) enum SuperMsg {
    /// Authenticate `user` and spawn a communication daemon for them.
    Connect {
        req: ReqId,
        user: String,
        reply: Arc<SimChannel<UpMsg>>,
    },
    /// Heartbeat probe from a failure detector: answer with
    /// [`UpMsg::Pong`] carrying the same sequence number. A super daemon
    /// inside a fault-plan crash window never sees the ping — that is
    /// exactly the silence the detector is listening for.
    Ping {
        seq: u64,
        reply: Arc<SimChannel<UpMsg>>,
    },
    /// Tear the super daemon down.
    Shutdown,
}

/// Result payload of an acknowledged request.
#[derive(Clone, Debug, PartialEq)]
pub enum AckResult {
    /// Operation succeeded; `detail` is operation-specific (e.g. the
    /// snippet id of an install, or 1/0 for a removal).
    Ok {
        /// Operation-specific detail value.
        detail: u64,
    },
    /// Operation failed.
    Error {
        /// Failure description.
        message: String,
    },
    /// No acknowledgement arrived within the client's retry budget (the
    /// daemon may be crashed or the link lossy). The request may still
    /// take effect later; re-issuing it under the same [`ReqId`] is safe
    /// (daemon-side dedup).
    TimedOut {
        /// Send attempts made before giving up.
        attempts: u32,
    },
}

impl AckResult {
    /// True for `Ok`.
    pub fn is_ok(&self) -> bool {
        matches!(self, AckResult::Ok { .. })
    }

    /// True for `TimedOut`.
    pub fn is_timeout(&self) -> bool {
        matches!(self, AckResult::TimedOut { .. })
    }
}

/// Daemon → instrumenter messages.
///
/// `Clone` so daemons can remember and re-send the reply to a
/// deduplicated request, and so faulted links can duplicate deliveries.
#[derive(Clone)]
pub enum UpMsg {
    /// Acknowledgement of a request.
    Ack {
        /// The request being acknowledged.
        req: ReqId,
        /// Outcome.
        result: AckResult,
        /// Daemon-local completion time.
        completed_at: SimTime,
    },
    /// Connection established: the per-user communication daemon's inbox.
    Connected {
        /// The connect request.
        req: ReqId,
        /// Node of the daemon.
        node: usize,
        /// Channel for subsequent requests.
        daemon: Arc<SimChannel<DownMsgEnvelope>>,
    },
    /// Authentication failed.
    AuthFailed {
        /// The connect request.
        req: ReqId,
        /// Reason.
        message: String,
    },
    /// An application-initiated callback (e.g. `DPCL_callback()` from an
    /// inserted snippet — the MPI_Init protocol of paper Fig 6).
    Callback {
        /// User-chosen callback tag.
        tag: u64,
        /// User payload (e.g. the rank that reached the callback).
        payload: u64,
    },
    /// Heartbeat answer from a node's super daemon.
    Pong {
        /// The answering node.
        node: usize,
        /// Sequence number echoed from the heartbeat `Ping`.
        seq: u64,
    },
}

/// Envelope hiding the private `DownMsg` from the public channel type.
#[derive(Clone)]
pub struct DownMsgEnvelope(pub(crate) DownMsg);
