//! The DPCL daemons (paper §3.2, Fig 5).
//!
//! "There are two types of DPCL daemons: super daemons and communication
//! daemons. There is exactly one super daemon on each node of the system.
//! The super daemon creates one communication daemon for each user that
//! connects to an application on the node, and also performs user
//! authentication. The communication daemons [...] are attached to the
//! applications and actually perform the dynamic instrumentation."
//!
//! Daemons are simulated processes; every message between an instrumenter
//! and a daemon experiences the machine's daemon delay plus jitter, which
//! is what makes DPCL *asynchronous* — "it is therefore unlikely that
//! inserted code snippets become active in all processes at the same
//! time".

use std::collections::BTreeMap;
use std::sync::Arc;

use dynprof_obs as obs;
use parking_lot::Mutex;

use dynprof_image::{verify_snippet, Image};
use dynprof_sim::sync::SimChannel;
use dynprof_sim::{hb, Proc, SimTime};

use crate::journal::ProbeJournal;
use crate::messages::{
    AckResult, DownMsg, DownMsgEnvelope, ReqId, StagedOp, SuperMsg, TargetId, UpMsg,
};

/// Cost of one super-daemon authentication check.
pub const AUTH_COST: SimTime = SimTime::from_millis(4);
/// Cost of spawning a communication daemon.
pub const SPAWN_DAEMON_COST: SimTime = SimTime::from_millis(25);
/// Cost of restarting a crashed daemon process (exec + reinit).
pub const DAEMON_RESTART_COST: SimTime = SimTime::from_millis(40);
/// Per-target cost of replaying attached state after a daemon restart.
pub const RESTART_REPLAY_COST: SimTime = SimTime::from_millis(2);
/// Cost of durably appending one record to the probe journal.
pub const JOURNAL_WRITE_COST: SimTime = SimTime::from_micros(500);
/// Per-record cost of replaying the probe journal after a restart.
pub const JOURNAL_REPLAY_COST: SimTime = SimTime::from_micros(100);

/// Inline model of a fault-plan daemon crash window: while the virtual
/// clock is inside the window the daemon is down and the message is lost;
/// the first message after the window pays the restart (plus `replay`)
/// before being served. Returns `true` if the message was lost.
fn outage_check(
    p: &Proc,
    outage: Option<(SimTime, SimTime)>,
    restarted: &mut bool,
    replay: SimTime,
) -> bool {
    let Some((start, end)) = outage else {
        return false;
    };
    let now = p.now();
    if now >= start && now < end {
        if obs::enabled() {
            obs::counter("dpcl.daemon_msgs_lost").inc();
        }
        return true;
    }
    if now >= end && !*restarted {
        *restarted = true;
        p.advance(DAEMON_RESTART_COST + replay);
        if obs::enabled() {
            obs::counter("dpcl.daemon_restarts").inc();
        }
    }
    false
}

/// The per-machine daemon infrastructure: lazily-started super daemons
/// and the set of users allowed to connect.
pub struct DpclSystem {
    allowed_users: Vec<String>,
    supers: Mutex<BTreeMap<usize, Arc<SimChannel<SuperMsg>>>>,
    /// Durable probe journals, one per `(node, user)` communication
    /// daemon. Owned by the system (not the daemon process) because the
    /// journal survives daemon crashes — it is the model of a
    /// write-ahead log on the node's local disk.
    journals: Mutex<BTreeMap<(usize, String), Arc<ProbeJournal>>>,
}

impl DpclSystem {
    /// A system that authenticates exactly `allowed_users`.
    pub fn new<S: Into<String>>(allowed_users: impl IntoIterator<Item = S>) -> Arc<DpclSystem> {
        Arc::new(DpclSystem {
            allowed_users: allowed_users.into_iter().map(Into::into).collect(),
            supers: Mutex::new(BTreeMap::new()),
            journals: Mutex::new(BTreeMap::new()),
        })
    }

    /// Number of super daemons currently running.
    pub fn super_daemon_count(&self) -> usize {
        self.supers.lock().len()
    }

    /// The durable journal of `user`'s communication daemon on `node`,
    /// creating it on first use (it outlives daemon restarts).
    pub(crate) fn journal_for(&self, node: usize, user: &str) -> Arc<ProbeJournal> {
        Arc::clone(
            self.journals
                .lock()
                .entry((node, user.to_string()))
                .or_insert_with(|| Arc::new(ProbeJournal::new(node))),
        )
    }

    /// The probe journal of `user`'s communication daemon on `node`, if
    /// one was ever created (inspection: tests, post-run audits).
    pub fn journal(&self, node: usize, user: &str) -> Option<Arc<ProbeJournal>> {
        self.journals.lock().get(&(node, user.to_string())).cloned()
    }

    /// Every journal in the system, sorted by `(node, user)`.
    pub fn journals(&self) -> Vec<Arc<ProbeJournal>> {
        self.journals.lock().values().cloned().collect()
    }

    /// The super daemon inbox for `node`, starting the daemon if needed
    /// (the paper's system starts them at boot; we start on first use).
    pub(crate) fn super_on(self: &Arc<Self>, p: &Proc, node: usize) -> Arc<SimChannel<SuperMsg>> {
        let mut supers = self.supers.lock();
        if let Some(ch) = supers.get(&node) {
            return Arc::clone(ch);
        }
        let inbox: Arc<SimChannel<SuperMsg>> = Arc::new(SimChannel::new_fifo());
        let inbox2 = Arc::clone(&inbox);
        let system = Arc::clone(self);
        p.spawn_child(format!("dpcl-super@{node}"), node, move |dp| {
            super_daemon_loop(dp, &inbox2, &system);
        });
        supers.insert(node, Arc::clone(&inbox));
        inbox
    }

    /// Shut down every super daemon (communication daemons are shut down
    /// by their owning client).
    pub fn shutdown_supers(&self, p: &Proc) {
        let machine = p.machine();
        for ch in self.supers.lock().values() {
            ch.send(
                p,
                SuperMsg::Shutdown,
                machine.daemon.base_delay + p.jitter(machine.daemon.jitter),
            );
        }
    }
}

/// Per-channel message accounting (callers guard with [`obs::enabled`]).
fn note_msg(channel: &'static str) {
    obs::counter(channel).inc();
}

fn super_daemon_loop(dp: &Proc, inbox: &SimChannel<SuperMsg>, system: &Arc<DpclSystem>) {
    let outage = dp
        .fault_plan()
        .and_then(|plan| plan.daemon_outage(dp.node()));
    let mut restarted = outage.is_none();
    // Replies already issued, keyed by request: a retried Connect (the
    // first reply was lost, or slow) re-sends the original outcome instead
    // of authenticating again and spawning a second communication daemon.
    let mut done: BTreeMap<ReqId, UpMsg> = BTreeMap::new();
    loop {
        match inbox.recv(dp) {
            SuperMsg::Connect { req, user, reply } => {
                if outage_check(dp, outage, &mut restarted, SimTime::ZERO) {
                    continue;
                }
                if obs::enabled() {
                    note_msg("dpcl.msgs.connect");
                }
                let machine = dp.machine().clone();
                if let Some(prev) = done.get(&req) {
                    if obs::enabled() {
                        obs::counter("dpcl.dedup_hits").inc();
                    }
                    let delay = machine.daemon.base_delay + dp.jitter(machine.daemon.jitter);
                    reply.send_ctl(dp, prev.clone(), delay);
                    continue;
                }
                dp.advance(AUTH_COST);
                let delay = machine.daemon.base_delay + dp.jitter(machine.daemon.jitter);
                if !system.allowed_users.iter().any(|u| u == &user) {
                    let msg = UpMsg::AuthFailed {
                        req,
                        message: format!("user {user:?} not authorized on node {}", dp.node()),
                    };
                    done.insert(req, msg.clone());
                    reply.send_ctl(dp, msg, delay);
                    continue;
                }
                // Spawn the per-user communication daemon.
                dp.advance(SPAWN_DAEMON_COST);
                let daemon_inbox: Arc<SimChannel<DownMsgEnvelope>> =
                    Arc::new(SimChannel::new_fifo());
                let di2 = Arc::clone(&daemon_inbox);
                let reply2 = Arc::clone(&reply);
                let user2 = user.clone();
                let journal = system.journal_for(dp.node(), &user);
                dp.spawn_child(
                    format!("dpcl-comm@{}:{user}", dp.node()),
                    dp.node(),
                    move |cp| {
                        comm_daemon_loop(cp, &di2, &reply2, &user2, &journal);
                    },
                );
                let msg = UpMsg::Connected {
                    req,
                    node: dp.node(),
                    daemon: daemon_inbox,
                };
                done.insert(req, msg.clone());
                reply.send_ctl(dp, msg, delay);
            }
            SuperMsg::Ping { seq, reply } => {
                // A super daemon inside its crash window never answers —
                // the failure detector interprets the silence.
                if outage_check(dp, outage, &mut restarted, SimTime::ZERO) {
                    continue;
                }
                if obs::enabled() {
                    note_msg("dpcl.msgs.ping");
                }
                let machine = dp.machine().clone();
                let delay = machine.daemon.base_delay + dp.jitter(machine.daemon.jitter);
                reply.send_ctl(
                    dp,
                    UpMsg::Pong {
                        node: dp.node(),
                        seq,
                    },
                    delay,
                );
            }
            SuperMsg::Shutdown => break,
        }
    }
}

fn comm_daemon_loop(
    cp: &Proc,
    inbox: &SimChannel<DownMsgEnvelope>,
    reply: &SimChannel<UpMsg>,
    _user: &str,
    journal: &ProbeJournal,
) {
    let machine = cp.machine().clone();
    let outage = cp
        .fault_plan()
        .and_then(|plan| plan.daemon_outage(cp.node()));
    let mut restarted = outage.is_none();
    // Target registry: image plus the process name (for diagnostics).
    let mut targets: BTreeMap<TargetId, (Arc<Image>, String)> = BTreeMap::new();
    // Results of completed requests: a retried request (its first ack was
    // lost, or slow) is re-acknowledged with the stored result instead of
    // being applied a second time — this is what makes client resends
    // under the same `ReqId` idempotent.
    let mut done: BTreeMap<ReqId, AckResult> = BTreeMap::new();
    let ack = |cp: &Proc, req: ReqId, result: AckResult| {
        let delay = machine.daemon.base_delay + cp.jitter(machine.daemon.jitter);
        reply.send_ctl(
            cp,
            UpMsg::Ack {
                req,
                result,
                completed_at: cp.now(),
            },
            delay,
        );
    };
    let missing = |t: TargetId| AckResult::Error {
        message: format!("no attached target {t:?}"),
    };
    // Patching a running (unsuspended) process is the race the paper's
    // stop/patch/continue protocol exists to avoid; flag it for the
    // happens-before report.
    let note_unsafe = |cp: &Proc, img: &Image, op: &str| {
        if hb::on(cp) && !img.is_suspended() {
            hb::unsafe_patch(cp, &format!("{op} on running image {:?}", img.program()));
        }
    };
    loop {
        let msg = inbox.recv(cp).0;
        // Job teardown reaps the daemon process whether or not it is
        // inside a crash window — a crashed daemon just can't acknowledge.
        // Without this, a Shutdown swallowed by the outage would leave the
        // loop blocked forever and deadlock the simulation.
        if matches!(msg, DownMsg::Shutdown { .. }) {
            if let Some((start, end)) = outage {
                if cp.now() >= start && cp.now() < end {
                    break;
                }
            }
        }
        let was_restarted = restarted;
        if outage_check(
            cp,
            outage,
            &mut restarted,
            SimTime::from_nanos(RESTART_REPLAY_COST.as_nanos() * targets.len() as u64),
        ) {
            continue;
        }
        if restarted && !was_restarted {
            // Back from the crash window: replay the probe journal to
            // re-synchronize with the last committed epoch before serving
            // the first post-restart request.
            let records = journal.replay();
            cp.advance(SimTime::from_nanos(
                JOURNAL_REPLAY_COST.as_nanos() * records as u64,
            ));
            if obs::enabled() {
                obs::counter("dpcl.journal.replays").inc();
                obs::counter("dpcl.journal.replayed_records").add(records as u64);
            }
        }
        if let Some(req) = msg.req_id() {
            if let Some(prev) = done.get(&req) {
                if obs::enabled() {
                    obs::counter("dpcl.dedup_hits").inc();
                }
                ack(cp, req, prev.clone());
                continue;
            }
        }
        if obs::enabled() {
            note_msg(match &msg {
                DownMsg::Attach { .. } => "dpcl.msgs.attach",
                DownMsg::Install { .. } => "dpcl.msgs.install",
                DownMsg::Remove { .. } => "dpcl.msgs.remove",
                DownMsg::RemoveFunction { .. } => "dpcl.msgs.remove_function",
                DownMsg::Suspend { .. } => "dpcl.msgs.suspend",
                DownMsg::Resume { .. } => "dpcl.msgs.resume",
                DownMsg::TxnStage { .. } => "dpcl.msgs.txn_stage",
                DownMsg::TxnPrepare { .. } => "dpcl.msgs.txn_prepare",
                DownMsg::TxnCommit { .. } => "dpcl.msgs.txn_commit",
                DownMsg::TxnAbort { .. } => "dpcl.msgs.txn_abort",
                DownMsg::Shutdown { .. } => "dpcl.msgs.shutdown",
            });
        }
        let (req, result) = match msg {
            DownMsg::Attach {
                req,
                target,
                image,
                name,
            } => {
                cp.advance(machine.daemon.attach_cost);
                targets.insert(target, (image, name));
                (req, AckResult::Ok { detail: 0 })
            }
            DownMsg::Install {
                req,
                target,
                point,
                snippet,
            } => match targets.get(&target) {
                Some((img, _name)) => {
                    cp.advance(machine.daemon.patch_cost);
                    note_unsafe(cp, img, "install");
                    // Snippets carrying a typed IR program must verify
                    // before the patch is attempted (paper §5's "know what
                    // the snippet can do before it runs" safety story).
                    match verify_snippet(&snippet) {
                        Err(message) => {
                            if obs::enabled() {
                                obs::counter("dpcl.installs_rejected").inc();
                            }
                            (req, AckResult::Error { message })
                        }
                        Ok(()) => match img.try_insert(point, snippet) {
                            Ok(id) => (req, AckResult::Ok { detail: id.0 }),
                            Err(e) => (
                                req,
                                AckResult::Error {
                                    message: e.to_string(),
                                },
                            ),
                        },
                    }
                }
                None => (req, missing(target)),
            },
            DownMsg::Remove {
                req,
                target,
                point,
                snippet,
            } => match targets.get(&target) {
                Some((img, _name)) => {
                    cp.advance(machine.daemon.patch_cost);
                    note_unsafe(cp, img, "remove");
                    let removed = img.remove(point, snippet);
                    (
                        req,
                        AckResult::Ok {
                            detail: u64::from(removed),
                        },
                    )
                }
                None => (req, missing(target)),
            },
            DownMsg::RemoveFunction { req, target, func } => match targets.get(&target) {
                Some((img, _name)) => {
                    cp.advance(machine.daemon.patch_cost);
                    note_unsafe(cp, img, "remove_function");
                    let n = img.remove_function_instr(func);
                    (req, AckResult::Ok { detail: n as u64 })
                }
                None => (req, missing(target)),
            },
            DownMsg::Suspend { req, target } => match targets.get(&target) {
                Some((img, _name)) => {
                    img.suspend(cp);
                    (req, AckResult::Ok { detail: 0 })
                }
                None => (req, missing(target)),
            },
            DownMsg::Resume { req, target } => match targets.get(&target) {
                Some((img, _name)) => {
                    img.resume(cp, SimTime::ZERO);
                    (req, AckResult::Ok { detail: 0 })
                }
                None => (req, missing(target)),
            },
            DownMsg::TxnStage { req, txn, ops } => {
                // Journal only — the image is untouched until COMMIT, so a
                // quiesce point can never observe a staged-but-undecided op.
                cp.advance(JOURNAL_WRITE_COST);
                let n = journal.stage(cp.now(), txn, ops);
                (req, AckResult::Ok { detail: n as u64 })
            }
            DownMsg::TxnPrepare { req, txn, epoch } => {
                cp.advance(JOURNAL_WRITE_COST);
                let vote = match journal.staged_ops(txn) {
                    None => Some(format!(
                        "vote abort: nothing staged for {txn:?} on node {}",
                        cp.node()
                    )),
                    // Validate every staged op before voting yes: the
                    // target must be attached, and a staged install must
                    // both verify (IR programs) and be a safe patch
                    // (size, branch-into-patch CFG hazard) on its target.
                    Some(ops) => ops.iter().find_map(|op| {
                        let target = op.target();
                        let Some((img, _name)) = targets.get(&target) else {
                            return Some(format!("vote abort: no attached target {target:?}"));
                        };
                        if let StagedOp::Install { point, snippet, .. } = op {
                            if let Err(e) = verify_snippet(snippet) {
                                return Some(format!("vote abort: {e}"));
                            }
                            if let Err(e) = img.validate_patch(*point, snippet) {
                                return Some(format!("vote abort: {e}"));
                            }
                        }
                        None
                    }),
                };
                match vote {
                    None => {
                        journal.prepare(cp.now(), txn, epoch);
                        (req, AckResult::Ok { detail: epoch })
                    }
                    Some(message) => (req, AckResult::Error { message }),
                }
            }
            DownMsg::TxnCommit {
                req,
                txn,
                epoch,
                hb_lib,
            } => {
                cp.advance(JOURNAL_WRITE_COST);
                match journal.commit(cp.now(), txn, epoch) {
                    Some(ops) => {
                        let mut applied: u64 = 0;
                        let mut first_err: Option<String> = None;
                        for op in ops {
                            let target = op.target();
                            match (targets.get(&target), op) {
                                (Some((img, _name)), StagedOp::Install { point, snippet, .. }) => {
                                    cp.advance(machine.daemon.patch_cost);
                                    note_unsafe(cp, img, "txn_commit");
                                    match img.try_insert(point, snippet) {
                                        Ok(_) => applied += 1,
                                        Err(e) => {
                                            first_err.get_or_insert_with(|| e.to_string());
                                        }
                                    }
                                }
                                (Some(_), StagedOp::Activation { apply, .. }) => {
                                    // A table swap is a data write, not a
                                    // code patch: charged like one patch,
                                    // but no trampoline is minted and no
                                    // quiesce hazard arises.
                                    cp.advance(machine.daemon.patch_cost);
                                    apply();
                                    applied += 1;
                                }
                                (None, op) => {
                                    let what = match &op {
                                        StagedOp::Install { .. } => "install".to_string(),
                                        StagedOp::Activation { label, .. } => {
                                            format!("activation {label:?}")
                                        }
                                    };
                                    first_err.get_or_insert_with(|| {
                                        format!("no attached target {target:?} for {what}")
                                    });
                                }
                            }
                        }
                        if hb::on(cp) {
                            hb::epoch_apply(cp, hb_lib, epoch);
                        }
                        match first_err {
                            // PREPARE validated every op, so a commit-time
                            // failure means the world changed between the
                            // vote and the decision — surface it loudly.
                            Some(message) => (
                                req,
                                AckResult::Error {
                                    message: format!(
                                        "commit of epoch {epoch} applied {applied} ops then failed: {message}"
                                    ),
                                },
                            ),
                            None => (req, AckResult::Ok { detail: applied }),
                        }
                    }
                    None => (
                        req,
                        AckResult::Error {
                            message: format!(
                                "commit for unknown {txn:?} on node {} (nothing staged)",
                                cp.node()
                            ),
                        },
                    ),
                }
            }
            DownMsg::TxnAbort { req, txn, epoch } => {
                cp.advance(JOURNAL_WRITE_COST);
                let discarded = journal.abort(cp.now(), txn, epoch);
                (
                    req,
                    AckResult::Ok {
                        detail: discarded as u64,
                    },
                )
            }
            DownMsg::Shutdown { req } => {
                ack(cp, req, AckResult::Ok { detail: 0 });
                break;
            }
        };
        done.insert(req, result.clone());
        ack(cp, req, result);
    }
}
