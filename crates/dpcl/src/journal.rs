//! Per-daemon probe journals.
//!
//! A communication daemon participating in an instrumentation transaction
//! must not forget its staged probes when it crashes: the coordinator's
//! COMMIT may arrive *after* the daemon's crash window closes, and the
//! commit must still apply everything that was staged — otherwise the job
//! ends up partially instrumented, which is the one state the 2PC control
//! plane exists to rule out.
//!
//! The journal is the daemon's durable store (modelled as surviving the
//! crash, like a write-ahead log on local disk): every stage, vote,
//! commit, and abort is appended, and a daemon returning from an outage
//! window *replays* the journal — paying a per-record replay cost — to
//! re-synchronize with the last committed epoch before serving the first
//! post-restart request.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use dynprof_sim::SimTime;

use crate::messages::{StagedOp, TxnId};

/// Lifecycle phase of one transaction, as this daemon saw it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnPhase {
    /// Ops staged; no vote requested yet.
    Staged,
    /// Voted commit at PREPARE; awaiting the coordinator's decision.
    Prepared,
    /// COMMIT applied; the staged ops are live in the image.
    Committed,
    /// ABORT processed; the staged ops were discarded.
    Aborted,
}

/// One journal record (public projection — op payloads stay internal).
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// Daemon-local virtual time of the append.
    pub at: SimTime,
    /// The transaction the record belongs to.
    pub txn: TxnId,
    /// Phase recorded.
    pub phase: TxnPhase,
    /// Phase-specific detail: staged-op count for `Staged`, the epoch
    /// number for the other phases.
    pub detail: u64,
}

#[derive(Default)]
struct JournalInner {
    records: Vec<JournalEntry>,
    /// Staged op payloads per open transaction (removed on commit/abort).
    staged: BTreeMap<TxnId, Vec<StagedOp>>,
    /// Latest phase per transaction.
    phase: BTreeMap<TxnId, TxnPhase>,
    /// Epochs committed through this daemon, in commit order.
    committed: Vec<u64>,
    /// Journal replays performed after crash-window restarts.
    replays: u64,
}

/// The durable journal of one `(node, user)` communication daemon.
pub struct ProbeJournal {
    node: usize,
    inner: Mutex<JournalInner>,
}

impl ProbeJournal {
    pub(crate) fn new(node: usize) -> ProbeJournal {
        ProbeJournal {
            node,
            inner: Mutex::new(JournalInner::default()),
        }
    }

    /// The node this journal's daemon runs on.
    pub fn node(&self) -> usize {
        self.node
    }

    fn append(&self, g: &mut JournalInner, at: SimTime, txn: TxnId, phase: TxnPhase, detail: u64) {
        g.records.push(JournalEntry {
            at,
            txn,
            phase,
            detail,
        });
        g.phase.insert(txn, phase);
    }

    /// Journal a staged batch. Re-staging the same transaction replaces
    /// the previous batch (idempotent client resends).
    pub(crate) fn stage(&self, at: SimTime, txn: TxnId, ops: Vec<StagedOp>) -> usize {
        let mut g = self.inner.lock();
        let n = ops.len();
        g.staged.insert(txn, ops);
        self.append(&mut g, at, txn, TxnPhase::Staged, n as u64);
        n
    }

    /// The staged op payloads of `txn`, if any (PREPARE validation).
    pub(crate) fn staged_ops(&self, txn: TxnId) -> Option<Vec<StagedOp>> {
        self.inner.lock().staged.get(&txn).cloned()
    }

    /// Journal a commit vote. Returns `false` (vote abort) when the
    /// transaction has no staged ops here — e.g. the stage message was
    /// lost and never retried successfully.
    pub(crate) fn prepare(&self, at: SimTime, txn: TxnId, epoch: u64) -> bool {
        let mut g = self.inner.lock();
        if !g.staged.contains_key(&txn) {
            return false;
        }
        self.append(&mut g, at, txn, TxnPhase::Prepared, epoch);
        true
    }

    /// Journal the commit and hand the staged ops to the daemon for
    /// application. `None` if the transaction has nothing staged (or was
    /// already finished — the daemon's dedup table normally catches that
    /// first).
    pub(crate) fn commit(&self, at: SimTime, txn: TxnId, epoch: u64) -> Option<Vec<StagedOp>> {
        let mut g = self.inner.lock();
        let ops = g.staged.remove(&txn)?;
        self.append(&mut g, at, txn, TxnPhase::Committed, epoch);
        g.committed.push(epoch);
        Some(ops)
    }

    /// Journal the rollback and discard the staged ops. Returns the
    /// number of ops discarded (0 when nothing was staged — aborting an
    /// unknown transaction is a no-op, so abort is always safe to send).
    pub(crate) fn abort(&self, at: SimTime, txn: TxnId, epoch: u64) -> usize {
        let mut g = self.inner.lock();
        let n = g.staged.remove(&txn).map(|v| v.len()).unwrap_or(0);
        self.append(&mut g, at, txn, TxnPhase::Aborted, epoch);
        n
    }

    /// Replay after a crash-window restart: re-synchronize with the last
    /// committed epoch. Returns the number of records replayed (the
    /// caller charges the per-record replay cost).
    pub(crate) fn replay(&self) -> usize {
        let mut g = self.inner.lock();
        g.replays += 1;
        g.records.len()
    }

    /// All records, in append order.
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.inner.lock().records.clone()
    }

    /// The latest phase this daemon recorded for `txn`.
    pub fn phase(&self, txn: TxnId) -> Option<TxnPhase> {
        self.inner.lock().phase.get(&txn).copied()
    }

    /// Epochs committed through this daemon, in commit order.
    pub fn committed_epochs(&self) -> Vec<u64> {
        self.inner.lock().committed.clone()
    }

    /// The last committed epoch, if any commit ever landed here.
    pub fn last_committed_epoch(&self) -> Option<u64> {
        self.inner.lock().committed.last().copied()
    }

    /// Transactions staged or prepared but neither committed nor aborted.
    /// Their ops are inert — they can never reach an image without a
    /// COMMIT — but a lingering entry usually means a coordinator died
    /// mid-protocol.
    pub fn open_txns(&self) -> Vec<TxnId> {
        let g = self.inner.lock();
        g.staged.keys().copied().collect()
    }

    /// How many crash-window replays this journal served.
    pub fn replay_count(&self) -> u64 {
        self.inner.lock().replays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_image::{ProbePoint, Snippet};

    fn op() -> StagedOp {
        StagedOp::Install {
            target: crate::TargetId(1),
            point: ProbePoint::entry(dynprof_image::FuncId(0)),
            snippet: Snippet::noop("n"),
        }
    }

    #[test]
    fn lifecycle_is_journaled_in_order() {
        let j = ProbeJournal::new(2);
        let t = TxnId(1);
        assert_eq!(j.stage(SimTime::from_millis(1), t, vec![op(), op()]), 2);
        assert!(j.prepare(SimTime::from_millis(2), t, 7));
        let ops = j.commit(SimTime::from_millis(3), t, 7).expect("staged");
        assert_eq!(ops.len(), 2);
        assert_eq!(j.last_committed_epoch(), Some(7));
        assert_eq!(j.phase(t), Some(TxnPhase::Committed));
        let phases: Vec<TxnPhase> = j.entries().iter().map(|e| e.phase).collect();
        assert_eq!(
            phases,
            vec![TxnPhase::Staged, TxnPhase::Prepared, TxnPhase::Committed]
        );
        assert!(j.open_txns().is_empty());
    }

    #[test]
    fn prepare_without_stage_votes_abort() {
        let j = ProbeJournal::new(0);
        assert!(!j.prepare(SimTime::ZERO, TxnId(9), 1));
        assert!(j.commit(SimTime::ZERO, TxnId(9), 1).is_none());
    }

    #[test]
    fn abort_discards_staged_ops_and_tolerates_unknown_txns() {
        let j = ProbeJournal::new(0);
        let t = TxnId(3);
        j.stage(SimTime::ZERO, t, vec![op()]);
        assert_eq!(j.abort(SimTime::from_millis(1), t, 4), 1);
        assert!(j.commit(SimTime::from_millis(2), t, 4).is_none());
        assert_eq!(j.abort(SimTime::from_millis(3), TxnId(99), 4), 0);
        assert_eq!(j.phase(t), Some(TxnPhase::Aborted));
    }

    #[test]
    fn replay_counts_records() {
        let j = ProbeJournal::new(1);
        j.stage(SimTime::ZERO, TxnId(1), vec![op()]);
        assert_eq!(j.replay(), 1);
        j.stage(SimTime::ZERO, TxnId(2), vec![op()]);
        assert_eq!(j.replay(), 2);
        assert_eq!(j.replay_count(), 2);
    }
}
