//! Transactional instrumentation epochs: a two-phase-commit control plane.
//!
//! The paper's instrumentation protocol (§3.4) suspends every process,
//! patches, and resumes — but under daemon crashes and lossy control
//! links a naive multicast of install requests can leave the job
//! *partially instrumented*: some ranks counting, some not, and every
//! subsequent figure silently wrong. [`InstrumentationTxn`] rules that
//! state out:
//!
//! 1. **Validate** — an optional caller-supplied validator (normally
//!    `dynprof-check`'s static analyzer, injected as a closure to keep
//!    the crate graph acyclic) inspects the probe plan; any
//!    [`Severity::Error`] finding aborts client-side before a single
//!    message is sent.
//! 2. **Stage** — every participating daemon journals the batch durably
//!    ([`crate::ProbeJournal`]); images are untouched, so a quiesce point
//!    can never observe a staged-but-undecided op.
//! 3. **Prepare** — each daemon votes under a shared absolute deadline on
//!    the virtual clock. Silence is a vote: a daemon inside a fault-plan
//!    crash window simply fails to answer.
//! 4. **Commit / abort** — unanimous yes commits everywhere (the commit
//!    send outlives any crash window via the client's retry budget);
//!    anything else rolls back per the [`DegradedPolicy`].
//!
//! With no fault plan (or an inert one) the transaction takes a **fast
//! path** that issues byte-identical plain installs — same messages, same
//! RNG draws, same counters — so enabling transactions without faults
//! cannot move a single golden byte.

use std::collections::BTreeMap;

use dynprof_obs as obs;

use dynprof_image::{ProbePoint, Snippet};
use dynprof_sim::hb::{self, Finding, Severity};
use dynprof_sim::{Proc, SimTime};

use crate::client::{DpclClient, ProcessHandle};
use crate::heartbeat::{HeartbeatMonitor, NodeHealth};
use crate::messages::{AckResult, ReqId, StagedOp, TxnId};

/// What a coordinator does when a participant fails to vote yes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradedPolicy {
    /// Roll the whole transaction back: the job stays uninstrumented
    /// rather than partially observed. The conservative default.
    AbortTxn,
    /// Commit on the surviving nodes and exclude the failed ones; the
    /// run is marked degraded so figure output can label it.
    ExcludeNode,
}

impl DegradedPolicy {
    /// Parse a CLI spelling (`abort-txn` / `exclude-node`).
    pub fn parse(s: &str) -> Option<DegradedPolicy> {
        match s {
            "abort-txn" | "abort" => Some(DegradedPolicy::AbortTxn),
            "exclude-node" | "exclude" => Some(DegradedPolicy::ExcludeNode),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn label(&self) -> &'static str {
        match self {
            DegradedPolicy::AbortTxn => "abort-txn",
            DegradedPolicy::ExcludeNode => "exclude-node",
        }
    }
}

/// Coordinator tuning.
#[derive(Clone, Copy, Debug)]
pub struct TxnOptions {
    /// Reaction to a failed participant.
    pub policy: DegradedPolicy,
    /// PREPARE vote deadline, shared (absolute) across all participants.
    /// Must exceed one daemon round trip; 500ms also spans the fault
    /// profiles' 400ms daemon downtime, so a node that crashes *and
    /// recovers* mid-vote can still answer.
    pub vote_timeout: SimTime,
}

impl Default for TxnOptions {
    fn default() -> TxnOptions {
        TxnOptions {
            policy: DegradedPolicy::AbortTxn,
            vote_timeout: SimTime::from_millis(500),
        }
    }
}

/// One participant's PREPARE vote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Vote {
    /// Staged ops validated; ready to apply.
    Yes,
    /// Daemon refused (reason attached).
    No(String),
    /// No answer before the vote deadline.
    Timeout,
}

/// How a transaction ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Every participant applied the epoch.
    Committed,
    /// Committed on the surviving nodes only ([`DegradedPolicy::ExcludeNode`]).
    CommittedDegraded {
        /// Nodes rolled back and left uninstrumented.
        excluded: Vec<usize>,
    },
    /// Rolled back everywhere; no image was touched.
    Aborted {
        /// Why the coordinator aborted.
        reason: String,
    },
    /// The pre-flight validator found errors; nothing was sent.
    ValidationFailed {
        /// Rendered error findings.
        errors: Vec<String>,
    },
}

/// The coordinator's account of one transaction.
#[derive(Debug)]
pub struct TxnReport {
    /// Transaction id (zero on the fast path and validation failures —
    /// neither mints one).
    pub txn: TxnId,
    /// Epoch number carried by commit/abort messages.
    pub epoch: u64,
    /// Terminal state.
    pub outcome: TxnOutcome,
    /// PREPARE votes, one per participating node (2PC path only).
    pub votes: Vec<(usize, Vote)>,
    /// Nodes whose commit/abort ack never arrived even after the full
    /// retry budget. The decision was *sent* (and resent); the journals
    /// on those nodes decide what actually happened.
    pub unconfirmed: Vec<usize>,
    /// Validator findings (errors and warnings).
    pub findings: Vec<Finding>,
    /// Per-op apply failures (messages from daemons).
    pub op_failures: Vec<String>,
    /// Ops successfully applied across all nodes.
    pub applied: u64,
    /// Virtual time from `execute` entry to return.
    pub latency: SimTime,
    /// True when the full 2PC protocol ran (false: inert fast path).
    pub two_phase: bool,
}

impl TxnReport {
    /// Did instrumentation land (fully or degraded)?
    pub fn is_committed(&self) -> bool {
        matches!(
            self.outcome,
            TxnOutcome::Committed | TxnOutcome::CommittedDegraded { .. }
        )
    }

    /// Nodes excluded by degraded-mode recovery (empty unless degraded).
    pub fn excluded(&self) -> &[usize] {
        match &self.outcome {
            TxnOutcome::CommittedDegraded { excluded } => excluded,
            _ => &[],
        }
    }
}

/// A transactional batch of probe installs across many nodes.
///
/// Build with [`InstrumentationTxn::stage_install`] (insertion order is
/// preserved — the fast path replays it exactly), then run with
/// [`InstrumentationTxn::execute`].
pub struct InstrumentationTxn {
    opts: TxnOptions,
    /// `(node, op)` in staging order.
    staged: Vec<(usize, StagedOp)>,
}

impl InstrumentationTxn {
    /// An empty transaction with the given options.
    pub fn new(opts: TxnOptions) -> InstrumentationTxn {
        InstrumentationTxn {
            opts,
            staged: Vec::new(),
        }
    }

    /// Queue an install of `snippet` at `point` of `h`. Nothing is sent
    /// until [`InstrumentationTxn::execute`].
    pub fn stage_install(&mut self, h: &ProcessHandle, point: ProbePoint, snippet: Snippet) {
        self.staged.push((
            h.node,
            StagedOp::Install {
                target: h.target,
                point,
                snippet,
            },
        ));
    }

    /// Queue an activation-table swap on `h`: `apply` runs at COMMIT on
    /// the daemon owning the target (after its journal records the epoch),
    /// so the table either changes everywhere the transaction commits or
    /// nowhere. `label` names the change in votes and failure messages.
    pub fn stage_activation(
        &mut self,
        h: &ProcessHandle,
        label: impl Into<String>,
        apply: std::sync::Arc<dyn Fn() + Send + Sync>,
    ) {
        self.staged.push((
            h.node,
            StagedOp::Activation {
                target: h.target,
                label: label.into(),
                apply,
            },
        ));
    }

    /// Ops staged so far.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Participating nodes, ascending and deduplicated.
    pub fn nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.staged.iter().map(|(n, _)| *n).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Run the transaction to completion on the coordinator process `p`.
    ///
    /// `validator` (normally `dynprof-check`'s analyzer, closed over the
    /// caller's probe plan) gates the whole protocol; `monitor` lets the
    /// coordinator act on heartbeat verdicts *before* wasting a vote
    /// round on a node already declared dead.
    pub fn execute(
        self,
        p: &Proc,
        client: &DpclClient,
        validator: Option<&dyn Fn() -> Vec<Finding>>,
        monitor: Option<&HeartbeatMonitor>,
    ) -> TxnReport {
        let start = p.now();
        let elapsed = |p: &Proc| p.now().saturating_sub(start);

        // Phase 0: client-side pre-validation. Errors abort before any
        // message leaves the coordinator.
        let findings = validator.map(|v| v()).unwrap_or_default();
        let errors: Vec<String> = findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .map(|f| f.to_string())
            .collect();
        if !errors.is_empty() {
            if obs::enabled() {
                obs::counter("dpcl.txn.validation_failures").inc();
            }
            return TxnReport {
                txn: TxnId(0),
                epoch: 0,
                outcome: TxnOutcome::ValidationFailed { errors },
                votes: Vec::new(),
                unconfirmed: Vec::new(),
                findings,
                op_failures: Vec::new(),
                applied: 0,
                latency: elapsed(p),
                two_phase: false,
            };
        }

        // Fast path: with no fault plan (or an inert one) there is nothing
        // 2PC can protect against, and the whole point is to change *zero*
        // bytes of undisturbed runs. Issue the exact message sequence the
        // untransacted client would: plain installs, then one wait.
        let inert = p.fault_plan().is_none_or(|plan| plan.is_inert());
        if inert {
            // Installs go over the wire exactly as the untransacted
            // client would send them; activation swaps (pure data writes)
            // apply directly — with no faults possible there is nothing
            // for the daemon-side commit to protect.
            let mut applied = 0u64;
            let mut op_failures = Vec::new();
            let mut reqs: Vec<(usize, ReqId)> = Vec::new();
            for (node, op) in &self.staged {
                match op {
                    StagedOp::Install { .. } => {
                        reqs.push((*node, client.install_raw(p, *node, op.clone())));
                    }
                    StagedOp::Activation { apply, .. } => {
                        apply();
                        applied += 1;
                    }
                }
            }
            for (node, req) in reqs {
                match client.wait_ack(p, req) {
                    AckResult::Ok { .. } => applied += 1,
                    AckResult::Error { message } => op_failures.push(message),
                    AckResult::TimedOut { attempts } => op_failures.push(format!(
                        "install on node {node} unacknowledged after {attempts} attempts"
                    )),
                }
            }
            return TxnReport {
                txn: TxnId(0),
                epoch: 0,
                outcome: TxnOutcome::Committed,
                votes: Vec::new(),
                unconfirmed: Vec::new(),
                findings,
                op_failures,
                applied,
                latency: elapsed(p),
                two_phase: false,
            };
        }

        // Full 2PC path.
        let (txn, epoch) = client.next_txn_epoch();
        let hb_lib = hb::unique_id();
        if obs::enabled() {
            obs::counter("dpcl.txn.started").inc();
            obs::counter("dpcl.txn.staged_ops").add(self.staged.len() as u64);
        }

        let mut by_node: BTreeMap<usize, Vec<StagedOp>> = BTreeMap::new();
        for (node, op) in self.staged {
            by_node.entry(node).or_default().push(op);
        }

        let mut votes: Vec<(usize, Vote)> = Vec::new();
        let mut unconfirmed: Vec<usize> = Vec::new();
        let mut op_failures: Vec<String> = Vec::new();
        let mut excluded: Vec<usize> = Vec::new();

        // Heartbeat pre-check: don't waste a vote round on a node the
        // failure detector already declared dead.
        if let Some(m) = monitor {
            for &node in by_node.keys() {
                if m.health(node) == Some(NodeHealth::Dead) {
                    match self.opts.policy {
                        DegradedPolicy::AbortTxn => {
                            if obs::enabled() {
                                obs::counter("dpcl.txn.aborts").inc();
                            }
                            return TxnReport {
                                txn,
                                epoch,
                                outcome: TxnOutcome::Aborted {
                                    reason: format!("node {node} declared dead by heartbeat"),
                                },
                                votes,
                                unconfirmed,
                                findings,
                                op_failures,
                                applied: 0,
                                latency: elapsed(p),
                                two_phase: true,
                            };
                        }
                        DegradedPolicy::ExcludeNode => excluded.push(node),
                    }
                }
            }
            for node in &excluded {
                by_node.remove(node);
            }
        }

        // Phase 1a: STAGE. Durable journal writes on every participant;
        // the client's retry budget makes delivery effectively reliable
        // (idempotent resends under the same ReqId).
        let stage_reqs: Vec<(usize, ReqId)> = by_node
            .iter()
            .map(|(&node, ops)| (node, client.txn_stage(p, node, txn, ops.clone())))
            .collect();
        let mut stage_failed: Vec<(usize, String)> = Vec::new();
        for (node, req) in stage_reqs {
            match client.wait_ack(p, req) {
                AckResult::Ok { .. } => {}
                AckResult::Error { message } => stage_failed.push((node, message)),
                AckResult::TimedOut { attempts } => stage_failed.push((
                    node,
                    format!("stage unacknowledged after {attempts} attempts"),
                )),
            }
        }
        for (node, reason) in &stage_failed {
            votes.push((*node, Vote::No(format!("stage failed: {reason}"))));
        }

        // Phase 1b: PREPARE. One shared absolute deadline; no resends —
        // silence is the vote.
        let voters: Vec<usize> = by_node
            .keys()
            .copied()
            .filter(|n| !stage_failed.iter().any(|(f, _)| f == n))
            .collect();
        let prepare_reqs: Vec<(usize, ReqId)> = voters
            .iter()
            .map(|&node| (node, client.txn_prepare(p, node, txn, epoch)))
            .collect();
        let deadline = p.now() + self.opts.vote_timeout;
        for (node, req) in prepare_reqs {
            let vote = match client.wait_ack_until(p, req, deadline) {
                Some(AckResult::Ok { .. }) => Vote::Yes,
                Some(AckResult::Error { message }) => Vote::No(message),
                Some(AckResult::TimedOut { .. }) | None => {
                    if obs::enabled() {
                        obs::counter("dpcl.txn.vote_timeouts").inc();
                    }
                    Vote::Timeout
                }
            };
            votes.push((node, vote));
        }
        votes.sort_by_key(|(n, _)| *n);

        let yes_nodes: Vec<usize> = votes
            .iter()
            .filter(|(_, v)| *v == Vote::Yes)
            .map(|(n, _)| *n)
            .collect();
        let failed_nodes: Vec<usize> = votes
            .iter()
            .filter(|(_, v)| *v != Vote::Yes)
            .map(|(n, _)| *n)
            .collect();
        let unanimous = failed_nodes.is_empty() && excluded.is_empty();

        // Decision. Commit requires unanimity (or ExcludeNode survivors);
        // the hb record is made *before* the first commit send so the
        // checker can prove decision-happens-before-every-apply.
        let commit_to: Vec<usize>;
        let abort_to: Vec<usize>;
        let outcome: TxnOutcome;
        if unanimous {
            commit_to = yes_nodes;
            abort_to = Vec::new();
            outcome = TxnOutcome::Committed;
        } else {
            match self.opts.policy {
                DegradedPolicy::AbortTxn => {
                    let reason = votes
                        .iter()
                        .find(|(_, v)| *v != Vote::Yes)
                        .map(|(n, v)| format!("node {n} voted {v:?}"))
                        .unwrap_or_else(|| "excluded node".to_string());
                    commit_to = Vec::new();
                    // Roll back everyone we staged on — including yes
                    // voters and silent nodes (their journals may hold
                    // staged ops even though the ack was lost).
                    abort_to = by_node.keys().copied().collect();
                    outcome = TxnOutcome::Aborted { reason };
                }
                DegradedPolicy::ExcludeNode => {
                    excluded.extend(failed_nodes.iter().copied());
                    excluded.sort_unstable();
                    excluded.dedup();
                    if yes_nodes.is_empty() {
                        commit_to = Vec::new();
                        abort_to = by_node.keys().copied().collect();
                        outcome = TxnOutcome::Aborted {
                            reason: "no node voted yes".to_string(),
                        };
                    } else {
                        commit_to = yes_nodes;
                        abort_to = failed_nodes;
                        outcome = TxnOutcome::CommittedDegraded {
                            excluded: excluded.clone(),
                        };
                    }
                }
            }
        }

        let mut applied = 0u64;
        if commit_to.is_empty() {
            // Global abort: record it so any later apply of this epoch is
            // a checker error, then roll back every staged participant.
            hb::epoch_abort(p, hb_lib, epoch);
        } else {
            hb::epoch_decision(p, hb_lib, epoch);
            let reqs: Vec<(usize, ReqId)> = commit_to
                .iter()
                .map(|&node| (node, client.txn_commit(p, node, txn, epoch, hb_lib)))
                .collect();
            for (node, req) in reqs {
                match client.wait_ack(p, req) {
                    AckResult::Ok { detail } => applied += detail,
                    AckResult::Error { message } => op_failures.push(message),
                    AckResult::TimedOut { .. } => unconfirmed.push(node),
                }
            }
        }
        if !abort_to.is_empty() {
            let reqs: Vec<(usize, ReqId)> = abort_to
                .iter()
                .map(|&node| (node, client.txn_abort(p, node, txn, epoch)))
                .collect();
            // Full-budget waits: the rollback must clear the journals so
            // no transaction is left open (the chaos suite asserts this),
            // and the retry budget outlives every crash window.
            for (node, req) in reqs {
                match client.wait_ack(p, req) {
                    AckResult::Ok { .. } | AckResult::Error { .. } => {}
                    AckResult::TimedOut { .. } => unconfirmed.push(node),
                }
            }
        }

        if obs::enabled() {
            match &outcome {
                TxnOutcome::Committed => obs::counter("dpcl.txn.commits").inc(),
                TxnOutcome::CommittedDegraded { excluded } => {
                    obs::counter("dpcl.txn.commits").inc();
                    obs::counter("dpcl.txn.degraded").inc();
                    obs::counter("dpcl.txn.excluded_nodes").add(excluded.len() as u64);
                }
                TxnOutcome::Aborted { .. } => obs::counter("dpcl.txn.aborts").inc(),
                TxnOutcome::ValidationFailed { .. } => {}
            }
            obs::histogram("dpcl.txn.latency_ns").record(elapsed(p).as_nanos());
        }

        TxnReport {
            txn,
            epoch,
            outcome,
            votes,
            unconfirmed,
            findings,
            op_failures,
            applied,
            latency: elapsed(p),
            two_phase: true,
        }
    }
}
