//! The instrumenter-side DPCL client API.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use dynprof_obs as obs;
use parking_lot::Mutex;

use dynprof_image::{FuncId, Image, ProbePoint, Snippet, SnippetId};
use dynprof_sim::sync::SimChannel;
use dynprof_sim::{Proc, SimTime};

use crate::daemon::DpclSystem;
use crate::messages::{AckResult, DownMsg, DownMsgEnvelope, ReqId, SuperMsg, TargetId, UpMsg};

/// Client-side cost of marshalling and writing one request message.
pub const CLIENT_SEND_COST: SimTime = SimTime::from_micros(20);

/// A process the client has attached to.
#[derive(Clone)]
pub struct ProcessHandle {
    /// Node hosting the process.
    pub node: usize,
    /// Daemon-local target id.
    pub target: TargetId,
    /// The process image (shared with the daemon).
    pub image: Arc<Image>,
    /// Process name (diagnostics).
    pub name: String,
}

impl std::fmt::Debug for ProcessHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessHandle")
            .field("node", &self.node)
            .field("target", &self.target)
            .field("name", &self.name)
            .finish()
    }
}

/// Sender half used by in-application snippets to signal the instrumenter
/// (`DPCL_callback()` in paper Fig 6).
#[derive(Clone)]
pub struct CallbackSender {
    inbox: Arc<SimChannel<UpMsg>>,
}

impl CallbackSender {
    /// Send a callback with a tag and payload; delivery experiences the
    /// daemon-forwarding delay.
    pub fn send(&self, p: &Proc, tag: u64, payload: u64) {
        let d = p.machine().daemon;
        self.inbox.send(
            p,
            UpMsg::Callback { tag, payload },
            d.base_delay + p.jitter(d.jitter),
        );
    }
}

/// An asynchronous DPCL instrumenter connection.
///
/// All mutation requests are *asynchronous*: they return a [`ReqId`]
/// immediately; [`DpclClient::wait_ack`] blocks for the daemon's
/// acknowledgement. `*_sync` conveniences combine the two.
pub struct DpclClient {
    system: Arc<DpclSystem>,
    user: String,
    inbox: Arc<SimChannel<UpMsg>>,
    daemons: Mutex<BTreeMap<usize, Arc<SimChannel<DownMsgEnvelope>>>>,
    next_req: AtomicU64,
    next_target: AtomicU32,
    /// Issue times of in-flight requests, kept only while observation is
    /// enabled, so [`DpclClient::wait_ack`] can report virtual-time
    /// request latencies.
    issued: Mutex<BTreeMap<ReqId, (&'static str, SimTime)>>,
}

impl DpclClient {
    /// A client for `user` against `system`.
    pub fn new(system: Arc<DpclSystem>, user: impl Into<String>) -> DpclClient {
        DpclClient {
            system,
            user: user.into(),
            // FIFO: acks and callbacks arrive stream-ordered, as over the
            // client's socket to each daemon.
            inbox: Arc::new(SimChannel::new_fifo()),
            daemons: Mutex::new(BTreeMap::new()),
            next_req: AtomicU64::new(1),
            next_target: AtomicU32::new(1),
            issued: Mutex::new(BTreeMap::new()),
        }
    }

    /// Stamp `req`'s issue time under `metric` (no-op unless observing).
    fn note_issue(&self, p: &Proc, req: ReqId, metric: &'static str) {
        if obs::enabled() {
            self.issued.lock().insert(req, (metric, p.now()));
        }
    }

    /// The connecting user name.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Nodes with an established communication daemon.
    pub fn connected_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.daemons.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn req(&self) -> ReqId {
        ReqId(self.next_req.fetch_add(1, Ordering::Relaxed))
    }

    fn daemon_delay(&self, p: &Proc) -> SimTime {
        let d = p.machine().daemon;
        d.base_delay + p.jitter(d.jitter)
    }

    /// Establish a communication daemon on `node` (authenticating through
    /// the node's super daemon). Idempotent.
    pub fn connect(&self, p: &Proc, node: usize) -> Result<(), String> {
        if self.daemons.lock().contains_key(&node) {
            return Ok(());
        }
        let req = self.req();
        p.advance(CLIENT_SEND_COST);
        let sup = self.system.super_on(p, node);
        sup.send(
            p,
            SuperMsg::Connect {
                req,
                user: self.user.clone(),
                reply: Arc::clone(&self.inbox),
            },
            self.daemon_delay(p),
        );
        let msg = self.inbox.recv_match(p, |m| match m {
            UpMsg::Connected { req: r, .. } | UpMsg::AuthFailed { req: r, .. } => *r == req,
            _ => false,
        });
        match msg {
            UpMsg::Connected { daemon, node, .. } => {
                self.daemons.lock().insert(node, daemon);
                Ok(())
            }
            UpMsg::AuthFailed { message, .. } => Err(message),
            _ => unreachable!("matcher"),
        }
    }

    fn send_down(&self, p: &Proc, node: usize, msg: DownMsg) {
        if obs::enabled() {
            obs::counter("dpcl.requests").inc();
        }
        p.advance(CLIENT_SEND_COST);
        let daemon = {
            let daemons = self.daemons.lock();
            Arc::clone(
                daemons
                    .get(&node)
                    .unwrap_or_else(|| panic!("not connected to node {node}")),
            )
        };
        daemon.send(p, DownMsgEnvelope(msg), self.daemon_delay(p));
    }

    /// Attach to a process image on `node` (blocking).
    pub fn attach(
        &self,
        p: &Proc,
        node: usize,
        image: Arc<Image>,
        name: impl Into<String>,
    ) -> Result<ProcessHandle, String> {
        self.connect(p, node)?;
        let name = name.into();
        let target = TargetId(self.next_target.fetch_add(1, Ordering::Relaxed));
        let req = self.req();
        self.send_down(
            p,
            node,
            DownMsg::Attach {
                req,
                target,
                image: Arc::clone(&image),
                name: name.clone(),
            },
        );
        match self.wait_ack(p, req) {
            AckResult::Ok { .. } => Ok(ProcessHandle {
                node,
                target,
                image,
                name,
            }),
            AckResult::Error { message } => Err(message),
        }
    }

    /// Asynchronously install `snippet` at `point` of `h`.
    pub fn install_probe(
        &self,
        p: &Proc,
        h: &ProcessHandle,
        point: ProbePoint,
        snippet: Snippet,
    ) -> ReqId {
        let req = self.req();
        self.note_issue(p, req, "dpcl.install_latency_ns");
        self.send_down(
            p,
            h.node,
            DownMsg::Install {
                req,
                target: h.target,
                point,
                snippet,
            },
        );
        req
    }

    /// Asynchronously remove a snippet.
    pub fn remove_probe(
        &self,
        p: &Proc,
        h: &ProcessHandle,
        point: ProbePoint,
        snippet: SnippetId,
    ) -> ReqId {
        let req = self.req();
        self.note_issue(p, req, "dpcl.remove_latency_ns");
        self.send_down(
            p,
            h.node,
            DownMsg::Remove {
                req,
                target: h.target,
                point,
                snippet,
            },
        );
        req
    }

    /// Asynchronously remove all instrumentation from `func` of `h`.
    pub fn remove_function(&self, p: &Proc, h: &ProcessHandle, func: FuncId) -> ReqId {
        let req = self.req();
        self.note_issue(p, req, "dpcl.remove_latency_ns");
        self.send_down(
            p,
            h.node,
            DownMsg::RemoveFunction {
                req,
                target: h.target,
                func,
            },
        );
        req
    }

    /// Asynchronously suspend the target process.
    pub fn suspend(&self, p: &Proc, h: &ProcessHandle) -> ReqId {
        let req = self.req();
        self.send_down(
            p,
            h.node,
            DownMsg::Suspend {
                req,
                target: h.target,
            },
        );
        req
    }

    /// Blocking suspend (the paper's "blocking version of the DPCL
    /// suspend function", §3.4): returns once the daemon confirms.
    pub fn bsuspend(&self, p: &Proc, h: &ProcessHandle) -> AckResult {
        let req = self.suspend(p, h);
        self.wait_ack(p, req)
    }

    /// Asynchronously resume the target process.
    pub fn resume(&self, p: &Proc, h: &ProcessHandle) -> ReqId {
        let req = self.req();
        self.send_down(
            p,
            h.node,
            DownMsg::Resume {
                req,
                target: h.target,
            },
        );
        req
    }

    /// Block until the acknowledgement of `req` arrives.
    pub fn wait_ack(&self, p: &Proc, req: ReqId) -> AckResult {
        let msg = self
            .inbox
            .recv_match(p, |m| matches!(m, UpMsg::Ack { req: r, .. } if *r == req));
        match msg {
            UpMsg::Ack {
                result,
                completed_at,
                ..
            } => {
                if obs::enabled() {
                    // Virtual time from request issue to daemon completion
                    // (the ack's transit back is the client's wait, not the
                    // daemon's work, so it is excluded).
                    if let Some((metric, sent)) = self.issued.lock().remove(&req) {
                        obs::histogram(metric).record(completed_at.saturating_sub(sent).as_nanos());
                    }
                }
                result
            }
            _ => unreachable!("matcher"),
        }
    }

    /// Wait for every acknowledgement in `reqs` (order-insensitive);
    /// returns the number of failures.
    pub fn wait_all(&self, p: &Proc, reqs: &[ReqId]) -> usize {
        let mut failures = 0;
        for &r in reqs {
            if !self.wait_ack(p, r).is_ok() {
                failures += 1;
            }
        }
        failures
    }

    /// A sender that in-application snippets can use to call back to this
    /// instrumenter.
    pub fn callback_sender(&self) -> CallbackSender {
        CallbackSender {
            inbox: Arc::clone(&self.inbox),
        }
    }

    /// Block until an application callback with `tag` arrives; returns its
    /// payload.
    pub fn recv_callback(&self, p: &Proc, tag: u64) -> u64 {
        let msg = self.inbox.recv_match(
            p,
            |m| matches!(m, UpMsg::Callback { tag: t, .. } if *t == tag),
        );
        match msg {
            UpMsg::Callback { payload, .. } => payload,
            _ => unreachable!("matcher"),
        }
    }

    /// Collect `n` callbacks with `tag` (e.g. one per MPI rank reaching
    /// the MPI_Init snippet).
    pub fn recv_callbacks(&self, p: &Proc, tag: u64, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.recv_callback(p, tag)).collect()
    }

    /// Shut down this client's communication daemons (blocking) and the
    /// system's super daemons.
    pub fn shutdown(&self, p: &Proc) {
        let nodes: Vec<usize> = self.daemons.lock().keys().copied().collect();
        let mut reqs = Vec::new();
        for node in nodes {
            let req = self.req();
            self.send_down(p, node, DownMsg::Shutdown { req });
            reqs.push(req);
        }
        self.wait_all(p, &reqs);
        self.daemons.lock().clear();
        self.system.shutdown_supers(p);
    }
}
