//! The instrumenter-side DPCL client API.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use dynprof_obs as obs;
use parking_lot::Mutex;

use dynprof_image::{FuncId, Image, ProbePoint, Snippet, SnippetId};
use dynprof_sim::rng::SimRng;
use dynprof_sim::sync::SimChannel;
use dynprof_sim::{Proc, SimTime};

use crate::daemon::DpclSystem;
use crate::messages::{AckResult, DownMsg, DownMsgEnvelope, ReqId, SuperMsg, TargetId, UpMsg};

/// Client-side cost of marshalling and writing one request message.
pub const CLIENT_SEND_COST: SimTime = SimTime::from_micros(20);

/// RNG stream tag for backoff jitter (disjoint from the fault-plan and
/// per-process streams).
const BACKOFF_STREAM: u64 = 0xBAC0_FF5D;

/// How the client waits for acknowledgements.
///
/// A request is (re)sent up to `max_attempts` times; each attempt waits
/// `timeout` for its ack, then sleeps a bounded-exponential backoff
/// ([`BackoffSchedule`]) before resending **the same [`ReqId`]** — the
/// daemon's dedup table makes re-application idempotent. Only after every
/// attempt times out does the wait return [`AckResult::TimedOut`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Per-attempt ack deadline.
    pub timeout: SimTime,
    /// Total send attempts (first send included) before giving up.
    pub max_attempts: u32,
    /// First backoff delay; doubles each retry.
    pub backoff_base: SimTime,
    /// Ceiling on the exponential term.
    pub backoff_cap: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        // timeout far above any fault-free ack latency (~350ms worst
        // bursts), and timeout+backoffs spanning well past the longest
        // profile's daemon downtime so crashed daemons are outlived.
        RetryPolicy {
            timeout: SimTime::from_secs(2),
            max_attempts: 6,
            backoff_base: SimTime::from_millis(100),
            backoff_cap: SimTime::from_millis(1600),
        }
    }
}

/// Deterministic bounded-exponential backoff with per-request jitter.
///
/// `delay(k) = max(delay(k-1), min(base·2ᵏ, cap) + jitter)` with
/// `jitter ≤ exp/4` drawn from a [`SimRng`] seeded by the request id —
/// monotone non-decreasing, bounded by `cap + cap/4`, and identical for
/// identical `(base, cap, seed)`.
pub struct BackoffSchedule {
    base: SimTime,
    cap: SimTime,
    rng: SimRng,
    attempt: u32,
    prev: SimTime,
}

impl BackoffSchedule {
    /// A schedule starting at `base`, exponentially rising to `cap`,
    /// jittered deterministically from `seed`.
    pub fn new(base: SimTime, cap: SimTime, seed: u64) -> BackoffSchedule {
        BackoffSchedule {
            base,
            cap,
            rng: SimRng::new(seed, BACKOFF_STREAM),
            attempt: 0,
            prev: SimTime::ZERO,
        }
    }

    /// The next delay in the schedule.
    pub fn next_delay(&mut self) -> SimTime {
        let exp_ns = self
            .base
            .as_nanos()
            .saturating_mul(1u64 << self.attempt.min(32))
            .min(self.cap.as_nanos());
        self.attempt = self.attempt.saturating_add(1);
        let jitter_ns = self.rng.gen_range_u64(0..=exp_ns / 4);
        let delay = SimTime::from_nanos(exp_ns + jitter_ns).max(self.prev);
        self.prev = delay;
        delay
    }
}

/// A process the client has attached to.
#[derive(Clone)]
pub struct ProcessHandle {
    /// Node hosting the process.
    pub node: usize,
    /// Daemon-local target id.
    pub target: TargetId,
    /// The process image (shared with the daemon).
    pub image: Arc<Image>,
    /// Process name (diagnostics).
    pub name: String,
}

impl std::fmt::Debug for ProcessHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessHandle")
            .field("node", &self.node)
            .field("target", &self.target)
            .field("name", &self.name)
            .finish()
    }
}

/// Sender half used by in-application snippets to signal the instrumenter
/// (`DPCL_callback()` in paper Fig 6).
#[derive(Clone)]
pub struct CallbackSender {
    inbox: Arc<SimChannel<UpMsg>>,
}

impl CallbackSender {
    /// Send a callback with a tag and payload; delivery experiences the
    /// daemon-forwarding delay.
    pub fn send(&self, p: &Proc, tag: u64, payload: u64) {
        let d = p.machine().daemon;
        self.inbox.send(
            p,
            UpMsg::Callback { tag, payload },
            d.base_delay + p.jitter(d.jitter),
        );
    }
}

/// An asynchronous DPCL instrumenter connection.
///
/// All mutation requests are *asynchronous*: they return a [`ReqId`]
/// immediately; [`DpclClient::wait_ack`] blocks for the daemon's
/// acknowledgement. `*_sync` conveniences combine the two.
pub struct DpclClient {
    system: Arc<DpclSystem>,
    user: String,
    inbox: Arc<SimChannel<UpMsg>>,
    daemons: Mutex<BTreeMap<usize, Arc<SimChannel<DownMsgEnvelope>>>>,
    next_req: AtomicU64,
    next_target: AtomicU32,
    policy: RetryPolicy,
    /// Unacknowledged requests, kept so a timed-out wait can resend the
    /// identical message (same [`ReqId`]) to the same node.
    pending: Mutex<BTreeMap<ReqId, (usize, DownMsg)>>,
    /// Issue times of in-flight requests, kept only while observation is
    /// enabled, so [`DpclClient::wait_ack`] can report virtual-time
    /// request latencies.
    issued: Mutex<BTreeMap<ReqId, (&'static str, SimTime)>>,
}

impl DpclClient {
    /// A client for `user` against `system` with the default
    /// [`RetryPolicy`].
    pub fn new(system: Arc<DpclSystem>, user: impl Into<String>) -> DpclClient {
        DpclClient::with_retry_policy(system, user, RetryPolicy::default())
    }

    /// A client with an explicit [`RetryPolicy`].
    pub fn with_retry_policy(
        system: Arc<DpclSystem>,
        user: impl Into<String>,
        policy: RetryPolicy,
    ) -> DpclClient {
        DpclClient {
            system,
            user: user.into(),
            // FIFO: acks and callbacks arrive stream-ordered, as over the
            // client's socket to each daemon.
            inbox: Arc::new(SimChannel::new_fifo()),
            daemons: Mutex::new(BTreeMap::new()),
            next_req: AtomicU64::new(1),
            next_target: AtomicU32::new(1),
            policy,
            pending: Mutex::new(BTreeMap::new()),
            issued: Mutex::new(BTreeMap::new()),
        }
    }

    /// Stamp `req`'s issue time under `metric` (no-op unless observing).
    fn note_issue(&self, p: &Proc, req: ReqId, metric: &'static str) {
        if obs::enabled() {
            self.issued.lock().insert(req, (metric, p.now()));
        }
    }

    /// The connecting user name.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Nodes with an established communication daemon.
    pub fn connected_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.daemons.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn req(&self) -> ReqId {
        ReqId(self.next_req.fetch_add(1, Ordering::Relaxed))
    }

    fn daemon_delay(&self, p: &Proc) -> SimTime {
        let d = p.machine().daemon;
        d.base_delay + p.jitter(d.jitter)
    }

    /// Establish a communication daemon on `node` (authenticating through
    /// the node's super daemon). Idempotent. Under faults the Connect
    /// request (or its reply) may be lost; the client retries under the
    /// same [`ReqId`] — the super daemon dedups, so at most one
    /// communication daemon is ever spawned per request.
    pub fn connect(&self, p: &Proc, node: usize) -> Result<(), String> {
        if self.daemons.lock().contains_key(&node) {
            return Ok(());
        }
        let req = self.req();
        let sup = self.system.super_on(p, node);
        let connect = SuperMsg::Connect {
            req,
            user: self.user.clone(),
            reply: Arc::clone(&self.inbox),
        };
        let mut backoff =
            BackoffSchedule::new(self.policy.backoff_base, self.policy.backoff_cap, req.0);
        for attempt in 1..=self.policy.max_attempts {
            p.advance(CLIENT_SEND_COST);
            sup.send_ctl(p, connect.clone(), self.daemon_delay(p));
            let deadline = p.now() + self.policy.timeout;
            let msg = self.inbox.recv_match_deadline(
                p,
                |m| match m {
                    UpMsg::Connected { req: r, .. } | UpMsg::AuthFailed { req: r, .. } => *r == req,
                    _ => false,
                },
                deadline,
            );
            match msg {
                Some(UpMsg::Connected { daemon, node, .. }) => {
                    self.daemons.lock().insert(node, daemon);
                    return Ok(());
                }
                Some(UpMsg::AuthFailed { message, .. }) => return Err(message),
                Some(_) => unreachable!("matcher"),
                None => {
                    if obs::enabled() {
                        obs::counter("dpcl.retries").inc();
                        if attempt < self.policy.max_attempts {
                            obs::counter("dpcl.resends").inc();
                        }
                    }
                    if attempt < self.policy.max_attempts {
                        p.sleep(backoff.next_delay());
                    }
                }
            }
        }
        if obs::enabled() {
            obs::counter("dpcl.timeouts").inc();
        }
        Err(format!(
            "connect to node {node} timed out after {} attempts",
            self.policy.max_attempts
        ))
    }

    fn send_down(&self, p: &Proc, node: usize, msg: DownMsg) {
        if obs::enabled() {
            obs::counter("dpcl.requests").inc();
        }
        if let Some(req) = msg.req_id() {
            self.pending.lock().insert(req, (node, msg.clone()));
        }
        p.advance(CLIENT_SEND_COST);
        let daemon = {
            let daemons = self.daemons.lock();
            Arc::clone(
                daemons
                    .get(&node)
                    .unwrap_or_else(|| panic!("not connected to node {node}")),
            )
        };
        daemon.send_ctl(p, DownMsgEnvelope(msg), self.daemon_delay(p));
    }

    /// Resend the still-unacknowledged request `req` byte-for-byte to its
    /// original node (same [`ReqId`]; daemon-side dedup keeps this
    /// idempotent). Returns false if `req` is unknown or already
    /// acknowledged. Called by the retry loop in
    /// [`DpclClient::wait_ack`]; public as a fault-drill hook for tests.
    pub fn resend_pending(&self, p: &Proc, req: ReqId) -> bool {
        let entry = self.pending.lock().get(&req).cloned();
        let Some((node, msg)) = entry else {
            return false;
        };
        if obs::enabled() {
            obs::counter("dpcl.resends").inc();
        }
        p.advance(CLIENT_SEND_COST);
        let daemon = {
            let daemons = self.daemons.lock();
            match daemons.get(&node) {
                Some(d) => Arc::clone(d),
                None => return false,
            }
        };
        daemon.send_ctl(p, DownMsgEnvelope(msg), self.daemon_delay(p));
        true
    }

    /// Attach to a process image on `node` (blocking).
    pub fn attach(
        &self,
        p: &Proc,
        node: usize,
        image: Arc<Image>,
        name: impl Into<String>,
    ) -> Result<ProcessHandle, String> {
        self.connect(p, node)?;
        let name = name.into();
        let target = TargetId(self.next_target.fetch_add(1, Ordering::Relaxed));
        let req = self.req();
        self.send_down(
            p,
            node,
            DownMsg::Attach {
                req,
                target,
                image: Arc::clone(&image),
                name: name.clone(),
            },
        );
        match self.wait_ack(p, req) {
            AckResult::Ok { .. } => Ok(ProcessHandle {
                node,
                target,
                image,
                name,
            }),
            AckResult::Error { message } => Err(message),
            AckResult::TimedOut { attempts } => Err(format!(
                "attach to {name:?} on node {node} timed out after {attempts} attempts"
            )),
        }
    }

    /// Asynchronously install `snippet` at `point` of `h`.
    pub fn install_probe(
        &self,
        p: &Proc,
        h: &ProcessHandle,
        point: ProbePoint,
        snippet: Snippet,
    ) -> ReqId {
        let req = self.req();
        self.note_issue(p, req, "dpcl.install_latency_ns");
        self.send_down(
            p,
            h.node,
            DownMsg::Install {
                req,
                target: h.target,
                point,
                snippet,
            },
        );
        req
    }

    /// Asynchronously remove a snippet.
    pub fn remove_probe(
        &self,
        p: &Proc,
        h: &ProcessHandle,
        point: ProbePoint,
        snippet: SnippetId,
    ) -> ReqId {
        let req = self.req();
        self.note_issue(p, req, "dpcl.remove_latency_ns");
        self.send_down(
            p,
            h.node,
            DownMsg::Remove {
                req,
                target: h.target,
                point,
                snippet,
            },
        );
        req
    }

    /// Asynchronously remove all instrumentation from `func` of `h`.
    pub fn remove_function(&self, p: &Proc, h: &ProcessHandle, func: FuncId) -> ReqId {
        let req = self.req();
        self.note_issue(p, req, "dpcl.remove_latency_ns");
        self.send_down(
            p,
            h.node,
            DownMsg::RemoveFunction {
                req,
                target: h.target,
                func,
            },
        );
        req
    }

    /// Asynchronously suspend the target process.
    pub fn suspend(&self, p: &Proc, h: &ProcessHandle) -> ReqId {
        let req = self.req();
        self.send_down(
            p,
            h.node,
            DownMsg::Suspend {
                req,
                target: h.target,
            },
        );
        req
    }

    /// Blocking suspend (the paper's "blocking version of the DPCL
    /// suspend function", §3.4): returns once the daemon confirms.
    pub fn bsuspend(&self, p: &Proc, h: &ProcessHandle) -> AckResult {
        let req = self.suspend(p, h);
        self.wait_ack(p, req)
    }

    /// Asynchronously resume the target process.
    pub fn resume(&self, p: &Proc, h: &ProcessHandle) -> ReqId {
        let req = self.req();
        self.send_down(
            p,
            h.node,
            DownMsg::Resume {
                req,
                target: h.target,
            },
        );
        req
    }

    /// Block until the acknowledgement of `req` arrives, or the retry
    /// budget is exhausted.
    ///
    /// Each attempt waits [`RetryPolicy::timeout`]; a miss sleeps the next
    /// [`BackoffSchedule`] delay and resends the request under the same
    /// [`ReqId`] (idempotent — the daemon dedups). After
    /// [`RetryPolicy::max_attempts`] misses this returns the typed
    /// [`AckResult::TimedOut`] instead of blocking forever.
    pub fn wait_ack(&self, p: &Proc, req: ReqId) -> AckResult {
        let mut backoff =
            BackoffSchedule::new(self.policy.backoff_base, self.policy.backoff_cap, req.0);
        for attempt in 1..=self.policy.max_attempts {
            let deadline = p.now() + self.policy.timeout;
            let msg = self.inbox.recv_match_deadline(
                p,
                |m| matches!(m, UpMsg::Ack { req: r, .. } if *r == req),
                deadline,
            );
            match msg {
                Some(UpMsg::Ack {
                    result,
                    completed_at,
                    ..
                }) => {
                    self.pending.lock().remove(&req);
                    if obs::enabled() {
                        // Virtual time from request issue to daemon
                        // completion (the ack's transit back is the
                        // client's wait, not the daemon's work, so it is
                        // excluded).
                        if let Some((metric, sent)) = self.issued.lock().remove(&req) {
                            obs::histogram(metric)
                                .record(completed_at.saturating_sub(sent).as_nanos());
                        }
                    }
                    return result;
                }
                Some(_) => unreachable!("matcher"),
                None => {
                    if obs::enabled() {
                        obs::counter("dpcl.retries").inc();
                    }
                    if attempt < self.policy.max_attempts {
                        p.sleep(backoff.next_delay());
                        self.resend_pending(p, req);
                    }
                }
            }
        }
        self.pending.lock().remove(&req);
        self.issued.lock().remove(&req);
        if obs::enabled() {
            obs::counter("dpcl.timeouts").inc();
        }
        AckResult::TimedOut {
            attempts: self.policy.max_attempts,
        }
    }

    /// Wait for every acknowledgement in `reqs` (order-insensitive);
    /// returns the number of failures.
    pub fn wait_all(&self, p: &Proc, reqs: &[ReqId]) -> usize {
        let mut failures = 0;
        for &r in reqs {
            if !self.wait_ack(p, r).is_ok() {
                failures += 1;
            }
        }
        failures
    }

    /// A sender that in-application snippets can use to call back to this
    /// instrumenter.
    pub fn callback_sender(&self) -> CallbackSender {
        CallbackSender {
            inbox: Arc::clone(&self.inbox),
        }
    }

    /// Block until an application callback with `tag` arrives; returns its
    /// payload.
    pub fn recv_callback(&self, p: &Proc, tag: u64) -> u64 {
        let msg = self.inbox.recv_match(
            p,
            |m| matches!(m, UpMsg::Callback { tag: t, .. } if *t == tag),
        );
        match msg {
            UpMsg::Callback { payload, .. } => payload,
            _ => unreachable!("matcher"),
        }
    }

    /// Collect `n` callbacks with `tag` (e.g. one per MPI rank reaching
    /// the MPI_Init snippet).
    pub fn recv_callbacks(&self, p: &Proc, tag: u64, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.recv_callback(p, tag)).collect()
    }

    /// Shut down this client's communication daemons (blocking) and the
    /// system's super daemons.
    pub fn shutdown(&self, p: &Proc) {
        let nodes: Vec<usize> = self.daemons.lock().keys().copied().collect();
        let mut reqs = Vec::new();
        for node in nodes {
            let req = self.req();
            self.send_down(p, node, DownMsg::Shutdown { req });
            reqs.push(req);
        }
        self.wait_all(p, &reqs);
        self.daemons.lock().clear();
        self.pending.lock().clear();
        self.system.shutdown_supers(p);
    }
}
