//! The instrumenter-side DPCL client API.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use dynprof_obs as obs;
use parking_lot::Mutex;

use dynprof_image::{FuncId, Image, ProbePoint, Snippet, SnippetId};
use dynprof_sim::rng::SimRng;
use dynprof_sim::sync::SimChannel;
use dynprof_sim::{Proc, SimTime};

use crate::daemon::DpclSystem;
use crate::messages::{
    AckResult, DownMsg, DownMsgEnvelope, ReqId, StagedOp, SuperMsg, TargetId, TxnId, UpMsg,
};

/// Client-side cost of marshalling and writing one request message.
pub const CLIENT_SEND_COST: SimTime = SimTime::from_micros(20);

/// RNG stream tag for backoff jitter (disjoint from the fault-plan and
/// per-process streams).
const BACKOFF_STREAM: u64 = 0xBAC0_FF5D;

/// How the client waits for acknowledgements.
///
/// A request is (re)sent up to `max_attempts` times; each attempt waits
/// `timeout` for its ack, then sleeps a bounded-exponential backoff
/// ([`BackoffSchedule`]) before resending **the same [`ReqId`]** — the
/// daemon's dedup table makes re-application idempotent. Only after every
/// attempt times out does the wait return [`AckResult::TimedOut`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Per-attempt ack deadline.
    pub timeout: SimTime,
    /// Total send attempts (first send included) before giving up.
    pub max_attempts: u32,
    /// First backoff delay; doubles each retry.
    pub backoff_base: SimTime,
    /// Ceiling on the exponential term.
    pub backoff_cap: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        // timeout far above any fault-free ack latency (~350ms worst
        // bursts), and timeout+backoffs spanning well past the longest
        // profile's daemon downtime so crashed daemons are outlived.
        RetryPolicy {
            timeout: SimTime::from_secs(2),
            max_attempts: 6,
            backoff_base: SimTime::from_millis(100),
            backoff_cap: SimTime::from_millis(1600),
        }
    }
}

/// Deterministic bounded-exponential backoff with per-request jitter.
///
/// `delay(k) = max(delay(k-1), min(base·2ᵏ, cap) + jitter)` with
/// `jitter ≤ exp/4` drawn from a [`SimRng`] seeded by the request id —
/// monotone non-decreasing, bounded by `cap + cap/4`, and identical for
/// identical `(base, cap, seed)`.
pub struct BackoffSchedule {
    base: SimTime,
    cap: SimTime,
    rng: SimRng,
    attempt: u32,
    prev: SimTime,
}

impl BackoffSchedule {
    /// A schedule starting at `base`, exponentially rising to `cap`,
    /// jittered deterministically from `seed`.
    pub fn new(base: SimTime, cap: SimTime, seed: u64) -> BackoffSchedule {
        BackoffSchedule {
            base,
            cap,
            rng: SimRng::new(seed, BACKOFF_STREAM),
            attempt: 0,
            prev: SimTime::ZERO,
        }
    }

    /// The next delay in the schedule.
    pub fn next_delay(&mut self) -> SimTime {
        let exp_ns = self
            .base
            .as_nanos()
            .saturating_mul(1u64 << self.attempt.min(32))
            .min(self.cap.as_nanos());
        self.attempt = self.attempt.saturating_add(1);
        let jitter_ns = self.rng.gen_range_u64(0..=exp_ns / 4);
        let delay = SimTime::from_nanos(exp_ns + jitter_ns).max(self.prev);
        self.prev = delay;
        delay
    }
}

/// A process the client has attached to.
#[derive(Clone)]
pub struct ProcessHandle {
    /// Node hosting the process.
    pub node: usize,
    /// Daemon-local target id.
    pub target: TargetId,
    /// The process image (shared with the daemon).
    pub image: Arc<Image>,
    /// Process name (diagnostics).
    pub name: String,
}

impl std::fmt::Debug for ProcessHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessHandle")
            .field("node", &self.node)
            .field("target", &self.target)
            .field("name", &self.name)
            .finish()
    }
}

/// Sender half used by in-application snippets to signal the instrumenter
/// (`DPCL_callback()` in paper Fig 6).
#[derive(Clone)]
pub struct CallbackSender {
    inbox: Arc<SimChannel<UpMsg>>,
}

impl CallbackSender {
    /// Send a callback with a tag and payload; delivery experiences the
    /// daemon-forwarding delay.
    pub fn send(&self, p: &Proc, tag: u64, payload: u64) {
        let d = p.machine().daemon;
        self.inbox.send(
            p,
            UpMsg::Callback { tag, payload },
            d.base_delay + p.jitter(d.jitter),
        );
    }
}

/// An asynchronous DPCL instrumenter connection.
///
/// All mutation requests are *asynchronous*: they return a [`ReqId`]
/// immediately; [`DpclClient::wait_ack`] blocks for the daemon's
/// acknowledgement. `*_sync` conveniences combine the two.
pub struct DpclClient {
    system: Arc<DpclSystem>,
    user: String,
    inbox: Arc<SimChannel<UpMsg>>,
    daemons: Mutex<BTreeMap<usize, Arc<SimChannel<DownMsgEnvelope>>>>,
    next_req: AtomicU64,
    next_target: AtomicU32,
    next_txn: AtomicU64,
    policy: RetryPolicy,
    /// Unacknowledged requests, kept so a timed-out wait can resend the
    /// identical message (same [`ReqId`]) to the same node.
    pending: Mutex<BTreeMap<ReqId, (usize, DownMsg)>>,
    /// Requests that failed client-side before reaching any daemon (e.g.
    /// sent to a node with no connection); the wait surfaces these as
    /// typed [`AckResult::Error`]s instead of panicking at send time.
    failed: Mutex<BTreeMap<ReqId, String>>,
    /// Issue times of in-flight requests, kept only while observation is
    /// enabled, so [`DpclClient::wait_ack`] can report virtual-time
    /// request latencies.
    issued: Mutex<BTreeMap<ReqId, (&'static str, SimTime)>>,
}

impl DpclClient {
    /// A client for `user` against `system` with the default
    /// [`RetryPolicy`].
    pub fn new(system: Arc<DpclSystem>, user: impl Into<String>) -> DpclClient {
        DpclClient::with_retry_policy(system, user, RetryPolicy::default())
    }

    /// A client with an explicit [`RetryPolicy`].
    pub fn with_retry_policy(
        system: Arc<DpclSystem>,
        user: impl Into<String>,
        policy: RetryPolicy,
    ) -> DpclClient {
        DpclClient {
            system,
            user: user.into(),
            // FIFO: acks and callbacks arrive stream-ordered, as over the
            // client's socket to each daemon.
            inbox: Arc::new(SimChannel::new_fifo()),
            daemons: Mutex::new(BTreeMap::new()),
            next_req: AtomicU64::new(1),
            next_target: AtomicU32::new(1),
            next_txn: AtomicU64::new(1),
            policy,
            pending: Mutex::new(BTreeMap::new()),
            failed: Mutex::new(BTreeMap::new()),
            issued: Mutex::new(BTreeMap::new()),
        }
    }

    /// Stamp `req`'s issue time under `metric` (no-op unless observing).
    fn note_issue(&self, p: &Proc, req: ReqId, metric: &'static str) {
        if obs::enabled() {
            self.issued.lock().insert(req, (metric, p.now()));
        }
    }

    /// The connecting user name.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Nodes with an established communication daemon.
    pub fn connected_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.daemons.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn req(&self) -> ReqId {
        ReqId(self.next_req.fetch_add(1, Ordering::Relaxed))
    }

    fn daemon_delay(&self, p: &Proc) -> SimTime {
        let d = p.machine().daemon;
        d.base_delay + p.jitter(d.jitter)
    }

    /// Establish a communication daemon on `node` (authenticating through
    /// the node's super daemon). Idempotent. Under faults the Connect
    /// request (or its reply) may be lost; the client retries under the
    /// same [`ReqId`] — the super daemon dedups, so at most one
    /// communication daemon is ever spawned per request.
    pub fn connect(&self, p: &Proc, node: usize) -> Result<(), String> {
        if self.daemons.lock().contains_key(&node) {
            return Ok(());
        }
        let req = self.req();
        let sup = self.system.super_on(p, node);
        let connect = SuperMsg::Connect {
            req,
            user: self.user.clone(),
            reply: Arc::clone(&self.inbox),
        };
        let mut backoff =
            BackoffSchedule::new(self.policy.backoff_base, self.policy.backoff_cap, req.0);
        for attempt in 1..=self.policy.max_attempts {
            p.advance(CLIENT_SEND_COST);
            sup.send_ctl(p, connect.clone(), self.daemon_delay(p));
            let deadline = p.now() + self.policy.timeout;
            let msg = self.inbox.recv_match_deadline(
                p,
                |m| match m {
                    UpMsg::Connected { req: r, .. } | UpMsg::AuthFailed { req: r, .. } => *r == req,
                    _ => false,
                },
                deadline,
            );
            match msg {
                Some(UpMsg::Connected { daemon, node, .. }) => {
                    self.daemons.lock().insert(node, daemon);
                    return Ok(());
                }
                Some(UpMsg::AuthFailed { message, .. }) => return Err(message),
                // The matcher admits only the two arms above; anything
                // else is a miss and falls into the retry path.
                _ => {
                    if obs::enabled() {
                        obs::counter("dpcl.retries").inc();
                        if attempt < self.policy.max_attempts {
                            obs::counter("dpcl.resends").inc();
                        }
                    }
                    if attempt < self.policy.max_attempts {
                        p.sleep(backoff.next_delay());
                    }
                }
            }
        }
        if obs::enabled() {
            obs::counter("dpcl.timeouts").inc();
        }
        Err(format!(
            "connect to node {node} timed out after {} attempts",
            self.policy.max_attempts
        ))
    }

    fn send_down(&self, p: &Proc, node: usize, msg: DownMsg) {
        if obs::enabled() {
            obs::counter("dpcl.requests").inc();
        }
        let req = msg.req_id();
        if let Some(req) = req {
            self.pending.lock().insert(req, (node, msg.clone()));
        }
        p.advance(CLIENT_SEND_COST);
        let daemon = self.daemons.lock().get(&node).cloned();
        match daemon {
            Some(daemon) => daemon.send_ctl(p, DownMsgEnvelope(msg), self.daemon_delay(p)),
            None => {
                // No connection to that node: fail the request locally so
                // the wait surfaces a typed error instead of the control
                // plane panicking mid-session.
                if let Some(req) = req {
                    self.pending.lock().remove(&req);
                    self.failed
                        .lock()
                        .insert(req, format!("not connected to node {node}"));
                }
            }
        }
    }

    /// Resend the still-unacknowledged request `req` byte-for-byte to its
    /// original node (same [`ReqId`]; daemon-side dedup keeps this
    /// idempotent). Returns false if `req` is unknown or already
    /// acknowledged. Called by the retry loop in
    /// [`DpclClient::wait_ack`]; public as a fault-drill hook for tests.
    pub fn resend_pending(&self, p: &Proc, req: ReqId) -> bool {
        let entry = self.pending.lock().get(&req).cloned();
        let Some((node, msg)) = entry else {
            return false;
        };
        if obs::enabled() {
            obs::counter("dpcl.resends").inc();
        }
        p.advance(CLIENT_SEND_COST);
        let daemon = {
            let daemons = self.daemons.lock();
            match daemons.get(&node) {
                Some(d) => Arc::clone(d),
                None => return false,
            }
        };
        daemon.send_ctl(p, DownMsgEnvelope(msg), self.daemon_delay(p));
        true
    }

    /// Attach to a process image on `node` (blocking).
    pub fn attach(
        &self,
        p: &Proc,
        node: usize,
        image: Arc<Image>,
        name: impl Into<String>,
    ) -> Result<ProcessHandle, String> {
        self.connect(p, node)?;
        let name = name.into();
        let target = TargetId(self.next_target.fetch_add(1, Ordering::Relaxed));
        let req = self.req();
        self.send_down(
            p,
            node,
            DownMsg::Attach {
                req,
                target,
                image: Arc::clone(&image),
                name: name.clone(),
            },
        );
        match self.wait_ack(p, req) {
            AckResult::Ok { .. } => Ok(ProcessHandle {
                node,
                target,
                image,
                name,
            }),
            AckResult::Error { message } => Err(message),
            AckResult::TimedOut { attempts } => Err(format!(
                "attach to {name:?} on node {node} timed out after {attempts} attempts"
            )),
        }
    }

    /// Asynchronously install `snippet` at `point` of `h`.
    pub fn install_probe(
        &self,
        p: &Proc,
        h: &ProcessHandle,
        point: ProbePoint,
        snippet: Snippet,
    ) -> ReqId {
        let req = self.req();
        self.note_issue(p, req, "dpcl.install_latency_ns");
        self.send_down(
            p,
            h.node,
            DownMsg::Install {
                req,
                target: h.target,
                point,
                snippet,
            },
        );
        req
    }

    /// Install identically to [`DpclClient::install_probe`] but addressed
    /// by raw `(node, op)`: the transaction fast path replays staged ops
    /// byte-for-byte through this, so an inert-fault transactional run
    /// emits exactly the untransacted message sequence.
    pub(crate) fn install_raw(&self, p: &Proc, node: usize, op: StagedOp) -> ReqId {
        let StagedOp::Install {
            target,
            point,
            snippet,
        } = op
        else {
            unreachable!("only install ops go over the fast-path wire");
        };
        let req = self.req();
        self.note_issue(p, req, "dpcl.install_latency_ns");
        self.send_down(
            p,
            node,
            DownMsg::Install {
                req,
                target,
                point,
                snippet,
            },
        );
        req
    }

    /// Asynchronously remove a snippet.
    pub fn remove_probe(
        &self,
        p: &Proc,
        h: &ProcessHandle,
        point: ProbePoint,
        snippet: SnippetId,
    ) -> ReqId {
        let req = self.req();
        self.note_issue(p, req, "dpcl.remove_latency_ns");
        self.send_down(
            p,
            h.node,
            DownMsg::Remove {
                req,
                target: h.target,
                point,
                snippet,
            },
        );
        req
    }

    /// Asynchronously remove all instrumentation from `func` of `h`.
    pub fn remove_function(&self, p: &Proc, h: &ProcessHandle, func: FuncId) -> ReqId {
        let req = self.req();
        self.note_issue(p, req, "dpcl.remove_latency_ns");
        self.send_down(
            p,
            h.node,
            DownMsg::RemoveFunction {
                req,
                target: h.target,
                func,
            },
        );
        req
    }

    /// Asynchronously suspend the target process.
    pub fn suspend(&self, p: &Proc, h: &ProcessHandle) -> ReqId {
        let req = self.req();
        self.send_down(
            p,
            h.node,
            DownMsg::Suspend {
                req,
                target: h.target,
            },
        );
        req
    }

    /// Blocking suspend (the paper's "blocking version of the DPCL
    /// suspend function", §3.4): returns once the daemon confirms.
    pub fn bsuspend(&self, p: &Proc, h: &ProcessHandle) -> AckResult {
        let req = self.suspend(p, h);
        self.wait_ack(p, req)
    }

    /// Asynchronously resume the target process.
    pub fn resume(&self, p: &Proc, h: &ProcessHandle) -> ReqId {
        let req = self.req();
        self.send_down(
            p,
            h.node,
            DownMsg::Resume {
                req,
                target: h.target,
            },
        );
        req
    }

    /// Block until the acknowledgement of `req` arrives, or the retry
    /// budget is exhausted.
    ///
    /// Each attempt waits [`RetryPolicy::timeout`]; a miss sleeps the next
    /// [`BackoffSchedule`] delay and resends the request under the same
    /// [`ReqId`] (idempotent — the daemon dedups). After
    /// [`RetryPolicy::max_attempts`] misses this returns the typed
    /// [`AckResult::TimedOut`] instead of blocking forever.
    pub fn wait_ack(&self, p: &Proc, req: ReqId) -> AckResult {
        if let Some(message) = self.failed.lock().remove(&req) {
            return AckResult::Error { message };
        }
        let mut backoff =
            BackoffSchedule::new(self.policy.backoff_base, self.policy.backoff_cap, req.0);
        for attempt in 1..=self.policy.max_attempts {
            let deadline = p.now() + self.policy.timeout;
            let msg = self.inbox.recv_match_deadline(
                p,
                |m| matches!(m, UpMsg::Ack { req: r, .. } if *r == req),
                deadline,
            );
            match msg {
                Some(UpMsg::Ack {
                    result,
                    completed_at,
                    ..
                }) => {
                    self.pending.lock().remove(&req);
                    if obs::enabled() {
                        // Virtual time from request issue to daemon
                        // completion (the ack's transit back is the
                        // client's wait, not the daemon's work, so it is
                        // excluded).
                        if let Some((metric, sent)) = self.issued.lock().remove(&req) {
                            obs::histogram(metric)
                                .record(completed_at.saturating_sub(sent).as_nanos());
                        }
                    }
                    return result;
                }
                // The matcher admits only Ack; anything else is a miss
                // and falls into the retry path.
                _ => {
                    if obs::enabled() {
                        obs::counter("dpcl.retries").inc();
                    }
                    if attempt < self.policy.max_attempts {
                        p.sleep(backoff.next_delay());
                        self.resend_pending(p, req);
                    }
                }
            }
        }
        self.pending.lock().remove(&req);
        self.issued.lock().remove(&req);
        if obs::enabled() {
            obs::counter("dpcl.timeouts").inc();
        }
        AckResult::TimedOut {
            attempts: self.policy.max_attempts,
        }
    }

    /// Wait once for the acknowledgement of `req`, up to the absolute
    /// `deadline` — **no resends, no backoff**. `None` means silence:
    /// exactly the signal a 2PC coordinator treats as a vote timeout (a
    /// resend would only blur who failed to answer in time). The pending
    /// entry is dropped either way; a late ack is ignored by matcher.
    pub(crate) fn wait_ack_until(
        &self,
        p: &Proc,
        req: ReqId,
        deadline: SimTime,
    ) -> Option<AckResult> {
        if let Some(message) = self.failed.lock().remove(&req) {
            self.pending.lock().remove(&req);
            return Some(AckResult::Error { message });
        }
        let msg = self.inbox.recv_match_deadline(
            p,
            |m| matches!(m, UpMsg::Ack { req: r, .. } if *r == req),
            deadline,
        );
        self.pending.lock().remove(&req);
        match msg {
            Some(UpMsg::Ack {
                result,
                completed_at,
                ..
            }) => {
                if obs::enabled() {
                    if let Some((metric, sent)) = self.issued.lock().remove(&req) {
                        obs::histogram(metric).record(completed_at.saturating_sub(sent).as_nanos());
                    }
                }
                Some(result)
            }
            _ => {
                self.issued.lock().remove(&req);
                None
            }
        }
    }

    /// Wait for every acknowledgement in `reqs` (order-insensitive);
    /// returns each request's typed outcome, in the order given.
    pub fn wait_all(&self, p: &Proc, reqs: &[ReqId]) -> Vec<(ReqId, AckResult)> {
        reqs.iter().map(|&r| (r, self.wait_ack(p, r))).collect()
    }

    // --- Transaction plumbing (used by `crate::txn::InstrumentationTxn`) ---

    /// Mint a fresh transaction id and its epoch number.
    pub(crate) fn next_txn_epoch(&self) -> (TxnId, u64) {
        let n = self.next_txn.fetch_add(1, Ordering::Relaxed);
        (TxnId(n), n)
    }

    /// Stage a batch of installs on `node` under `txn` (2PC phase 0).
    pub(crate) fn txn_stage(&self, p: &Proc, node: usize, txn: TxnId, ops: Vec<StagedOp>) -> ReqId {
        let req = self.req();
        self.send_down(p, node, DownMsg::TxnStage { req, txn, ops });
        req
    }

    /// Ask `node` to vote on `txn` (2PC phase 1, PREPARE).
    pub(crate) fn txn_prepare(&self, p: &Proc, node: usize, txn: TxnId, epoch: u64) -> ReqId {
        let req = self.req();
        self.send_down(p, node, DownMsg::TxnPrepare { req, txn, epoch });
        req
    }

    /// Tell `node` to apply `txn`'s staged ops (2PC phase 2, COMMIT).
    pub(crate) fn txn_commit(
        &self,
        p: &Proc,
        node: usize,
        txn: TxnId,
        epoch: u64,
        hb_lib: u64,
    ) -> ReqId {
        let req = self.req();
        self.note_issue(p, req, "dpcl.txn_commit_latency_ns");
        self.send_down(
            p,
            node,
            DownMsg::TxnCommit {
                req,
                txn,
                epoch,
                hb_lib,
            },
        );
        req
    }

    /// Tell `node` to discard `txn`'s staged ops (rollback).
    pub(crate) fn txn_abort(&self, p: &Proc, node: usize, txn: TxnId, epoch: u64) -> ReqId {
        let req = self.req();
        self.send_down(p, node, DownMsg::TxnAbort { req, txn, epoch });
        req
    }

    /// The daemon system this client talks to.
    pub fn system(&self) -> &Arc<DpclSystem> {
        &self.system
    }

    /// A sender that in-application snippets can use to call back to this
    /// instrumenter.
    pub fn callback_sender(&self) -> CallbackSender {
        CallbackSender {
            inbox: Arc::clone(&self.inbox),
        }
    }

    /// Block until an application callback with `tag` arrives; returns its
    /// payload.
    pub fn recv_callback(&self, p: &Proc, tag: u64) -> u64 {
        loop {
            let msg = self.inbox.recv_match(
                p,
                |m| matches!(m, UpMsg::Callback { tag: t, .. } if *t == tag),
            );
            // The matcher admits only Callback; keep waiting otherwise.
            if let UpMsg::Callback { payload, .. } = msg {
                return payload;
            }
        }
    }

    /// Collect `n` callbacks with `tag` (e.g. one per MPI rank reaching
    /// the MPI_Init snippet).
    pub fn recv_callbacks(&self, p: &Proc, tag: u64, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.recv_callback(p, tag)).collect()
    }

    /// Shut down this client's communication daemons (blocking) and the
    /// system's super daemons.
    pub fn shutdown(&self, p: &Proc) {
        let nodes: Vec<usize> = self.daemons.lock().keys().copied().collect();
        let mut reqs = Vec::new();
        for node in nodes {
            let req = self.req();
            self.send_down(p, node, DownMsg::Shutdown { req });
            reqs.push(req);
        }
        self.wait_all(p, &reqs);
        self.daemons.lock().clear();
        self.pending.lock().clear();
        self.failed.lock().clear();
        self.system.shutdown_supers(p);
    }
}
