//! # dynprof-dpcl — the Dynamic Probe Class Library analogue
//!
//! The asynchronous daemon infrastructure dynprof instruments through
//! (paper §3.2, Fig 5): one **super daemon** per node authenticates users
//! and spawns per-user **communication daemons**, which attach to target
//! processes and perform the actual image patching. Every message between
//! the instrumenter and a daemon experiences a per-node delay with jitter,
//! reproducing the asynchrony that forces dynprof's barrier/spin-wait
//! startup protocol (paper Fig 6) and the growth of instrumentation time
//! with process count (Fig 9).
//!
//! ```
//! use dynprof_dpcl::{DpclClient, DpclSystem};
//! use dynprof_image::{FunctionInfo, ImageBuilder, ProbePoint, Snippet};
//! use dynprof_sim::{Machine, Sim};
//! use std::sync::Arc;
//!
//! let sim = Sim::virtual_time(Machine::test_machine(), 9);
//! let system = DpclSystem::new(["alice"]);
//! let mut b = ImageBuilder::new("target");
//! let f = b.add(FunctionInfo::new("test"));
//! let image = Arc::new(b.build());
//! let img2 = Arc::clone(&image);
//! sim.spawn("instrumenter", 0, move |p| {
//!     let client = DpclClient::new(system, "alice");
//!     let h = client.attach(p, 2, img2, "target:0").expect("attach");
//!     let req = client.install_probe(p, &h, ProbePoint::entry(f),
//!         Snippet::noop("start_timer"));
//!     assert!(client.wait_ack(p, req).is_ok());
//!     client.shutdown(p);
//! });
//! sim.run();
//! assert!(image.occupied(ProbePoint::entry(f)));
//! ```

//!
//! ## Transactional epochs
//!
//! Multi-node instrumentation changes can run as a two-phase-commit
//! transaction ([`InstrumentationTxn`]): stage on every daemon's durable
//! [`ProbeJournal`], collect PREPARE votes under a deadline, then commit
//! unanimously or roll back — so no quiesce point ever observes a
//! partially-instrumented job even under daemon crashes. A
//! [`HeartbeatMonitor`] classifies nodes `Alive → Suspect → Dead` from
//! missed super-daemon pings, and the [`DegradedPolicy`] knob chooses
//! between aborting and excluding failed nodes.

#![warn(missing_docs)]

mod client;
mod daemon;
mod heartbeat;
mod journal;
mod messages;
mod txn;

pub use client::{
    BackoffSchedule, CallbackSender, DpclClient, ProcessHandle, RetryPolicy, CLIENT_SEND_COST,
};
pub use daemon::{
    DpclSystem, AUTH_COST, DAEMON_RESTART_COST, JOURNAL_REPLAY_COST, JOURNAL_WRITE_COST,
    RESTART_REPLAY_COST, SPAWN_DAEMON_COST,
};
pub use heartbeat::{HeartbeatConfig, HeartbeatMonitor, NodeHealth};
pub use journal::{JournalEntry, ProbeJournal, TxnPhase};
pub use messages::{AckResult, DownMsgEnvelope, ReqId, TargetId, TxnId, UpMsg};
pub use txn::{DegradedPolicy, InstrumentationTxn, TxnOptions, TxnOutcome, TxnReport, Vote};

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_image::{CallerCtx, FunctionInfo, ImageBuilder, ProbePoint, Snippet};
    use dynprof_sim::{Machine, Sim, SimTime};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn image_with(names: &[&str]) -> Arc<dynprof_image::Image> {
        let mut b = ImageBuilder::new("target");
        for n in names {
            b.add(FunctionInfo::new(*n));
        }
        Arc::new(b.build())
    }

    #[test]
    fn attach_install_and_fire() {
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        let system = DpclSystem::new(["u"]);
        let image = image_with(&["test"]);
        let f = image.func("test").unwrap();
        let fired = Arc::new(Mutex::new(0u32));

        let (img2, fired2) = (Arc::clone(&image), Arc::clone(&fired));
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "u");
            let h = client.attach(p, 1, Arc::clone(&img2), "t:0").unwrap();
            let f2 = Arc::clone(&fired2);
            let req = client.install_probe(
                p,
                &h,
                ProbePoint::entry(f),
                Snippet::new("probe", SimTime::ZERO, move |_| {
                    *f2.lock() += 1;
                }),
            );
            assert!(client.wait_ack(p, req).is_ok());
            client.shutdown(p);
        });
        let img3 = Arc::clone(&image);
        sim.spawn("app", 1, move |p| {
            // Give the instrumenter time to patch, then call.
            p.sleep(SimTime::from_secs(1));
            img3.call(p, CallerCtx::default(), f, || ());
        });
        sim.run();
        assert_eq!(*fired.lock(), 1);
    }

    #[test]
    fn authentication_rejects_unknown_users() {
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        let system = DpclSystem::new(["alice"]);
        let image = image_with(&["f"]);
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "mallory");
            let err = client.attach(p, 1, image, "t").unwrap_err();
            assert!(err.contains("not authorized"), "{err}");
            client.shutdown(p);
        });
        sim.run();
    }

    #[test]
    fn one_super_daemon_per_node() {
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        let system = DpclSystem::new(["u"]);
        let sys2 = Arc::clone(&system);
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(Arc::clone(&sys2), "u");
            for node in [1, 2, 1, 2, 3] {
                client.connect(p, node).unwrap();
            }
            assert_eq!(sys2.super_daemon_count(), 3);
            assert_eq!(client.connected_nodes(), vec![1, 2, 3]);
            client.shutdown(p);
        });
        sim.run();
    }

    #[test]
    fn async_installs_complete_on_every_node() {
        let sim = Sim::virtual_time(Machine::test_machine(), 42);
        let system = DpclSystem::new(["u"]);
        let images: Vec<_> = (0..3).map(|_| image_with(&["test"])).collect();
        let imgs = images.clone();
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "u");
            let mut handles = Vec::new();
            for (i, img) in imgs.iter().enumerate() {
                handles.push(client.attach(p, 1 + i, Arc::clone(img), "t").unwrap());
            }
            let f = imgs[0].func("test").unwrap();
            let reqs: Vec<_> = handles
                .iter()
                .map(|h| client.install_probe(p, h, ProbePoint::entry(f), Snippet::noop("n")))
                .collect();
            for (req, r) in client.wait_all(p, &reqs) {
                assert!(r.is_ok(), "{req:?}: {r:?}");
            }
            client.shutdown(p);
        });
        sim.run();
        for img in &images {
            assert!(img.occupied(ProbePoint::entry(img.func("test").unwrap())));
        }
    }

    #[test]
    fn bsuspend_blocks_until_daemon_confirms() {
        let sim = Sim::virtual_time(Machine::test_machine(), 5);
        let system = DpclSystem::new(["u"]);
        let image = image_with(&["f"]);
        let img2 = Arc::clone(&image);
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "u");
            let h = client.attach(p, 2, Arc::clone(&img2), "t").unwrap();
            assert!(!img2.is_suspended());
            let r = client.bsuspend(p, &h);
            assert!(r.is_ok());
            assert!(img2.is_suspended());
            client.resume(p, &h);
            // Async resume: wait for it to land before shutdown.
            p.sleep(SimTime::from_secs(1));
            assert!(!img2.is_suspended());
            client.shutdown(p);
        });
        sim.run();
    }

    #[test]
    fn callbacks_reach_the_instrumenter() {
        let sim = Sim::virtual_time(Machine::test_machine(), 5);
        let system = DpclSystem::new(["u"]);
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        let sender_slot: Arc<Mutex<Option<CallbackSender>>> = Arc::new(Mutex::new(None));
        let slot2 = Arc::clone(&sender_slot);
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "u");
            *slot2.lock() = Some(client.callback_sender());
            let mut payloads = client.recv_callbacks(p, 7, 3);
            payloads.sort_unstable();
            *got2.lock() = payloads;
            client.shutdown(p);
        });
        for rank in 0..3u64 {
            let slot = Arc::clone(&sender_slot);
            sim.spawn(format!("app:{rank}"), 1, move |p| {
                p.sleep(SimTime::from_millis(10 * (rank + 1)));
                let sender = slot.lock().clone().expect("sender published");
                sender.send(p, 7, rank);
            });
        }
        sim.run();
        assert_eq!(*got.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn remove_function_clears_probes_via_daemon() {
        let sim = Sim::virtual_time(Machine::test_machine(), 5);
        let system = DpclSystem::new(["u"]);
        let image = image_with(&["f"]);
        let f = image.func("f").unwrap();
        image
            .try_insert(ProbePoint::entry(f), Snippet::noop("a"))
            .expect("patchable target");
        image
            .try_insert(ProbePoint::exit(f), Snippet::noop("b"))
            .expect("patchable target");
        let img2 = Arc::clone(&image);
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "u");
            let h = client.attach(p, 1, Arc::clone(&img2), "t").unwrap();
            let req = client.remove_function(p, &h, f);
            assert_eq!(client.wait_ack(p, req), AckResult::Ok { detail: 2 });
            client.shutdown(p);
        });
        sim.run();
        assert!(!image.occupied(ProbePoint::entry(f)));
        assert!(!image.occupied(ProbePoint::exit(f)));
    }

    #[test]
    fn operations_on_unattached_target_error() {
        let sim = Sim::virtual_time(Machine::test_machine(), 5);
        let system = DpclSystem::new(["u"]);
        let image = image_with(&["f"]);
        let f = image.func("f").unwrap();
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "u");
            let h = client.attach(p, 1, Arc::clone(&image), "t").unwrap();
            // Forge a handle with a bogus target id.
            let bogus = ProcessHandle {
                target: crate::TargetId(999),
                ..h.clone()
            };
            let req = client.install_probe(p, &bogus, ProbePoint::entry(f), Snippet::noop("n"));
            let r = client.wait_ack(p, req);
            assert!(
                matches!(&r, AckResult::Error { message } if message.contains("no attached target")),
                "{r:?}"
            );
            client.shutdown(p);
        });
        sim.run();
    }

    #[test]
    fn daemon_rejects_unverifiable_snippet_program() {
        use dynprof_image::ir::{IntrinsicTable, SnippetProgram, Stmt};
        let sim = Sim::virtual_time(Machine::test_machine(), 5);
        let system = DpclSystem::new(["u"]);
        let image = image_with(&["f"]);
        let f = image.func("f").unwrap();
        let img2 = Arc::clone(&image);
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "u");
            let h = client.attach(p, 1, Arc::clone(&img2), "t").unwrap();
            // A stop without a start: verifiably unbalanced. Lowered
            // without client-side checking, so the daemon must catch it.
            let bad =
                SnippetProgram::new("rogue", 0, vec![Stmt::StopTimer], IntrinsicTable::empty())
                    .compile_unchecked();
            let req = client.install_probe(p, &h, ProbePoint::entry(f), bad);
            let r = client.wait_ack(p, req);
            assert!(
                matches!(&r, AckResult::Error { message } if message.contains("unbalanced timer")),
                "{r:?}"
            );
            client.shutdown(p);
        });
        sim.run();
        assert!(!image.occupied(ProbePoint::entry(f)), "nothing installed");
    }

    #[test]
    fn txn_prepare_votes_abort_on_branch_into_patch_hazard() {
        use dynprof_image::BasicBlock;
        use dynprof_sim::{FaultPlan, FaultProfile, FaultSpec};

        let sim = Sim::virtual_time(Machine::test_machine(), 3);
        // A delay-only plan forces the full 2PC protocol (the inert fast
        // path would bypass the PREPARE vote under test).
        let spec = FaultSpec {
            seed: 3,
            profile_name: "delay".to_string(),
            profile: FaultProfile::named("delay").unwrap(),
        };
        assert!(sim.set_fault_plan(FaultPlan::new(&spec, sim.machine())));
        let system = DpclSystem::new(["u"]);
        let mut b = ImageBuilder::new("target");
        let f = b.add(FunctionInfo::new("f").with_blocks(vec![
            BasicBlock::new(0, vec![64]),
            BasicBlock::new(64, vec![4]), // target 4 is inside the patch
        ]));
        let image = Arc::new(b.build());
        let report = Arc::new(Mutex::new(None));
        let (img2, report2) = (Arc::clone(&image), Arc::clone(&report));
        sim.spawn("instrumenter", 0, move |p| {
            let client = DpclClient::new(system, "u");
            let h = client.attach(p, 1, Arc::clone(&img2), "t").unwrap();
            let mut txn = InstrumentationTxn::new(TxnOptions::default());
            txn.stage_install(&h, ProbePoint::entry(f), Snippet::noop("n"));
            *report2.lock() = Some(txn.execute(p, &client, None, None));
            client.shutdown(p);
        });
        sim.run();
        let r = report.lock().take().unwrap();
        assert!(r.two_phase);
        assert!(
            matches!(&r.outcome, TxnOutcome::Aborted { reason } if reason.contains("branch-into-patch")),
            "{:?}",
            r.outcome
        );
        assert!(!image.occupied(ProbePoint::entry(f)), "rolled back");
    }

    #[test]
    fn activation_op_applies_on_fast_path_and_under_2pc() {
        use dynprof_sim::{FaultPlan, FaultProfile, FaultSpec};
        use std::sync::atomic::{AtomicU64, Ordering};

        // `faulted = false` exercises the inert fast path (closures apply
        // client-side, no wire traffic); `true` installs a delay-only
        // fault plan so the full 2PC protocol runs and the closures fire
        // at COMMIT on the daemons.
        fn run(faulted: bool) -> (TxnReport, u64) {
            let sim = Sim::virtual_time(Machine::test_machine(), 3);
            if faulted {
                let spec = FaultSpec {
                    seed: 3,
                    profile_name: "delay".to_string(),
                    profile: FaultProfile::named("delay").unwrap(),
                };
                assert!(sim.set_fault_plan(FaultPlan::new(&spec, sim.machine())));
            }
            let system = DpclSystem::new(["u"]);
            let swaps = Arc::new(AtomicU64::new(0));
            let swaps2 = Arc::clone(&swaps);
            let report = Arc::new(Mutex::new(None));
            let report2 = Arc::clone(&report);
            sim.spawn("instrumenter", 0, move |p| {
                let client = DpclClient::new(system, "u");
                let mut txn = InstrumentationTxn::new(TxnOptions::default());
                for node in 1..3 {
                    let h = client.attach(p, node, image_with(&["f"]), "t").unwrap();
                    let s = Arc::clone(&swaps2);
                    txn.stage_activation(
                        &h,
                        format!("table@node{node}"),
                        Arc::new(move || {
                            s.fetch_add(1, Ordering::Relaxed);
                        }),
                    );
                }
                *report2.lock() = Some(txn.execute(p, &client, None, None));
                client.shutdown(p);
            });
            sim.run();
            let r = report.lock().take().unwrap();
            let n = swaps.load(Ordering::Relaxed);
            (r, n)
        }

        let (fast, n_fast) = run(false);
        assert!(!fast.two_phase);
        assert_eq!(fast.outcome, TxnOutcome::Committed);
        assert_eq!((fast.applied, n_fast), (2, 2));

        let (full, n_full) = run(true);
        assert!(full.two_phase);
        assert!(full.is_committed(), "{:?}", full.outcome);
        assert_eq!((full.applied, n_full), (2, 2), "{:?}", full.op_failures);
    }

    #[test]
    fn determinism_identical_seeds_identical_completion() {
        fn run(seed: u64) -> SimTime {
            let sim = Sim::virtual_time(Machine::test_machine(), seed);
            let system = DpclSystem::new(["u"]);
            let image = image_with(&["f"]);
            let f = image.func("f").unwrap();
            sim.spawn("instrumenter", 0, move |p| {
                let client = DpclClient::new(system, "u");
                let mut reqs = Vec::new();
                let mut handles = Vec::new();
                for node in 1..4 {
                    handles.push(client.attach(p, node, Arc::clone(&image), "t").unwrap());
                }
                for h in &handles {
                    reqs.push(client.install_probe(p, h, ProbePoint::entry(f), Snippet::noop("n")));
                }
                assert!(client.wait_all(p, &reqs).iter().all(|(_, r)| r.is_ok()));
                client.shutdown(p);
            });
            sim.run()
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
