//! Heartbeat failure detection over super daemons.
//!
//! The 2PC control plane ([`crate::InstrumentationTxn`]) decides liveness
//! from vote deadlines alone, but a coordinator that *also* runs a
//! [`HeartbeatMonitor`] learns which nodes are unresponsive before — and
//! independently of — any transaction touching them: the monitor pings
//! every node's super daemon on a seeded interval and classifies nodes
//! `Alive → Suspect → Dead` from consecutive missed pongs.
//!
//! A super daemon inside a fault-plan crash window (see
//! `dynprof_sim::fault`) never observes the ping, so the silence the
//! detector listens for is produced by the same outage windows that make
//! communication daemons drop requests — one fault model, two observers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dynprof_obs as obs;
use parking_lot::Mutex;

use dynprof_sim::sync::SimChannel;
use dynprof_sim::{Proc, SimTime};

use crate::daemon::DpclSystem;
use crate::messages::{SuperMsg, UpMsg};

/// Failure-detector verdict for one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeHealth {
    /// Answering pings.
    Alive,
    /// Missed at least `suspect_after` consecutive pings.
    Suspect,
    /// Missed at least `dead_after` consecutive pings.
    Dead,
}

/// Tuning knobs of the [`HeartbeatMonitor`].
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatConfig {
    /// Base delay between probe rounds.
    pub interval: SimTime,
    /// Seeded jitter added to each inter-round sleep (desynchronizes the
    /// monitor from other periodic control-plane activity).
    pub jitter: SimTime,
    /// Per-round pong deadline, measured from the round's first ping.
    pub timeout: SimTime,
    /// Consecutive misses before a node turns [`NodeHealth::Suspect`].
    pub suspect_after: u32,
    /// Consecutive misses before a node turns [`NodeHealth::Dead`].
    pub dead_after: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> HeartbeatConfig {
        // interval ≫ timeout so rounds never overlap; timeout comfortably
        // above the slowest machine's round trip (IA32: 2·(3ms+8ms)=22ms);
        // suspect at 2 misses tolerates a single lost link-level ping
        // without a false positive, dead at 4 is unambiguous.
        HeartbeatConfig {
            interval: SimTime::from_millis(100),
            jitter: SimTime::from_millis(10),
            timeout: SimTime::from_millis(50),
            suspect_after: 2,
            dead_after: 4,
        }
    }
}

impl HeartbeatConfig {
    /// Upper bound on virtual time from a node going silent to its
    /// [`NodeHealth::Suspect`] transition: `suspect_after` full rounds
    /// plus one round of phase offset (the node may die right after
    /// answering a ping).
    pub fn suspect_bound(&self) -> SimTime {
        let round = self.interval + self.jitter + self.timeout;
        SimTime::from_nanos(round.as_nanos() * (self.suspect_after as u64 + 1))
    }
}

struct NodeState {
    misses: u32,
    health: NodeHealth,
}

/// A client-side failure detector: spawn with [`HeartbeatMonitor::run`]
/// on its own simulated process, stop it with [`HeartbeatMonitor::stop`].
pub struct HeartbeatMonitor {
    system: Arc<DpclSystem>,
    nodes: Vec<usize>,
    cfg: HeartbeatConfig,
    inbox: Arc<SimChannel<UpMsg>>,
    state: Mutex<BTreeMap<usize, NodeState>>,
    /// Health transitions in detection order: `(when, node, became)`.
    transitions: Mutex<Vec<(SimTime, usize, NodeHealth)>>,
    stop: AtomicBool,
    seq: AtomicU64,
    rounds: AtomicU64,
}

impl HeartbeatMonitor {
    /// A monitor probing `nodes` through `system`'s super daemons.
    pub fn new(
        system: Arc<DpclSystem>,
        nodes: impl IntoIterator<Item = usize>,
        cfg: HeartbeatConfig,
    ) -> Arc<HeartbeatMonitor> {
        let nodes: Vec<usize> = nodes.into_iter().collect();
        let state = nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    NodeState {
                        misses: 0,
                        health: NodeHealth::Alive,
                    },
                )
            })
            .collect();
        Arc::new(HeartbeatMonitor {
            system,
            nodes,
            cfg,
            inbox: Arc::new(SimChannel::new_fifo()),
            state: Mutex::new(state),
            transitions: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            seq: AtomicU64::new(1),
            rounds: AtomicU64::new(0),
        })
    }

    /// The monitor's configuration.
    pub fn config(&self) -> HeartbeatConfig {
        self.cfg
    }

    /// Current verdict for `node` (`None` if the node is not monitored).
    pub fn health(&self, node: usize) -> Option<NodeHealth> {
        self.state.lock().get(&node).map(|s| s.health)
    }

    /// Nodes currently not [`NodeHealth::Alive`], ascending.
    pub fn unhealthy(&self) -> Vec<usize> {
        self.state
            .lock()
            .iter()
            .filter(|(_, s)| s.health != NodeHealth::Alive)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Every health transition observed so far, in detection order.
    pub fn transitions(&self) -> Vec<(SimTime, usize, NodeHealth)> {
        self.transitions.lock().clone()
    }

    /// Probe rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Ask the monitor loop to exit after its current round.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// The monitor loop: run this on a dedicated simulated process
    /// (`p.spawn_child`). Exits when [`HeartbeatMonitor::stop`] is set.
    pub fn run(&self, p: &Proc) {
        while !self.stop.load(Ordering::Relaxed) {
            self.probe_round(p);
            self.rounds.fetch_add(1, Ordering::Relaxed);
            p.sleep(self.cfg.interval + p.jitter(self.cfg.jitter));
        }
    }

    /// One probe round: ping every node, then collect pongs against one
    /// shared absolute deadline. No resends — a missed pong IS the datum.
    pub fn probe_round(&self, p: &Proc) {
        let d = p.machine().daemon;
        let mut seqs: Vec<(usize, u64)> = Vec::with_capacity(self.nodes.len());
        for &node in &self.nodes {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let sup = self.system.super_on(p, node);
            sup.send_ctl(
                p,
                SuperMsg::Ping {
                    seq,
                    reply: Arc::clone(&self.inbox),
                },
                d.base_delay + p.jitter(d.jitter),
            );
            if obs::enabled() {
                obs::counter("dpcl.heartbeat.pings").inc();
            }
            seqs.push((node, seq));
        }
        let deadline = p.now() + self.cfg.timeout;
        for (node, seq) in seqs {
            let pong = self.inbox.recv_match_deadline(
                p,
                |m| matches!(m, UpMsg::Pong { seq: s, .. } if *s == seq),
                deadline,
            );
            let answered = pong.is_some();
            if obs::enabled() {
                obs::counter(if answered {
                    "dpcl.heartbeat.pongs"
                } else {
                    "dpcl.heartbeat.misses"
                })
                .inc();
            }
            self.note_round(p, node, answered);
        }
    }

    fn note_round(&self, p: &Proc, node: usize, answered: bool) {
        let mut g = self.state.lock();
        let Some(s) = g.get_mut(&node) else { return };
        let next = if answered {
            s.misses = 0;
            NodeHealth::Alive
        } else {
            s.misses = s.misses.saturating_add(1);
            if s.misses >= self.cfg.dead_after {
                NodeHealth::Dead
            } else if s.misses >= self.cfg.suspect_after {
                NodeHealth::Suspect
            } else {
                s.health // a single miss does not change the verdict
            }
        };
        if next != s.health {
            s.health = next;
            if obs::enabled() {
                obs::counter(match next {
                    NodeHealth::Alive => "dpcl.heartbeat.recoveries",
                    NodeHealth::Suspect => "dpcl.heartbeat.suspects",
                    NodeHealth::Dead => "dpcl.heartbeat.deaths",
                })
                .inc();
            }
            self.transitions.lock().push((p.now(), node, next));
        }
    }
}
