//! Loop scheduling policies.

use std::ops::Range;

/// OpenMP loop schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static[, chunk])`. `chunk == 0` means the default block
    /// partition (one balanced contiguous chunk per thread).
    Static {
        /// Chunk size; 0 = block partition.
        chunk: usize,
    },
    /// `schedule(dynamic, chunk)`: threads claim `chunk` iterations at a
    /// time from a shared cursor.
    Dynamic {
        /// Iterations claimed per grab.
        chunk: usize,
    },
    /// `schedule(guided, min_chunk)`: chunk sizes decay with remaining
    /// work, never below `min_chunk`.
    Guided {
        /// Smallest chunk a thread may claim.
        min_chunk: usize,
    },
}

impl Schedule {
    /// Default static block schedule.
    pub fn static_block() -> Schedule {
        Schedule::Static { chunk: 0 }
    }

    /// The chunks thread `tid` of `nthreads` executes under a static
    /// schedule. Deterministic and side-effect free (no shared cursor).
    pub fn static_chunks(
        &self,
        range: Range<usize>,
        tid: usize,
        nthreads: usize,
    ) -> Vec<Range<usize>> {
        let chunk = match *self {
            Schedule::Static { chunk } => chunk,
            _ => panic!("static_chunks on a non-static schedule"),
        };
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return Vec::new();
        }
        if chunk == 0 {
            // Block partition: first `rem` threads get one extra.
            let base = len / nthreads;
            let rem = len % nthreads;
            let my_len = base + usize::from(tid < rem);
            if my_len == 0 {
                return Vec::new();
            }
            let start = range.start + tid * base + tid.min(rem);
            // One contiguous chunk (really a range, not `vec![elem; n]`).
            #[allow(clippy::single_range_in_vec_init)]
            {
                vec![start..start + my_len]
            }
        } else {
            // Round-robin chunks.
            let mut out = Vec::new();
            let mut start = range.start + tid * chunk;
            while start < range.end {
                out.push(start..range.end.min(start + chunk));
                start += nthreads * chunk;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn covered(sched: Schedule, range: Range<usize>, nthreads: usize) -> Vec<usize> {
        let mut seen = Vec::new();
        for tid in 0..nthreads {
            for c in sched.static_chunks(range.clone(), tid, nthreads) {
                seen.extend(c);
            }
        }
        seen
    }

    #[test]
    fn block_partition_covers_exactly_once() {
        for (len, nt) in [(10, 3), (7, 8), (100, 4), (1, 1), (0, 4), (5, 5)] {
            let seen = covered(Schedule::static_block(), 0..len, nt);
            let set: HashSet<_> = seen.iter().copied().collect();
            assert_eq!(seen.len(), len, "len={len} nt={nt}: duplicates");
            assert_eq!(set.len(), len, "len={len} nt={nt}: missing");
            assert!(seen.iter().all(|i| *i < len));
        }
    }

    #[test]
    fn block_partition_is_balanced() {
        for tid in 0..4 {
            let chunks = Schedule::static_block().static_chunks(0..10, tid, 4);
            let n: usize = chunks.iter().map(|c| c.len()).sum();
            assert!(n == 2 || n == 3);
        }
    }

    #[test]
    fn block_partition_is_contiguous_and_ordered() {
        let mut last_end = 0;
        for tid in 0..5 {
            for c in Schedule::static_block().static_chunks(0..23, tid, 5) {
                assert_eq!(c.start, last_end);
                last_end = c.end;
            }
        }
        assert_eq!(last_end, 23);
    }

    #[test]
    fn chunked_static_round_robins() {
        let s = Schedule::Static { chunk: 2 };
        assert_eq!(s.static_chunks(0..10, 0, 2), vec![0..2, 4..6, 8..10]);
        assert_eq!(s.static_chunks(0..10, 1, 2), vec![2..4, 6..8]);
    }

    #[test]
    fn chunked_static_covers_exactly_once() {
        for (len, nt, chunk) in [(10, 3, 2), (11, 2, 4), (9, 4, 1), (3, 8, 2)] {
            let seen = covered(Schedule::Static { chunk }, 0..len, nt);
            let set: HashSet<_> = seen.iter().copied().collect();
            assert_eq!(seen.len(), len);
            assert_eq!(set.len(), len);
        }
    }

    #[test]
    fn nonzero_range_start_respected() {
        let chunks = Schedule::static_block().static_chunks(100..110, 0, 2);
        assert_eq!(chunks, vec![100..105]);
    }

    #[test]
    fn more_threads_than_work() {
        let s = Schedule::static_block();
        assert_eq!(s.static_chunks(0..2, 3, 8), Vec::<Range<usize>>::new());
        assert_eq!(s.static_chunks(0..2, 1, 8), vec![1..2]);
    }
}
