//! The Guidetrace observation interface.
//!
//! The Guide compiler transforms OpenMP directives into calls into the
//! Guidetrace library, which "implements OpenMP and also logs OpenMP
//! performance events with Vampirtrace" (paper §3.1, Fig 3).
//! [`RegionHooks`] is the logging half: the Vampirtrace layer implements
//! it to record parallel-region fork/join and per-thread region
//! occupancy (the "wiggle" glyphs of the VGV time-line, Fig 4).

use dynprof_sim::Proc;

/// Identifier of a parallel region (per [`crate::OmpRuntime`], dense).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RegionId(pub u32);

/// Observer of OpenMP runtime events.
pub trait RegionHooks: Send + Sync {
    /// The master thread is about to fork a team of `team` threads.
    fn on_fork(&self, p: &Proc, region: RegionId, name: &str, team: usize) {
        let _ = (p, region, name, team);
    }

    /// The master thread has joined the team (region complete).
    fn on_join(&self, p: &Proc, region: RegionId, name: &str, team: usize) {
        let _ = (p, region, name, team);
    }

    /// Thread `tid` starts executing its share of the region.
    fn on_thread_begin(&self, p: &Proc, region: RegionId, tid: usize) {
        let _ = (p, region, tid);
    }

    /// Thread `tid` finished its share of the region.
    fn on_thread_end(&self, p: &Proc, region: RegionId, tid: usize) {
        let _ = (p, region, tid);
    }
}
