//! The OpenMP runtime: persistent thread team, fork-join parallel
//! regions, and the intra-team synchronization constructs.
//!
//! Worker threads are simulated processes on the *same node* as the
//! master (OpenMP is restricted to one shared-memory node — the reason
//! Umt98 tops out at 8 CPUs in the paper). Workers live for the whole
//! runtime lifetime and pick up region work from per-worker queues, so a
//! program with thousands of parallel regions does not spawn thousands of
//! threads.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use dynprof_sim::sync::{SimBarrier, SimQueue};
use dynprof_sim::{Proc, SimTime};

use crate::hooks::{RegionHooks, RegionId};
use crate::schedule::Schedule;

/// Base cost of forking a team (master side).
pub const FORK_BASE: SimTime = SimTime::from_nanos(1_200);
/// Additional fork cost per team thread.
pub const FORK_PER_THREAD: SimTime = SimTime::from_nanos(300);
/// Cost of one team barrier episode (also charged at region join).
pub const TEAM_BARRIER_COST: SimTime = SimTime::from_nanos(900);
/// Cost of acquiring a `critical` section lock.
pub const CRITICAL_COST: SimTime = SimTime::from_nanos(300);
/// Cost of claiming one dynamically-scheduled chunk.
pub const DYN_CHUNK_COST: SimTime = SimTime::from_nanos(150);

/// Erased region body: `(tid, worker_proc)`.
///
/// SAFETY CONTRACT: the pointee lives on the master's stack for the
/// duration of the region. The runtime's join barrier guarantees every
/// worker has *returned* from the call before the master's `parallel`
/// returns and the closure is dropped. Workers must not retain the
/// pointer past the call.
struct ErasedBody(*const (dyn Fn(usize, &Proc) + Sync));
// SAFETY: the pointee is Sync (shared execution is the point) and the
// lifetime is enforced by the join barrier as described above.
unsafe impl Send for ErasedBody {}

enum WorkerJob {
    Region(ErasedBody),
    Shutdown,
}

/// Shared state of one team execution (lives on the master's stack).
pub struct TeamShared {
    nthreads: usize,
    barrier: SimBarrier,
    critical: Mutex<()>,
    single_done: Mutex<u64>,
}

impl TeamShared {
    fn new(nthreads: usize) -> TeamShared {
        TeamShared {
            nthreads,
            barrier: SimBarrier::new(nthreads, TEAM_BARRIER_COST),
            critical: Mutex::new(()),
            single_done: Mutex::new(0),
        }
    }
}

/// Per-thread view of an executing parallel region.
pub struct RegionCtx<'a> {
    /// This thread's id within the team (0 = master).
    pub tid: usize,
    /// The executing simulated process (master's or a worker's).
    pub proc: &'a Proc,
    team: &'a TeamShared,
    singles_seen: Cell<u64>,
}

impl<'a> RegionCtx<'a> {
    /// Team size.
    pub fn nthreads(&self) -> usize {
        self.team.nthreads
    }

    /// `#pragma omp barrier`.
    pub fn barrier(&self) {
        self.team.barrier.wait(self.proc);
    }

    /// `#pragma omp critical`: run `f` under the team's critical lock.
    pub fn critical<R>(&self, f: impl FnOnce() -> R) -> R {
        self.proc.advance(CRITICAL_COST);
        let _g = self.team.critical.lock();
        f()
    }

    /// `#pragma omp single`: exactly one thread (the first to arrive)
    /// runs `f`; all threads then synchronize at an implicit barrier.
    pub fn single(&self, f: impl FnOnce()) {
        let my_instance = self.singles_seen.get() + 1;
        self.singles_seen.set(my_instance);
        {
            let mut done = self.team.single_done.lock();
            if *done < my_instance {
                *done = my_instance;
                drop(done);
                f();
            }
        }
        self.barrier();
    }

    fn claim_pause(&self) {
        self.yield_point();
    }

    /// A cooperative scheduling point: charges the claim cost and, on the
    /// virtual clock, yields so team threads interleave in virtual-time
    /// order (shared-cursor constructs are unfair without it).
    pub fn yield_point(&self) {
        match self.proc.mode() {
            dynprof_sim::ClockMode::Virtual => self.proc.sleep(DYN_CHUNK_COST),
            dynprof_sim::ClockMode::Real => self.proc.advance(DYN_CHUNK_COST),
        }
    }

    /// `#pragma omp master`: only thread 0 runs `f`, no synchronization.
    pub fn master(&self, f: impl FnOnce()) {
        if self.tid == 0 {
            f();
        }
    }

    /// Worksharing loop over `range` with the given schedule; `body`
    /// receives contiguous chunks. Ends with the loop's implicit barrier.
    pub fn for_each(
        &self,
        range: Range<usize>,
        sched: Schedule,
        shared: &LoopShared,
        mut body: impl FnMut(Range<usize>),
    ) {
        match sched {
            Schedule::Static { chunk } => {
                for c in sched.static_chunks(range.clone(), self.tid, self.nthreads()) {
                    body(c);
                }
                let _ = chunk;
            }
            Schedule::Dynamic { chunk } => loop {
                // Claiming a chunk must *yield* in virtual mode so that
                // team threads interleave in virtual-time order — without
                // the yield, whichever thread runs first on the host would
                // drain the shared cursor and the loop would serialize.
                self.claim_pause();
                let start = shared.next.fetch_add(chunk, Ordering::Relaxed);
                if start >= range.end {
                    break;
                }
                body(start..range.end.min(start + chunk));
            },
            Schedule::Guided { min_chunk } => loop {
                self.claim_pause();
                let claimed = {
                    // Claim remaining/(2*nthreads), at least min_chunk.
                    let mut next = shared.next.load(Ordering::Relaxed);
                    loop {
                        if next >= range.end {
                            break None;
                        }
                        let remaining = range.end - next;
                        let take = (remaining / (2 * self.nthreads())).max(min_chunk);
                        let take = take.min(remaining);
                        match shared.next.compare_exchange_weak(
                            next,
                            next + take,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break Some(next..next + take),
                            Err(cur) => next = cur,
                        }
                    }
                };
                match claimed {
                    Some(c) => body(c),
                    None => break,
                }
            },
        }
        self.barrier();
    }
}

/// Shared cursor of one worksharing loop instance.
pub struct LoopShared {
    next: AtomicUsize,
}

impl LoopShared {
    /// A cursor starting at `range_start`.
    pub fn new(range_start: usize) -> LoopShared {
        LoopShared {
            next: AtomicUsize::new(range_start),
        }
    }
}

struct Worker {
    queue: Arc<SimQueue<WorkerJob>>,
}

/// The OpenMP runtime of one process: a master plus a persistent pool of
/// `nthreads - 1` workers.
pub struct OmpRuntime {
    name: String,
    nthreads: usize,
    workers: Vec<Worker>,
    join_barrier: Arc<SimBarrier>,
    hooks: Vec<Arc<dyn RegionHooks>>,
    region_seq: AtomicU32,
    in_parallel: AtomicBool,
    shut_down: AtomicBool,
}

impl OmpRuntime {
    /// Create the runtime for the process `p`, with a team of `nthreads`
    /// (including the master). Workers are spawned on `p`'s node.
    pub fn new(
        p: &Proc,
        name: impl Into<String>,
        nthreads: usize,
        hooks: Vec<Arc<dyn RegionHooks>>,
    ) -> OmpRuntime {
        assert!(nthreads >= 1, "team needs at least the master");
        let name = name.into();
        let join_barrier = Arc::new(SimBarrier::new(nthreads, TEAM_BARRIER_COST));
        let mut workers = Vec::with_capacity(nthreads.saturating_sub(1));
        for tid in 1..nthreads {
            let queue: Arc<SimQueue<WorkerJob>> = Arc::new(SimQueue::new());
            let q2 = Arc::clone(&queue);
            let jb = Arc::clone(&join_barrier);
            p.spawn_child(format!("{name}-omp{tid}"), p.node(), move |wp| {
                while let Some(job) = q2.pop(wp) {
                    match job {
                        WorkerJob::Region(body) => {
                            // SAFETY: see ErasedBody contract — the master
                            // keeps the closure alive until we arrive at
                            // the join barrier below.
                            let f = unsafe { &*body.0 };
                            f(tid, wp);
                            jb.wait(wp);
                        }
                        WorkerJob::Shutdown => break,
                    }
                }
            });
            workers.push(Worker { queue });
        }
        OmpRuntime {
            name,
            nthreads,
            workers,
            join_barrier,
            hooks,
            region_seq: AtomicU32::new(0),
            in_parallel: AtomicBool::new(false),
            shut_down: AtomicBool::new(false),
        }
    }

    /// Team size (including the master).
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The runtime's name (used for worker process names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parallel regions executed so far.
    pub fn regions_executed(&self) -> u32 {
        self.region_seq.load(Ordering::Relaxed)
    }

    /// `#pragma omp parallel`: run `body` on every team thread.
    ///
    /// `body` may borrow from the caller's stack; the join barrier
    /// guarantees it is not referenced after `parallel` returns.
    pub fn parallel(&self, p: &Proc, region_name: &str, body: impl Fn(&RegionCtx<'_>) + Sync) {
        assert!(
            !self.shut_down.load(Ordering::Acquire),
            "parallel after shutdown"
        );
        assert!(
            !self.in_parallel.swap(true, Ordering::AcqRel),
            "nested parallel regions are not supported"
        );
        let region = RegionId(self.region_seq.fetch_add(1, Ordering::Relaxed));
        for h in &self.hooks {
            h.on_fork(p, region, region_name, self.nthreads);
        }
        p.advance(FORK_BASE + FORK_PER_THREAD * self.nthreads as u64);

        let team = TeamShared::new(self.nthreads);
        let hooks = &self.hooks;
        let wrapper = |tid: usize, wp: &Proc| {
            for h in hooks {
                h.on_thread_begin(wp, region, tid);
            }
            let ctx = RegionCtx {
                tid,
                proc: wp,
                team: &team,
                singles_seen: Cell::new(0),
            };
            body(&ctx);
            for h in hooks {
                h.on_thread_end(wp, region, tid);
            }
        };
        {
            let erased: &(dyn Fn(usize, &Proc) + Sync) = &wrapper;
            // SAFETY: lifetime-erased; validity upheld by the join barrier
            // below (see ErasedBody).
            let erased: &'static (dyn Fn(usize, &Proc) + Sync) =
                unsafe { std::mem::transmute(erased) };
            for w in &self.workers {
                w.queue.push(p, WorkerJob::Region(ErasedBody(erased)));
            }
            wrapper(0, p);
            self.join_barrier.wait(p);
        }
        for h in &self.hooks {
            h.on_join(p, region, region_name, self.nthreads);
        }
        self.in_parallel.store(false, Ordering::Release);
    }

    /// `#pragma omp parallel for`: worksharing loop across the team.
    pub fn parallel_for(
        &self,
        p: &Proc,
        region_name: &str,
        range: Range<usize>,
        sched: Schedule,
        body: impl Fn(Range<usize>, &RegionCtx<'_>) + Sync,
    ) {
        let shared = LoopShared::new(range.start);
        self.parallel(p, region_name, |ctx| {
            ctx.for_each(range.clone(), sched, &shared, |chunk| body(chunk, ctx));
        });
    }

    /// `#pragma omp sections`: each section runs exactly once, claimed
    /// dynamically by the team's threads; ends at the region's implicit
    /// barrier.
    pub fn parallel_sections(
        &self,
        p: &Proc,
        region_name: &str,
        sections: &[&(dyn Fn(&RegionCtx<'_>) + Sync)],
    ) {
        let next = AtomicUsize::new(0);
        self.parallel(p, region_name, |ctx| loop {
            ctx.yield_point();
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= sections.len() {
                break;
            }
            sections[i](ctx);
        });
    }

    /// Worksharing loop with a reduction; returns the combined value.
    /// (The argument list mirrors the OpenMP clause set.)
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_for_reduce<T: Send>(
        &self,
        p: &Proc,
        region_name: &str,
        range: Range<usize>,
        sched: Schedule,
        init: impl Fn() -> T + Sync,
        body: impl Fn(Range<usize>, &mut T, &RegionCtx<'_>) + Sync,
        combine: impl Fn(T, T) -> T,
    ) -> T {
        let partials: Mutex<Vec<Option<T>>> =
            Mutex::new((0..self.nthreads).map(|_| None).collect());
        let shared = LoopShared::new(range.start);
        self.parallel(p, region_name, |ctx| {
            let mut acc = init();
            ctx.for_each(range.clone(), sched, &shared, |chunk| {
                body(chunk, &mut acc, ctx);
            });
            partials.lock()[ctx.tid] = Some(acc);
        });
        let mut out: Option<T> = None;
        for part in partials.into_inner().into_iter().flatten() {
            out = Some(match out {
                None => part,
                Some(acc) => combine(acc, part),
            });
        }
        out.expect("at least the master contributes")
    }

    /// Tear down the worker pool. Must be called before the simulation
    /// ends (idle workers would otherwise be reported as deadlocked).
    pub fn shutdown(&self, p: &Proc) {
        if self.shut_down.swap(true, Ordering::AcqRel) {
            return;
        }
        for w in &self.workers {
            w.queue.push(p, WorkerJob::Shutdown);
        }
    }
}
