//! # dynprof-omp — a simulated OpenMP runtime
//!
//! Fork-join thread teams for simulated processes: parallel regions,
//! worksharing loops (static / dynamic / guided schedules), reductions,
//! barriers, `single`, `master`, and `critical` — with a Guidetrace-style
//! observation interface ([`RegionHooks`]) through which the Vampirtrace
//! layer logs region events (paper §3.1, Fig 3).
//!
//! All team threads of one process run on that process's node, matching
//! the paper's restriction of OpenMP codes to a single SMP node, and the
//! whole team shares the process's single executable image — the property
//! behind Umt98's flat instrumentation time in Fig 9.
//!
//! ```
//! use dynprof_omp::{OmpRuntime, Schedule};
//! use dynprof_sim::{Machine, Sim};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let sim = Sim::virtual_time(Machine::test_machine(), 0);
//! sim.spawn("app", 0, |p| {
//!     let rt = OmpRuntime::new(p, "app", 4, vec![]);
//!     let hits = AtomicUsize::new(0);
//!     rt.parallel_for(p, "loop", 0..1000, Schedule::static_block(), |chunk, _ctx| {
//!         hits.fetch_add(chunk.len(), Ordering::Relaxed);
//!     });
//!     assert_eq!(hits.load(Ordering::Relaxed), 1000);
//!     rt.shutdown(p);
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]

mod hooks;
mod runtime;
mod schedule;

pub use hooks::{RegionHooks, RegionId};
pub use runtime::{
    LoopShared, OmpRuntime, RegionCtx, TeamShared, CRITICAL_COST, DYN_CHUNK_COST, FORK_BASE,
    FORK_PER_THREAD, TEAM_BARRIER_COST,
};
pub use schedule::Schedule;

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_sim::{Machine, Proc, Sim, SimTime};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn run_omp(nthreads: usize, f: impl Fn(&Proc, &OmpRuntime) + Send + 'static) -> SimTime {
        let sim = Sim::virtual_time(Machine::test_machine(), 3);
        sim.spawn("app", 0, move |p| {
            let rt = OmpRuntime::new(p, "app", nthreads, vec![]);
            f(p, &rt);
            rt.shutdown(p);
        });
        sim.run()
    }

    #[test]
    fn parallel_runs_every_thread() {
        let tids = Arc::new(Mutex::new(Vec::new()));
        let t2 = Arc::clone(&tids);
        run_omp(4, move |p, rt| {
            rt.parallel(p, "r", |ctx| {
                t2.lock().push(ctx.tid);
            });
        });
        let mut v = tids.lock().clone();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn region_body_may_borrow_stack_data() {
        run_omp(3, |p, rt| {
            let data = [1u64, 2, 3, 4, 5, 6];
            let sum = AtomicUsize::new(0);
            rt.parallel_for(p, "sum", 0..data.len(), Schedule::static_block(), |c, _| {
                let s: u64 = data[c].iter().sum();
                sum.fetch_add(s as usize, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 21);
        });
    }

    #[test]
    fn dynamic_schedule_covers_all_iterations() {
        let hits = Arc::new(Mutex::new(vec![0u32; 100]));
        let h2 = Arc::clone(&hits);
        run_omp(4, move |p, rt| {
            rt.parallel_for(
                p,
                "dyn",
                0..100,
                Schedule::Dynamic { chunk: 7 },
                |c, ctx| {
                    ctx.proc.advance(SimTime::from_micros(1));
                    let mut h = h2.lock();
                    for i in c {
                        h[i] += 1;
                    }
                },
            );
        });
        assert!(hits.lock().iter().all(|&c| c == 1));
    }

    #[test]
    fn guided_schedule_covers_all_iterations() {
        let hits = Arc::new(Mutex::new(vec![0u32; 257]));
        let h2 = Arc::clone(&hits);
        run_omp(3, move |p, rt| {
            rt.parallel_for(p, "g", 0..257, Schedule::Guided { min_chunk: 4 }, |c, _| {
                let mut h = h2.lock();
                for i in c {
                    h[i] += 1;
                }
            });
        });
        assert!(hits.lock().iter().all(|&c| c == 1));
    }

    #[test]
    fn reduction_combines_partials() {
        run_omp(4, |p, rt| {
            let total = rt.parallel_for_reduce(
                p,
                "red",
                0..1000,
                Schedule::static_block(),
                || 0u64,
                |c, acc, _| {
                    *acc += c.map(|i| i as u64).sum::<u64>();
                },
                |a, b| a + b,
            );
            assert_eq!(total, 499_500);
        });
    }

    #[test]
    fn single_runs_exactly_once_per_instance() {
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        run_omp(4, move |p, rt| {
            rt.parallel(p, "s", |ctx| {
                for _ in 0..3 {
                    ctx.single(|| {
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn master_runs_on_thread_zero_only() {
        let who = Arc::new(Mutex::new(Vec::new()));
        let w2 = Arc::clone(&who);
        run_omp(4, move |p, rt| {
            rt.parallel(p, "m", |ctx| {
                ctx.master(|| w2.lock().push(ctx.tid));
            });
        });
        assert_eq!(*who.lock(), vec![0]);
    }

    #[test]
    fn critical_serializes() {
        // A non-atomic read-modify-write under critical must not lose
        // updates even in real-thread mode.
        let sim = Sim::real_time(Machine::test_machine());
        let value = Arc::new(Mutex::new(0u64));
        let v2 = Arc::clone(&value);
        sim.spawn("app", 0, move |p| {
            let rt = OmpRuntime::new(p, "app", 4, vec![]);
            rt.parallel(p, "c", |ctx| {
                for _ in 0..100 {
                    ctx.critical(|| {
                        let mut g = v2.lock();
                        let old = *g;
                        *g = old + 1;
                    });
                }
            });
            rt.shutdown(p);
        });
        sim.run();
        assert_eq!(*value.lock(), 400);
    }

    #[test]
    fn barrier_aligns_thread_times() {
        let after = Arc::new(Mutex::new(Vec::new()));
        let a2 = Arc::clone(&after);
        run_omp(4, move |p, rt| {
            rt.parallel(p, "b", |ctx| {
                ctx.proc
                    .advance(SimTime::from_micros(10 * (ctx.tid as u64 + 1)));
                ctx.barrier();
                a2.lock().push(ctx.proc.now());
            });
        });
        let ts = after.lock();
        let first = ts[0];
        assert!(ts.iter().all(|&t| t == first), "skew after barrier: {ts:?}");
        assert!(first >= SimTime::from_micros(40));
    }

    #[test]
    fn fork_join_charges_master() {
        let t = run_omp(8, |p, rt| {
            let before = p.now();
            rt.parallel(p, "r", |_| {});
            assert!(p.now() > before);
        });
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn hooks_observe_fork_join_and_threads() {
        #[derive(Default)]
        struct Rec {
            forks: AtomicUsize,
            joins: AtomicUsize,
            begins: AtomicUsize,
            ends: AtomicUsize,
        }
        impl RegionHooks for Rec {
            fn on_fork(&self, _: &Proc, _: RegionId, _: &str, _: usize) {
                self.forks.fetch_add(1, Ordering::Relaxed);
            }
            fn on_join(&self, _: &Proc, _: RegionId, _: &str, _: usize) {
                self.joins.fetch_add(1, Ordering::Relaxed);
            }
            fn on_thread_begin(&self, _: &Proc, _: RegionId, _: usize) {
                self.begins.fetch_add(1, Ordering::Relaxed);
            }
            fn on_thread_end(&self, _: &Proc, _: RegionId, _: usize) {
                self.ends.fetch_add(1, Ordering::Relaxed);
            }
        }
        let rec = Arc::new(Rec::default());
        let r2 = Arc::clone(&rec);
        let sim = Sim::virtual_time(Machine::test_machine(), 3);
        sim.spawn("app", 0, move |p| {
            let rt = OmpRuntime::new(p, "app", 3, vec![r2]);
            rt.parallel(p, "one", |_| {});
            rt.parallel(p, "two", |_| {});
            assert_eq!(rt.regions_executed(), 2);
            rt.shutdown(p);
        });
        sim.run();
        assert_eq!(rec.forks.load(Ordering::Relaxed), 2);
        assert_eq!(rec.joins.load(Ordering::Relaxed), 2);
        assert_eq!(rec.begins.load(Ordering::Relaxed), 6);
        assert_eq!(rec.ends.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn single_threaded_team_works() {
        run_omp(1, |p, rt| {
            let hits = AtomicUsize::new(0);
            rt.parallel_for(p, "solo", 0..10, Schedule::Dynamic { chunk: 3 }, |c, _| {
                hits.fetch_add(c.len(), Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 10);
        });
    }

    #[test]
    fn sections_each_run_once_distributed() {
        let hits = Arc::new(Mutex::new(vec![0u32; 7]));
        let owners = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let (h2, o2) = (Arc::clone(&hits), Arc::clone(&owners));
        run_omp(4, move |p, rt| {
            let mk = |i: usize| {
                let h = Arc::clone(&h2);
                let o = Arc::clone(&o2);
                move |ctx: &RegionCtx<'_>| {
                    ctx.proc.advance(SimTime::from_micros(10));
                    h.lock()[i] += 1;
                    o.lock().insert(ctx.tid);
                }
            };
            let s0 = mk(0);
            let s1 = mk(1);
            let s2 = mk(2);
            let s3 = mk(3);
            let s4 = mk(4);
            let s5 = mk(5);
            let s6 = mk(6);
            rt.parallel_sections(p, "secs", &[&s0, &s1, &s2, &s3, &s4, &s5, &s6]);
        });
        assert!(hits.lock().iter().all(|&c| c == 1), "{:?}", hits.lock());
        // With 7 sections and 4 threads, work spreads across the team.
        assert!(owners.lock().len() >= 2, "sections all ran on one thread");
    }

    #[test]
    fn many_regions_reuse_workers() {
        run_omp(4, |p, rt| {
            let hits = AtomicUsize::new(0);
            for _ in 0..50 {
                rt.parallel(p, "r", |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            assert_eq!(hits.load(Ordering::Relaxed), 200);
        });
    }
}
