//! Closed-loop adaptive instrumentation: the overhead-budget controller.
//!
//! The paper's §5 dynamic control toggles probes by hand at `VT_confsync`
//! safe points. The [`OverheadController`] closes that loop: at each safe
//! point it reads the per-function fire counts accumulated by the trace
//! library since the previous safe point, converts them into measured
//! instrumentation overhead using the machine's probe cost model, and —
//! when the overhead exceeds a user-set budget — emits a configuration
//! delta that deactivates the most overhead-dense probes first.
//!
//! # Decision function
//!
//! Let `Δcount(f)` be the active invocations of function `f` across all
//! ranks since the last decision, `pair` the machine's active
//! begin/end pair cost, `deact` the deactivated-lookup cost, and `W` the
//! wall-clock window times the rank count. Measured overhead is
//!
//! ```text
//! measured = (Σ_f Δcount(f)·pair + Δlookups·deact) / W
//! ```
//!
//! When `measured` exceeds the budget the controller sorts active
//! functions by *score* `Δcount(f) × pair` — cost × rate — descending,
//! breaking ties by ascending function id, and greedily deactivates from
//! the top until the projected overhead (each deactivated function still
//! pays `Δcount(f)·deact` in lookups) is at or below the budget. Hot but
//! cheap probes go first; rare expensive ones are kept.
//!
//! # Re-probe schedule
//!
//! Every `reprobe_every` decisions made while under budget, one
//! deactivated function is reactivated, chosen by deterministic rotation
//! over the sorted deactivated set. A phase change that makes a probe
//! cheap again is therefore discovered within `K × |off|` safe points;
//! a probe that is still hot is re-deactivated at the next decision.
//!
//! # Determinism
//!
//! Every input is deterministic: fire counts come from the simulated
//! library's per-rank statistics (not wall-clock sampling), the cost
//! model is a constant of the machine, the sort is total (score then
//! function id), and the rotation index is a pure function of the
//! decision count. Two runs with the same seed produce bit-identical
//! decision sequences — which is what the golden tests pin.

use std::collections::BTreeMap;
use std::sync::Arc;

use dynprof_obs as obs;
use parking_lot::Mutex;

use dynprof_sim::SimTime;

use crate::config::ConfigDelta;
use crate::confsync::PendingChange;
use crate::vtlib::VtLib;

/// Tuning knobs of the [`OverheadController`].
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// Overhead budget as a percentage of total CPU time (e.g. `5.0`).
    /// `f64::INFINITY` makes the controller a pure observer: it measures
    /// per-epoch overhead but never changes the activation table.
    pub budget_pct: f64,
    /// Reactivate one deactivated function every this many under-budget
    /// decisions (`0` disables re-probing).
    pub reprobe_every: u64,
    /// Monitoring-tool response time charged when a reconfiguration is
    /// emitted (the paper's `configuration_break` release latency).
    pub respond_delay: SimTime,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            budget_pct: f64::INFINITY,
            reprobe_every: 4,
            respond_delay: SimTime::from_micros(50),
        }
    }
}

/// One epoch's controller decision, recorded for goldens and figures.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionRecord {
    /// Safe-point round the decision was made at.
    pub round: u64,
    /// Overhead measured over the window ending at this safe point (%).
    pub measured_pct: f64,
    /// Projected overhead after the emitted changes (%); equals
    /// `measured_pct` when nothing changed.
    pub projected_pct: f64,
    /// Functions deactivated by this decision.
    pub deactivated: Vec<String>,
    /// Functions reactivated (re-probe) by this decision.
    pub reactivated: Vec<String>,
    /// Controller-deactivated functions after this decision.
    pub off_count: usize,
}

#[derive(Default)]
struct CtrlState {
    /// Cumulative per-function fire counts at the last decision.
    prev_counts: BTreeMap<u32, u64>,
    /// Cumulative deactivated lookups at the last decision.
    prev_lookups: u64,
    /// Time of the last decision.
    prev_t: SimTime,
    /// Function ids currently deactivated by the controller.
    off: BTreeMap<u32, String>,
    decisions: Vec<DecisionRecord>,
    decision_count: u64,
}

/// The closed-loop overhead-budget controller (see module docs).
///
/// Attach one to a [`crate::MonitorLink`] with
/// [`crate::MonitorLink::attach_controller`]; `VT_confsync` consults it
/// on rank 0 whenever no manual change is pending, and its emitted deltas
/// flow through the exact same decision/broadcast/apply path (including
/// the happens-before decision and apply edges) as manual changes.
pub struct OverheadController {
    cfg: ControllerConfig,
    state: Mutex<CtrlState>,
}

impl OverheadController {
    /// A controller with explicit configuration.
    pub fn new(cfg: ControllerConfig) -> Arc<OverheadController> {
        Arc::new(OverheadController {
            cfg,
            state: Mutex::new(CtrlState::default()),
        })
    }

    /// A controller enforcing `budget_pct` with default re-probe schedule.
    pub fn budgeted(budget_pct: f64) -> Arc<OverheadController> {
        OverheadController::new(ControllerConfig {
            budget_pct,
            ..ControllerConfig::default()
        })
    }

    /// A pure observer: measures per-epoch overhead, never reconfigures.
    pub fn observer() -> Arc<OverheadController> {
        OverheadController::new(ControllerConfig::default())
    }

    /// The configuration in force.
    pub fn config(&self) -> ControllerConfig {
        self.cfg
    }

    /// Make one decision at safe-point `round`, time `now`. Returns the
    /// pending change to broadcast, or `None` when the activation table
    /// should stay as it is. Called by `VT_confsync` on rank 0; pure
    /// bookkeeping (no simulated time passes here — the emitted change
    /// is charged `respond_delay` by the safe-point protocol, exactly
    /// like a manual change).
    pub fn decide(&self, vt: &VtLib, now: SimTime, round: u64) -> Option<PendingChange> {
        let ranks = vt.ranks();
        let costs = vt.costs();
        // Prefer the verifier-derived worst-case pair bound (checked, not
        // trusted) over the declared cost model; fall back to the declared
        // pair when the snippet programs have not been built from the IR.
        let pair = vt.derived_pair().unwrap_or_else(|| costs.active_pair());
        let pair_ns = pair.as_nanos() as u128;
        let deact_ns = costs.vt_deactivated.as_nanos() as u128;

        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        let mut lookups = 0u64;
        for r in 0..ranks {
            for (f, count, _, _) in vt.stats_rows(r) {
                *counts.entry(f).or_default() += count;
            }
            lookups += vt.deactivated_lookups(r);
        }

        let mut st = self.state.lock();
        let window = now.saturating_sub(st.prev_t).as_nanos() as u128 * ranks as u128;
        let deltas: Vec<(u32, u64)> = counts
            .iter()
            .map(|(&f, &c)| (f, c - st.prev_counts.get(&f).copied().unwrap_or(0)))
            .filter(|&(_, d)| d > 0)
            .collect();
        let dlookups = lookups - st.prev_lookups;
        st.prev_counts = counts;
        st.prev_lookups = lookups;
        st.prev_t = now;
        if window == 0 {
            return None;
        }

        let probe_ns: u128 = deltas
            .iter()
            .map(|&(_, d)| d as u128 * pair_ns)
            .sum::<u128>()
            + dlookups as u128 * deact_ns;
        let measured_pct = 100.0 * probe_ns as f64 / window as f64;
        st.decision_count += 1;
        let decision_count = st.decision_count;

        let names = vt.function_names();
        let name_of = |f: u32| {
            names
                .get(f as usize)
                .cloned()
                .unwrap_or_else(|| format!("<func {f}>"))
        };

        let mut deactivated = Vec::new();
        let mut reactivated = Vec::new();
        let mut projected_ns = probe_ns;
        if measured_pct > self.cfg.budget_pct {
            // Over budget: deactivate by descending score = Δcount × pair
            // cost, ties by ascending function id, until the projection
            // (deactivated probes still pay the lookup) fits the budget.
            let target_ns = (self.cfg.budget_pct / 100.0 * window as f64) as u128;
            let mut candidates: Vec<(u32, u64)> = deltas
                .iter()
                .filter(|(f, _)| !st.off.contains_key(f))
                .copied()
                .collect();
            candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for (f, d) in candidates {
                if projected_ns <= target_ns {
                    break;
                }
                projected_ns -= d as u128 * (pair_ns - deact_ns);
                let name = name_of(f);
                deactivated.push(name.clone());
                st.off.insert(f, name);
            }
        } else if self.cfg.reprobe_every > 0
            && decision_count.is_multiple_of(self.cfg.reprobe_every)
            && !st.off.is_empty()
        {
            // Under budget: re-probe one deactivated function, rotating
            // deterministically over the sorted deactivated set.
            let idx = (decision_count / self.cfg.reprobe_every) as usize % st.off.len();
            let f = *st.off.keys().nth(idx).expect("idx < len");
            let name = st.off.remove(&f).expect("key present");
            reactivated.push(name);
        }

        let projected_pct = 100.0 * projected_ns as f64 / window as f64;
        let off_count = st.off.len();
        let changed = !deactivated.is_empty() || !reactivated.is_empty();
        if obs::enabled() {
            obs::counter("vt.controller.decisions").inc();
            obs::counter("vt.controller.deactivations").add(deactivated.len() as u64);
            obs::counter("vt.controller.reactivations").add(reactivated.len() as u64);
        }
        let mut set: Vec<(String, bool)> = deactivated.iter().map(|n| (n.clone(), false)).collect();
        set.extend(reactivated.iter().map(|n| (n.clone(), true)));
        st.decisions.push(DecisionRecord {
            round,
            measured_pct,
            projected_pct,
            deactivated,
            reactivated,
            off_count,
        });
        if changed {
            Some(PendingChange {
                delta: ConfigDelta::Set(set),
                respond_delay: self.cfg.respond_delay,
            })
        } else {
            None
        }
    }

    /// Decisions made so far, in order.
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        self.state.lock().decisions.clone()
    }

    /// Measured overhead (%) per decision epoch, in order.
    pub fn measured_series(&self) -> Vec<f64> {
        self.state
            .lock()
            .decisions
            .iter()
            .map(|d| d.measured_pct)
            .collect()
    }

    /// Names currently deactivated by the controller, sorted by id.
    pub fn deactivated_now(&self) -> Vec<String> {
        self.state.lock().off.values().cloned().collect()
    }

    /// Render the decision history as a stable text log (one line per
    /// decision, fixed two-decimal percentages) — the golden-test format.
    pub fn decision_log(&self) -> String {
        let mut out = String::new();
        for d in self.state.lock().decisions.iter() {
            out.push_str(&format!(
                "round={} measured={:.2}% projected={:.2}% deact=[{}] react=[{}] off={}\n",
                d.round,
                d.measured_pct,
                d.projected_pct,
                d.deactivated.join(","),
                d.reactivated.join(","),
                d.off_count,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VtConfig;
    use dynprof_sim::{Machine, ProbeCosts, Proc, Sim};

    fn run_workload(
        vt: Arc<VtLib>,
        hot_calls: u64,
        f: impl FnOnce(&Proc, &VtLib) + Send + 'static,
    ) {
        let sim = Sim::virtual_time(Machine::test_machine(), 3);
        sim.spawn("p", 0, move |p| {
            vt.init(p, 0);
            let hot = vt.funcdef(p, "hot");
            let rare = vt.funcdef(p, "rare");
            for _ in 0..hot_calls {
                vt.begin(p, 0, 0, hot, 1);
                p.advance(SimTime::from_nanos(200));
                vt.end(p, 0, 0, hot);
            }
            vt.begin(p, 0, 0, rare, 1);
            p.advance(SimTime::from_millis(2));
            vt.end(p, 0, 0, rare);
            f(p, &vt);
        });
        sim.run();
    }

    #[test]
    fn over_budget_deactivates_hot_first() {
        let vt = VtLib::new("app", 1, VtConfig::all_on(), ProbeCosts::power3());
        let ctrl = OverheadController::budgeted(10.0);
        let c2 = Arc::clone(&ctrl);
        run_workload(Arc::clone(&vt), 2000, move |p, vt| {
            let pc = c2
                .decide(vt, p.now(), 0)
                .expect("over budget: must reconfigure");
            match pc.delta {
                ConfigDelta::Set(set) => {
                    assert_eq!(set[0], ("hot".to_string(), false), "hot-cheap goes first");
                    assert!(
                        !set.iter().any(|(n, on)| n == "rare" && !on),
                        "rare-expensive probe kept: {set:?}"
                    );
                }
                other => panic!("unexpected delta {other:?}"),
            }
        });
        let d = ctrl.decisions();
        assert_eq!(d.len(), 1);
        assert!(d[0].measured_pct > 10.0);
        assert!(d[0].projected_pct <= d[0].measured_pct);
        assert_eq!(ctrl.deactivated_now(), vec!["hot".to_string()]);
    }

    #[test]
    fn observer_never_reconfigures() {
        let vt = VtLib::new("app", 1, VtConfig::all_on(), ProbeCosts::power3());
        let ctrl = OverheadController::observer();
        let c2 = Arc::clone(&ctrl);
        run_workload(Arc::clone(&vt), 2000, move |p, vt| {
            assert!(c2.decide(vt, p.now(), 0).is_none());
        });
        let d = ctrl.decisions();
        assert_eq!(d.len(), 1);
        assert!(d[0].measured_pct > 0.0);
        assert!(d[0].deactivated.is_empty());
    }

    #[test]
    fn reprobe_rotates_deterministically() {
        let vt = VtLib::new("app", 1, VtConfig::all_on(), ProbeCosts::power3());
        let ctrl = OverheadController::new(ControllerConfig {
            budget_pct: 10.0,
            reprobe_every: 2,
            respond_delay: SimTime::from_micros(50),
        });
        let c2 = Arc::clone(&ctrl);
        run_workload(Arc::clone(&vt), 2000, move |p, vt| {
            // Round 0: over budget → deactivate `hot`.
            assert!(c2.decide(vt, p.now(), 0).is_some());
            // Quiet window, decision 2: under budget and divisible by
            // reprobe_every → reactivate the rotation pick.
            p.advance(SimTime::from_millis(50));
            let pc = c2.decide(vt, p.now(), 1).expect("re-probe fires");
            match pc.delta {
                ConfigDelta::Set(set) => assert_eq!(set, vec![("hot".to_string(), true)]),
                other => panic!("unexpected delta {other:?}"),
            }
        });
        assert!(ctrl.deactivated_now().is_empty());
        let log = ctrl.decision_log();
        assert!(log.contains("react=[hot]"), "log: {log}");
    }
}
