//! # dynprof-vt — the Vampirtrace-analogue instrumentation library
//!
//! The data-collection layer of the VGV toolset (paper §3.1, Fig 3):
//!
//! * [`VtLib`] — function registration (`VT_funcdef`), the
//!   `VT_begin`/`VT_end` fast paths with the activation-table lookup that
//!   makes deactivated probes cheap (but not free), per-rank trace
//!   buffers, statistics, and trace assembly.
//! * [`VtConfig`] — the configuration file controlling which symbols are
//!   active, with exact and prefix rules.
//! * [`confsync`] — `VT_confsync`, the safe-point protocol for *dynamic
//!   control of instrumentation* (paper §5): breakpoint check, delta
//!   broadcast, optional runtime-statistics dump, re-synchronizing barrier.
//! * [`OverheadController`] — closed-loop adaptive instrumentation: keeps
//!   measured probe overhead inside a user budget by deactivating
//!   overhead-dense probes at safe points and re-probing periodically.
//! * [`VtStaticHooks`] / [`VtMpiHooks`] / [`VtOmpHooks`] — the attachment
//!   points into Guide static instrumentation, the MPI wrapper interface,
//!   and the Guidetrace OpenMP runtime.
//! * [`vt_begin_snippet`] / [`vt_end_snippet`] — the dynamically
//!   insertable probes dynprof places through DPCL.
//! * [`Policy`] — the five instrumentation policies of Table 3.
//! * [`Trace`] / [`Event`] — the time-stamped event model and binary
//!   trace-file format consumed by `dynprof-analysis`.

#![warn(missing_docs)]

mod config;
mod confsync;
mod controller;
mod event;
mod hooks;
mod policy;
mod sampling;
mod vtlib;

pub use config::{ConfigDelta, ConfigError, VtConfig};
pub use confsync::{confsync, ConfsyncOutcome, MonitorLink, PendingChange, StatsSnapshot};
pub use controller::{ControllerConfig, DecisionRecord, OverheadController};
pub use event::{Event, Trace, VtFuncId};
pub use hooks::{
    configuration_break_snippet, op_from_code, vt_begin_snippet, vt_count_snippet, vt_end_snippet,
    VtImageObserver, VtMpiHooks, VtOmpHooks, VtStaticHooks,
};
pub use policy::{Policy, ALL_POLICIES};
pub use sampling::{sample_image, SampleProfile, SAMPLE_INTERRUPT_COST};
pub use vtlib::{FuncStat, FuncStatRow, VtLib};
