//! Trace events and the binary trace-file format.
//!
//! The trace file "contains time-stamped events describing function
//! entries and exits, MPI library calls, and OpenMP parallel region
//! invocations" (paper §3.1). We add one compact record type,
//! [`Event::FuncBatch`], which represents `count` aggregated begin/end
//! pairs of a very hot leaf function: its *accounted* trace volume is that
//! of `2 × count` plain events (see `trace_bytes_of`), keeping the paper's
//! data-volume arithmetic intact while the in-memory trace stays tractable.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dynprof_sim::SimTime;

/// Identifier assigned by the trace library when a subroutine is first
/// registered with `VT_funcdef` (paper §3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VtFuncId(pub u32);

/// One time-stamped trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Function entry (`VT_begin`).
    FuncEnter {
        /// Timestamp.
        t: SimTime,
        /// MPI rank.
        rank: u32,
        /// OpenMP thread id.
        thread: u16,
        /// Registered function.
        func: VtFuncId,
    },
    /// Function exit (`VT_end`).
    FuncExit {
        /// Timestamp.
        t: SimTime,
        /// MPI rank.
        rank: u32,
        /// OpenMP thread id.
        thread: u16,
        /// Registered function.
        func: VtFuncId,
    },
    /// `count` aggregated begin/end pairs spanning `[t, t + span]`.
    FuncBatch {
        /// Start of the aggregated span.
        t: SimTime,
        /// MPI rank.
        rank: u32,
        /// OpenMP thread id.
        thread: u16,
        /// Registered function.
        func: VtFuncId,
        /// Number of begin/end pairs represented.
        count: u64,
        /// Wall span covered by the pairs.
        span: SimTime,
    },
    /// One MPI call observed through the wrapper interface.
    MpiCall {
        /// Call entry timestamp.
        t: SimTime,
        /// Call return timestamp.
        t_end: SimTime,
        /// MPI rank.
        rank: u32,
        /// Operation code (see `dynprof_mpi::MpiOp`).
        op: u8,
        /// Peer rank, or `-1` for collectives / none.
        peer: i32,
        /// Message bytes.
        bytes: u64,
    },
    /// A parallel region fork on the master thread.
    OmpFork {
        /// Timestamp.
        t: SimTime,
        /// MPI rank.
        rank: u32,
        /// Region id.
        region: u32,
        /// Team size.
        team: u16,
    },
    /// A parallel region join on the master thread.
    OmpJoin {
        /// Timestamp.
        t: SimTime,
        /// MPI rank.
        rank: u32,
        /// Region id.
        region: u32,
        /// Team size.
        team: u16,
    },
    /// One thread's occupancy of a parallel region.
    OmpThread {
        /// Thread began its share.
        t: SimTime,
        /// Thread finished its share.
        t_end: SimTime,
        /// MPI rank.
        rank: u32,
        /// Thread id.
        thread: u16,
        /// Region id.
        region: u32,
    },
    /// A `VT_confsync` safe point passed (with the new config epoch).
    ConfSync {
        /// Timestamp.
        t: SimTime,
        /// MPI rank.
        rank: u32,
        /// Configuration epoch after the sync.
        epoch: u32,
    },
    /// The process was suspended by the instrumenter for `[t, t_end]`
    /// (paper §5.1: a period of inactivity the analysis should discount).
    Suspended {
        /// Suspension start.
        t: SimTime,
        /// Resumption time.
        t_end: SimTime,
        /// MPI rank.
        rank: u32,
    },
    /// `count` entry/exit pairs of `func` shorter than the redundancy
    /// floor were elided from the trace. The pairs' cumulative wall time
    /// is `span`, so profiles reconstructed from a suppressed trace carry
    /// exactly the same inclusive/exclusive time as the unsuppressed one;
    /// only the per-pair event records are gone.
    FuncSuppressed {
        /// Timestamp of the first elided pair.
        t: SimTime,
        /// MPI rank.
        rank: u32,
        /// OpenMP thread id.
        thread: u16,
        /// Registered function.
        func: VtFuncId,
        /// Number of elided entry/exit pairs.
        count: u64,
        /// Cumulative wall time of the elided pairs.
        span: SimTime,
    },
}

impl Event {
    /// Timestamp used for ordering.
    pub fn time(&self) -> SimTime {
        match *self {
            Event::FuncEnter { t, .. }
            | Event::FuncExit { t, .. }
            | Event::FuncBatch { t, .. }
            | Event::MpiCall { t, .. }
            | Event::OmpFork { t, .. }
            | Event::OmpJoin { t, .. }
            | Event::OmpThread { t, .. }
            | Event::ConfSync { t, .. }
            | Event::Suspended { t, .. }
            | Event::FuncSuppressed { t, .. } => t,
        }
    }

    /// Rank that produced the event.
    pub fn rank(&self) -> u32 {
        match *self {
            Event::FuncEnter { rank, .. }
            | Event::FuncExit { rank, .. }
            | Event::FuncBatch { rank, .. }
            | Event::MpiCall { rank, .. }
            | Event::OmpFork { rank, .. }
            | Event::OmpJoin { rank, .. }
            | Event::OmpThread { rank, .. }
            | Event::ConfSync { rank, .. }
            | Event::Suspended { rank, .. }
            | Event::FuncSuppressed { rank, .. } => rank,
        }
    }

    /// The trace-volume this event accounts for, given the per-event byte
    /// cost of the machine's trace format.
    pub fn trace_bytes_of(&self, event_bytes: usize) -> u64 {
        match *self {
            Event::FuncBatch { count, .. } => 2 * count * event_bytes as u64,
            _ => event_bytes as u64,
        }
    }

    fn kind(&self) -> u8 {
        match self {
            Event::FuncEnter { .. } => 1,
            Event::FuncExit { .. } => 2,
            Event::FuncBatch { .. } => 3,
            Event::MpiCall { .. } => 4,
            Event::OmpFork { .. } => 5,
            Event::OmpJoin { .. } => 6,
            Event::OmpThread { .. } => 7,
            Event::ConfSync { .. } => 8,
            Event::Suspended { .. } => 9,
            Event::FuncSuppressed { .. } => 10,
        }
    }

    /// Append the binary encoding of this event.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.kind());
        match *self {
            Event::FuncEnter {
                t,
                rank,
                thread,
                func,
            }
            | Event::FuncExit {
                t,
                rank,
                thread,
                func,
            } => {
                buf.put_u64_le(t.as_nanos());
                buf.put_u32_le(rank);
                buf.put_u16_le(thread);
                buf.put_u32_le(func.0);
            }
            Event::FuncBatch {
                t,
                rank,
                thread,
                func,
                count,
                span,
            } => {
                buf.put_u64_le(t.as_nanos());
                buf.put_u32_le(rank);
                buf.put_u16_le(thread);
                buf.put_u32_le(func.0);
                buf.put_u64_le(count);
                buf.put_u64_le(span.as_nanos());
            }
            Event::MpiCall {
                t,
                t_end,
                rank,
                op,
                peer,
                bytes,
            } => {
                buf.put_u64_le(t.as_nanos());
                buf.put_u64_le(t_end.as_nanos());
                buf.put_u32_le(rank);
                buf.put_u8(op);
                buf.put_i32_le(peer);
                buf.put_u64_le(bytes);
            }
            Event::OmpFork {
                t,
                rank,
                region,
                team,
            }
            | Event::OmpJoin {
                t,
                rank,
                region,
                team,
            } => {
                buf.put_u64_le(t.as_nanos());
                buf.put_u32_le(rank);
                buf.put_u32_le(region);
                buf.put_u16_le(team);
            }
            Event::OmpThread {
                t,
                t_end,
                rank,
                thread,
                region,
            } => {
                buf.put_u64_le(t.as_nanos());
                buf.put_u64_le(t_end.as_nanos());
                buf.put_u32_le(rank);
                buf.put_u16_le(thread);
                buf.put_u32_le(region);
            }
            Event::ConfSync { t, rank, epoch } => {
                buf.put_u64_le(t.as_nanos());
                buf.put_u32_le(rank);
                buf.put_u32_le(epoch);
            }
            Event::Suspended { t, t_end, rank } => {
                buf.put_u64_le(t.as_nanos());
                buf.put_u64_le(t_end.as_nanos());
                buf.put_u32_le(rank);
            }
            Event::FuncSuppressed {
                t,
                rank,
                thread,
                func,
                count,
                span,
            } => {
                buf.put_u64_le(t.as_nanos());
                buf.put_u32_le(rank);
                buf.put_u16_le(thread);
                buf.put_u32_le(func.0);
                buf.put_u64_le(count);
                buf.put_u64_le(span.as_nanos());
            }
        }
    }

    /// Decode one event from the buffer. Returns `None` on malformed or
    /// truncated input.
    pub fn decode(buf: &mut Bytes) -> Option<Event> {
        if buf.remaining() < 1 {
            return None;
        }
        let kind = buf.get_u8();
        let need = match kind {
            1 | 2 => 18,
            3 => 34,
            4 => 33,
            5 | 6 => 18,
            7 => 26,
            8 => 16,
            9 => 20,
            10 => 34,
            _ => return None,
        };
        if buf.remaining() < need {
            return None;
        }
        Some(match kind {
            1 | 2 => {
                let t = SimTime::from_nanos(buf.get_u64_le());
                let rank = buf.get_u32_le();
                let thread = buf.get_u16_le();
                let func = VtFuncId(buf.get_u32_le());
                if kind == 1 {
                    Event::FuncEnter {
                        t,
                        rank,
                        thread,
                        func,
                    }
                } else {
                    Event::FuncExit {
                        t,
                        rank,
                        thread,
                        func,
                    }
                }
            }
            3 => Event::FuncBatch {
                t: SimTime::from_nanos(buf.get_u64_le()),
                rank: buf.get_u32_le(),
                thread: buf.get_u16_le(),
                func: VtFuncId(buf.get_u32_le()),
                count: buf.get_u64_le(),
                span: SimTime::from_nanos(buf.get_u64_le()),
            },
            4 => Event::MpiCall {
                t: SimTime::from_nanos(buf.get_u64_le()),
                t_end: SimTime::from_nanos(buf.get_u64_le()),
                rank: buf.get_u32_le(),
                op: buf.get_u8(),
                peer: buf.get_i32_le(),
                bytes: buf.get_u64_le(),
            },
            5 | 6 => {
                let t = SimTime::from_nanos(buf.get_u64_le());
                let rank = buf.get_u32_le();
                let region = buf.get_u32_le();
                let team = buf.get_u16_le();
                if kind == 5 {
                    Event::OmpFork {
                        t,
                        rank,
                        region,
                        team,
                    }
                } else {
                    Event::OmpJoin {
                        t,
                        rank,
                        region,
                        team,
                    }
                }
            }
            7 => Event::OmpThread {
                t: SimTime::from_nanos(buf.get_u64_le()),
                t_end: SimTime::from_nanos(buf.get_u64_le()),
                rank: buf.get_u32_le(),
                thread: buf.get_u16_le(),
                region: buf.get_u32_le(),
            },
            8 => Event::ConfSync {
                t: SimTime::from_nanos(buf.get_u64_le()),
                rank: buf.get_u32_le(),
                epoch: buf.get_u32_le(),
            },
            9 => Event::Suspended {
                t: SimTime::from_nanos(buf.get_u64_le()),
                t_end: SimTime::from_nanos(buf.get_u64_le()),
                rank: buf.get_u32_le(),
            },
            10 => Event::FuncSuppressed {
                t: SimTime::from_nanos(buf.get_u64_le()),
                rank: buf.get_u32_le(),
                thread: buf.get_u16_le(),
                func: VtFuncId(buf.get_u32_le()),
                count: buf.get_u64_le(),
                span: SimTime::from_nanos(buf.get_u64_le()),
            },
            _ => unreachable!(),
        })
    }
}

/// A complete postmortem trace: the function dictionary plus all events,
/// merged across ranks and sorted by time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Program name.
    pub program: String,
    /// Function names indexed by [`VtFuncId`].
    pub functions: Vec<String>,
    /// Events sorted by (time, rank).
    pub events: Vec<Event>,
}

const MAGIC: &[u8; 4] = b"VGVT";
const VERSION: u16 = 1;

impl Trace {
    /// Name of a registered function.
    pub fn func_name(&self, f: VtFuncId) -> &str {
        self.functions
            .get(f.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Total modelled trace volume in bytes (per-event cost `event_bytes`).
    pub fn modelled_bytes(&self, event_bytes: usize) -> u64 {
        self.events
            .iter()
            .map(|e| e.trace_bytes_of(event_bytes))
            .sum()
    }

    /// Serialize to the binary trace format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        let name = self.program.as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        buf.put_u32_le(self.functions.len() as u32);
        for f in &self.functions {
            let b = f.as_bytes();
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        buf.put_u64_le(self.events.len() as u64);
        for e in &self.events {
            e.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Deserialize from the binary trace format.
    pub fn decode(mut buf: Bytes) -> Result<Trace, String> {
        fn take_string(buf: &mut Bytes) -> Result<String, String> {
            if buf.remaining() < 4 {
                return Err("truncated string length".into());
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n {
                return Err("truncated string body".into());
            }
            let s = buf.split_to(n);
            String::from_utf8(s.to_vec()).map_err(|e| e.to_string())
        }
        if buf.remaining() < 6 || &buf.split_to(4)[..] != MAGIC {
            return Err("bad magic".into());
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(format!("unsupported trace version {version}"));
        }
        let program = take_string(&mut buf)?;
        if buf.remaining() < 4 {
            return Err("truncated function table".into());
        }
        let nf = buf.get_u32_le() as usize;
        let mut functions = Vec::with_capacity(nf.min(1 << 20));
        for _ in 0..nf {
            functions.push(take_string(&mut buf)?);
        }
        if buf.remaining() < 8 {
            return Err("truncated event count".into());
        }
        let ne = buf.get_u64_le() as usize;
        let mut events = Vec::with_capacity(ne.min(1 << 24));
        for i in 0..ne {
            match Event::decode(&mut buf) {
                Some(e) => events.push(e),
                None => return Err(format!("malformed event {i}")),
            }
        }
        Ok(Trace {
            program,
            functions,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::FuncEnter {
                t: SimTime::from_micros(10),
                rank: 0,
                thread: 0,
                func: VtFuncId(3),
            },
            Event::MpiCall {
                t: SimTime::from_micros(12),
                t_end: SimTime::from_micros(20),
                rank: 0,
                op: 4,
                peer: 1,
                bytes: 8192,
            },
            Event::FuncBatch {
                t: SimTime::from_micros(21),
                rank: 1,
                thread: 2,
                func: VtFuncId(7),
                count: 1000,
                span: SimTime::from_millis(3),
            },
            Event::OmpFork {
                t: SimTime::from_micros(30),
                rank: 1,
                region: 4,
                team: 8,
            },
            Event::OmpThread {
                t: SimTime::from_micros(31),
                t_end: SimTime::from_micros(40),
                rank: 1,
                thread: 5,
                region: 4,
            },
            Event::OmpJoin {
                t: SimTime::from_micros(41),
                rank: 1,
                region: 4,
                team: 8,
            },
            Event::ConfSync {
                t: SimTime::from_micros(50),
                rank: 0,
                epoch: 2,
            },
            Event::Suspended {
                t: SimTime::from_micros(55),
                t_end: SimTime::from_micros(58),
                rank: 1,
            },
            Event::FuncSuppressed {
                t: SimTime::from_micros(59),
                rank: 1,
                thread: 2,
                func: VtFuncId(7),
                count: 12,
                span: SimTime::from_micros(36),
            },
            Event::FuncExit {
                t: SimTime::from_micros(60),
                rank: 0,
                thread: 0,
                func: VtFuncId(3),
            },
        ]
    }

    #[test]
    fn events_round_trip() {
        for e in sample_events() {
            let mut buf = BytesMut::new();
            e.encode(&mut buf);
            let mut b = buf.freeze();
            assert_eq!(Event::decode(&mut b), Some(e));
            assert_eq!(b.remaining(), 0);
        }
    }

    #[test]
    fn trace_round_trips() {
        let trace = Trace {
            program: "sweep3d".into(),
            functions: vec!["main".into(), "sweep".into(), "source".into()],
            events: sample_events(),
        };
        let decoded = Trace::decode(trace.encode()).expect("decode");
        assert_eq!(decoded, trace);
    }

    #[test]
    fn batch_accounts_for_full_volume() {
        let e = Event::FuncBatch {
            t: SimTime::ZERO,
            rank: 0,
            thread: 0,
            func: VtFuncId(0),
            count: 500,
            span: SimTime::ZERO,
        };
        assert_eq!(e.trace_bytes_of(24), 24_000);
        let plain = Event::FuncEnter {
            t: SimTime::ZERO,
            rank: 0,
            thread: 0,
            func: VtFuncId(0),
        };
        assert_eq!(plain.trace_bytes_of(24), 24);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Trace::decode(Bytes::from_static(b"nope")).is_err());
        assert!(Trace::decode(Bytes::from_static(b"VGVT\xff\xff")).is_err());
        let mut buf = BytesMut::new();
        Event::FuncEnter {
            t: SimTime::ZERO,
            rank: 0,
            thread: 0,
            func: VtFuncId(0),
        }
        .encode(&mut buf);
        let mut truncated = buf.freeze().slice(0..5);
        assert_eq!(Event::decode(&mut truncated), None);
        let mut bad_kind = Bytes::from_static(&[99, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(Event::decode(&mut bad_kind), None);
    }

    #[test]
    fn func_name_lookup_handles_unknown() {
        let t = Trace {
            program: "x".into(),
            functions: vec!["f".into()],
            events: vec![],
        };
        assert_eq!(t.func_name(VtFuncId(0)), "f");
        assert_eq!(t.func_name(VtFuncId(9)), "<unknown>");
    }
}
