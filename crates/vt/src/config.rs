//! The Vampirtrace configuration file and activation table.
//!
//! "When the VT library is initialized at the start of the program, the VT
//! configuration file is read and a table of symbols that are deactivated
//! is created. At each call to `VT_begin` and `VT_end`, a lookup into this
//! table is performed." (paper §4.2)
//!
//! The format is line-oriented:
//!
//! ```text
//! # comment
//! SYMBOL default on
//! SYMBOL hypre_* off       # trailing-star prefix rule
//! SYMBOL smg_relax on      # exact rule (exact beats prefix)
//! ```
//!
//! Exact rules take precedence over prefix rules; among prefix rules the
//! longest prefix wins; `default` applies when nothing matches.

use std::collections::HashMap;

/// A parsed configuration: the initial activation rules.
#[derive(Clone, Debug, PartialEq)]
pub struct VtConfig {
    /// Activation when no rule matches.
    pub default_on: bool,
    /// Exact-name rules.
    pub exact: HashMap<String, bool>,
    /// Prefix rules (`name*`), longest-match-wins.
    pub prefixes: Vec<(String, bool)>,
}

impl Default for VtConfig {
    fn default() -> Self {
        VtConfig::all_on()
    }
}

/// A configuration-parse failure, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl VtConfig {
    /// Everything active (the `Full` policy's configuration).
    pub fn all_on() -> VtConfig {
        VtConfig {
            default_on: true,
            exact: HashMap::new(),
            prefixes: Vec::new(),
        }
    }

    /// Everything deactivated (the `Full-Off` policy's configuration).
    pub fn all_off() -> VtConfig {
        VtConfig {
            default_on: false,
            exact: HashMap::new(),
            prefixes: Vec::new(),
        }
    }

    /// Everything off except the named subset (the `Subset` policy).
    pub fn subset_on<S: AsRef<str>>(names: impl IntoIterator<Item = S>) -> VtConfig {
        VtConfig {
            default_on: false,
            exact: names
                .into_iter()
                .map(|n| (n.as_ref().to_string(), true))
                .collect(),
            prefixes: Vec::new(),
        }
    }

    /// Parse the text format.
    pub fn parse(text: &str) -> Result<VtConfig, ConfigError> {
        let mut cfg = VtConfig::all_on();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let stripped = raw.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                continue;
            }
            let mut parts = stripped.split_whitespace();
            let keyword = parts.next().unwrap_or("");
            if !keyword.eq_ignore_ascii_case("SYMBOL") {
                return Err(ConfigError {
                    line,
                    message: format!("unknown keyword {keyword:?} (expected SYMBOL)"),
                });
            }
            let name = parts.next().ok_or(ConfigError {
                line,
                message: "missing symbol name".into(),
            })?;
            let state = parts.next().ok_or(ConfigError {
                line,
                message: "missing on/off state".into(),
            })?;
            let on = match state.to_ascii_lowercase().as_str() {
                "on" => true,
                "off" => false,
                other => {
                    return Err(ConfigError {
                        line,
                        message: format!("bad state {other:?} (expected on|off)"),
                    })
                }
            };
            if let Some(extra) = parts.next() {
                return Err(ConfigError {
                    line,
                    message: format!("trailing token {extra:?}"),
                });
            }
            if name == "default" || name == "*" {
                cfg.default_on = on;
            } else if let Some(prefix) = name.strip_suffix('*') {
                cfg.prefixes.push((prefix.to_string(), on));
            } else {
                cfg.exact.insert(name.to_string(), on);
            }
        }
        Ok(cfg)
    }

    /// Render back to the text format (round-trippable modulo ordering).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# Vampirtrace instrumentation configuration\n");
        out.push_str(&format!(
            "SYMBOL default {}\n",
            if self.default_on { "on" } else { "off" }
        ));
        let mut prefixes = self.prefixes.clone();
        prefixes.sort();
        for (p, on) in prefixes {
            out.push_str(&format!("SYMBOL {p}* {}\n", if on { "on" } else { "off" }));
        }
        let mut exact: Vec<_> = self.exact.iter().collect();
        exact.sort();
        for (n, on) in exact {
            out.push_str(&format!("SYMBOL {n} {}\n", if *on { "on" } else { "off" }));
        }
        out
    }

    /// Resolve the activation of `name` under this configuration.
    pub fn resolve(&self, name: &str) -> bool {
        if let Some(&on) = self.exact.get(name) {
            return on;
        }
        self.prefixes
            .iter()
            .filter(|(p, _)| name.starts_with(p.as_str()))
            .max_by_key(|(p, _)| p.len())
            .map(|&(_, on)| on)
            .unwrap_or(self.default_on)
    }

    /// Apply a delta (e.g. from `VT_confsync`) on top of this config.
    pub fn apply(&mut self, delta: &ConfigDelta) {
        match delta {
            ConfigDelta::Replace(cfg) => *self = cfg.clone(),
            ConfigDelta::Set(changes) => {
                for (name, on) in changes {
                    if name == "default" || name == "*" {
                        self.default_on = *on;
                    } else if let Some(prefix) = name.strip_suffix('*') {
                        self.prefixes.retain(|(p, _)| p != prefix);
                        self.prefixes.push((prefix.to_string(), *on));
                    } else {
                        self.exact.insert(name.clone(), *on);
                    }
                }
            }
        }
    }
}

/// A configuration change distributed by `VT_confsync`.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigDelta {
    /// Replace the whole configuration.
    Replace(VtConfig),
    /// Set individual symbols (supports `default` and `name*`).
    Set(Vec<(String, bool)>),
}

impl ConfigDelta {
    /// Modelled wire size when broadcast to all ranks.
    pub fn wire_bytes(&self) -> usize {
        match self {
            ConfigDelta::Replace(cfg) => cfg.render().len(),
            ConfigDelta::Set(changes) => {
                changes.iter().map(|(n, _)| n.len() + 2).sum::<usize>() + 4
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_config() {
        let cfg = VtConfig::parse(
            "# header\n\
             SYMBOL default off\n\
             SYMBOL smg_* on   # solver\n\
             SYMBOL smg_setup off\n\
             \n",
        )
        .unwrap();
        assert!(!cfg.default_on);
        assert!(cfg.resolve("smg_relax"));
        assert!(!cfg.resolve("smg_setup"), "exact beats prefix");
        assert!(!cfg.resolve("main"));
    }

    #[test]
    fn longest_prefix_wins() {
        let cfg = VtConfig::parse(
            "SYMBOL hypre_* off\n\
             SYMBOL hypre_Struct* on\n",
        )
        .unwrap();
        assert!(cfg.resolve("hypre_StructVector"));
        assert!(!cfg.resolve("hypre_CommPkg"));
        assert!(cfg.resolve("unrelated"), "default stays on");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = VtConfig::parse("SYMBOL a on\nNONSENSE b\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = VtConfig::parse("SYMBOL x maybe\n").unwrap_err();
        assert!(e.message.contains("bad state"));
        let e = VtConfig::parse("SYMBOL x on extra\n").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = VtConfig::parse("SYMBOL\n").unwrap_err();
        assert!(e.message.contains("missing symbol"));
    }

    #[test]
    fn render_parse_round_trip() {
        let mut cfg = VtConfig::all_off();
        cfg.exact.insert("solve".into(), true);
        cfg.prefixes.push(("mg_".into(), true));
        let reparsed = VtConfig::parse(&cfg.render()).unwrap();
        for name in ["solve", "mg_relax", "other", "mg_"] {
            assert_eq!(reparsed.resolve(name), cfg.resolve(name), "{name}");
        }
    }

    #[test]
    fn subset_constructor_matches_policy_semantics() {
        let cfg = VtConfig::subset_on(["a", "b"]);
        assert!(cfg.resolve("a"));
        assert!(cfg.resolve("b"));
        assert!(!cfg.resolve("c"));
    }

    #[test]
    fn deltas_apply() {
        let mut cfg = VtConfig::all_on();
        cfg.apply(&ConfigDelta::Set(vec![
            ("default".into(), false),
            ("keep_me".into(), true),
            ("util_*".into(), true),
        ]));
        assert!(!cfg.resolve("random"));
        assert!(cfg.resolve("keep_me"));
        assert!(cfg.resolve("util_pack"));
        cfg.apply(&ConfigDelta::Replace(VtConfig::all_on()));
        assert!(cfg.resolve("random"));
    }

    #[test]
    fn delta_wire_bytes_positive() {
        assert!(ConfigDelta::Set(vec![("f".into(), true)]).wire_bytes() > 0);
        assert!(ConfigDelta::Replace(VtConfig::all_off()).wire_bytes() > 0);
    }
}
