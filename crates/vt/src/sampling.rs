//! Statistical sampling — the alternative to complete profiling the paper
//! weighs in §2.
//!
//! "Statistical sampling captures the program state at regular time
//! intervals, recording the code location currently executing at the time
//! that the interval expires. [...] the smaller the sampling interval,
//! the higher the accuracy and overhead."
//!
//! VGV itself uses complete profiling (its time-line views need every
//! event), but a sampler is the natural baseline to compare against — the
//! `ablation` harness does exactly that. In virtual time the sampler is
//! evaluated as an *ideal interrupt sampler*: the image journals each
//! call's `[enter, exit)` interval (the shadow program counter's history),
//! and [`sample_image`] attributes one tick per interval expiry to the
//! innermost function covering it. Target perturbation is the paper's
//! per-interrupt cost times the tick count, reported alongside the
//! profile rather than injected into the run.

use std::collections::BTreeMap;

use dynprof_image::{FuncId, Image};
use dynprof_sim::SimTime;

/// Cost of one sampling interrupt on the target (signal delivery, handler,
/// return) — used to estimate the perturbation a real sampler would add.
pub const SAMPLE_INTERRUPT_COST: SimTime = SimTime::from_micros(2);

/// Accumulated samples of one process.
#[derive(Clone, Debug, Default)]
pub struct SampleProfile {
    /// Samples per function (by image [`FuncId`] index).
    pub counts: BTreeMap<u32, u64>,
    /// Total ticks evaluated (across threads, including unknown ticks).
    pub ticks: u64,
    /// Ticks that landed outside any manifest function.
    pub unknown: u64,
    /// The sampling interval used.
    pub interval: SimTime,
}

impl SampleProfile {
    /// Fraction of known samples attributed to `fid` (0.0 if none).
    pub fn share(&self, fid: FuncId) -> f64 {
        let known: u64 = self.counts.values().sum();
        if known == 0 {
            return 0.0;
        }
        *self.counts.get(&fid.0).unwrap_or(&0) as f64 / known as f64
    }

    /// Functions by descending sample count.
    pub fn ranked(&self) -> Vec<(FuncId, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&f, &c)| (FuncId(f), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v
    }

    /// Estimated perturbation a real interrupt sampler would have added
    /// to the target (ticks × per-interrupt cost).
    pub fn estimated_overhead(&self) -> SimTime {
        SAMPLE_INTERRUPT_COST * self.ticks
    }
}

/// Evaluate an ideal interrupt sampler over `image`'s PC journal: one tick
/// per `interval` in `[t0, t1]`, attributed to the innermost journaled
/// interval covering it. The image must have had
/// [`Image::enable_pc_log`] set before the run.
pub fn sample_image(image: &Image, interval: SimTime, t0: SimTime, t1: SimTime) -> SampleProfile {
    assert!(
        interval > SimTime::ZERO,
        "sampling interval must be positive"
    );
    let log = image.pc_log_snapshot();
    let mut profile = SampleProfile {
        interval,
        ..SampleProfile::default()
    };
    for (_thread, mut intervals) in log {
        // Innermost = the containing interval with the latest start.
        intervals.sort_by_key(|&(s, _, _)| s);
        let starts: Vec<SimTime> = intervals.iter().map(|&(s, _, _)| s).collect();
        let mut t = t0;
        while t <= t1 {
            profile.ticks += 1;
            // Find the last interval starting at or before t...
            let idx = starts.partition_point(|&s| s <= t);
            // ...then scan backwards for the innermost cover.
            let hit = intervals[..idx]
                .iter()
                .rev()
                .take(64) // nesting depth bound
                .find(|&&(s, e, _)| s <= t && t < e);
            match hit {
                Some(&(_, _, fid)) => *profile.counts.entry(fid).or_insert(0) += 1,
                None => profile.unknown += 1,
            }
            t += interval;
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_image::{CallerCtx, FunctionInfo, ImageBuilder};
    use dynprof_sim::{Machine, Sim};
    use std::sync::Arc;

    fn run_two_phase(
        hot_us: u64,
        cold_us: u64,
        reps: usize,
    ) -> (Arc<dynprof_image::Image>, SimTime) {
        let mut b = ImageBuilder::new("app");
        let _hot = b.add(FunctionInfo::new("hot"));
        let _cold = b.add(FunctionInfo::new("cold"));
        let img = Arc::new(b.build());
        img.enable_pc_log();
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 9);
        sim.spawn("app", 0, move |p| {
            let hot = img2.func("hot").unwrap();
            let cold = img2.func("cold").unwrap();
            for _ in 0..reps {
                img2.call(p, CallerCtx::default(), hot, || {
                    p.advance(SimTime::from_micros(hot_us))
                });
                img2.call(p, CallerCtx::default(), cold, || {
                    p.advance(SimTime::from_micros(cold_us))
                });
            }
        });
        let end = sim.run();
        (img, end)
    }

    #[test]
    fn sampler_attributes_time_proportionally() {
        let (img, end) = run_two_phase(90, 10, 50);
        let prof = sample_image(&img, SimTime::from_micros(7), SimTime::ZERO, end);
        let hot = img.func("hot").unwrap();
        let cold = img.func("cold").unwrap();
        assert!(prof.ticks > 400, "too few ticks: {}", prof.ticks);
        let hs = prof.share(hot);
        assert!((hs - 0.9).abs() < 0.05, "hot share {hs}");
        assert_eq!(prof.ranked()[0].0, hot);
        assert!(prof.share(cold) > 0.05);
        assert!(prof.estimated_overhead() > SimTime::ZERO);
    }

    #[test]
    fn coarser_intervals_lose_accuracy_but_cost_less() {
        let (img1, end) = run_two_phase(9, 1, 200);
        let fine = sample_image(&img1, SimTime::from_micros(1), SimTime::ZERO, end);
        let (img2, end2) = run_two_phase(9, 1, 200);
        let coarse = sample_image(&img2, SimTime::from_micros(130), SimTime::ZERO, end2);
        assert!(fine.ticks > 10 * coarse.ticks);
        assert!(fine.estimated_overhead() > coarse.estimated_overhead());
        // The fine profile nails the 90/10 split.
        let hot = img1.func("hot").unwrap();
        assert!((fine.share(hot) - 0.9).abs() < 0.02, "{}", fine.share(hot));
    }

    #[test]
    fn nested_calls_attribute_to_innermost() {
        let mut b = ImageBuilder::new("app");
        let outer = b.add(FunctionInfo::new("outer"));
        let inner = b.add(FunctionInfo::new("inner"));
        let img = Arc::new(b.build());
        img.enable_pc_log();
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 9);
        sim.spawn("app", 0, move |p| {
            img2.call(p, CallerCtx::default(), outer, || {
                p.advance(SimTime::from_micros(10));
                img2.call(p, CallerCtx::default(), inner, || {
                    p.advance(SimTime::from_micros(80));
                });
                p.advance(SimTime::from_micros(10));
            });
        });
        let end = sim.run();
        let prof = sample_image(&img, SimTime::from_micros(1), SimTime::ZERO, end);
        assert!(prof.share(inner) > 0.7, "inner {}", prof.share(inner));
        assert!(prof.share(outer) < 0.3, "outer {}", prof.share(outer));
    }

    #[test]
    fn unlogged_image_yields_unknown_ticks() {
        let mut b = ImageBuilder::new("app");
        let f = b.add(FunctionInfo::new("f"));
        let img = Arc::new(b.build()); // pc log NOT enabled
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 9);
        sim.spawn("app", 0, move |p| {
            img2.call(p, CallerCtx::default(), f, || {
                p.advance(SimTime::from_micros(100))
            });
        });
        let end = sim.run();
        let prof = sample_image(&img, SimTime::from_micros(10), SimTime::ZERO, end);
        assert_eq!(prof.counts.len(), 0);
        assert_eq!(prof.ticks, 0, "no journaled threads, no ticks");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let mut b = ImageBuilder::new("app");
        b.add(FunctionInfo::new("f"));
        let img = b.build();
        sample_image(&img, SimTime::ZERO, SimTime::ZERO, SimTime::from_secs(1));
    }
}
