//! The trace library core: registration, activation, and the
//! `VT_begin`/`VT_end` fast paths.
//!
//! One [`VtLib`] exists per job and is shared (via `Arc`) by every rank's
//! instrumentation. Each rank owns a private buffer/stack/stats area; the
//! function registry and activation table are global (they are identical
//! on every rank between safe points by construction of `VT_confsync`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use dynprof_obs as obs;
use parking_lot::{Mutex, RwLock};

use dynprof_sim::{ProbeCosts, Proc, SimTime};

use crate::config::{ConfigDelta, VtConfig};
use crate::event::{Event, Trace, VtFuncId};

/// Per-function statistics accumulated while probes are active — the data
/// `VT_confsync` can write out at runtime (paper §5, Experiment 3).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FuncStat {
    /// Completed calls.
    pub count: u64,
    /// Inclusive time.
    pub incl: SimTime,
    /// Exclusive time (inclusive minus instrumented children).
    pub excl: SimTime,
}

/// Wire row of one function's statistics: `(func, count, incl_ns, excl_ns)`.
pub type FuncStatRow = (u32, u64, u64, u64);

/// Count `n` trace events appended (cached handle; callers guard with
/// [`obs::enabled`]).
fn note_events(n: u64) {
    static EVENTS: OnceLock<&'static obs::Counter> = OnceLock::new();
    EVENTS.get_or_init(|| obs::counter("vt.events")).add(n);
}

struct Frame {
    func: VtFuncId,
    thread: u16,
    t0: SimTime,
    reps: u64,
    active: bool,
    child: SimTime,
    /// Index of this frame's `FuncEnter` in the rank's event buffer
    /// (active single-invocation frames only) — the redundancy
    /// suppressor may pop it again if the pair turns out shorter than
    /// the duration floor and the enter is still the last event.
    enter_idx: Option<usize>,
}

#[derive(Default)]
struct ProcBuf {
    events: Vec<Event>,
    /// Call stacks keyed by OpenMP thread id.
    stacks: HashMap<u16, Vec<Frame>>,
    stats: Vec<FuncStat>,
    trace_bytes: u64,
    deactivated_lookups: u64,
    stray_ends: u64,
    /// Entry/exit pairs elided by the redundancy suppressor.
    suppressed_pairs: u64,
    /// Coalesced suppressed-count records: `(thread, func, parent func)`
    /// → index of the `FuncSuppressed` event in `events`. Indices stay
    /// valid because only a trailing `FuncEnter` is ever popped and
    /// `FuncSuppressed` records are never removed.
    suppressed_idx: HashMap<(u16, u32, Option<u32>), usize>,
    /// Pending MPI operations (op code, entry time), a stack because
    /// `MPI_Init`'s inserted snippet issues nested `MPI_Barrier`s.
    mpi_stack: Vec<(u8, SimTime)>,
}

struct ProcState {
    initialized: AtomicBool,
    finalized: AtomicBool,
    buf: Mutex<ProcBuf>,
    /// This rank's view of the configuration. Distributed on purpose:
    /// between safe points different ranks may (transiently) disagree,
    /// exactly as the real library's per-process tables do — and the
    /// simulator's causality depends on it.
    config: Mutex<VtConfig>,
    /// Resolved activation per registered function (lazy, per rank).
    active: RwLock<Vec<bool>>,
    /// Safe points this rank has entered (drives the fault plan's
    /// missed-epoch decision; consistent across ranks because
    /// `VT_confsync` is collective).
    sync_round: AtomicU64,
    /// Deltas this rank missed (its config epoch arrived while it was
    /// unreachable), tagged with the safe-point round that decided them;
    /// applied as catch-up at the next safe point.
    deferred: Mutex<Vec<(u64, ConfigDelta)>>,
}

struct Registry {
    names: Vec<String>,
    ids: HashMap<String, VtFuncId>,
}

/// The Vampirtrace-analogue instrumentation library of one job.
pub struct VtLib {
    program: String,
    costs: ProbeCosts,
    registry: RwLock<Registry>,
    procs: Vec<ProcState>,
    epoch: AtomicU32,
    /// `(rank, epoch)` markers for safe points a rank passed without
    /// applying that epoch's delta (it caught up later).
    partials: Mutex<Vec<(usize, u32)>>,
    /// Degraded-mode instrumentation epochs: `(txn epoch, excluded nodes)`
    /// recorded by the 2PC control plane when it committed without the
    /// full node set. Figure output labels runs with a non-empty list.
    degraded: Mutex<Vec<(u64, Vec<usize>)>>,
    /// Redundancy-suppression duration floor in nanoseconds (0 = off):
    /// active entry/exit pairs shorter than this are elided into
    /// per-function [`Event::FuncSuppressed`] records.
    suppress_floor: AtomicU64,
    /// Verifier-derived worst-case costs of the `VT_begin`/`VT_end`
    /// snippet programs, stamped when the snippets are built from the IR.
    /// The overhead controller prefers these over the declared
    /// [`ProbeCosts`] pair — derived bounds are checked, not trusted.
    derived_costs: Mutex<(Option<SimTime>, Option<SimTime>)>,
    /// Identity of this library in happens-before reports (`check`).
    pub(crate) check_id: u64,
}

impl VtLib {
    /// Create the library for `program` with `ranks` processes, an initial
    /// configuration (the "VT configuration file"), and the machine's
    /// probe cost model.
    pub fn new(
        program: impl Into<String>,
        ranks: usize,
        config: VtConfig,
        costs: ProbeCosts,
    ) -> Arc<VtLib> {
        Arc::new(VtLib {
            program: program.into(),
            costs,
            registry: RwLock::new(Registry {
                names: Vec::new(),
                ids: HashMap::new(),
            }),
            procs: (0..ranks)
                .map(|_| ProcState {
                    initialized: AtomicBool::new(false),
                    finalized: AtomicBool::new(false),
                    buf: Mutex::new(ProcBuf::default()),
                    config: Mutex::new(config.clone()),
                    active: RwLock::new(Vec::new()),
                    sync_round: AtomicU64::new(0),
                    deferred: Mutex::new(Vec::new()),
                })
                .collect(),
            epoch: AtomicU32::new(0),
            partials: Mutex::new(Vec::new()),
            degraded: Mutex::new(Vec::new()),
            suppress_floor: AtomicU64::new(0),
            derived_costs: Mutex::new((None, None)),
            check_id: dynprof_sim::hb::unique_id(),
        })
    }

    /// Program name.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// The probe cost model in force.
    pub fn costs(&self) -> &ProbeCosts {
        &self.costs
    }

    /// Number of ranks this library serves.
    pub fn ranks(&self) -> usize {
        self.procs.len()
    }

    /// Current configuration epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch.load(Ordering::Acquire)
    }

    pub(crate) fn bump_epoch(&self) -> u32 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The index of the safe point `rank` is entering (0-based, bumped on
    /// each `VT_confsync`).
    pub(crate) fn next_sync_round(&self, rank: usize) -> u64 {
        self.procs[rank].sync_round.fetch_add(1, Ordering::AcqRel)
    }

    /// Queue a delta `rank` could not apply at the safe point `round`.
    pub(crate) fn defer_delta(&self, rank: usize, round: u64, delta: ConfigDelta) {
        self.procs[rank].deferred.lock().push((round, delta));
    }

    /// Drain `rank`'s missed `(round, delta)` pairs for catch-up
    /// application.
    pub(crate) fn take_deferred(&self, rank: usize) -> Vec<(u64, ConfigDelta)> {
        std::mem::take(&mut *self.procs[rank].deferred.lock())
    }

    /// How many missed deltas `rank` has yet to catch up on.
    pub fn deferred_count(&self, rank: usize) -> usize {
        self.procs[rank].deferred.lock().len()
    }

    /// Record that `rank` passed the safe point of `epoch` without
    /// applying its delta.
    pub(crate) fn note_partial(&self, rank: usize, epoch: u32) {
        self.partials.lock().push((rank, epoch));
    }

    /// `(rank, epoch)` markers of partially-applied config epochs: safe
    /// points a rank passed while its delta was deferred. Empty in
    /// fault-free runs.
    pub fn partial_epochs(&self) -> Vec<(usize, u32)> {
        self.partials.lock().clone()
    }

    /// Record that instrumentation txn `epoch` committed degraded,
    /// excluding `nodes` (the 2PC coordinator calls this so the trace
    /// carries the reduced coverage alongside the measurements).
    pub fn note_degraded(&self, epoch: u64, nodes: &[usize]) {
        self.degraded.lock().push((epoch, nodes.to_vec()));
    }

    /// Degraded-mode instrumentation epochs recorded by
    /// [`VtLib::note_degraded`]: `(txn epoch, excluded nodes)`.
    pub fn degraded_epochs(&self) -> Vec<(u64, Vec<usize>)> {
        self.degraded.lock().clone()
    }

    /// True if any instrumentation epoch committed degraded — figure
    /// harnesses use this to label output rows.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.lock().is_empty()
    }

    /// Set the redundancy-suppression duration floor. Pairs with
    /// inclusive time strictly below `floor` (and with no recorded or
    /// instrumented children) are elided into coalesced
    /// [`Event::FuncSuppressed`] records. `SimTime::ZERO` disables
    /// suppression and leaves the recording path byte-identical to a
    /// library without the feature.
    pub fn set_suppress_floor(&self, floor: SimTime) {
        self.suppress_floor
            .store(floor.as_nanos(), Ordering::Release);
    }

    /// Current redundancy-suppression floor (`ZERO` = off).
    pub fn suppress_floor(&self) -> SimTime {
        SimTime::from_nanos(self.suppress_floor.load(Ordering::Acquire))
    }

    /// Entry/exit pairs elided by the redundancy suppressor on `rank`.
    pub fn suppressed_pairs(&self, rank: usize) -> u64 {
        self.procs[rank].buf.lock().suppressed_pairs
    }

    /// Record the verifier-derived bound of the `VT_begin` program.
    pub(crate) fn register_derived_begin(&self, cost: Option<SimTime>) {
        self.derived_costs.lock().0 = cost;
    }

    /// Record the verifier-derived bound of the `VT_end` program.
    pub(crate) fn register_derived_end(&self, cost: Option<SimTime>) {
        self.derived_costs.lock().1 = cost;
    }

    /// Verifier-derived worst-case cost of one active begin/end pair,
    /// available once both snippet programs have been built and verified.
    /// `None` until then (the controller falls back to the declared
    /// [`ProbeCosts::active_pair`]).
    pub fn derived_pair(&self) -> Option<SimTime> {
        let (b, e) = *self.derived_costs.lock();
        Some(b? + e?)
    }

    /// `VT_init` on `rank`: reads the configuration file and sets up the
    /// rank's trace structures. Must precede any other VT call on the rank.
    pub fn init(&self, p: &Proc, rank: usize) {
        let st = &self.procs[rank];
        assert!(
            !st.initialized.swap(true, Ordering::AcqRel),
            "VT_init called twice on rank {rank}"
        );
        // Config file read + table construction.
        p.advance(SimTime::from_micros(400));
    }

    /// Has `VT_init` completed on `rank`?
    pub fn is_initialized(&self, rank: usize) -> bool {
        self.procs[rank].initialized.load(Ordering::Acquire)
    }

    /// `VT_funcdef`: register `name`, returning its id (idempotent).
    /// Charges the registration cost only on first registration.
    pub fn funcdef(&self, p: &Proc, name: &str) -> VtFuncId {
        if let Some(&id) = self.registry.read().ids.get(name) {
            return id;
        }
        let mut reg = self.registry.write();
        if let Some(&id) = reg.ids.get(name) {
            return id;
        }
        p.advance(self.costs.vt_funcdef);
        let id = VtFuncId(reg.names.len() as u32);
        reg.names.push(name.to_string());
        reg.ids.insert(name.to_string(), id);
        id
    }

    /// Look up a registered function by name.
    pub fn func_id(&self, name: &str) -> Option<VtFuncId> {
        self.registry.read().ids.get(name).copied()
    }

    /// Is `func` active on `rank` (would `VT_begin` record there)?
    ///
    /// The activation table is per rank: the configuration file is read
    /// per process at `VT_init`, and `VT_confsync` changes are applied by
    /// each rank as the safe point reaches it (paper §4.2, §5).
    pub fn is_active(&self, rank: usize, func: VtFuncId) -> bool {
        let st = &self.procs[rank];
        {
            let a = st.active.read();
            if let Some(&v) = a.get(func.0 as usize) {
                return v;
            }
        }
        // Lazily resolve newly registered functions against this rank's
        // configuration.
        let mut a = st.active.write();
        let reg = self.registry.read();
        let cfg = st.config.lock();
        while a.len() < reg.names.len() {
            let on = cfg.resolve(&reg.names[a.len()]);
            a.push(on);
        }
        a.get(func.0 as usize).copied().unwrap_or(false)
    }

    /// Re-resolve `rank`'s activation table after a configuration change;
    /// returns how many functions changed state.
    pub(crate) fn reresolve(&self, rank: usize) -> usize {
        let st = &self.procs[rank];
        let mut a = st.active.write();
        let reg = self.registry.read();
        let cfg = st.config.lock();
        let mut changed = 0;
        a.resize(reg.names.len(), false);
        for (i, name) in reg.names.iter().enumerate() {
            let on = cfg.resolve(name);
            if a[i] != on {
                a[i] = on;
                changed += 1;
            }
        }
        changed
    }

    pub(crate) fn with_config<R>(&self, rank: usize, f: impl FnOnce(&mut VtConfig) -> R) -> R {
        f(&mut self.procs[rank].config.lock())
    }

    /// A snapshot of `rank`'s current configuration.
    pub fn config_of(&self, rank: usize) -> VtConfig {
        self.procs[rank].config.lock().clone()
    }

    fn assert_ready(&self, rank: usize) {
        assert!(
            self.is_initialized(rank),
            "VT call before VT_init on rank {rank} — the instrumenter must \
             defer instrumentation until initialization completes (paper §3.4)"
        );
    }

    /// `VT_begin` for `reps` aggregated invocations.
    pub fn begin(&self, p: &Proc, rank: usize, thread: u16, func: VtFuncId, reps: u64) {
        self.assert_ready(rank);
        let active = self.is_active(rank, func);
        let mut buf = self.procs[rank].buf.lock();
        let mut enter_idx = None;
        if active {
            p.advance(self.costs.vt_begin_active.mul_f64(reps as f64));
            if reps == 1 {
                let ev = Event::FuncEnter {
                    t: p.now(),
                    rank: rank as u32,
                    thread,
                    func,
                };
                buf.trace_bytes += ev.trace_bytes_of(self.costs.event_bytes);
                enter_idx = Some(buf.events.len());
                buf.events.push(ev);
                if obs::enabled() {
                    note_events(1);
                }
            }
        } else {
            // Deactivated: the call still happens, pays the table lookup,
            // and bails out (paper §4.2).
            p.advance(self.costs.vt_deactivated.mul_f64(reps as f64));
            buf.deactivated_lookups += reps;
            if obs::enabled() {
                static LOOKUPS: OnceLock<&'static obs::Counter> = OnceLock::new();
                LOOKUPS
                    .get_or_init(|| obs::counter("vt.deactivated_lookups"))
                    .add(reps);
            }
        }
        buf.stacks.entry(thread).or_default().push(Frame {
            func,
            thread,
            t0: p.now(),
            reps,
            active,
            child: SimTime::ZERO,
            enter_idx,
        });
    }

    /// `VT_end` matching the innermost `begin` on (`rank`, `thread`).
    ///
    /// If no frame for `func` is open on the thread — which happens when a
    /// dynamic entry probe was removed between a function's entry and
    /// exit — the call is counted in [`VtLib::stray_ends`] and otherwise
    /// ignored, as the real library must tolerate. An exit that *skips*
    /// open frames of other functions, however, is a true nesting bug in
    /// the instrumented program and panics.
    pub fn end(&self, p: &Proc, rank: usize, thread: u16, func: VtFuncId) {
        self.assert_ready(rank);
        let mut buf = self.procs[rank].buf.lock();
        {
            let stack = buf.stacks.entry(thread).or_default();
            match stack.last() {
                Some(top) if top.func == func => {}
                Some(top) => {
                    assert!(
                        !stack.iter().any(|f| f.func == func),
                        "mismatched VT_end on rank {rank}: began {:?}, ended {:?}",
                        top.func,
                        func
                    );
                    buf.stray_ends += 1;
                    return;
                }
                None => {
                    buf.stray_ends += 1;
                    return;
                }
            }
        }
        let frame = buf
            .stacks
            .get_mut(&thread)
            .and_then(Vec::pop)
            .expect("frame checked above");
        if frame.active {
            p.advance(self.costs.vt_end_active.mul_f64(frame.reps as f64));
            let now = p.now();
            let span = now.saturating_sub(frame.t0);
            // Redundancy suppression: a single pair shorter than the floor
            // whose enter is still the newest event (so nothing — child
            // events, MPI records — happened inside it) is popped again
            // and folded into a coalesced suppressed-count record. The
            // `child == ZERO` guard additionally excludes pairs whose
            // instrumented children were themselves suppressed, keeping
            // exclusive-time reconstruction from the trace exact.
            let floor = self.suppress_floor();
            let elide = frame.reps == 1
                && floor > SimTime::ZERO
                && span < floor
                && frame.child == SimTime::ZERO
                && frame.enter_idx.is_some_and(|i| i + 1 == buf.events.len());
            if elide {
                let parent_func = buf
                    .stacks
                    .get(&thread)
                    .and_then(|s| s.last())
                    .map(|f| f.func.0);
                let enter = buf.events.pop().expect("enter checked to be last");
                debug_assert!(matches!(enter, Event::FuncEnter { .. }));
                buf.trace_bytes -= enter.trace_bytes_of(self.costs.event_bytes);
                let key = (thread, func.0, parent_func);
                match buf.suppressed_idx.get(&key).copied() {
                    Some(i) => {
                        if let Event::FuncSuppressed {
                            count, span: total, ..
                        } = &mut buf.events[i]
                        {
                            *count += 1;
                            *total += span;
                        }
                    }
                    None => {
                        let ev = Event::FuncSuppressed {
                            t: frame.t0,
                            rank: rank as u32,
                            thread,
                            func,
                            count: 1,
                            span,
                        };
                        buf.trace_bytes += ev.trace_bytes_of(self.costs.event_bytes);
                        let idx = buf.events.len();
                        buf.events.push(ev);
                        buf.suppressed_idx.insert(key, idx);
                    }
                }
                buf.suppressed_pairs += 1;
                if obs::enabled() {
                    static SUPPRESSED: OnceLock<&'static obs::Counter> = OnceLock::new();
                    SUPPRESSED
                        .get_or_init(|| obs::counter("vt.suppressed_pairs"))
                        .add(1);
                }
            } else {
                let ev = if frame.reps == 1 {
                    Event::FuncExit {
                        t: now,
                        rank: rank as u32,
                        thread,
                        func,
                    }
                } else {
                    Event::FuncBatch {
                        t: frame.t0,
                        rank: rank as u32,
                        thread,
                        func,
                        count: frame.reps,
                        span,
                    }
                };
                buf.trace_bytes += ev.trace_bytes_of(self.costs.event_bytes);
                buf.events.push(ev);
                if obs::enabled() {
                    note_events(1);
                }
            }
            // Statistics (identical whether or not the pair was elided —
            // suppression changes the trace, never the runtime stats).
            let idx = func.0 as usize;
            if buf.stats.len() <= idx {
                buf.stats.resize(idx + 1, FuncStat::default());
            }
            let s = &mut buf.stats[idx];
            s.count += frame.reps;
            s.incl += span;
            s.excl += span.saturating_sub(frame.child);
            // Attribute our inclusive time to the parent's child-time.
            if let Some(parent) = buf.stacks.get_mut(&frame.thread).and_then(|s| s.last_mut()) {
                parent.child += span;
            }
        }
    }

    /// Record a raw event (used by the MPI/OMP hook implementations).
    pub(crate) fn record(&self, rank: usize, ev: Event) {
        let mut buf = self.procs[rank].buf.lock();
        buf.trace_bytes += ev.trace_bytes_of(self.costs.event_bytes);
        buf.events.push(ev);
        if obs::enabled() {
            note_events(1);
        }
    }

    pub(crate) fn mpi_push(&self, rank: usize, op: u8, t: SimTime) {
        self.procs[rank].buf.lock().mpi_stack.push((op, t));
    }

    pub(crate) fn mpi_pop(&self, rank: usize) -> Option<(u8, SimTime)> {
        self.procs[rank].buf.lock().mpi_stack.pop()
    }

    /// `VT_finalize` on `rank`: flush the rank's buffer to the trace file
    /// (charged at the modelled per-byte flush cost).
    pub fn finalize(&self, p: &Proc, rank: usize) {
        self.assert_ready(rank);
        let st = &self.procs[rank];
        if st.finalized.swap(true, Ordering::AcqRel) {
            return;
        }
        let bytes = st.buf.lock().trace_bytes;
        p.advance(self.costs.flush_per_byte.mul_f64(bytes as f64));
        if obs::enabled() {
            obs::counter("vt.bytes_flushed").add(bytes);
        }
    }

    /// Modelled trace volume produced by `rank` so far.
    pub fn trace_bytes(&self, rank: usize) -> u64 {
        self.procs[rank].buf.lock().trace_bytes
    }

    /// Total modelled trace volume across ranks.
    pub fn total_trace_bytes(&self) -> u64 {
        (0..self.procs.len()).map(|r| self.trace_bytes(r)).sum()
    }

    /// Number of deactivated-probe lookups performed by `rank` (the
    /// Full-Off/Subset overhead the paper measures).
    pub fn deactivated_lookups(&self, rank: usize) -> u64 {
        self.procs[rank].buf.lock().deactivated_lookups
    }

    /// `VT_end` calls on `rank` that found no matching open frame
    /// (orphaned by probe removal between entry and exit).
    pub fn stray_ends(&self, rank: usize) -> u64 {
        self.procs[rank].buf.lock().stray_ends
    }

    /// Frames still open on `rank` (begin without end — e.g. an exit
    /// probe removed mid-call).
    pub fn open_frames(&self, rank: usize) -> usize {
        self.procs[rank]
            .buf
            .lock()
            .stacks
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Snapshot of `rank`'s per-function statistics, as wire rows.
    pub fn stats_rows(&self, rank: usize) -> Vec<FuncStatRow> {
        let buf = self.procs[rank].buf.lock();
        buf.stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count > 0)
            .map(|(i, s)| (i as u32, s.count, s.incl.as_nanos(), s.excl.as_nanos()))
            .collect()
    }

    /// Statistics of one function on one rank.
    pub fn stat_of(&self, rank: usize, func: VtFuncId) -> FuncStat {
        let buf = self.procs[rank].buf.lock();
        buf.stats.get(func.0 as usize).copied().unwrap_or_default()
    }

    /// Snapshot of the function dictionary (names indexed by
    /// [`VtFuncId`]), for trace writers that stream per rank instead of
    /// materializing a merged [`Trace`].
    pub fn function_names(&self) -> Vec<String> {
        self.registry.read().names.clone()
    }

    /// Visit `rank`'s recorded events in causal (append) order without
    /// cloning them — the streaming trace-store flush path. Frames still
    /// open are not visible here (same contract as [`VtLib::build_trace`]).
    pub fn with_rank_events<R>(&self, rank: usize, f: impl FnOnce(&[Event]) -> R) -> R {
        f(&self.procs[rank].buf.lock().events)
    }

    /// Assemble the postmortem trace (merged across ranks, time-sorted).
    pub fn build_trace(&self) -> Trace {
        let mut events = Vec::new();
        for st in self.procs.iter() {
            let buf = st.buf.lock();
            // Frames still open (e.g. an exit probe removed while the
            // function executed) are dropped; they are observable through
            // `open_frames`.
            events.extend(buf.events.iter().cloned());
        }
        events.sort_by_key(|e| (e.time(), e.rank()));
        Trace {
            program: self.program.clone(),
            functions: self.registry.read().names.clone(),
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_sim::{Machine, Sim};

    fn lib(config: VtConfig) -> Arc<VtLib> {
        VtLib::new("app", 2, config, ProbeCosts::power3())
    }

    fn in_sim(f: impl FnOnce(&Proc) + Send + 'static) {
        let sim = Sim::virtual_time(Machine::test_machine(), 5);
        sim.spawn("p", 0, f);
        sim.run();
    }

    #[test]
    fn funcdef_is_idempotent_and_charges_once() {
        let vt = lib(VtConfig::all_on());
        in_sim(move |p| {
            let a = vt.funcdef(p, "solve");
            let cost1 = p.now();
            assert_eq!(cost1, vt.costs().vt_funcdef);
            let b = vt.funcdef(p, "solve");
            assert_eq!(a, b);
            assert_eq!(p.now(), cost1, "re-registration is free");
            let c = vt.funcdef(p, "other");
            assert_ne!(a, c);
        });
    }

    #[test]
    fn active_begin_end_records_events_and_charges() {
        let vt = lib(VtConfig::all_on());
        let vt2 = Arc::clone(&vt);
        in_sim(move |p| {
            vt2.init(p, 0);
            let f = vt2.funcdef(p, "work");
            let t0 = p.now();
            vt2.begin(p, 0, 0, f, 1);
            assert_eq!(p.now() - t0, vt2.costs().vt_begin_active);
            p.advance(SimTime::from_micros(100));
            vt2.end(p, 0, 0, f);
            let s = vt2.stat_of(0, f);
            assert_eq!(s.count, 1);
            assert!(s.incl >= SimTime::from_micros(100));
        });
        let trace = vt.build_trace();
        assert_eq!(trace.events.len(), 2);
        assert!(matches!(trace.events[0], Event::FuncEnter { .. }));
        assert!(matches!(trace.events[1], Event::FuncExit { .. }));
        assert_eq!(vt.trace_bytes(0), 48);
    }

    #[test]
    fn deactivated_pays_lookup_only() {
        let vt = lib(VtConfig::all_off());
        let vt2 = Arc::clone(&vt);
        in_sim(move |p| {
            vt2.init(p, 0);
            let f = vt2.funcdef(p, "work");
            let t0 = p.now();
            vt2.begin(p, 0, 0, f, 1);
            vt2.end(p, 0, 0, f);
            assert_eq!(p.now() - t0, vt2.costs().vt_deactivated);
        });
        assert_eq!(vt.trace_bytes(0), 0, "no events for deactivated probes");
        assert_eq!(vt.deactivated_lookups(0), 1);
        assert_eq!(vt.build_trace().events.len(), 0);
    }

    #[test]
    fn batch_pair_aggregates() {
        let vt = lib(VtConfig::all_on());
        let vt2 = Arc::clone(&vt);
        in_sim(move |p| {
            vt2.init(p, 0);
            let f = vt2.funcdef(p, "hot_leaf");
            let t0 = p.now();
            vt2.begin(p, 0, 0, f, 1000);
            p.advance(SimTime::from_millis(1));
            vt2.end(p, 0, 0, f);
            let charged = p.now() - t0 - SimTime::from_millis(1);
            assert_eq!(charged, vt2.costs().active_pair() * 1000);
            assert_eq!(vt2.stat_of(0, f).count, 1000);
        });
        let trace = vt.build_trace();
        assert_eq!(trace.events.len(), 1, "one FuncBatch event");
        // Trace volume accounts for all 2000 events.
        assert_eq!(vt.trace_bytes(0), 2 * 1000 * 24);
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        let vt = lib(VtConfig::all_on());
        let vt2 = Arc::clone(&vt);
        in_sim(move |p| {
            vt2.init(p, 0);
            let outer = vt2.funcdef(p, "outer");
            let inner = vt2.funcdef(p, "inner");
            vt2.begin(p, 0, 0, outer, 1);
            p.advance(SimTime::from_micros(10));
            vt2.begin(p, 0, 0, inner, 1);
            p.advance(SimTime::from_micros(30));
            vt2.end(p, 0, 0, inner);
            p.advance(SimTime::from_micros(5));
            vt2.end(p, 0, 0, outer);
            let so = vt2.stat_of(0, outer);
            let si = vt2.stat_of(0, inner);
            assert!(si.incl >= SimTime::from_micros(30));
            assert!(so.incl > si.incl);
            // outer exclusive excludes inner inclusive.
            assert_eq!(so.excl, so.incl - si.incl);
        });
    }

    #[test]
    fn per_thread_stacks_do_not_interfere() {
        let vt = lib(VtConfig::all_on());
        let vt2 = Arc::clone(&vt);
        in_sim(move |p| {
            vt2.init(p, 0);
            let a = vt2.funcdef(p, "a");
            let b = vt2.funcdef(p, "b");
            vt2.begin(p, 0, 0, a, 1);
            vt2.begin(p, 0, 1, b, 1); // different thread, interleaved
            vt2.end(p, 0, 0, a);
            vt2.end(p, 0, 1, b);
        });
        assert_eq!(vt.build_trace().events.len(), 4);
    }

    #[test]
    #[should_panic(expected = "before VT_init")]
    fn begin_before_init_panics() {
        let vt = lib(VtConfig::all_on());
        in_sim(move |p| {
            let f = vt.funcdef(p, "f");
            vt.begin(p, 0, 0, f, 1);
        });
    }

    #[test]
    #[should_panic(expected = "mismatched VT_end")]
    fn skipping_an_open_frame_panics() {
        let vt = lib(VtConfig::all_on());
        in_sim(move |p| {
            vt.init(p, 0);
            let a = vt.funcdef(p, "a");
            let b = vt.funcdef(p, "b");
            vt.begin(p, 0, 0, a, 1);
            vt.begin(p, 0, 0, b, 1);
            // Ending `a` while `b` is still open skips a frame: a real
            // nesting violation.
            vt.end(p, 0, 0, a);
        });
    }

    #[test]
    fn stray_end_is_tolerated_and_counted() {
        // A removal race can fire VT_end with no matching begin.
        let vt = lib(VtConfig::all_on());
        let vt2 = Arc::clone(&vt);
        in_sim(move |p| {
            vt2.init(p, 0);
            let a = vt2.funcdef(p, "a");
            vt2.end(p, 0, 0, a); // nothing open at all
            let b = vt2.funcdef(p, "b");
            vt2.begin(p, 0, 0, b, 1);
            vt2.end(p, 0, 0, a); // `a` not on the stack (b is): stray
            vt2.end(p, 0, 0, b);
        });
        assert_eq!(vt.stray_ends(0), 2);
        assert_eq!(vt.open_frames(0), 0);
    }

    #[test]
    fn activation_survives_config_reresolution() {
        let vt = lib(VtConfig::all_on());
        let vt2 = Arc::clone(&vt);
        in_sim(move |p| {
            vt2.init(p, 0);
            let f = vt2.funcdef(p, "solver_kernel");
            assert!(vt2.is_active(0, f));
            vt2.with_config(0, |c| {
                c.apply(&crate::config::ConfigDelta::Set(vec![(
                    "solver_*".into(),
                    false,
                )]));
            });
            let changed = vt2.reresolve(0);
            assert_eq!(changed, 1);
            assert!(!vt2.is_active(0, f));
            // A deactivated pair mid-flight stays balanced.
            vt2.begin(p, 0, 0, f, 1);
            vt2.end(p, 0, 0, f);
        });
    }

    #[test]
    fn suppression_elides_and_coalesces_short_pairs() {
        let vt = lib(VtConfig::all_on());
        vt.set_suppress_floor(SimTime::from_micros(10));
        let vt2 = Arc::clone(&vt);
        in_sim(move |p| {
            vt2.init(p, 0);
            let f = vt2.funcdef(p, "tiny");
            for _ in 0..3 {
                vt2.begin(p, 0, 0, f, 1);
                p.advance(SimTime::from_micros(1));
                vt2.end(p, 0, 0, f);
            }
            // A pair above the floor is recorded normally.
            vt2.begin(p, 0, 0, f, 1);
            p.advance(SimTime::from_micros(50));
            vt2.end(p, 0, 0, f);
            assert_eq!(vt2.stat_of(0, f).count, 4, "stats are never suppressed");
        });
        assert_eq!(vt.suppressed_pairs(0), 3);
        let trace = vt.build_trace();
        let suppressed: Vec<_> = trace
            .events
            .iter()
            .filter(|e| matches!(e, Event::FuncSuppressed { .. }))
            .collect();
        assert_eq!(suppressed.len(), 1, "elided pairs coalesce into one record");
        if let Event::FuncSuppressed { count, .. } = suppressed[0] {
            assert_eq!(*count, 3);
        }
        // One coalesced record + the long pair's enter/exit.
        assert_eq!(trace.events.len(), 3);
        assert_eq!(vt.trace_bytes(0), 3 * 24);
    }

    #[test]
    fn suppression_floor_zero_is_identical_to_off() {
        fn run(floor: Option<SimTime>) -> (Trace, u64) {
            let vt = lib(VtConfig::all_on());
            if let Some(floor) = floor {
                vt.set_suppress_floor(floor);
            }
            let vt2 = Arc::clone(&vt);
            in_sim(move |p| {
                vt2.init(p, 0);
                let f = vt2.funcdef(p, "f");
                for _ in 0..5 {
                    vt2.begin(p, 0, 0, f, 1);
                    p.advance(SimTime::from_nanos(100));
                    vt2.end(p, 0, 0, f);
                }
            });
            (vt.build_trace(), vt.trace_bytes(0))
        }
        let (off_trace, off_bytes) = run(None);
        let (default_trace, default_bytes) = run(Some(SimTime::ZERO));
        assert_eq!(off_trace, default_trace);
        assert_eq!(off_bytes, default_bytes);
        assert_eq!(off_trace.events.len(), 10, "nothing suppressed at floor 0");
    }

    #[test]
    fn suppression_keeps_pairs_with_recorded_or_suppressed_children() {
        let vt = lib(VtConfig::all_on());
        vt.set_suppress_floor(SimTime::from_millis(1));
        let vt2 = Arc::clone(&vt);
        in_sim(move |p| {
            vt2.init(p, 0);
            let outer = vt2.funcdef(p, "outer");
            let inner = vt2.funcdef(p, "inner");
            vt2.begin(p, 0, 0, outer, 1);
            vt2.begin(p, 0, 0, inner, 1);
            p.advance(SimTime::from_micros(2));
            vt2.end(p, 0, 0, inner); // short: elided
            vt2.end(p, 0, 0, outer); // also short, but had an elided child
        });
        let trace = vt.build_trace();
        // `outer` must keep its enter/exit (its child time would otherwise
        // be unrecoverable), while `inner` collapses to one record.
        assert_eq!(vt.suppressed_pairs(0), 1);
        assert_eq!(trace.events.len(), 3);
        assert!(matches!(trace.events[0], Event::FuncEnter { .. }));
        assert!(matches!(trace.events[1], Event::FuncSuppressed { .. }));
        assert!(matches!(trace.events[2], Event::FuncExit { .. }));
    }

    #[test]
    fn finalize_charges_flush_and_is_idempotent() {
        let vt = lib(VtConfig::all_on());
        in_sim(move |p| {
            vt.init(p, 0);
            let f = vt.funcdef(p, "f");
            vt.begin(p, 0, 0, f, 1);
            vt.end(p, 0, 0, f);
            let t0 = p.now();
            vt.finalize(p, 0);
            let flushed = p.now() - t0;
            assert_eq!(flushed, vt.costs().flush_per_byte * 48);
            vt.finalize(p, 0);
            assert_eq!(p.now() - t0, flushed, "second finalize free");
        });
    }
}
