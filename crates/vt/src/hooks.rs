//! Vampirtrace's attachment points: Guide static instrumentation, the MPI
//! wrapper interface, Guidetrace OpenMP events, and the dynamically
//! insertable `VT_begin`/`VT_end` snippets used by dynprof.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use dynprof_image::ir::{BinOp, CtxField, Expr, Intrinsic, IntrinsicTable, SnippetProgram, Stmt};
use dynprof_image::{Image, ImageObserver, ProbeCtx, ProbePointKind, Snippet, StaticHooks};
use dynprof_mpi::{Comm, MpiHooks, MpiOp};
use dynprof_omp::{RegionHooks, RegionId};
use dynprof_sim::{Proc, SimTime};

use crate::event::{Event, VtFuncId};
use crate::vtlib::VtLib;

fn op_code(op: MpiOp) -> u8 {
    match op {
        MpiOp::Init => 0,
        MpiOp::Finalize => 1,
        MpiOp::Send => 2,
        MpiOp::Recv => 3,
        MpiOp::Barrier => 4,
        MpiOp::Bcast => 5,
        MpiOp::Reduce => 6,
        MpiOp::Allreduce => 7,
        MpiOp::Gather => 8,
        MpiOp::Allgather => 9,
        MpiOp::Alltoall => 10,
        MpiOp::Scan => 11,
    }
}

/// Decode an op code back to the operation (for analysis tools).
pub fn op_from_code(code: u8) -> Option<MpiOp> {
    Some(match code {
        0 => MpiOp::Init,
        1 => MpiOp::Finalize,
        2 => MpiOp::Send,
        3 => MpiOp::Recv,
        4 => MpiOp::Barrier,
        5 => MpiOp::Bcast,
        6 => MpiOp::Reduce,
        7 => MpiOp::Allreduce,
        8 => MpiOp::Gather,
        9 => MpiOp::Allgather,
        10 => MpiOp::Alltoall,
        11 => MpiOp::Scan,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Static (Guide compiler) instrumentation
// ---------------------------------------------------------------------------

/// [`StaticHooks`] implementation: the entry/exit profile calls the Guide
/// compiler inserts into every subroutine (paper §3.1). Function ids are
/// registered with `VT_funcdef` on first call and cached per image slot.
pub struct VtStaticHooks {
    vt: Arc<VtLib>,
    /// Image function index → VtFuncId + 1 (0 = not yet registered).
    cache: Vec<AtomicU32>,
}

impl VtStaticHooks {
    /// Build the hooks for `image`, to install with
    /// [`Image::set_static_hooks`].
    pub fn for_image(vt: Arc<VtLib>, image: &Image) -> Arc<VtStaticHooks> {
        Arc::new(VtStaticHooks {
            cache: (0..image.len()).map(|_| AtomicU32::new(0)).collect(),
            vt,
        })
    }

    fn vt_id(&self, ctx: &ProbeCtx<'_>) -> VtFuncId {
        let slot = &self.cache[ctx.func.index()];
        let cached = slot.load(Ordering::Acquire);
        if cached != 0 {
            return VtFuncId(cached - 1);
        }
        let id = self.vt.funcdef(ctx.proc, ctx.name);
        slot.store(id.0 + 1, Ordering::Release);
        id
    }
}

impl StaticHooks for VtStaticHooks {
    fn begin(&self, ctx: &ProbeCtx<'_>) {
        let id = self.vt_id(ctx);
        self.vt
            .begin(ctx.proc, ctx.rank, ctx.thread as u16, id, ctx.reps);
    }

    fn end(&self, ctx: &ProbeCtx<'_>) {
        let id = self.vt_id(ctx);
        self.vt.end(ctx.proc, ctx.rank, ctx.thread as u16, id);
    }
}

// ---------------------------------------------------------------------------
// Dynamic (dynprof-inserted) snippets
// ---------------------------------------------------------------------------

/// Build the `VT_begin` snippet dynprof inserts at a function's entry.
/// The function must already be registered (`VT_funcdef`), which dynprof
/// does at insertion time (paper §3.4).
///
/// The snippet is expressed in the typed IR and verified before it is
/// handed out: its body is a single call to an *internal* `VT_begin`
/// intrinsic — the library charges the clock itself (active vs
/// deactivated charge depends on the activation table), while the
/// intrinsic's declared cost (`vt_begin_active`, the worst case) feeds
/// the verifier's derived bound, which the overhead controller consumes.
pub fn vt_begin_snippet(vt: Arc<VtLib>, func: VtFuncId) -> Snippet {
    let worst = vt.costs().vt_begin_active;
    let lib = Arc::clone(&vt);
    let table = IntrinsicTable::new(vec![Intrinsic::internal("VT_begin", worst, move |ctx| {
        debug_assert_eq!(ctx.point, ProbePointKind::Entry);
        lib.begin(ctx.proc, ctx.rank, ctx.thread as u16, func, ctx.reps);
    })]);
    let prog = SnippetProgram::new("VT_begin", 0, vec![Stmt::Call(0)], table);
    let snippet = prog.compile().expect("VT_begin program verifies");
    vt.register_derived_begin(snippet.derived_cost);
    snippet
}

/// Build the `VT_end` snippet dynprof inserts at a function's exit.
/// IR-expressed and verified, like [`vt_begin_snippet`].
pub fn vt_end_snippet(vt: Arc<VtLib>, func: VtFuncId) -> Snippet {
    let worst = vt.costs().vt_end_active;
    let lib = Arc::clone(&vt);
    let table = IntrinsicTable::new(vec![Intrinsic::internal("VT_end", worst, move |ctx| {
        debug_assert_eq!(ctx.point, ProbePointKind::Exit);
        lib.end(ctx.proc, ctx.rank, ctx.thread as u16, func);
    })]);
    let prog = SnippetProgram::new("VT_end", 0, vec![Stmt::Call(0)], table);
    let snippet = prog.compile().expect("VT_end program verifies");
    vt.register_derived_end(snippet.derived_cost);
    snippet
}

/// Build a pure-IR counting snippet: `region[0] += reps`, no library
/// calls at all. Useful when dynprof only needs call counts (paper §2's
/// "how often is this function called" question) without paying the
/// trace-event cost; the count is read back through the snippet's
/// [`dynprof_image::ir::ProgramState`].
pub fn vt_count_snippet() -> (Snippet, Arc<dynprof_image::ir::ProgramState>) {
    let prog = SnippetProgram::new(
        "VT_count",
        1,
        vec![Stmt::Store {
            slot: Expr::Const(0),
            value: Expr::bin(BinOp::Add, Expr::load(0), Expr::Ctx(CtxField::Reps)),
        }],
        IntrinsicTable::empty(),
    );
    prog.compile_with_state()
        .expect("VT_count program verifies")
}

/// Build the `configuration_break` snippet: the empty IR program whose
/// only job is to *be a probe point* — `VT_confsync`'s safe-point
/// breakpoint body (paper §5). Verifies trivially with a zero derived
/// bound, which is the point: the breakpoint must never perturb the
/// timeline.
pub fn configuration_break_snippet() -> Snippet {
    SnippetProgram::new("configuration_break", 0, vec![], IntrinsicTable::empty())
        .compile()
        .expect("empty program verifies")
}

// ---------------------------------------------------------------------------
// Suspension tracking (paper §5.1)
// ---------------------------------------------------------------------------

/// [`ImageObserver`] implementation: records instrumenter-initiated
/// suspensions as [`Event::Suspended`] intervals, so the time-line shows
/// them as inactivity and profiles can disregard them.
pub struct VtImageObserver {
    vt: Arc<VtLib>,
    rank: usize,
    open_since: parking_lot::Mutex<Option<SimTime>>,
}

impl VtImageObserver {
    /// Observer for the process running MPI rank `rank`.
    pub fn new(vt: Arc<VtLib>, rank: usize) -> Arc<VtImageObserver> {
        Arc::new(VtImageObserver {
            vt,
            rank,
            open_since: parking_lot::Mutex::new(None),
        })
    }
}

impl ImageObserver for VtImageObserver {
    fn on_suspend(&self, p: &Proc) {
        *self.open_since.lock() = Some(p.now());
    }

    fn on_resume(&self, p: &Proc) {
        if let Some(t0) = self.open_since.lock().take() {
            self.vt.record(
                self.rank,
                Event::Suspended {
                    t: t0,
                    t_end: p.now().max(t0),
                    rank: self.rank as u32,
                },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// MPI wrapper interface
// ---------------------------------------------------------------------------

/// [`MpiHooks`] implementation: logs every MPI call as a time-spanned
/// event, and performs `VT_init` inside `MPI_Init` (the Vampirtrace
/// library "initializes its own data structures within MPI_Init", §3.4).
pub struct VtMpiHooks {
    vt: Arc<VtLib>,
}

impl VtMpiHooks {
    /// Wrap `vt` as an MPI hook.
    pub fn new(vt: Arc<VtLib>) -> Arc<VtMpiHooks> {
        Arc::new(VtMpiHooks { vt })
    }
}

impl MpiHooks for VtMpiHooks {
    fn on_init(&self, p: &Proc, comm: &Comm) {
        self.vt.init(p, comm.rank());
    }

    fn on_call_begin(&self, p: &Proc, comm: &Comm, op: MpiOp, _peer: Option<usize>, _bytes: usize) {
        let rank = comm.rank();
        if !self.vt.is_initialized(rank) {
            return; // MPI_Init's own begin precedes VT_init
        }
        self.vt.mpi_push(rank, op_code(op), p.now());
    }

    fn on_call_end(&self, p: &Proc, comm: &Comm, op: MpiOp, peer: Option<usize>, bytes: usize) {
        let rank = comm.rank();
        if !self.vt.is_initialized(rank) {
            return;
        }
        p.advance(self.vt.costs().mpi_wrapper_event);
        let t_end = p.now();
        let t = match self.vt.mpi_pop(rank) {
            Some((code, t0)) if code == op_code(op) => t0,
            // MPI_Init's end has no matching begin (VT came up mid-call);
            // log it as a point event.
            _ => t_end,
        };
        self.vt.record(
            rank,
            Event::MpiCall {
                t,
                t_end,
                rank: rank as u32,
                op: op_code(op),
                peer: peer.map_or(-1, |r| r as i32),
                bytes: bytes as u64,
            },
        );
    }

    fn on_finalize(&self, p: &Proc, comm: &Comm) {
        self.vt.finalize(p, comm.rank());
    }
}

// ---------------------------------------------------------------------------
// OpenMP (Guidetrace) events
// ---------------------------------------------------------------------------

/// [`RegionHooks`] implementation for one process: logs parallel-region
/// fork/join and per-thread occupancy (the VGV time-line's wiggle glyphs).
pub struct VtOmpHooks {
    vt: Arc<VtLib>,
    rank: usize,
    /// Open per-thread region entries (thread, region, t_begin).
    open: parking_lot::Mutex<Vec<(usize, u32, SimTime)>>,
}

impl VtOmpHooks {
    /// Hooks for the process running MPI rank `rank` (0 for pure OpenMP).
    pub fn new(vt: Arc<VtLib>, rank: usize) -> Arc<VtOmpHooks> {
        Arc::new(VtOmpHooks {
            vt,
            rank,
            open: parking_lot::Mutex::new(Vec::new()),
        })
    }
}

impl RegionHooks for VtOmpHooks {
    fn on_fork(&self, p: &Proc, region: RegionId, _name: &str, team: usize) {
        if !self.vt.is_initialized(self.rank) {
            return;
        }
        p.advance(self.vt.costs().omp_region_event);
        self.vt.record(
            self.rank,
            Event::OmpFork {
                t: p.now(),
                rank: self.rank as u32,
                region: region.0,
                team: team as u16,
            },
        );
    }

    fn on_join(&self, p: &Proc, region: RegionId, _name: &str, team: usize) {
        if !self.vt.is_initialized(self.rank) {
            return;
        }
        p.advance(self.vt.costs().omp_region_event);
        self.vt.record(
            self.rank,
            Event::OmpJoin {
                t: p.now(),
                rank: self.rank as u32,
                region: region.0,
                team: team as u16,
            },
        );
    }

    fn on_thread_begin(&self, p: &Proc, region: RegionId, tid: usize) {
        if !self.vt.is_initialized(self.rank) {
            return;
        }
        p.advance(self.vt.costs().omp_region_event);
        self.open.lock().push((tid, region.0, p.now()));
    }

    fn on_thread_end(&self, p: &Proc, region: RegionId, tid: usize) {
        if !self.vt.is_initialized(self.rank) {
            return;
        }
        p.advance(self.vt.costs().omp_region_event);
        let t0 = {
            let mut open = self.open.lock();
            match open
                .iter()
                .rposition(|&(t, r, _)| t == tid && r == region.0)
            {
                Some(i) => open.swap_remove(i).2,
                None => p.now(),
            }
        };
        self.vt.record(
            self.rank,
            Event::OmpThread {
                t: t0,
                t_end: p.now(),
                rank: self.rank as u32,
                thread: tid as u16,
                region: region.0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VtConfig;
    use dynprof_image::{CallerCtx, FunctionInfo, ImageBuilder, ProbePoint};
    use dynprof_mpi::{launch, JobSpec, Source, Tag, TagSel};
    use dynprof_omp::OmpRuntime;
    use dynprof_sim::{Machine, ProbeCosts, Sim};

    fn vt(ranks: usize, cfg: VtConfig) -> Arc<VtLib> {
        VtLib::new("app", ranks, cfg, ProbeCosts::power3())
    }

    #[test]
    fn static_hooks_register_and_log() {
        let vtl = vt(1, VtConfig::all_on());
        let mut b = ImageBuilder::new("app");
        let f = b.add(FunctionInfo::new("solve").static_instr(true));
        let img = Arc::new(b.build());
        img.set_static_hooks(VtStaticHooks::for_image(Arc::clone(&vtl), &img));
        let (img2, vt2) = (Arc::clone(&img), Arc::clone(&vtl));
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("p", 0, move |p| {
            vt2.init(p, 0);
            for _ in 0..3 {
                img2.call(p, CallerCtx::default(), f, || ());
            }
        });
        sim.run();
        let id = vtl.func_id("solve").expect("registered");
        assert_eq!(vtl.stat_of(0, id).count, 3);
        assert_eq!(vtl.build_trace().events.len(), 6);
    }

    #[test]
    fn dynamic_snippets_log_through_trampolines() {
        let vtl = vt(1, VtConfig::all_on());
        let mut b = ImageBuilder::new("app");
        let f = b.add(FunctionInfo::new("test")); // NOT statically instrumented
        let img = Arc::new(b.build());
        let (img2, vt2) = (Arc::clone(&img), Arc::clone(&vtl));
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("p", 0, move |p| {
            vt2.init(p, 0);
            // dynprof registers the name, then inserts the snippets.
            let id = vt2.funcdef(p, "test");
            img2.try_insert(ProbePoint::entry(f), vt_begin_snippet(Arc::clone(&vt2), id))
                .expect("patchable target");
            img2.try_insert(ProbePoint::exit(f), vt_end_snippet(Arc::clone(&vt2), id))
                .expect("patchable target");
            img2.call(p, CallerCtx::default(), f, || {
                p.advance(SimTime::from_micros(50))
            });
        });
        sim.run();
        let id = vtl.func_id("test").unwrap();
        let s = vtl.stat_of(0, id);
        assert_eq!(s.count, 1);
        assert!(s.incl >= SimTime::from_micros(50));
    }

    #[test]
    fn standard_snippets_carry_verified_programs_and_derived_costs() {
        let vtl = vt(1, VtConfig::all_on());
        assert_eq!(vtl.derived_pair(), None, "no programs built yet");
        let begin = vt_begin_snippet(Arc::clone(&vtl), VtFuncId(0));
        let end = vt_end_snippet(Arc::clone(&vtl), VtFuncId(0));
        let (count, _) = vt_count_snippet();
        let brk = configuration_break_snippet();
        for s in [&begin, &end, &count, &brk] {
            let prog = s.program.as_ref().expect("IR-built snippet");
            assert!(prog.verify().ok(), "{}: {}", prog.name, prog.verify());
            assert!(dynprof_image::verify_snippet(s).is_ok());
            assert_eq!(s.cost, SimTime::ZERO, "fire-path charge stays zero");
        }
        assert_eq!(begin.derived_cost, Some(vtl.costs().vt_begin_active));
        assert_eq!(end.derived_cost, Some(vtl.costs().vt_end_active));
        assert_eq!(brk.derived_cost, Some(SimTime::ZERO));
        // Building both registered the derived pair == the declared pair.
        assert_eq!(vtl.derived_pair(), Some(vtl.costs().active_pair()));
    }

    #[test]
    fn count_snippet_counts_without_library_calls() {
        let mut b = ImageBuilder::new("app");
        let f = b.add(FunctionInfo::new("hot"));
        let img = Arc::new(b.build());
        let (snippet, state) = vt_count_snippet();
        img.try_insert(ProbePoint::entry(f), snippet)
            .expect("patchable target");
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("p", 0, move |p| {
            img2.call(p, CallerCtx::default(), f, || ());
            img2.call_batch(p, CallerCtx::default(), f, 41, |_| ());
        });
        sim.run();
        assert_eq!(state.slot(0), 42);
    }

    #[test]
    fn mpi_hooks_initialize_vt_and_log_calls() {
        let vtl = vt(2, VtConfig::all_on());
        let hook = VtMpiHooks::new(Arc::clone(&vtl));
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        let v2 = Arc::clone(&vtl);
        launch(&sim, JobSpec::new("app", 2), vec![hook], move |p, c| {
            c.init(p);
            assert!(v2.is_initialized(c.rank()), "VT_init ran inside MPI_Init");
            if c.rank() == 0 {
                c.send(p, 1, Tag::user(0), 64u64);
            } else {
                let _ = c.recv::<u64>(p, Source::Any, TagSel::Any);
            }
            c.barrier(p);
            c.finalize(p);
        });
        sim.run();
        let trace = vtl.build_trace();
        let mpi_events: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                Event::MpiCall { op, rank, .. } => Some((*rank, op_from_code(*op).unwrap())),
                _ => None,
            })
            .collect();
        // Init end on both, send/recv, barrier x2, finalize x2.
        assert!(mpi_events.contains(&(0, MpiOp::Send)));
        assert!(mpi_events.contains(&(1, MpiOp::Recv)));
        assert_eq!(
            mpi_events
                .iter()
                .filter(|(_, op)| *op == MpiOp::Barrier)
                .count(),
            2
        );
        assert_eq!(
            mpi_events
                .iter()
                .filter(|(_, op)| *op == MpiOp::Init)
                .count(),
            2
        );
    }

    #[test]
    fn omp_hooks_log_regions_and_threads() {
        let vtl = vt(1, VtConfig::all_on());
        let v2 = Arc::clone(&vtl);
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("app", 0, move |p| {
            v2.init(p, 0);
            let hooks = VtOmpHooks::new(Arc::clone(&v2), 0);
            let rt = OmpRuntime::new(p, "app", 4, vec![hooks]);
            rt.parallel(p, "region", |ctx| {
                ctx.proc.advance(SimTime::from_micros(10));
            });
            rt.shutdown(p);
        });
        sim.run();
        let trace = vtl.build_trace();
        let forks = trace
            .events
            .iter()
            .filter(|e| matches!(e, Event::OmpFork { .. }))
            .count();
        let joins = trace
            .events
            .iter()
            .filter(|e| matches!(e, Event::OmpJoin { .. }))
            .count();
        let threads = trace
            .events
            .iter()
            .filter(|e| matches!(e, Event::OmpThread { .. }))
            .count();
        assert_eq!(forks, 1);
        assert_eq!(joins, 1);
        assert_eq!(threads, 4);
        // Thread events carry positive spans.
        for e in &trace.events {
            if let Event::OmpThread { t, t_end, .. } = e {
                assert!(t_end >= t);
            }
        }
    }

    #[test]
    fn hooks_stay_silent_before_vt_init() {
        // A pure-OpenMP app whose VT_init has not run yet must not log.
        let vtl = vt(1, VtConfig::all_on());
        let v2 = Arc::clone(&vtl);
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("app", 0, move |p| {
            let hooks = VtOmpHooks::new(Arc::clone(&v2), 0);
            let rt = OmpRuntime::new(p, "app", 2, vec![hooks]);
            rt.parallel(p, "early", |_| {});
            rt.shutdown(p);
        });
        sim.run();
        assert_eq!(vtl.build_trace().events.len(), 0);
    }
}
