//! The instrumentation policies of paper Table 3.

use crate::config::VtConfig;

/// How an application run is instrumented (paper Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// All functions are statically instrumented.
    Full,
    /// All functions are statically instrumented but disabled using the
    /// configuration file.
    FullOff,
    /// All functions are statically instrumented with only an important
    /// subset left active.
    Subset,
    /// No subroutine instrumentation is inserted.
    None,
    /// The dynprof tool is used to dynamically instrument the same
    /// functions used by `Subset`.
    Dynamic,
}

/// Every policy, in the paper's presentation order.
pub const ALL_POLICIES: [Policy; 5] = [
    Policy::Full,
    Policy::FullOff,
    Policy::Subset,
    Policy::None,
    Policy::Dynamic,
];

impl Policy {
    /// The paper's label for the policy.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Full => "Full",
            Policy::FullOff => "Full-Off",
            Policy::Subset => "Subset",
            Policy::None => "None",
            Policy::Dynamic => "Dynamic",
        }
    }

    /// The paper's Table 3 description.
    pub fn description(self) -> &'static str {
        match self {
            Policy::Full => "All functions are statically instrumented.",
            Policy::FullOff => {
                "All functions are statically instrumented but disabled using the configuration file."
            }
            Policy::Subset => {
                "All functions are statically instrumented with only an important subset left active."
            }
            Policy::None => "No subroutine instrumentation is inserted.",
            Policy::Dynamic => {
                "The dynprof tool is used to dynamically instrument the same functions used by Subset."
            }
        }
    }

    /// Parse a label (case-insensitive; accepts `full-off`/`fulloff`).
    pub fn parse(s: &str) -> Option<Policy> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "full" => Some(Policy::Full),
            "full-off" | "fulloff" => Some(Policy::FullOff),
            "subset" => Some(Policy::Subset),
            "none" => Some(Policy::None),
            "dynamic" => Some(Policy::Dynamic),
            _ => Option::None,
        }
    }

    /// Does this policy compile the application with Guide static
    /// instrumentation in every subroutine?
    pub fn static_instrumentation(self) -> bool {
        matches!(self, Policy::Full | Policy::FullOff | Policy::Subset)
    }

    /// The VT configuration file contents for this policy, given the
    /// application's "important subset" of functions.
    pub fn config<S: AsRef<str>>(self, subset: impl IntoIterator<Item = S>) -> VtConfig {
        match self {
            Policy::Full => VtConfig::all_on(),
            Policy::FullOff => VtConfig::all_off(),
            Policy::Subset => VtConfig::subset_on(subset),
            // No static probes exist; the config is irrelevant but kept
            // permissive so dynamically inserted probes are active.
            Policy::None | Policy::Dynamic => VtConfig::all_on(),
        }
    }

    /// The functions dynprof must dynamically instrument under this
    /// policy (empty unless `Dynamic`).
    pub fn dynamic_functions(self, subset: &[String]) -> &[String] {
        match self {
            Policy::Dynamic => subset,
            _ => &[],
        }
    }

    /// Does the adaptive overhead controller have probes to manage under
    /// this policy? `Full-Off` starts with every probe disabled and
    /// `None` inserts no probes at all, so attaching a controller there
    /// is legal but vacuous: it only ever observes a zero event rate.
    pub fn controllable(self) -> bool {
        matches!(self, Policy::Full | Policy::Subset | Policy::Dynamic)
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for p in ALL_POLICIES {
            assert_eq!(Policy::parse(p.label()), Some(p));
            assert_eq!(Policy::parse(&p.label().to_uppercase()), Some(p));
        }
        assert_eq!(Policy::parse("bogus"), None);
        assert_eq!(Policy::parse("full_off"), Some(Policy::FullOff));
    }

    #[test]
    fn static_instrumentation_split_matches_table3() {
        assert!(Policy::Full.static_instrumentation());
        assert!(Policy::FullOff.static_instrumentation());
        assert!(Policy::Subset.static_instrumentation());
        assert!(!Policy::None.static_instrumentation());
        assert!(!Policy::Dynamic.static_instrumentation());
    }

    #[test]
    fn configs_resolve_as_expected() {
        let subset = vec!["solve".to_string(), "relax".to_string()];
        let full = Policy::Full.config(&subset);
        assert!(full.resolve("anything"));
        let off = Policy::FullOff.config(&subset);
        assert!(!off.resolve("solve"));
        let sub = Policy::Subset.config(&subset);
        assert!(sub.resolve("solve"));
        assert!(sub.resolve("relax"));
        assert!(!sub.resolve("setup"));
    }

    #[test]
    fn only_dynamic_requests_dynamic_probes() {
        let subset = vec!["solve".to_string()];
        for p in ALL_POLICIES {
            let dynf = p.dynamic_functions(&subset);
            if p == Policy::Dynamic {
                assert_eq!(dynf, &subset[..]);
            } else {
                assert!(dynf.is_empty(), "{p}");
            }
        }
    }

    #[test]
    fn controllable_means_probes_start_active() {
        let subset = vec!["solve".to_string()];
        for p in ALL_POLICIES {
            // A policy is controllable exactly when its initial state has
            // at least one probe the controller could turn off: an active
            // config over static probes, or dynamic probe requests.
            let has_live_probes = (p.static_instrumentation()
                && p.config(&subset).resolve("solve"))
                || !p.dynamic_functions(&subset).is_empty();
            assert_eq!(p.controllable(), has_live_probes, "{p}");
        }
    }

    #[test]
    fn descriptions_are_nonempty_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for p in ALL_POLICIES {
            assert!(!p.description().is_empty());
            assert!(seen.insert(p.description()));
        }
    }
}
