//! `VT_confsync` — dynamic control of instrumentation (paper §2, §5).
//!
//! Statically instrumented applications call `VT_confsync` at *safe
//! points* (no messages in flight). Rank 0 checks whether the monitoring
//! tool has posted a configuration change; if so it passes through the
//! `configuration_break` breakpoint (where the simulated user/tool edits
//! the configuration), then broadcasts the delta, every rank applies it,
//! optionally all ranks contribute runtime statistics to a file written by
//! rank 0 (Experiment 3 of Fig 8), and everyone re-synchronizes with a
//! barrier.

use std::sync::Arc;

use dynprof_obs as obs;
use parking_lot::Mutex;

use dynprof_mpi::{Comm, MpiData};
use dynprof_sim::{hb, Proc, SimTime};

use crate::config::ConfigDelta;
use crate::controller::OverheadController;
use crate::event::Event;
use crate::vtlib::{FuncStatRow, VtLib};

/// A configuration change waiting at the next safe point.
#[derive(Clone, Debug)]
pub struct PendingChange {
    /// The change to apply.
    pub delta: ConfigDelta,
    /// Time the tool/user takes to release the breakpoint (the paper notes
    /// the user's monitoring interface is the critical-path component).
    pub respond_delay: SimTime,
}

/// A statistics file written at a safe point (rank-major rows).
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Safe-point time on rank 0.
    pub t: SimTime,
    /// Per-rank statistics rows.
    pub per_rank: Vec<Vec<FuncStatRow>>,
}

impl StatsSnapshot {
    /// Total number of function rows across ranks.
    pub fn total_rows(&self) -> usize {
        self.per_rank.iter().map(Vec::len).sum()
    }
}

/// The monitoring tool's side of dynamic control: where pending changes
/// are posted and written statistics accumulate.
#[derive(Default)]
pub struct MonitorLink {
    pending: Mutex<Option<PendingChange>>,
    snapshots: Mutex<Vec<StatsSnapshot>>,
    controller: Mutex<Option<Arc<OverheadController>>>,
}

impl MonitorLink {
    /// A link with nothing pending.
    pub fn new() -> Arc<MonitorLink> {
        Arc::new(MonitorLink::default())
    }

    /// Post a change to be applied at the next safe point.
    pub fn post_change(&self, delta: ConfigDelta, respond_delay: SimTime) {
        *self.pending.lock() = Some(PendingChange {
            delta,
            respond_delay,
        });
    }

    /// Is a change waiting?
    pub fn has_pending(&self) -> bool {
        self.pending.lock().is_some()
    }

    fn take(&self) -> Option<PendingChange> {
        self.pending.lock().take()
    }

    /// Statistics snapshots written so far.
    pub fn snapshots(&self) -> Vec<StatsSnapshot> {
        self.snapshots.lock().clone()
    }

    /// Attach a closed-loop overhead controller. From now on rank 0
    /// consults it at every safe point where no manual change is pending;
    /// its emitted deltas flow through the identical decision → broadcast
    /// → apply path. A link without a controller behaves byte-for-byte as
    /// before the feature existed.
    pub fn attach_controller(&self, ctrl: Arc<OverheadController>) {
        *self.controller.lock() = Some(ctrl);
    }

    /// The attached controller, if any.
    pub fn controller(&self) -> Option<Arc<OverheadController>> {
        self.controller.lock().clone()
    }
}

/// Wire form of the broadcast delta (sized by the rendered config bytes).
struct DeltaMsg(Option<ConfigDelta>, usize);

impl Clone for DeltaMsg {
    fn clone(&self) -> Self {
        DeltaMsg(self.0.clone(), self.1)
    }
}

impl MpiData for DeltaMsg {
    fn byte_len(&self) -> usize {
        self.1
    }
}

/// Outcome of one `VT_confsync` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfsyncOutcome {
    /// Epoch after the safe point.
    pub epoch: u32,
    /// Whether a configuration change was applied.
    pub changed: bool,
    /// How many registered functions flipped activation.
    pub functions_changed: usize,
    /// True when this rank missed the epoch's delta (fault injection) and
    /// deferred it to the next safe point instead of applying it here.
    pub partial: bool,
    /// True when the library carries degraded-mode instrumentation epochs
    /// (a transactional commit excluded nodes — see
    /// [`crate::VtLib::note_degraded`]). Pure bookkeeping: safe points
    /// report reduced coverage without any timing change.
    pub degraded: bool,
}

/// Execute one `VT_confsync` safe point on the calling rank.
///
/// Collective: every rank of `comm` must call it. `write_stats` enables
/// the runtime statistics dump (Experiment 3).
pub fn confsync(
    vt: &Arc<VtLib>,
    monitor: &MonitorLink,
    p: &Proc,
    comm: &Comm,
    write_stats: bool,
) -> ConfsyncOutcome {
    let rank = comm.rank();
    let round = vt.next_sync_round(rank);
    // Entry bookkeeping on every rank.
    p.advance(SimTime::from_micros(2));

    // Catch up on deltas this rank missed at earlier safe points (fault
    // injection): apply them now, before this round's delta, so the rank
    // converges to the collective configuration.
    let deferred = vt.take_deferred(rank);
    if !deferred.is_empty() {
        for (decided_round, d) in &deferred {
            p.advance(SimTime::from_micros(3));
            vt.with_config(rank, |c| c.apply(d));
            hb::epoch_apply(p, vt.check_id, *decided_round);
        }
        vt.reresolve(rank);
        if obs::enabled() {
            obs::counter("vt.confsync.catchups").add(deferred.len() as u64);
        }
    }

    // Rank 0 polls the monitoring tool's side channel; this is the
    // dominant constant of Fig 8(a).
    let delta = if rank == 0 {
        p.advance(p.machine().probe.confsync_poll);
        // A manually posted change wins; otherwise the attached overhead
        // controller (if any) may decide one from this epoch's statistics.
        let pending = monitor.take().or_else(|| {
            monitor
                .controller()
                .and_then(|ctrl| ctrl.decide(vt, p.now(), round))
        });
        match pending {
            Some(pc) => {
                // configuration_break(): the monitoring tool has trapped
                // the no-op breakpoint and edits the configuration.
                p.advance(pc.respond_delay);
                hb::epoch_decision(p, vt.check_id, round);
                let bytes = pc.delta.wire_bytes();
                Some(DeltaMsg(Some(pc.delta), bytes))
            }
            None => Some(DeltaMsg(None, 1)),
        }
    } else {
        None
    };
    // Distribute the (possibly empty) change.
    let msg = comm.bcast_unlogged(p, 0, delta);
    let (changed, functions_changed, missed) = match msg.0 {
        Some(d) => {
            // Fault injection may declare this rank unreachable for the
            // epoch (rank 0, the decider, is exempt). The collective
            // structure is untouched — the rank still took part in the
            // broadcast and will reach the barrier — but the delta is
            // deferred to the next safe point instead of applied, so the
            // job degrades to a partial epoch rather than deadlocking.
            if p.fault_plan()
                .is_some_and(|plan| plan.missed_epoch(rank, round))
            {
                vt.defer_delta(rank, round, d);
                if obs::enabled() {
                    obs::counter("vt.confsync.missed_epochs").inc();
                }
                (false, 0, true)
            } else {
                // Every rank applies the delta to its *own* activation
                // table and pays the local re-resolution cost — the
                // tables are per process, as in the real library.
                p.advance(SimTime::from_micros(3));
                vt.with_config(rank, |c| c.apply(&d));
                hb::epoch_apply(p, vt.check_id, round);
                let flipped = vt.reresolve(rank);
                (true, flipped, false)
            }
        }
        None => (false, 0, false),
    };
    // Agree on the epoch and change count (rank 0 decided them).
    let packed = if rank == 0 {
        let epoch = if changed { vt.bump_epoch() } else { vt.epoch() };
        Some(((epoch as u64) << 32) | functions_changed as u64)
    } else {
        None
    };
    let packed = comm.bcast_unlogged(p, 0, packed);
    let epoch = (packed >> 32) as u32;
    let functions_changed = (packed & 0xFFFF_FFFF) as usize;
    if missed {
        vt.note_partial(rank, epoch);
    }

    // Experiment 3: runtime statistics generation.
    if write_stats {
        let rows = vt.stats_rows(rank);
        let gathered = comm.gather_unlogged(p, 0, rows);
        if let Some(per_rank) = gathered {
            // Rank 0 formats and writes the statistics file.
            let costs = &p.machine().probe;
            let total_rows: usize = per_rank.iter().map(Vec::len).sum();
            p.advance(costs.stats_format_per_rank * per_rank.len() as u64);
            p.advance(costs.stats_write_base);
            p.advance(costs.flush_per_byte * (total_rows as u64 * 32));
            monitor.snapshots.lock().push(StatsSnapshot {
                t: p.now(),
                per_rank,
            });
        }
    }

    // Re-synchronize: no rank proceeds until the new configuration is in
    // force everywhere.
    comm.barrier_unlogged(p);
    vt.record(
        rank,
        Event::ConfSync {
            t: p.now(),
            rank: rank as u32,
            epoch,
        },
    );
    ConfsyncOutcome {
        epoch,
        changed,
        functions_changed,
        partial: missed,
        degraded: vt.is_degraded(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VtConfig;
    use dynprof_mpi::{launch, JobSpec};
    use dynprof_sim::{Machine, ProbeCosts, Sim};

    fn setup(ranks: usize, config: VtConfig) -> (Arc<VtLib>, Arc<MonitorLink>, Sim) {
        let vt = VtLib::new("app", ranks, config, ProbeCosts::power3());
        let monitor = MonitorLink::new();
        let sim = Sim::virtual_time(Machine::test_machine(), 11);
        (vt, monitor, sim)
    }

    #[test]
    fn confsync_without_change_keeps_epoch() {
        let (vt, monitor, sim) = setup(4, VtConfig::all_on());
        let (v2, m2) = (Arc::clone(&vt), Arc::clone(&monitor));
        launch(&sim, JobSpec::new("app", 4), vec![], move |p, c| {
            c.init(p);
            v2.init(p, c.rank());
            let out = confsync(&v2, &m2, p, c, false);
            assert_eq!(out.epoch, 0);
            assert!(!out.changed);
            c.finalize(p);
        });
        sim.run();
        assert_eq!(vt.epoch(), 0);
    }

    #[test]
    fn confsync_applies_posted_change_everywhere() {
        let (vt, monitor, sim) = setup(4, VtConfig::all_on());
        monitor.post_change(
            ConfigDelta::Set(vec![("default".into(), false), ("keep".into(), true)]),
            SimTime::from_millis(5),
        );
        let (v2, m2) = (Arc::clone(&vt), Arc::clone(&monitor));
        launch(&sim, JobSpec::new("app", 4), vec![], move |p, c| {
            c.init(p);
            v2.init(p, c.rank());
            let keep = v2.funcdef(p, "keep");
            let drop_ = v2.funcdef(p, "drop");
            c.barrier(p);
            let out = confsync(&v2, &m2, p, c, false);
            assert!(out.changed);
            assert_eq!(out.epoch, 1);
            assert!(v2.is_active(c.rank(), keep));
            assert!(!v2.is_active(c.rank(), drop_));
            c.finalize(p);
        });
        sim.run();
        assert!(!monitor.has_pending(), "change consumed");
    }

    #[test]
    fn confsync_change_costs_more_than_no_change() {
        fn elapsed(with_change: bool) -> SimTime {
            let (vt, monitor, sim) = setup(2, VtConfig::all_on());
            if with_change {
                monitor.post_change(
                    ConfigDelta::Set(vec![("f".into(), false)]),
                    SimTime::from_millis(2),
                );
            }
            let done = Arc::new(Mutex::new(SimTime::ZERO));
            let d2 = Arc::clone(&done);
            launch(&sim, JobSpec::new("app", 2), vec![], move |p, c| {
                c.init(p);
                vt.init(p, c.rank());
                c.barrier(p);
                let t0 = p.now();
                confsync(&vt, &monitor, p, c, false);
                if c.rank() == 0 {
                    *d2.lock() = p.now() - t0;
                }
                c.finalize(p);
            });
            sim.run();
            let t = *done.lock();
            t
        }
        let plain = elapsed(false);
        let with_change = elapsed(true);
        assert!(with_change > plain);
        // Both stay well under the paper's 0.04 s bound for this machine
        // class (test machine has tiny latencies; the IBM harness checks
        // the real bound).
        assert!(plain > SimTime::ZERO);
    }

    #[test]
    fn stats_write_collects_all_ranks() {
        let (vt, monitor, sim) = setup(3, VtConfig::all_on());
        let (v2, m2) = (Arc::clone(&vt), Arc::clone(&monitor));
        launch(&sim, JobSpec::new("app", 3), vec![], move |p, c| {
            c.init(p);
            v2.init(p, c.rank());
            let f = v2.funcdef(p, "work");
            for _ in 0..=c.rank() {
                v2.begin(p, c.rank(), 0, f, 1);
                p.advance(SimTime::from_micros(10));
                v2.end(p, c.rank(), 0, f);
            }
            c.barrier(p);
            confsync(&v2, &m2, p, c, true);
            c.finalize(p);
        });
        sim.run();
        let snaps = monitor.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].per_rank.len(), 3);
        for (r, rows) in snaps[0].per_rank.iter().enumerate() {
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].1, r as u64 + 1, "rank {r} call count");
        }
    }

    #[test]
    fn confsync_emits_trace_events() {
        let (vt, monitor, sim) = setup(2, VtConfig::all_on());
        let (v2, m2) = (Arc::clone(&vt), Arc::clone(&monitor));
        launch(&sim, JobSpec::new("app", 2), vec![], move |p, c| {
            c.init(p);
            v2.init(p, c.rank());
            confsync(&v2, &m2, p, c, false);
            c.finalize(p);
        });
        sim.run();
        let trace = vt.build_trace();
        let syncs = trace
            .events
            .iter()
            .filter(|e| matches!(e, Event::ConfSync { .. }))
            .count();
        assert_eq!(syncs, 2);
    }
}
