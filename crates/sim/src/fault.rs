//! Deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] is derived from a `(seed, profile)` pair and the
//! machine model, and is consulted by the engine and the synchronization
//! layer to inject:
//!
//! * **interconnect message faults** on control-plane channels — drop,
//!   duplication, extra delay ([`SimChannel::send_ctl`] in
//!   [`crate::sync`]);
//! * **per-node slowdown** — a subset of nodes executes all charged work
//!   slower (applied inside the engine's `charge`);
//! * **daemon outage windows** — per-node virtual-time intervals during
//!   which that node's DPCL daemons are crashed (consumed by the daemon
//!   loops in `dynprof-dpcl`);
//! * **missed configuration epochs** — ranks that fail to apply a
//!   `VT_confsync` delta at the safe point (consumed by `dynprof-vt`).
//!
//! Everything is a pure function of the fault seed: two runs with the
//! same simulation seed and the same fault spec are bit-identical. The
//! headline invariant is the reverse direction: a plan whose profile
//! enables **nothing** (probabilities zero, no slow nodes, no outages)
//! draws no random numbers, schedules no events, and charges no time —
//! the run is byte-identical to one with no plan installed at all.
//!
//! [`SimChannel::send_ctl`]: crate::sync::SimChannel::send_ctl

use parking_lot::Mutex;

use crate::rng::SimRng;
use crate::time::SimTime;
use crate::topology::Machine;

/// RNG stream id for plan construction (node selection, outage windows).
const SETUP_STREAM: u64 = 0xFA17_5E10;
/// RNG stream id for per-message link decisions.
const LINK_STREAM: u64 = 0xFA17_11FE;

/// What faults a plan injects; all probabilities are in parts-per-million
/// so the plan never touches floating point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultProfile {
    /// Probability (ppm) that a control message is dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) that a control message is duplicated.
    pub dup_ppm: u32,
    /// Probability (ppm) that a control message is delayed by an extra
    /// uniform `[0, extra_delay_max]`.
    pub delay_ppm: u32,
    /// Upper bound of the extra delivery delay.
    pub extra_delay_max: SimTime,
    /// Probability (ppm) that a given node is slowed.
    pub slow_node_ppm: u32,
    /// Work multiplier for slowed nodes, in permille (1500 = 1.5x).
    pub slowdown_permille: u32,
    /// Probability (ppm) that a given node's daemons crash once.
    pub crash_node_ppm: u32,
    /// Crash start time is uniform in `[0, crash_start_max]`.
    pub crash_start_max: SimTime,
    /// How long a crashed node's daemons stay down before restarting.
    pub crash_downtime: SimTime,
    /// Probability (ppm) that a nonzero rank misses a confsync epoch.
    pub missed_epoch_ppm: u32,
}

impl FaultProfile {
    /// The profile that injects nothing.
    pub fn none() -> FaultProfile {
        FaultProfile {
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            extra_delay_max: SimTime::ZERO,
            slow_node_ppm: 0,
            slowdown_permille: 1000,
            crash_node_ppm: 0,
            crash_start_max: SimTime::ZERO,
            crash_downtime: SimTime::ZERO,
            missed_epoch_ppm: 0,
        }
    }

    /// Look a named profile up (`none`, `drop`, `dup`, `delay`, `slow`,
    /// `crash`, `epochs`, `lossy`).
    pub fn named(name: &str) -> Option<FaultProfile> {
        let mut p = FaultProfile::none();
        match name {
            "none" => {}
            "drop" => p.drop_ppm = 50_000,
            "dup" => p.dup_ppm = 100_000,
            "delay" => {
                p.delay_ppm = 200_000;
                p.extra_delay_max = SimTime::from_millis(20);
            }
            "slow" => {
                p.slow_node_ppm = 250_000;
                p.slowdown_permille = 2000;
            }
            "crash" => {
                p.crash_node_ppm = 500_000;
                p.crash_start_max = SimTime::from_millis(1500);
                p.crash_downtime = SimTime::from_millis(400);
            }
            "epochs" => p.missed_epoch_ppm = 300_000,
            "lossy" => {
                p.drop_ppm = 30_000;
                p.dup_ppm = 50_000;
                p.delay_ppm = 100_000;
                p.extra_delay_max = SimTime::from_millis(10);
                p.slow_node_ppm = 125_000;
                p.slowdown_permille = 1500;
                p.crash_node_ppm = 250_000;
                p.crash_start_max = SimTime::from_millis(1500);
                p.crash_downtime = SimTime::from_millis(300);
                p.missed_epoch_ppm = 100_000;
            }
            _ => return None,
        }
        Some(p)
    }

    /// Every named profile, for matrix tests.
    pub fn all_names() -> &'static [&'static str] {
        &[
            "none", "drop", "dup", "delay", "slow", "crash", "epochs", "lossy",
        ]
    }

    fn links_enabled(&self) -> bool {
        self.drop_ppm > 0 || self.dup_ppm > 0 || self.delay_ppm > 0
    }

    /// True if this profile can never inject anything: no link faults, no
    /// slowdowns, no crash windows, no missed epochs. An inert profile is
    /// the `none` profile in every observable respect.
    pub fn is_inert(&self) -> bool {
        !self.links_enabled()
            && self.slow_node_ppm == 0
            && self.crash_node_ppm == 0
            && self.missed_epoch_ppm == 0
    }
}

/// A parsed `--faults` argument: fault seed plus profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed every fault decision derives from (independent of the
    /// simulation seed).
    pub seed: u64,
    /// Name the profile was looked up under (diagnostics).
    pub profile_name: String,
    /// The profile in force.
    pub profile: FaultProfile,
}

impl FaultSpec {
    /// Parse `seed[:profile]` (profile defaults to `lossy`).
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let (seed_s, name) = match s.split_once(':') {
            Some((a, b)) => (a, b),
            None => (s, "lossy"),
        };
        let seed: u64 = seed_s
            .parse()
            .map_err(|_| format!("bad fault seed {seed_s:?} (want seed[:profile])"))?;
        let profile = FaultProfile::named(name).ok_or_else(|| {
            format!(
                "unknown fault profile {name:?} (one of {})",
                FaultProfile::all_names().join("|")
            )
        })?;
        Ok(FaultSpec {
            seed,
            profile_name: name.to_string(),
            profile,
        })
    }
}

static GLOBAL_SPEC: Mutex<Option<FaultSpec>> = Mutex::new(None);

/// Install (or clear) the process-global fault spec. Every virtual-mode
/// [`crate::Sim`] constructed afterwards instantiates its own
/// deterministic [`FaultPlan`] from it — this is how `--faults` on a
/// harness binary reaches simulations built deep inside library code.
pub fn set_global_spec(spec: Option<FaultSpec>) {
    *GLOBAL_SPEC.lock() = spec;
}

/// The currently installed global fault spec, if any.
pub fn global_spec() -> Option<FaultSpec> {
    GLOBAL_SPEC.lock().clone()
}

/// Per-message link fault decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDecision {
    /// The message never arrives.
    pub drop: bool,
    /// A second copy is delivered (after the first).
    pub duplicate: bool,
    /// Extra delivery latency on every delivered copy.
    pub extra_delay: SimTime,
}

impl LinkDecision {
    /// An undisturbed delivery.
    pub const DELIVER: LinkDecision = LinkDecision {
        drop: false,
        duplicate: false,
        extra_delay: SimTime::ZERO,
    };
}

/// A fault plan instantiated for one simulation: the profile plus the
/// precomputed per-node decisions (slowdowns, outage windows) and the
/// per-message decision stream.
pub struct FaultPlan {
    spec: FaultSpec,
    /// Per-message decisions (virtual mode runs one process at a time,
    /// so the draw order — and thus the run — is deterministic).
    link_rng: Mutex<SimRng>,
    /// Work multiplier per node, permille. 1000 = unaffected.
    node_slow: Vec<u32>,
    /// Daemon outage window per node.
    outages: Vec<Option<(SimTime, SimTime)>>,
}

impl FaultPlan {
    /// Instantiate `spec` for `machine`.
    pub fn new(spec: &FaultSpec, machine: &Machine) -> std::sync::Arc<FaultPlan> {
        let pr = &spec.profile;
        let mut setup = SimRng::new(spec.seed, SETUP_STREAM);
        let mut node_slow = Vec::with_capacity(machine.nodes);
        let mut outages = Vec::with_capacity(machine.nodes);
        for _ in 0..machine.nodes {
            // Fixed draw count per node keeps the stream aligned across
            // profiles with the same seed.
            let slow_roll = setup.gen_range_u64(0..=999_999);
            let crash_roll = setup.gen_range_u64(0..=999_999);
            let start_roll = setup.gen_range_u64(0..=pr.crash_start_max.as_nanos().max(1));
            node_slow.push(if slow_roll < pr.slow_node_ppm as u64 {
                pr.slowdown_permille.max(1)
            } else {
                1000
            });
            outages.push(
                if pr.crash_node_ppm > 0
                    && pr.crash_downtime > SimTime::ZERO
                    && crash_roll < pr.crash_node_ppm as u64
                {
                    let start = SimTime::from_nanos(start_roll.min(pr.crash_start_max.as_nanos()));
                    Some((start, start + pr.crash_downtime))
                } else {
                    None
                },
            );
        }
        std::sync::Arc::new(FaultPlan {
            spec: spec.clone(),
            link_rng: Mutex::new(SimRng::new(spec.seed, LINK_STREAM)),
            node_slow,
            outages,
        })
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Does this plan inject per-message link faults at all? (Fast path:
    /// lets senders skip the RNG entirely under a zero profile.)
    pub fn links_enabled(&self) -> bool {
        self.spec.profile.links_enabled()
    }

    /// True if this plan can never disturb the run (its profile is the
    /// `none` profile in every observable respect). Consumers that add
    /// machinery *in response to* faults — the transactional 2PC control
    /// plane in `dynprof-dpcl` is the main one — use this to take the
    /// undisturbed fast path, preserving the byte-identity guarantee of
    /// zero-fault runs.
    pub fn is_inert(&self) -> bool {
        self.spec.profile.is_inert()
    }

    /// Decide the fate of one control-plane message. Draws a fixed number
    /// of randoms per call so outcomes of earlier messages never shift
    /// the stream alignment of later ones.
    pub fn decide_link(&self) -> LinkDecision {
        let pr = &self.spec.profile;
        if !pr.links_enabled() {
            return LinkDecision::DELIVER;
        }
        let mut rng = self.link_rng.lock();
        let drop_roll = rng.gen_range_u64(0..=999_999);
        let dup_roll = rng.gen_range_u64(0..=999_999);
        let delay_roll = rng.gen_range_u64(0..=999_999);
        let delay_amount = rng.gen_range_u64(0..=pr.extra_delay_max.as_nanos().max(1));
        LinkDecision {
            drop: drop_roll < pr.drop_ppm as u64,
            duplicate: dup_roll < pr.dup_ppm as u64,
            extra_delay: if delay_roll < pr.delay_ppm as u64 {
                SimTime::from_nanos(delay_amount.min(pr.extra_delay_max.as_nanos()))
            } else {
                SimTime::ZERO
            },
        }
    }

    /// Scale a work charge for `node` (per-node slowdown).
    pub fn scale_work(&self, node: usize, dt: SimTime) -> SimTime {
        match self.node_slow.get(node) {
            Some(&1000) | None => dt,
            Some(&m) => SimTime::from_nanos((dt.as_nanos().saturating_mul(m as u64)) / 1000),
        }
    }

    /// The daemon outage window for `node`, if its daemons crash.
    pub fn daemon_outage(&self, node: usize) -> Option<(SimTime, SimTime)> {
        self.outages.get(node).copied().flatten()
    }

    /// Does nonzero rank `rank` miss the confsync delta of collective
    /// round `round`? (Hash-based, so the answer is independent of the
    /// order in which ranks ask.)
    pub fn missed_epoch(&self, rank: usize, round: u64) -> bool {
        let ppm = self.spec.profile.missed_epoch_ppm;
        if ppm == 0 || rank == 0 {
            return false;
        }
        let mut x = self
            .spec
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((rank as u64) << 32)
            .wrapping_add(round);
        // SplitMix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x % 1_000_000 < ppm as u64
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.spec.seed)
            .field("profile", &self.spec.profile_name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_seed_and_profile() {
        let s = FaultSpec::parse("42:drop").unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.profile_name, "drop");
        assert!(s.profile.drop_ppm > 0);
        // Default profile.
        assert_eq!(FaultSpec::parse("7").unwrap().profile_name, "lossy");
        assert!(FaultSpec::parse("x:drop").is_err());
        assert!(FaultSpec::parse("1:bogus").is_err());
    }

    #[test]
    fn every_named_profile_resolves() {
        for name in FaultProfile::all_names() {
            assert!(FaultProfile::named(name).is_some(), "{name}");
        }
    }

    #[test]
    fn inertness_matches_the_none_profile_exactly() {
        assert!(FaultProfile::none().is_inert());
        for name in FaultProfile::all_names() {
            let p = FaultProfile::named(name).unwrap();
            assert_eq!(p.is_inert(), *name == "none", "{name}");
        }
        let plan = FaultPlan::new(
            &FaultSpec::parse("3:none").unwrap(),
            &Machine::test_machine(),
        );
        assert!(plan.is_inert());
        let plan = FaultPlan::new(
            &FaultSpec::parse("3:crash").unwrap(),
            &Machine::test_machine(),
        );
        assert!(!plan.is_inert());
    }

    #[test]
    fn zero_profile_draws_nothing_and_disturbs_nothing() {
        let spec = FaultSpec::parse("9:none").unwrap();
        let plan = FaultPlan::new(&spec, &Machine::test_machine());
        assert!(!plan.links_enabled());
        assert_eq!(plan.decide_link(), LinkDecision::DELIVER);
        for node in 0..4 {
            assert_eq!(
                plan.scale_work(node, SimTime::from_micros(10)),
                SimTime::from_micros(10)
            );
            assert_eq!(plan.daemon_outage(node), None);
        }
        assert!(!plan.missed_epoch(1, 3));
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        fn fingerprint(seed: u64) -> Vec<LinkDecision> {
            let spec = FaultSpec::parse(&format!("{seed}:lossy")).unwrap();
            let plan = FaultPlan::new(&spec, &Machine::test_machine());
            (0..256).map(|_| plan.decide_link()).collect()
        }
        assert_eq!(fingerprint(5), fingerprint(5));
        assert_ne!(fingerprint(5), fingerprint(6));
    }

    #[test]
    fn slowdown_scales_only_slowed_nodes() {
        let spec = FaultSpec {
            seed: 1,
            profile_name: "slow-all".into(),
            profile: FaultProfile {
                slow_node_ppm: 1_000_000,
                slowdown_permille: 2000,
                ..FaultProfile::none()
            },
        };
        let plan = FaultPlan::new(&spec, &Machine::test_machine());
        assert_eq!(
            plan.scale_work(0, SimTime::from_micros(5)),
            SimTime::from_micros(10)
        );
    }

    #[test]
    fn crash_windows_lie_in_the_configured_span() {
        let spec = FaultSpec {
            seed: 3,
            profile_name: "crash-all".into(),
            profile: FaultProfile {
                crash_node_ppm: 1_000_000,
                crash_start_max: SimTime::from_millis(100),
                crash_downtime: SimTime::from_millis(40),
                ..FaultProfile::none()
            },
        };
        let plan = FaultPlan::new(&spec, &Machine::test_machine());
        for node in 0..4 {
            let (start, end) = plan.daemon_outage(node).expect("all nodes crash");
            assert!(start <= SimTime::from_millis(100));
            assert_eq!(end, start + SimTime::from_millis(40));
        }
    }

    #[test]
    fn missed_epochs_never_hit_rank_zero() {
        let spec = FaultSpec::parse("11:epochs").unwrap();
        let plan = FaultPlan::new(&spec, &Machine::test_machine());
        let mut any = false;
        for round in 0..64u64 {
            assert!(!plan.missed_epoch(0, round));
            for rank in 1..8 {
                any |= plan.missed_epoch(rank, round);
            }
        }
        assert!(any, "30% miss rate must fire somewhere in 448 trials");
    }
}
