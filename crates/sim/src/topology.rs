//! Cluster topology models.
//!
//! The paper evaluates on two machines:
//!
//! * an IBM Power3 clustered SMP: 144 nodes × 8 CPUs (375 MHz Power3),
//!   4 GB/node, AIX 5.1, connected by the proprietary Colony switch, and
//! * a 16-node Intel Pentium III IA32 Linux cluster (Fig 8c).
//!
//! [`Machine`] captures the pieces of those systems that determine the
//! paper's measurements: node/CPU counts, the point-to-point communication
//! model of the interconnect and of intra-node shared memory, CPU speed,
//! and the asynchronous message-delivery delays of the DPCL daemon layer.

use crate::costs::ProbeCosts;
use crate::time::SimTime;

/// A linear (latency + size/bandwidth) communication cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// One-way zero-byte message latency.
    pub latency: SimTime,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl LinkModel {
    /// Time for a one-way message of `bytes` payload.
    pub fn transfer(&self, bytes: usize) -> SimTime {
        self.latency + SimTime::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// CPU speed model used to convert abstract work into time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Nanoseconds per (scalar, cache-resident) floating-point operation.
    pub ns_per_flop: f64,
    /// Nanoseconds per byte streamed from main memory.
    pub ns_per_mem_byte: f64,
}

impl CpuModel {
    /// Time to execute `flops` floating point operations touching
    /// `mem_bytes` of main memory.
    pub fn work(&self, flops: u64, mem_bytes: u64) -> SimTime {
        SimTime::from_nanos(
            (flops as f64 * self.ns_per_flop + mem_bytes as f64 * self.ns_per_mem_byte).round()
                as u64,
        )
    }
}

/// Delay model for the asynchronous DPCL daemon message delivery.
///
/// DPCL is asynchronous: "there may be differing delays incurred when
/// contacting the daemons on different nodes in the system" (paper §3.2).
/// Each daemon message experiences `base + U[0, jitter]` delay; the jitter
/// is what forces dynprof's barrier/spin-wait startup protocol (Fig 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DaemonModel {
    /// Minimum instrumenter→daemon (or reverse) message delay.
    pub base_delay: SimTime,
    /// Maximum additional uniformly-distributed delay.
    pub jitter: SimTime,
    /// Time for a daemon to patch one probe point in a process image
    /// (allocate trampoline space, write jump, relocate instruction).
    pub patch_cost: SimTime,
    /// Time for a daemon to attach to / create one target process.
    pub attach_cost: SimTime,
}

/// A simulated cluster of SMP nodes.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Human-readable machine name (appears in reports).
    pub name: &'static str,
    /// Number of SMP nodes.
    pub nodes: usize,
    /// CPUs per node.
    pub cpus_per_node: usize,
    /// Inter-node interconnect model.
    pub interconnect: LinkModel,
    /// Intra-node (shared memory) communication model.
    pub intra_node: LinkModel,
    /// CPU model.
    pub cpu: CpuModel,
    /// DPCL daemon delay model.
    pub daemon: DaemonModel,
    /// Instrumentation probe cost model.
    pub probe: ProbeCosts,
}

impl Machine {
    /// Total CPU count of the machine.
    pub fn total_cpus(&self) -> usize {
        self.nodes * self.cpus_per_node
    }

    /// The node that hosts global MPI rank `rank` under block placement
    /// (ranks fill a node before spilling to the next, as POE does).
    pub fn node_of_rank(&self, rank: usize) -> usize {
        (rank / self.cpus_per_node) % self.nodes.max(1)
    }

    /// Communication model between two ranks (intra-node vs interconnect).
    pub fn link_between(&self, rank_a: usize, rank_b: usize) -> LinkModel {
        if self.node_of_rank(rank_a) == self.node_of_rank(rank_b) {
            self.intra_node
        } else {
            self.interconnect
        }
    }

    /// Time for a one-way message of `bytes` between two ranks.
    pub fn transfer_between(&self, rank_a: usize, rank_b: usize, bytes: usize) -> SimTime {
        self.link_between(rank_a, rank_b).transfer(bytes)
    }

    /// The IBM Power3 clustered SMP used in paper §4.1: 144 nodes, eight
    /// 375 MHz Power3 CPUs per node, Colony switch interconnect.
    pub fn ibm_power3_colony() -> Machine {
        Machine {
            name: "IBM Power3 SMP cluster (Colony)",
            nodes: 144,
            cpus_per_node: 8,
            // Colony switch: ~20 us MPI latency, ~350 MB/s per link.
            interconnect: LinkModel {
                latency: SimTime::from_micros(20),
                bandwidth: 350e6,
            },
            // Shared-memory MPI within a node: ~3 us, ~1 GB/s.
            intra_node: LinkModel {
                latency: SimTime::from_micros(3),
                bandwidth: 1.0e9,
            },
            // 375 MHz Power3: ~2 flops/cycle peak; we model a sustained
            // scalar rate of ~1 flop / 2.67 ns and ~0.8 GB/s memory streams.
            cpu: CpuModel {
                ns_per_flop: 2.67,
                ns_per_mem_byte: 1.25,
            },
            daemon: DaemonModel {
                base_delay: SimTime::from_millis(2),
                jitter: SimTime::from_millis(6),
                patch_cost: SimTime::from_micros(350),
                attach_cost: SimTime::from_millis(120),
            },
            probe: ProbeCosts::power3(),
        }
    }

    /// The 16-node Intel Pentium III IA32 Linux cluster of Fig 8(c).
    pub fn ia32_pentium3_cluster() -> Machine {
        Machine {
            name: "IA32 Pentium III Linux cluster",
            nodes: 16,
            cpus_per_node: 1,
            // 100 Mb Ethernet-class interconnect: ~60 us, ~11 MB/s... the
            // paper's sub-6 ms confsync at 16 procs implies a fast LAN; we
            // model switched fast Ethernet with TCP: 55 us, 11.5 MB/s.
            interconnect: LinkModel {
                latency: SimTime::from_micros(55),
                bandwidth: 11.5e6,
            },
            intra_node: LinkModel {
                latency: SimTime::from_micros(2),
                bandwidth: 800e6,
            },
            // ~800 MHz PIII.
            cpu: CpuModel {
                ns_per_flop: 1.8,
                ns_per_mem_byte: 1.6,
            },
            daemon: DaemonModel {
                base_delay: SimTime::from_millis(3),
                jitter: SimTime::from_millis(8),
                patch_cost: SimTime::from_micros(500),
                attach_cost: SimTime::from_millis(150),
            },
            probe: ProbeCosts::pentium3(),
        }
    }

    /// A small, fast machine for unit tests: 4 nodes × 4 CPUs with tiny
    /// latencies so tests run instantly while still exercising inter- vs
    /// intra-node paths.
    pub fn test_machine() -> Machine {
        Machine {
            name: "test machine",
            nodes: 4,
            cpus_per_node: 4,
            interconnect: LinkModel {
                latency: SimTime::from_micros(10),
                bandwidth: 1e9,
            },
            intra_node: LinkModel {
                latency: SimTime::from_micros(1),
                bandwidth: 4e9,
            },
            cpu: CpuModel {
                ns_per_flop: 1.0,
                ns_per_mem_byte: 1.0,
            },
            daemon: DaemonModel {
                base_delay: SimTime::from_micros(100),
                jitter: SimTime::from_micros(300),
                patch_cost: SimTime::from_micros(10),
                attach_cost: SimTime::from_micros(500),
            },
            probe: ProbeCosts::power3(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_is_latency_plus_bandwidth_term() {
        let l = LinkModel {
            latency: SimTime::from_micros(10),
            bandwidth: 1e9, // 1 byte per ns
        };
        assert_eq!(l.transfer(0), SimTime::from_micros(10));
        assert_eq!(l.transfer(1000), SimTime::from_micros(11));
    }

    #[test]
    fn cpu_work_combines_flops_and_memory() {
        let c = CpuModel {
            ns_per_flop: 2.0,
            ns_per_mem_byte: 1.0,
        };
        assert_eq!(c.work(100, 50), SimTime::from_nanos(250));
        assert_eq!(c.work(0, 0), SimTime::ZERO);
    }

    #[test]
    fn block_placement_fills_nodes() {
        let m = Machine::ibm_power3_colony();
        assert_eq!(m.node_of_rank(0), 0);
        assert_eq!(m.node_of_rank(7), 0);
        assert_eq!(m.node_of_rank(8), 1);
        assert_eq!(m.node_of_rank(63), 7);
    }

    #[test]
    fn intra_node_link_is_faster() {
        let m = Machine::ibm_power3_colony();
        let same = m.transfer_between(0, 1, 1024);
        let cross = m.transfer_between(0, 8, 1024);
        assert!(same < cross);
    }

    #[test]
    fn paper_machines_match_stated_sizes() {
        let ibm = Machine::ibm_power3_colony();
        assert_eq!(ibm.nodes, 144);
        assert_eq!(ibm.cpus_per_node, 8);
        assert_eq!(ibm.total_cpus(), 1152);
        let ia32 = Machine::ia32_pentium3_cluster();
        assert_eq!(ia32.nodes, 16);
        assert_eq!(ia32.total_cpus(), 16);
    }
}
