//! Online summary statistics.
//!
//! The paper reports each Figure-8 data point as "the average time over 16
//! runs for a given processor configuration". [`OnlineStats`] implements
//! Welford's numerically-stable online algorithm so harnesses can fold in
//! run times one at a time without storing them.

use crate::time::SimTime;

/// Streaming mean/variance/min/max accumulator (Welford).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// A fresh, empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold in a simulated duration, recorded in seconds.
    pub fn push_time(&mut self, t: SimTime) {
        self.push(t.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance with Bessel's correction (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_textbook() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_is_all_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn push_time_records_seconds() {
        let mut s = OnlineStats::new();
        s.push_time(SimTime::from_millis(1500));
        assert!((s.mean() - 1.5).abs() < 1e-12);
    }
}
