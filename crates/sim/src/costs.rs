//! Instrumentation cost models.
//!
//! These constants encode the *relative* costs that drive every result in
//! the paper (§2, §4.3): an **active** probe pays a timestamp plus an event
//! append; a **deactivated** static probe still pays the call into the
//! trace library and a table lookup before bailing out; a **dynamically
//! inserted** probe additionally pays trampoline dispatch (jump, register
//! save/restore); and an **absent** probe pays nothing at all. The paper's
//! entire argument — `Dynamic` ≈ `None` ≪ `Full-Off` ≈ `Subset` ≪ `Full` —
//! follows from this hierarchy multiplied by per-function call rates.
//!
//! In the simulator's virtual-clock mode these costs are charged to the
//! virtual clock; in real-clock mode the actual Rust implementations run
//! and criterion measures them directly (see `dynprof-bench`).

use crate::time::SimTime;

/// Per-event costs of the Vampirtrace-analogue instrumentation layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeCosts {
    /// Cost of an *active* `VT_begin`: read clock, append entry event.
    pub vt_begin_active: SimTime,
    /// Cost of an *active* `VT_end`: read clock, append exit event.
    pub vt_end_active: SimTime,
    /// Cost of a `VT_begin`/`VT_end` whose symbol is deactivated in the
    /// configuration table: function call + hash lookup + early return.
    pub vt_deactivated: SimTime,
    /// Extra cost of reaching instrumentation through a dynamically
    /// inserted probe: jump to base trampoline, save registers, jump to
    /// mini-trampoline, restore registers, relocated instruction, jump back.
    pub trampoline_dispatch: SimTime,
    /// One-time cost of registering a function with `VT_funcdef`.
    pub vt_funcdef: SimTime,
    /// Cost of logging one MPI call through the wrapper interface.
    pub mpi_wrapper_event: SimTime,
    /// Cost of logging one OpenMP region event through Guidetrace.
    pub omp_region_event: SimTime,
    /// Bytes appended to the trace buffer per begin/end event
    /// (timestamp + ids); the paper's motivating 2 MB/s data rate.
    pub event_bytes: usize,
    /// Cost of flushing one trace-buffer byte to the trace file.
    pub flush_per_byte: SimTime,
    /// Rank-0 cost of one `VT_confsync` check against the monitoring
    /// tool's side channel (socket poll through the OS tool stack); the
    /// dominant term of paper Fig 8(a).
    pub confsync_poll: SimTime,
    /// Rank-0 cost of formatting one rank's statistics block when
    /// `VT_confsync` writes runtime statistics (Fig 8(b), Experiment 3).
    pub stats_format_per_rank: SimTime,
    /// Base cost of opening/committing the statistics file.
    pub stats_write_base: SimTime,
}

impl ProbeCosts {
    /// Cost model for the 375 MHz Power3 nodes. An active begin/end pair
    /// costs ~1.6 us; a deactivated pair ~0.36 us; trampoline dispatch
    /// ~0.25 us per probe point.
    pub const fn power3() -> ProbeCosts {
        ProbeCosts {
            vt_begin_active: SimTime::from_nanos(820),
            vt_end_active: SimTime::from_nanos(780),
            vt_deactivated: SimTime::from_nanos(180),
            trampoline_dispatch: SimTime::from_nanos(250),
            vt_funcdef: SimTime::from_micros(4),
            mpi_wrapper_event: SimTime::from_nanos(900),
            omp_region_event: SimTime::from_nanos(600),
            event_bytes: 24,
            flush_per_byte: SimTime::from_nanos(2),
            confsync_poll: SimTime::from_millis(16),
            stats_format_per_rank: SimTime::from_micros(300),
            stats_write_base: SimTime::from_millis(5),
        }
    }

    /// Cost model for the ~800 MHz Pentium III nodes of Fig 8(c).
    pub const fn pentium3() -> ProbeCosts {
        ProbeCosts {
            vt_begin_active: SimTime::from_nanos(600),
            vt_end_active: SimTime::from_nanos(560),
            vt_deactivated: SimTime::from_nanos(130),
            trampoline_dispatch: SimTime::from_nanos(190),
            vt_funcdef: SimTime::from_micros(3),
            mpi_wrapper_event: SimTime::from_nanos(650),
            omp_region_event: SimTime::from_nanos(450),
            event_bytes: 24,
            flush_per_byte: SimTime::from_nanos(1),
            confsync_poll: SimTime::from_micros(2_200),
            stats_format_per_rank: SimTime::from_micros(150),
            stats_write_base: SimTime::from_millis(3),
        }
    }

    /// Cost of a full active `VT_begin` + `VT_end` pair.
    pub fn active_pair(&self) -> SimTime {
        self.vt_begin_active + self.vt_end_active
    }

    /// Cost of a deactivated begin + end pair (two lookups).
    pub fn deactivated_pair(&self) -> SimTime {
        self.vt_deactivated * 2
    }

    /// Cost of an active begin/end pair reached via dynamic probes
    /// (two trampoline dispatches, one per probe point).
    pub fn dynamic_pair(&self) -> SimTime {
        self.active_pair() + self.trampoline_dispatch * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cost hierarchy that produces the paper's Figure 7 ordering.
    #[test]
    fn cost_hierarchy_matches_paper() {
        for c in [ProbeCosts::power3(), ProbeCosts::pentium3()] {
            // absent (0) < deactivated < active < dynamic-active
            assert!(SimTime::ZERO < c.deactivated_pair());
            assert!(c.deactivated_pair() < c.active_pair());
            assert!(c.active_pair() < c.dynamic_pair());
            // Deactivated probes must be *much* cheaper than active ones
            // (>= 4x) for Full-Off to beat Full the way Fig 7a shows.
            assert!(c.active_pair().as_nanos() >= 4 * c.deactivated_pair().as_nanos());
            // ...but the trampoline surcharge must be small relative to the
            // active pair, so Dynamic ~ None for uninstrumented functions
            // and Dynamic ~ Subset-active for instrumented ones.
            assert!(c.trampoline_dispatch.as_nanos() * 2 < c.active_pair().as_nanos());
        }
    }

    #[test]
    fn pair_helpers_add_up() {
        let c = ProbeCosts::power3();
        assert_eq!(c.active_pair(), c.vt_begin_active + c.vt_end_active);
        assert_eq!(c.deactivated_pair(), c.vt_deactivated * 2);
        assert_eq!(
            c.dynamic_pair(),
            c.active_pair() + c.trampoline_dispatch * 2
        );
    }
}
